"""The deterministic multi-tenant scheduler and the knobs that drive it.

Five contracts are locked down here (see PERFORMANCE.md "Multi-tenant
scheduling"):

* **fairness** — runnable tasks share the virtual CPU in proportion to their
  group's ``cpu.weight``; a single runnable task is scheduled with *zero*
  overhead, observationally identical to running its body inline (the
  scheduler analogue of the no-limit ≡ seed memcg property).
* **bandwidth** — ``cpu.max`` quota throttles a group at the enforcement
  period, stretches its wall (virtual) time, and shows up in ``cpu.stat``
  (``nr_throttled`` / ``throttled_usec``) read live through cgroupfs.
* **knob validation** — cgroupfs ``cpu.weight`` / ``cpu.max`` writes accept
  exactly the kernel's grammar and reject everything else with EINVAL;
  ``cpu.stat`` is read-only.
* **determinism** — the same seed reproduces the complete interleaving
  (pick trace and final virtual time) byte-for-byte across runs and across
  interpreters with different hash seeds.
* **FUSE concurrency** — with ``max_background`` negotiated, the bounded
  ``/dev/fuse`` background queue congests under backlog and drains faster
  with more server threads; left at 0 it is entirely unmodelled.
"""

from __future__ import annotations

import errno
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.bench.harness import BenchEnvironment
from repro.container import DockerEngine, ImageBuilder
from repro.fs.constants import OpenFlags
from repro.fs.errors import FsError
from repro.fuse.options import FuseMountOptions
from repro.kernel.cgroups import (
    CgroupLimits,
    cpu_shares_from_weight,
    cpu_weight_from_shares,
)
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRandom
from repro.sim.sched import CpuGroup, Scheduler

SRC = Path(__file__).resolve().parent.parent / "src"

MS = 1_000_000


def _spinner(clock, ops, op_ns=100_000):
    """A task body charging ``ops`` fixed-cost operations, preemptible
    between any two of them."""
    def body():
        for _ in range(ops):
            clock.advance(op_ns)
            yield None
    return body


def _cgroupfs_write(sc, path, payload: bytes):
    fd = sc.open(path, OpenFlags.O_WRONLY)
    try:
        sc.write(fd, payload)
    finally:
        sc.close(fd)


def _cgroupfs_read(sc, path) -> bytes:
    fd = sc.open(path, OpenFlags.O_RDONLY)
    try:
        return sc.read(fd, 1 << 14)
    finally:
        sc.close(fd)


def _cpu_stat(sc, cg_path) -> dict[str, int]:
    text = _cgroupfs_read(sc, f"{cg_path}/cpu.stat").decode()
    return {k: int(v) for k, v in (line.split() for line in text.splitlines())}


class TestSchedulerCore:
    """Pure sim-layer behavior: no kernel, just a clock and task bodies."""

    def test_single_task_is_equivalent_to_inline_execution(self):
        inline = VirtualClock()
        for _ in range(57):
            inline.advance(100_000)

        clock = VirtualClock()
        sched = Scheduler(clock, rng=DeterministicRandom(7))
        sched.spawn("only", _spinner(clock, 57))
        stats = sched.run()
        assert clock.now_ns == inline.now_ns
        assert stats.context_switches == 0
        assert stats.switch_cost_ns == 0
        assert stats.idle_ns == 0
        assert stats.completions == 1

    def test_equal_weights_share_equally(self):
        clock = VirtualClock()
        sched = Scheduler(clock)
        ga = sched.new_group("a")
        gb = sched.new_group("b")
        ta = sched.spawn("a", _spinner(clock, 100), group=ga)
        tb = sched.spawn("b", _spinner(clock, 100), group=gb)
        sched.run()
        assert ta.cpu_ns == tb.cpu_ns == 100 * 100_000
        assert ga.stats.usage_ns == gb.stats.usage_ns

    def test_weighted_fairness_tracks_cpu_weight(self):
        clock = VirtualClock()
        sched = Scheduler(clock)
        light = sched.new_group("light", weight=100)
        heavy = sched.new_group("heavy", weight=300)
        sched.spawn("light", _spinner(clock, 10_000), group=light)
        sched.spawn("heavy", _spinner(clock, 10_000), group=heavy)
        sched.run(until_ns=40 * MS)
        ratio = heavy.stats.usage_ns / light.stats.usage_ns
        assert 2.0 < ratio < 4.0, ratio

    def test_interleaving_alternates_under_equal_weight(self):
        clock = VirtualClock()
        sched = Scheduler(clock)  # no jitter: fixed timeslices
        sched.spawn("a", _spinner(clock, 40))
        sched.spawn("b", _spinner(clock, 40))
        stats = sched.run()
        # 100us ops on a 1ms slice: 10 ops per turn, strict alternation.
        assert stats.pick_trace[:4] == ["a", "b", "a", "b"]
        assert stats.preemptions > 0
        assert stats.context_switches >= 3

    def test_context_switch_cost_is_charged_to_the_clock(self):
        clock = VirtualClock()
        sched = Scheduler(clock, context_switch_ns=2_000)
        sched.spawn("a", _spinner(clock, 20))
        sched.spawn("b", _spinner(clock, 20))
        stats = sched.run()
        assert stats.switch_cost_ns == stats.context_switches * 2_000
        assert clock.now_ns == 40 * 100_000 + stats.switch_cost_ns

    def test_blocking_yield_sleeps_and_wakes(self):
        clock = VirtualClock()
        sched = Scheduler(clock)

        def sleeper():
            clock.advance(100_000)
            yield 5 * MS          # block for 5ms of virtual time
            clock.advance(100_000)

        sched.spawn("sleeper", sleeper())
        stats = sched.run()
        assert stats.sleeps == 1
        assert stats.idle_ns == 5 * MS
        assert clock.now_ns == 200_000 + 5 * MS

    def test_idle_fires_timers_exactly_at_their_deadlines(self):
        clock = VirtualClock()
        sched = Scheduler(clock)
        fired = []
        clock.schedule(3 * MS, lambda now: fired.append(now))
        clock.schedule(7 * MS, lambda now: fired.append(now))

        def sleeper():
            yield 10 * MS

        sched.spawn("sleeper", sleeper())
        sched.run()
        assert fired == [3 * MS, 7 * MS]
        assert clock.now_ns == 10 * MS

    def test_quota_throttles_and_stretches_virtual_time(self):
        def run_with(quota_ns):
            clock = VirtualClock()
            sched = Scheduler(clock)
            group = sched.new_group("tenant", quota_ns=quota_ns,
                                    period_ns=10 * MS)
            sched.spawn("t", _spinner(clock, 50), group=group)
            sched.run()
            return clock.now_ns, group.stats

        free_ns, free_stats = run_with(None)
        capped_ns, capped_stats = run_with(1 * MS)   # 10% of each period
        assert free_stats.nr_throttled == 0
        assert capped_stats.usage_ns == free_stats.usage_ns == 50 * 100_000
        assert capped_stats.nr_throttled >= 2
        assert capped_stats.throttled_ns > 0
        assert capped_ns > free_ns

    def test_child_group_is_throttled_by_its_parent_quota(self):
        clock = VirtualClock()
        sched = Scheduler(clock)
        parent = sched.new_group("parent", quota_ns=1 * MS, period_ns=10 * MS)
        child = sched.new_group("parent/child", parent=parent)
        sched.spawn("t", _spinner(clock, 30), group=child)
        sched.run()
        assert parent.stats.nr_throttled >= 1
        assert child.stats.usage_ns == parent.stats.usage_ns == 30 * 100_000

    def test_waking_task_cannot_hoard_vruntime_credit(self):
        clock = VirtualClock()
        sched = Scheduler(clock)

        def napper():
            yield 10 * MS                 # sleep while the spinner accrues
            for _ in range(100):
                clock.advance(100_000)
                yield None

        sched.spawn("napper", napper())
        sched.spawn("spinner", _spinner(clock, 300))
        stats = sched.run()
        woke_at = next(i for i, name in enumerate(stats.pick_trace[1:], 1)
                       if name == "napper")
        after = stats.pick_trace[woke_at:]
        streak = best = 0
        for name in after:
            streak = streak + 1 if name == "napper" else 0
            best = max(best, streak)
        # Without the wake-time vruntime floor the napper would burn its
        # 10ms sleep credit in ~10 consecutive slices.
        assert best <= 2, stats.pick_trace

    def test_same_seed_reproduces_trace_and_time_exactly(self):
        def run(seed):
            clock = VirtualClock()
            sched = Scheduler(clock, rng=DeterministicRandom(seed))
            for i in range(4):
                group = sched.new_group(f"g{i}", weight=100 + 50 * i)
                sched.spawn(f"t{i}", _spinner(clock, 200, 70_000 + i * 1_000),
                            group=group)
            stats = sched.run()
            return tuple(stats.pick_trace), clock.now_ns

        assert run(42) == run(42)
        trace_a, _ = run(42)
        trace_b, _ = run(43)
        assert trace_a != trace_b     # jitter stream actually depends on seed

    def test_group_validation(self):
        with pytest.raises(ValueError):
            CpuGroup("w", weight=0)
        with pytest.raises(ValueError):
            CpuGroup("w", weight=10_001)
        with pytest.raises(ValueError):
            CpuGroup("q", quota_ns=0)
        with pytest.raises(ValueError):
            CpuGroup("p", period_ns=0)
        with pytest.raises(ValueError):
            Scheduler(VirtualClock(), timeslice_ns=0)


class TestCpuController:
    """Kernel glue: processes, cgroups and cgroupfs drive the scheduler."""

    def _workload(self, sc, path, records=16, record_kb=64):
        """A body performing real syscalls, yielding between operations."""
        payload = b"x" * (record_kb << 10)

        def body():
            fd = sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_WRONLY, 0o644)
            yield None
            for _ in range(records):
                sc.write(fd, payload)
                yield None
            sc.fsync(fd)
            yield None
            sc.close(fd)

        return body

    def test_tasks_accumulate_process_cpu_time(self, machine):
        controller = machine.kernel.cpu_controller()
        workers = [machine.spawn_host_process([f"/usr/bin/w{i}"])
                   for i in range(2)]
        for i, sc in enumerate(workers):
            sc.makedirs(f"/work{i}")
            controller.spawn(sc.process,
                             self._workload(sc, f"/work{i}/f.dat"))
        t0 = machine.clock.now_ns
        stats = controller.run()
        elapsed = machine.clock.now_ns - t0
        assert stats.completions == 2
        for sc in workers:
            assert sc.process.cpu_time_ns > 0
        total_cpu = sum(sc.process.cpu_time_ns for sc in workers)
        assert total_cpu == elapsed - stats.idle_ns - stats.switch_cost_ns

    def test_cpu_stat_reads_scheduler_charges_through_cgroupfs(self, machine,
                                                               syscalls):
        syscalls.mkdir("/sys/fs/cgroup/tenant")
        worker = machine.spawn_host_process(["/usr/bin/tenant-proc"])
        machine.kernel.cgroups.attach(worker.process.pid, "/tenant")
        worker.makedirs("/scratch")
        controller = machine.kernel.cpu_controller()
        controller.spawn(worker.process, self._workload(worker, "/scratch/f"))
        before = _cpu_stat(syscalls, "/sys/fs/cgroup/tenant")
        assert before["usage_usec"] == 0
        controller.run()
        after = _cpu_stat(syscalls, "/sys/fs/cgroup/tenant")
        assert after["usage_usec"] > 0
        assert after["usage_usec"] == \
            machine.kernel.cgroups.lookup("/tenant").cpu_stats.usage_ns // 1_000

    def test_cpu_max_written_through_cgroupfs_throttles(self):
        from repro.kernel.machine import boot

        def run_tenant(cpu_max: bytes | None):
            # A fresh machine per run keeps the two virtual clocks comparable.
            fresh = boot()
            sc = fresh.spawn_host_process(["/usr/bin/admin"])
            sc.mkdir("/sys/fs/cgroup/tenant")
            worker = fresh.spawn_host_process(["/usr/bin/worker"])
            fresh.kernel.cgroups.attach(worker.process.pid, "/tenant")
            worker.makedirs("/scratch")
            if cpu_max is not None:
                _cgroupfs_write(sc, "/sys/fs/cgroup/tenant/cpu.max", cpu_max)
            controller = fresh.kernel.cpu_controller()
            controller.spawn(worker.process,
                             self._workload(worker, "/scratch/f", records=64))
            t0 = fresh.clock.now_ns
            controller.run()
            return (fresh.clock.now_ns - t0,
                    _cpu_stat(sc, "/sys/fs/cgroup/tenant"))

        free_ns, free_stat = run_tenant(None)
        capped_ns, capped_stat = run_tenant(b"1000 10000")
        assert free_stat["nr_throttled"] == 0
        assert capped_stat["nr_throttled"] >= 1
        assert capped_stat["throttled_usec"] > 0
        assert capped_ns > free_ns
        # Identical work: usage matches, only the throttled wait differs.
        assert capped_stat["usage_usec"] == free_stat["usage_usec"]

    def test_sync_limits_picks_up_writes_made_after_spawn(self, machine,
                                                          syscalls):
        syscalls.mkdir("/sys/fs/cgroup/late")
        worker = machine.spawn_host_process(["/usr/bin/late-proc"])
        machine.kernel.cgroups.attach(worker.process.pid, "/late")
        worker.makedirs("/scratch")
        controller = machine.kernel.cpu_controller()
        controller.spawn(worker.process,
                         self._workload(worker, "/scratch/f", records=64))
        # The group exists (spawn created it) with no quota; the write lands
        # before run() because run() re-syncs every mapped group.
        _cgroupfs_write(syscalls, "/sys/fs/cgroup/late/cpu.max", b"1000 10000")
        controller.run()
        assert _cpu_stat(syscalls, "/sys/fs/cgroup/late")["nr_throttled"] >= 1

    def test_cpu_weight_written_through_cgroupfs_biases_fairness(self, machine,
                                                                 syscalls):
        controller = machine.kernel.cpu_controller()
        for name, weight in (("gold", b"800"), ("bronze", b"100")):
            syscalls.mkdir(f"/sys/fs/cgroup/{name}")
            _cgroupfs_write(syscalls, f"/sys/fs/cgroup/{name}/cpu.weight",
                            weight)
            sc = machine.spawn_host_process([f"/usr/bin/{name}"])
            machine.kernel.cgroups.attach(sc.process.pid, f"/{name}")
            sc.makedirs(f"/{name}-scratch")
            controller.spawn(sc.process,
                             self._workload(sc, f"/{name}-scratch/f",
                                            records=256))
        controller.run(until_ns=machine.clock.now_ns + 10 * MS)
        gold = machine.kernel.cgroups.lookup("/gold").cpu_stats.usage_ns
        bronze = machine.kernel.cgroups.lookup("/bronze").cpu_stats.usage_ns
        assert gold > bronze * 2, (gold, bronze)


class TestCgroupfsCpuKnobs:
    """The cpu.* files: rendering, validation, read-only enforcement."""

    def test_default_renders(self, machine, syscalls):
        syscalls.mkdir("/sys/fs/cgroup/k")
        assert _cgroupfs_read(syscalls, "/sys/fs/cgroup/k/cpu.max") == \
            b"max 100000\n"
        assert _cgroupfs_read(syscalls, "/sys/fs/cgroup/k/cpu.weight") == \
            b"100\n"
        stat = _cpu_stat(syscalls, "/sys/fs/cgroup/k")
        assert set(stat) == {"usage_usec", "nr_periods", "nr_throttled",
                             "throttled_usec"}
        assert all(v == 0 for v in stat.values())

    def test_cpu_weight_round_trips_including_bounds(self, machine, syscalls):
        syscalls.mkdir("/sys/fs/cgroup/w")
        for value in (b"1", b"50", b"100", b"10000"):
            _cgroupfs_write(syscalls, "/sys/fs/cgroup/w/cpu.weight", value)
            assert _cgroupfs_read(syscalls, "/sys/fs/cgroup/w/cpu.weight") == \
                value + b"\n"
        limits = machine.kernel.cgroups.lookup("/w").limits
        assert limits.cpu_shares == cpu_shares_from_weight(10_000)

    def test_cpu_max_grammar(self, machine, syscalls):
        syscalls.mkdir("/sys/fs/cgroup/m")
        path = "/sys/fs/cgroup/m/cpu.max"
        _cgroupfs_write(syscalls, path, b"50000 100000")
        assert _cgroupfs_read(syscalls, path) == b"50000 100000\n"
        # Omitting the period keeps the current one.
        _cgroupfs_write(syscalls, path, b"25000")
        assert _cgroupfs_read(syscalls, path) == b"25000 100000\n"
        _cgroupfs_write(syscalls, path, b"2000 10000")
        assert _cgroupfs_read(syscalls, path) == b"2000 10000\n"
        # "max" clears the quota but keeps the period.
        _cgroupfs_write(syscalls, path, b"max")
        assert _cgroupfs_read(syscalls, path) == b"max 10000\n"
        limits = machine.kernel.cgroups.lookup("/m").limits
        assert limits.cpu_quota_us is None
        assert limits.cpu_period_us == 10_000

    @pytest.mark.parametrize("knob,payload", [
        ("cpu.weight", b"0"),
        ("cpu.weight", b"10001"),
        ("cpu.weight", b"-5"),
        ("cpu.weight", b"abc"),
        ("cpu.weight", b""),
        ("cpu.max", b""),
        ("cpu.max", b"999"),                 # quota below 1ms floor
        ("cpu.max", b"0"),
        ("cpu.max", b"50000 999"),           # period below 1ms floor
        ("cpu.max", b"50000 2000000"),       # period above 1s ceiling
        ("cpu.max", b"fast"),
        ("cpu.max", b"50000 fast"),
        ("cpu.max", b"1 2 3"),
    ])
    def test_malformed_writes_are_einval(self, machine, syscalls, knob,
                                         payload):
        syscalls.mkdir("/sys/fs/cgroup/bad")
        with pytest.raises(FsError) as exc:
            _cgroupfs_write(syscalls, f"/sys/fs/cgroup/bad/{knob}", payload)
        assert exc.value.errno == errno.EINVAL
        # A rejected write leaves the knobs at their defaults.
        assert _cgroupfs_read(syscalls, "/sys/fs/cgroup/bad/cpu.max") == \
            b"max 100000\n"
        assert _cgroupfs_read(syscalls, "/sys/fs/cgroup/bad/cpu.weight") == \
            b"100\n"

    def test_cpu_stat_is_read_only(self, machine, syscalls):
        syscalls.mkdir("/sys/fs/cgroup/ro")
        with pytest.raises(FsError) as exc:
            fd = syscalls.open("/sys/fs/cgroup/ro/cpu.stat", OpenFlags.O_WRONLY)
            try:
                syscalls.write(fd, b"usage_usec 0")
            finally:
                syscalls.close(fd)
        assert exc.value.errno == errno.EACCES

    def test_weight_shares_mapping_fixed_points(self):
        assert cpu_shares_from_weight(100) == 1024
        assert cpu_weight_from_shares(1024) == 100
        assert cpu_shares_from_weight(1) == 10       # kernel floor is 2
        assert cpu_weight_from_shares(2) == 1
        assert cpu_weight_from_shares(1 << 20) == 10_000
        for weight in range(1, 10_001):
            assert cpu_weight_from_shares(cpu_shares_from_weight(weight)) == \
                weight


class TestEngineLimitsPassThrough:
    """``docker run --cpus``-style limits land on the container's cgroup."""

    def test_cpu_limits_reach_the_container_cgroup(self, machine):
        docker = DockerEngine(machine)
        image = (ImageBuilder("app", "1.0")
                 .add_dir("/usr/sbin")
                 .add_file("/usr/sbin/app", size=10_000, mode=0o755)
                 .entrypoint("/usr/sbin/app").build())
        limits = CgroupLimits(cpu_quota_us=50_000,
                              cpu_shares=cpu_shares_from_weight(300))
        container = docker.run(image, name="capped", limits=limits)
        cgroup = machine.kernel.cgroups.cgroup_of(container.init_pid)
        assert cgroup.limits.cpu_quota_us == 50_000
        assert cgroup.limits.cpu_weight() == 300
        # The engine copies the limits, so mutating the caller's object
        # never retunes a running container.
        limits.cpu_quota_us = 1_000
        assert cgroup.limits.cpu_quota_us == 50_000

    def test_scheduler_enforces_engine_supplied_quota(self, machine):
        docker = DockerEngine(machine)
        image = (ImageBuilder("busy", "1.0")
                 .add_dir("/usr/sbin")
                 .add_file("/usr/sbin/busy", size=10_000, mode=0o755)
                 .entrypoint("/usr/sbin/busy").build())
        container = docker.run(
            image, name="throttled",
            limits=CgroupLimits(cpu_quota_us=1_000, cpu_period_us=10_000))
        init = container.init_process
        controller = machine.kernel.cpu_controller()
        clock = machine.clock

        def busy():
            for _ in range(50):
                clock.advance(100_000)
                yield None

        controller.spawn(init, busy, name="busy-loop")
        controller.run()
        cgroup = machine.kernel.cgroups.cgroup_of(init.pid)
        assert cgroup.cpu_stats.nr_throttled >= 1
        assert cgroup.cpu_stats.throttled_ns > 0


class TestFuseBackgroundQueue:
    """The bounded /dev/fuse queue behind ``max_background``."""

    def _hammer(self, env, mb=4):
        # Raise the dirty thresholds so the fsync flush submits the whole
        # file as one background burst instead of trickling 128KiB batches.
        for knob, value in (("dirty_background_bytes", 64 << 20),
                            ("dirty_bytes", 128 << 20)):
            fd = env.host_sc.open(f"/proc/sys/vm/{knob}", OpenFlags.O_WRONLY)
            env.host_sc.write(fd, f"{value}\n".encode())
            env.host_sc.close(fd)
        sc, base = env.cntr_access()
        sc.makedirs(f"{base}/q")
        fd = sc.open(f"{base}/q/data", OpenFlags.O_CREAT | OpenFlags.O_WRONLY,
                     0o644)
        chunk = b"q" * (64 << 10)
        for _ in range(mb << 4):
            sc.write(fd, chunk)
        sc.fsync(fd)
        sc.close(fd)
        return env.client.connection.queue_stats

    def test_default_queue_is_unmodelled(self):
        env = BenchEnvironment(page_cache_mb=64)
        stats = self._hammer(env)
        assert env.client.connection.max_background == 0
        assert stats.queued_total == 0
        assert stats.congestion_waits == 0
        assert stats.congestion_wait_ns == 0

    def test_congestion_threshold_derives_linux_default(self, machine,
                                                        syscalls):
        fd = syscalls.open("/dev/fuse", OpenFlags.O_RDWR)
        conn = syscalls.process.get_fd(fd).connection
        conn.configure_queue(12)
        assert conn.max_background == 12
        assert conn.congestion_threshold == 9
        conn.configure_queue(12, congestion_threshold=40)
        assert conn.congestion_threshold == 12    # clamped to max_background
        conn.configure_queue(0)
        assert conn.max_background == 0

    def test_bounded_queue_congests_under_backlog(self):
        options = FuseMountOptions.paper_defaults().with_overrides(
            max_background=12)
        env = BenchEnvironment(options=options, threads=1, page_cache_mb=64)
        stats = self._hammer(env)
        assert env.client.connection.max_background == 12
        assert stats.queued_total > 0
        assert stats.max_depth > 12
        assert stats.congestion_waits > 0
        assert stats.congestion_wait_ns > 0
        assert stats.drained_total <= stats.queued_total

    def test_more_server_threads_drain_congestion_faster(self):
        def wait_ns(threads):
            options = FuseMountOptions.paper_defaults().with_overrides(
                max_background=12)
            env = BenchEnvironment(options=options, threads=threads,
                                   page_cache_mb=64)
            return self._hammer(env).congestion_wait_ns

        assert wait_ns(8) < wait_ns(1)

    def test_dispatch_is_attributed_round_robin_to_workers(self):
        env = BenchEnvironment(threads=4, page_cache_mb=64)
        self._hammer(env, mb=1)
        per_worker = env.server.stats.per_worker
        assert len(per_worker) == 4
        assert sum(per_worker) == env.server.stats.handled
        assert all(count > 0 for count in per_worker)


class TestSchedulerDeterminism:
    """Same seed ⇒ identical trace, across runs and across interpreters."""

    SCENARIO = textwrap.dedent("""\
        import hashlib

        from repro.fs.constants import OpenFlags
        from repro.kernel.machine import boot
        from repro.sim.rng import DeterministicRandom

        machine = boot()
        admin = machine.spawn_host_process(["/usr/bin/admin"])
        controller = machine.kernel.cpu_controller(rng=DeterministicRandom(11))
        cpu_maxes = {"t0": b"2000 10000", "t1": None, "t2": b"5000 20000"}
        for name, cpu_max in sorted(cpu_maxes.items()):
            admin.mkdir(f"/sys/fs/cgroup/{name}")
            if cpu_max is not None:
                fd = admin.open(f"/sys/fs/cgroup/{name}/cpu.max",
                                OpenFlags.O_WRONLY)
                admin.write(fd, cpu_max)
                admin.close(fd)
            sc = machine.spawn_host_process([f"/usr/bin/{name}"])
            machine.kernel.cgroups.attach(sc.process.pid, f"/{name}")
            sc.makedirs(f"/{name}")

            def body(sc=sc, name=name):
                fd = sc.open(f"/{name}/f", OpenFlags.O_CREAT | OpenFlags.O_WRONLY,
                             0o644)
                yield None
                for _ in range(24):
                    sc.write(fd, b"z" * 65536)
                    yield None
                sc.fsync(fd)
                yield None
                sc.close(fd)

            controller.spawn(sc.process, body, name=name)
        stats = controller.run()
        digest = hashlib.sha256(",".join(stats.pick_trace).encode()).hexdigest()
        print(digest, machine.clock.now_ns, stats.picks, stats.context_switches)
        """)

    def _run_scenario_inline(self):
        namespace = {}
        import contextlib
        import io
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            exec(self.SCENARIO, namespace)  # noqa: S102 - test scenario
        return out.getvalue()

    def test_same_seed_identical_trace_across_fresh_runs(self):
        assert self._run_scenario_inline() == self._run_scenario_inline()

    def test_interleaving_is_hash_seed_independent(self):
        runs = [subprocess.run(
            [sys.executable, "-c", self.SCENARIO], capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin",
                 "PYTHONHASHSEED": seed})
            for seed in ("1", "2")]
        assert all(r.returncode == 0 for r in runs), \
            runs[0].stderr + runs[1].stderr
        assert runs[0].stdout == runs[1].stdout
        assert runs[0].stdout.strip()
