"""Tests for the Docker-Slim analogue, the catalogue and the benchmark harness."""

import pytest

from repro.bench.harness import BenchEnvironment, figure5_docker_slim, run_comparison
from repro.bench.phoronix import ALL_WORKLOADS, CompilebenchRead, Fio, workload_by_name
from repro.container import DockerEngine
from repro.slim import DockerSlim, TOP50_CATALOGUE, build_catalogue_image
from repro.slim.catalogue import catalogue_summary, hot_paths_of
from repro.slim.tracker import AccessTracker, TrackedSyscalls


class TestCatalogue:
    def test_fifty_images(self):
        assert len(TOP50_CATALOGUE) == 50

    def test_aggregate_statistics_match_paper(self):
        stats = catalogue_summary()
        assert stats["mean_reduction"] == pytest.approx(66.6, abs=1.5)
        assert stats["below_10_percent"] == 6
        assert stats["between_60_and_97"] / 50 >= 0.75

    def test_catalogue_image_materialisation(self):
        entry = TOP50_CATALOGUE[0]
        image = build_catalogue_image(entry, max_files=200)
        assert abs(image.size_bytes - entry.total_size_bytes) / entry.total_size_bytes < 0.05
        assert image.config.entrypoint == (entry.entrypoint,)
        assert hot_paths_of(image)


class TestDockerSlim:
    def test_static_analysis_matches_expected_reduction(self):
        slimmer = DockerSlim()
        for entry in TOP50_CATALOGUE[:5]:
            image = build_catalogue_image(entry, max_files=300)
            report = slimmer.analyze_static(image)
            assert report.reduction_percent == pytest.approx(
                entry.expected_reduction_percent, abs=3.0)

    def test_slim_image_keeps_entrypoint_and_drops_tools(self):
        slimmer = DockerSlim()
        entry = next(e for e in TOP50_CATALOGUE if e.name == "nginx")
        image = build_catalogue_image(entry, max_files=300)
        report = slimmer.analyze_static(image)
        slim_image = slimmer.build_slim_image(image, report.accessed_paths)
        flat = slim_image.flatten()
        assert entry.entrypoint in flat
        assert report.slim_files < report.original_files
        assert report.dropped_tools          # auxiliary tools were removed

    def test_dynamic_analysis_through_container(self, machine):
        docker = DockerEngine(machine)
        entry = next(e for e in TOP50_CATALOGUE if e.name == "redis")
        image = build_catalogue_image(entry, max_files=60)
        slimmer = DockerSlim()
        report = slimmer.analyze_dynamic(docker, image, container_name="slim-probe")
        assert report.reduction_percent > 50
        assert entry.entrypoint in report.accessed_paths

    def test_access_tracker_records_reads(self, machine, syscalls):
        tracker = AccessTracker()
        tracked = TrackedSyscalls(syscalls, tracker)
        tracked.touch_all(["/etc/hostname", "/etc/passwd", "/does/not/exist"])
        assert "/etc/hostname" in tracker.accessed_paths()
        assert "/does/not/exist" not in tracker.accessed_paths()
        record = next(r for r in tracker.records() if r.path == "/etc/hostname")
        assert record.reads >= 1 and record.bytes_read > 0


class TestFigure5:
    def test_figure5_reproduces_paper_aggregates(self):
        result = figure5_docker_slim(max_files=120)
        assert len(result.reports) == 50
        assert result.mean_reduction == pytest.approx(66.6, abs=3.0)
        assert result.count_below(10.0) == 6
        assert result.count_between(60.0, 97.0) / 50 >= 0.75
        assert sum(result.histogram().values()) == 50


class TestBenchHarness:
    def test_environment_provides_both_access_paths(self):
        env = BenchEnvironment()
        native_sc, native_base = env.native_access()
        cntr_sc, cntr_base = env.cntr_access()
        from repro.fs.constants import OpenFlags
        fd = native_sc.open(f"{native_base}/shared.txt",
                            OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        native_sc.write(fd, b"visible on both paths")
        native_sc.close(fd)
        # Benchmark environments run with store_data=False, so compare
        # metadata rather than content: same file, same size, on both paths.
        assert cntr_sc.stat(f"{cntr_base}/shared.txt").st_size == \
            native_sc.stat(f"{native_base}/shared.txt").st_size == \
            len(b"visible on both paths")

    def test_workload_registry(self):
        assert len(ALL_WORKLOADS) == 20
        assert workload_by_name("PostMark").paper_overhead == pytest.approx(7.1)
        with pytest.raises(KeyError):
            workload_by_name("not-a-benchmark")

    def test_lookup_heavy_workload_shows_large_overhead(self):
        result = run_comparison(CompilebenchRead())
        assert result.overhead > 2.0, "compilebench read-tree must be a worst case"
        assert result.agrees_with_paper_direction()

    def test_writeback_friendly_workload_is_not_slower(self):
        result = run_comparison(Fio())
        assert result.overhead < 1.6

    def test_comparison_measures_positive_durations(self):
        result = run_comparison(workload_by_name("Gzip"))
        assert result.native_ns > 0 and result.cntr_ns > 0
