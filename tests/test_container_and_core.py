"""Tests for the container engines and the Cntr attach workflow."""

import pytest

from repro.container import (
    DockerEngine,
    ImageBuilder,
    LxcEngine,
    NspawnEngine,
    Registry,
    RktEngine,
)
from repro.container.engine import ContainerError
from repro.core import AttachOptions, attach, gather_context
from repro.core.attach import APPLICATION_MOUNTPOINT
from repro.core.inventory import component_inventory
from repro.kernel.namespaces import NamespaceKind


def make_app_image(name="webapp"):
    return (ImageBuilder(name, "1.0")
            .add_dir("/usr/sbin")
            .add_file("/usr/sbin/webapp", size=5_000_000, mode=0o755)
            .add_file("/etc/passwd", content="root:x:0:0:root:/root:/bin/sh\n")
            .add_file("/etc/webapp.conf", content="port = 8080\n")
            .entrypoint("/usr/sbin/webapp")
            .env("APP_MODE", "production")
            .expose(8080)
            .build())


def make_tools_image():
    return (ImageBuilder("debug-tools", "latest")
            .add_dir("/usr/bin")
            .add_file("/usr/bin/gdb", size=8_500_000, mode=0o755)
            .add_file("/usr/bin/strace", size=1_600_000, mode=0o755)
            .add_file("/bin/bash", size=1_100_000, mode=0o755)
            .entrypoint("/bin/bash")
            .build())


class TestImagesAndRegistry:
    def test_builder_layers_and_size(self):
        image = make_app_image()
        assert image.size_bytes > 5_000_000
        assert image.file_count >= 3
        assert image.config.entrypoint == ("/usr/sbin/webapp",)
        assert dict(image.config.env)["APP_MODE"] == "production"

    def test_whiteout_removes_lower_layer_files(self):
        base = (ImageBuilder("base").add_file("/usr/share/doc/manual", size=1000)
                .add_file("/usr/bin/tool", size=500).build())
        derived = (ImageBuilder("derived", base=base).new_layer()
                   .remove("/usr/share/doc/manual").build())
        flat = derived.flatten()
        assert "/usr/share/doc/manual" not in flat
        assert "/usr/bin/tool" in flat

    def test_registry_pull_charges_deploy_time(self, machine):
        registry = Registry(machine.clock)
        registry.push(make_app_image())
        before = machine.clock.now_ns
        result = registry.pull("webapp:1.0")
        assert result.bytes_transferred > 0
        assert machine.clock.now_ns > before

    def test_registry_layer_cache_makes_second_pull_cheap(self, machine):
        registry = Registry(machine.clock)
        registry.push(make_app_image())
        cache: set[str] = set()
        first = registry.pull("webapp:1.0", cache)
        second = registry.pull("webapp:1.0", cache)
        assert second.bytes_transferred == 0
        assert second.duration_ns < first.duration_ns

    def test_smaller_image_deploys_faster(self, machine):
        registry = Registry(machine.clock)
        fat = make_app_image("fat-app")
        slim = (ImageBuilder("slim-app", "1.0")
                .add_file("/usr/sbin/webapp", size=500_000, mode=0o755)
                .entrypoint("/usr/sbin/webapp").build())
        registry.push(fat)
        registry.push(slim)
        assert registry.estimate_deploy_time_s("slim-app:1.0") < \
            registry.estimate_deploy_time_s("fat-app:1.0")


class TestEngines:
    def test_docker_run_and_resolve(self, machine):
        docker = DockerEngine(machine)
        docker.load_image(make_app_image())
        container = docker.run(docker.image("webapp:1.0"), name="web")
        assert container.status == "running"
        assert docker.resolve_name_to_pid("web") == container.init_pid
        assert docker.inspect("web")["State"]["Running"] is True

    def test_container_is_isolated_from_host(self, machine):
        docker = DockerEngine(machine)
        container = docker.run(make_app_image(), name="isolated")
        csc = docker.exec_in_container(container, ["/bin/sh"])
        assert not csc.exists("/usr/bin/gdb")          # host tools invisible
        assert csc.exists("/usr/sbin/webapp")
        assert csc.gethostname() != machine.syscalls.gethostname()
        assert not csc.process.caps.has("CAP_SYS_ADMIN")

    def test_container_env_and_cgroup(self, machine):
        docker = DockerEngine(machine)
        container = docker.run(make_app_image(), name="env-test",
                               env={"EXTRA": "1"})
        init = container.init_process
        assert init.env["APP_MODE"] == "production"
        assert init.env["EXTRA"] == "1"
        assert machine.kernel.cgroups.cgroup_of(init.pid).path.startswith("/docker/")

    def test_stop_and_remove(self, machine):
        docker = DockerEngine(machine)
        container = docker.run(make_app_image(), name="short-lived")
        pid = container.init_pid
        docker.stop(container)
        assert container.status == "exited"
        assert pid not in machine.kernel.processes
        docker.remove(container)
        with pytest.raises(ContainerError):
            docker.find("short-lived")

    def test_lxc_requires_explicit_name(self, machine):
        lxc = LxcEngine(machine)
        with pytest.raises(ContainerError):
            lxc.create(make_app_image())
        container = lxc.run(make_app_image(), name="lxc-app")
        assert lxc.lxc_info("lxc-app")["State"] == "RUNNING"
        assert lxc.resolve_name_to_pid("lxc-app") == container.init_pid

    def test_rkt_pod_uuid_resolution(self, machine):
        rkt = RktEngine(machine)
        container = rkt.run(make_app_image(), name="rkt-app")
        uuid = rkt.pod_uuid(container)
        assert rkt.resolve_name_to_pid(uuid[:13]) == container.init_pid

    def test_nspawn_machinectl(self, machine):
        nspawn = NspawnEngine(machine)
        container = nspawn.run(make_app_image())
        props = nspawn.machinectl_show(container.name)
        assert props["Leader"] == str(container.init_pid)
        assert nspawn.resolve_name_to_pid(container.name) == container.init_pid

    def test_all_engines_share_resolution_interface(self, machine):
        engines = [DockerEngine(machine), LxcEngine(machine), RktEngine(machine),
                   NspawnEngine(machine)]
        for i, engine in enumerate(engines):
            container = engine.run(make_app_image(f"multi{i}"), name=f"multi-{i}")
            assert engine.resolve_name_to_pid(f"multi-{i}") == container.init_pid


class TestContextGathering:
    def test_gather_context_reads_proc(self, machine):
        docker = DockerEngine(machine)
        container = docker.run(make_app_image(), name="ctx")
        context = gather_context(machine, container.init_pid)
        assert context.environment["APP_MODE"] == "production"
        assert context.cgroup_path.startswith("/docker/")
        assert "CAP_SYS_ADMIN" not in context.effective_capabilities
        assert "CAP_CHOWN" in context.effective_capabilities
        assert context.namespaces[NamespaceKind.MNT] != \
            machine.syscalls.readlink("/proc/1/ns/mnt")
        assert context.lsm_profile == "docker-default"


class TestAttach:
    def _setup(self, machine, with_tools_container=False):
        docker = DockerEngine(machine)
        app = docker.run(make_app_image(), name="app")
        tools = None
        if with_tools_container:
            tools = docker.run(make_tools_image(), name="tools")
        return docker, app, tools

    def test_attach_exposes_host_tools_and_app_files(self, machine):
        docker, app, _ = self._setup(machine)
        session = attach(machine, docker, "app")
        sc = session.shell_syscalls
        assert sc.exists("/usr/bin/gdb")                       # host tool via CntrFS
        assert sc.exists(f"{APPLICATION_MOUNTPOINT}/etc/webapp.conf")
        assert sc.read(sc.open(f"{APPLICATION_MOUNTPOINT}/etc/webapp.conf"), 100) \
            == b"port = 8080\n"
        session.detach()

    def test_attach_preserves_container_identity(self, machine):
        docker, app, _ = self._setup(machine)
        session = attach(machine, docker, "app")
        proc = session.shell_process
        # Same environment (except PATH), same cgroup, container capabilities.
        assert proc.env["APP_MODE"] == "production"
        assert proc.env["PATH"] == machine.init.env["PATH"]
        assert machine.kernel.cgroups.cgroup_of(session.nested_process.pid).path == \
            machine.kernel.cgroups.cgroup_of(app.init_pid).path
        assert not session.nested_process.caps.has("CAP_SYS_ADMIN")
        session.detach()

    def test_attach_does_not_leak_mounts_into_container(self, machine):
        docker, app, _ = self._setup(machine)
        mounts_before = len(app.init_process.mnt_ns.mounts)
        session = attach(machine, docker, "app")
        assert len(app.init_process.mnt_ns.mounts) == mounts_before
        app_sc = docker.exec_in_container(app, ["/bin/sh"])
        assert not app_sc.exists("/usr/bin/gdb")
        session.detach()

    def test_attach_with_fat_container(self, machine):
        docker, app, tools = self._setup(machine, with_tools_container=True)
        session = attach(machine, docker, "app",
                         options=AttachOptions(fat_container="tools"))
        sc = session.shell_syscalls
        assert sc.exists("/usr/bin/strace")        # from the fat image
        assert not sc.exists("/usr/bin/vim")       # host tool, not in fat image
        assert sc.exists(f"{APPLICATION_MOUNTPOINT}/usr/sbin/webapp")
        session.detach()

    def test_exec_tool_loads_binary_through_fuse(self, machine):
        docker, app, _ = self._setup(machine)
        session = attach(machine, docker, "app")
        requests_before = session.client_fs.connection.stats.requests_total
        tool_sc = session.exec_tool("gdb")
        assert tool_sc.process.argv[0] == "/usr/bin/gdb"
        assert session.client_fs.connection.stats.requests_total > requests_before
        # The tool can see the application's /proc (bind-mounted).
        assert tool_sc.exists(f"/proc/{app.init_process.vpid()}") or \
            tool_sc.exists("/proc")
        session.detach()

    def test_attach_by_pid_without_engine_lookup(self, machine):
        docker, app, _ = self._setup(machine)
        session = attach(machine, docker, pid=app.init_pid)
        assert session.shell_syscalls.exists(APPLICATION_MOUNTPOINT)
        session.detach()

    def test_pty_forwarding(self, machine):
        docker, app, _ = self._setup(machine)
        session = attach(machine, docker, "app")
        shell_sc = session.shell_syscalls
        session.pty_forwarder.terminal.type("ls /usr/bin\n")
        session.pump_io()
        assert shell_sc.read(0, 100) == b"ls /usr/bin\n"     # shell stdin
        shell_sc.write(1, b"gdb strace vim\n")               # shell stdout
        session.pump_io()
        assert session.pty_forwarder.terminal.read_output() == b"gdb strace vim\n"
        session.detach()

    def test_socket_proxy_forwards_to_host_service(self, machine):
        docker, app, _ = self._setup(machine)
        # A fake X11 server listening on the host.
        host_x = machine.spawn_host_process(["/usr/bin/Xorg"])
        host_x.makedirs("/tmp/.X11-unix")
        x_listener_fd = host_x.unix_listen("/tmp/.X11-unix/X0")
        session = attach(machine, docker, "app",
                         options=AttachOptions(forward_sockets=("/tmp/.X11-unix/X0",)))
        # The application inside the container connects to its own /tmp socket.
        app_sc = docker.exec_in_container(app, ["/usr/sbin/webapp"])
        client_fd = app_sc.unix_connect("/tmp/.X11-unix/X0")
        session.pump_io()
        server_conn = host_x.unix_accept(x_listener_fd)
        app_sc.write(client_fd, b"x11 handshake")
        session.pump_io()
        assert host_x.read(server_conn, 100) == b"x11 handshake"
        session.detach()

    def test_detach_cleans_up_processes(self, machine):
        docker, app, _ = self._setup(machine)
        session = attach(machine, docker, "app")
        pids = [session.shell_process.pid, session.nested_process.pid,
                session.cntr_process.pid]
        session.detach()
        for pid in pids:
            assert pid not in machine.kernel.processes
        # idempotent
        session.detach()


class TestInventory:
    def test_component_inventory_covers_all_components(self):
        rows = component_inventory()
        assert {r.name for r in rows} == {"container engine", "cntrfs",
                                          "pseudo tty", "socket proxy"}
        assert all(r.repro_loc > 0 for r in rows)
