"""The observability layer: PSI accounting, tracepoints and the trace CLI.

Four contracts are locked down here (see PERFORMANCE.md "Observability"):

* **exact decomposition** — PSI totals are task-stall time summed straight
  from the stall sites, so ``total=`` decomposes to the nanosecond against
  the per-subsystem counters (the xfstests ``psi`` group asserts each
  resource; here the primitives are pinned: full ⊆ some, bucketed
  rectangular averages, deterministic rendering).
* **zero virtual cost** — accounting and reading pressure never advance the
  virtual clock: an instrumented run (PSI renders, vmstat, tracer summaries
  interleaved everywhere, no subscribers attached) is byte-identical in
  virtual time to an uninstrumented one.
* **deterministic ordering** — ``Tracer.summary()`` breaks cost ties by key,
  so equal-cost tracepoints render in the same order regardless of
  insertion order or interpreter hash seed.
* **snapshot safety** — the PSI registry, its cgroup-chain resolver and
  attached subscribers survive :meth:`Kernel.snapshot`/fork, and forked
  clones account independently.
"""

from __future__ import annotations

import pytest

from repro.fs.constants import OpenFlags
from repro.kernel.machine import boot
from repro.sim.clock import VirtualClock
from repro.sim.psi import (
    BUCKET_NS,
    PSI_RESOURCES,
    PSI_WINDOWS_S,
    PsiGroup,
    PsiRegistry,
    PsiStallTracker,
)
from repro.sim.trace import Tracer
from repro.trace import (
    TraceCollector,
    parse_vmstat,
    psi_sample,
    smoke_workloads,
    workload_registry,
    workload_slug,
)

CREAT_WR = OpenFlags.O_CREAT | OpenFlags.O_WRONLY


# ---------------------------------------------------------------------------
# PSI primitives
# ---------------------------------------------------------------------------
class TestPsiStallTracker:
    def test_full_is_a_subset_of_some(self):
        tracker = PsiStallTracker()
        tracker.account(1_000_000, 500_000)
        tracker.account(2_000_000, 250_000, full=True)
        assert tracker.total_some_ns == 750_000
        assert tracker.total_full_ns == 250_000
        assert tracker.total_full_ns <= tracker.total_some_ns

    def test_non_positive_deltas_are_ignored(self):
        tracker = PsiStallTracker()
        tracker.account(1_000_000, 0)
        tracker.account(1_000_000, -5)
        assert tracker.total_some_ns == 0
        assert tracker.render(1_000_000) == (
            "some avg10=0.00 avg60=0.00 avg300=0.00 total=0\n"
            "full avg10=0.00 avg60=0.00 avg300=0.00 total=0\n")

    def test_rectangular_average_is_exact(self):
        tracker = PsiStallTracker()
        # 500ms stalled inside the first virtual second: 5.00% of a 10s
        # window, 0.83% of 60s, 0.16% of 300s — pure integer arithmetic.
        tracker.account(BUCKET_NS, 500_000_000)
        line = tracker.render(BUCKET_NS).splitlines()[0]
        assert line == "some avg10=5.00 avg60=0.83 avg300=0.16 total=500000"

    def test_stall_spreads_across_buckets(self):
        tracker = PsiStallTracker()
        # A 2s stall ending at t=3s spans buckets 1 and 2 entirely.
        tracker.account(3 * BUCKET_NS, 2 * BUCKET_NS)
        assert tracker._some == {1: BUCKET_NS, 2: BUCKET_NS}

    def test_averages_cap_at_one_hundred(self):
        tracker = PsiStallTracker()
        # Overlapping stalls can exceed wall time; the average stays capped.
        for _ in range(3):
            tracker.account(10 * BUCKET_NS, 10 * BUCKET_NS)
        line = tracker.render(10 * BUCKET_NS).splitlines()[0]
        assert line.startswith("some avg10=100.00")

    def test_history_is_pruned_beyond_the_largest_window(self):
        tracker = PsiStallTracker()
        tracker.account(BUCKET_NS, 100)
        far_future = (max(PSI_WINDOWS_S) + 10) * BUCKET_NS
        tracker.account(far_future, 100)
        assert len(tracker._some) == 1
        # The total is monotonic even after the history window slid past.
        assert tracker.total_some_ns == 200

    def test_same_history_renders_the_same_bytes(self):
        a, b = PsiStallTracker(), PsiStallTracker()
        for tracker in (a, b):
            tracker.account(1_500_000_000, 400_000_000)
            tracker.account(2_500_000_000, 100_000_000, full=True)
        assert a.render(3 * BUCKET_NS) == b.render(3 * BUCKET_NS)


class TestPsiRegistry:
    def test_accounts_system_and_explicit_groups(self):
        clock = VirtualClock()
        registry = PsiRegistry(clock)
        group = PsiGroup()
        clock.advance(1_000_000)
        registry.account("io", 250_000, groups=(group,))
        assert registry.system.tracker("io").total_some_ns == 250_000
        assert group.tracker("io").total_some_ns == 250_000

    def test_resolves_current_groups_when_unspecified(self):
        clock = VirtualClock()
        registry = PsiRegistry(clock)
        chain = (PsiGroup(), PsiGroup())
        registry.current_groups = lambda: chain
        registry.account("memory", 123_456, full=True)
        for group in chain:
            assert group.tracker("memory").total_full_ns == 123_456

    def test_accounting_never_touches_the_clock(self):
        clock = VirtualClock()
        registry = PsiRegistry(clock)
        clock.advance(5_000)
        before = clock.now_ns
        registry.account("cpu", 1_000_000)
        registry.system.render("cpu", clock.now_ns)
        assert clock.now_ns == before

    def test_unknown_resource_raises(self):
        registry = PsiRegistry(VirtualClock())
        with pytest.raises(KeyError):
            registry.account("network", 1_000)


# ---------------------------------------------------------------------------
# Tracer ordering and gating
# ---------------------------------------------------------------------------
class TestTracerSummary:
    def _tracer_with(self, order):
        tracer = Tracer(enabled=True)
        for key in order:
            tracer.emit(1_000, key, cost_ns=7_000)
        return tracer

    def test_equal_costs_tie_break_by_key(self):
        forward = self._tracer_with(["b.two", "a.one", "c.three"])
        rows = forward.summary()
        assert [row[0] for row in rows] == ["a.one", "b.two", "c.three"]

    def test_summary_is_insertion_order_independent(self):
        forward = self._tracer_with(["b.two", "a.one", "c.three"])
        backward = self._tracer_with(["c.three", "b.two", "a.one"])
        assert forward.summary() == backward.summary()

    def test_higher_cost_still_sorts_first(self):
        tracer = Tracer(enabled=True)
        tracer.emit(1_000, "a.cheap", cost_ns=10)
        tracer.emit(2_000, "z.dear", cost_ns=1_000_000)
        assert [row[0] for row in tracer.summary()] == ["z.dear", "a.cheap"]


# ---------------------------------------------------------------------------
# Observational equivalence: reading pressure costs nothing
# ---------------------------------------------------------------------------
def _stall_heavy_workload(machine, observe):
    """A workload crossing every stall site; ``observe()`` is interleaved
    between operations and must not change the virtual outcome."""
    kernel = machine.kernel
    sc = machine.spawn_host_process(["/usr/bin/workload"])
    sc.makedirs("/work")
    kernel.cgroups.create("/tenant")
    kernel.cgroups.lookup("/tenant").limits.memory_high_bytes = 64 << 10
    kernel.cgroups.attach(sc.process.pid, "/tenant")
    observe()
    fd = sc.open("/work/data", CREAT_WR, 0o644)
    for _ in range(4):
        sc.write(fd, b"W" * (64 << 10))
        observe()
    sc.fsync(fd)
    observe()
    sc.close(fd)
    sc.read(sc.open("/work/data", OpenFlags.O_RDONLY), 1 << 20)
    observe()
    return kernel.clock.now_ns


@pytest.mark.parametrize("spin", [1, 3])
def test_reading_pressure_is_observationally_free(spin):
    """An instrumented run — PSI renders, vmstat, tracer summaries read
    ``spin`` times between every operation, no subscribers attached — ends
    at byte-identical virtual time and byte-identical pressure files."""
    def noop():
        pass

    machines = {}
    for label in ("plain", "observed"):
        machine = boot()
        kernel = machine.kernel

        def observe(kernel=kernel, enabled=label == "observed"):
            if not enabled:
                return
            now = kernel.clock.now_ns
            for _ in range(spin):
                for resource in PSI_RESOURCES:
                    kernel.psi.system.render(resource, now)
                kernel.vm.vmstat_text()
                kernel.tracer.summary()
                kernel.tracer.counts_by_key()
                psi_sample(kernel)

        machines[label] = (machine, _stall_heavy_workload(machine, observe))

    plain_machine, plain_ns = machines["plain"]
    observed_machine, observed_ns = machines["observed"]
    assert observed_ns == plain_ns
    now = plain_machine.kernel.clock.now_ns
    for resource in PSI_RESOURCES:
        assert (observed_machine.kernel.psi.system.render(resource, now)
                == plain_machine.kernel.psi.system.render(resource, now))
    assert (observed_machine.kernel.vm.vmstat_text()
            == plain_machine.kernel.vm.vmstat_text())


def test_memory_stalls_actually_accrued_above():
    """Guard for the equivalence test: the workload it runs is genuinely
    stall-heavy (else the byte-identical claim would be vacuous)."""
    machine = boot()
    _stall_heavy_workload(machine, lambda: None)
    tracker = machine.kernel.psi.system.tracker("memory")
    assert tracker.total_some_ns > 0


# ---------------------------------------------------------------------------
# Snapshot / fork safety
# ---------------------------------------------------------------------------
def test_psi_and_subscribers_survive_snapshot_fork():
    machine = boot()
    kernel = machine.kernel
    collector = TraceCollector()
    kernel.tracer.attach("writeback.flush", collector)
    kernel.psi.account("io", 42_000)

    snap = kernel.snapshot(machine)
    _forked_kernel, (forked_machine,) = snap.fork()
    forked = forked_machine.kernel
    assert forked.psi.system.tracker("io").total_some_ns == 42_000
    # The forked registry resolves cgroup chains against the forked kernel.
    assert forked.psi.current_groups.kernel is forked
    # Forked accounting does not leak back into the original.
    forked.psi.account("io", 8_000)
    assert kernel.psi.system.tracker("io").total_some_ns == 42_000
    assert forked.psi.system.tracker("io").total_some_ns == 50_000
    # The attached subscriber was cloned and stays functional: the forked
    # clone sees forked events, the original never does.
    forked.tracer.emit(1, "writeback.flush", cost_ns=5)
    forked_collector = forked.tracer._subscribers["writeback.flush"][0].callback
    assert forked_collector is not collector
    assert forked_collector.counts == {"writeback.flush": 1}
    assert collector.counts == {}


# ---------------------------------------------------------------------------
# repro.trace CLI plumbing
# ---------------------------------------------------------------------------
class TestTraceCli:
    def test_workload_slug(self):
        assert workload_slug("IOzone: Write") == "iozone-write"
        assert workload_slug("Sqlite 3.7") == "sqlite-37"

    def test_registry_covers_all_workloads(self):
        registry = workload_registry()
        assert "iozone-write" in registry
        assert all(slug == workload_slug(w.name)
                   for slug, w in registry.items())

    def test_parse_vmstat_roundtrip(self):
        parsed = parse_vmstat("nr_dirty 3\npgfault 17\n")
        assert parsed == {"nr_dirty": 3, "pgfault": 17}

    def test_smoke_workloads_are_small_and_fixed(self):
        pair = smoke_workloads()
        assert [w.size for w in pair] == [4 << 20, 4 << 20]

    def test_smoke_run_passes_its_own_invariants(self, tmp_path, capsys):
        from repro.trace.__main__ import main

        out = tmp_path / "report.json"
        assert main(["--smoke", "--output", str(out)]) == 0
        import json

        payload = json.loads(out.read_text())
        assert payload["problems"] == []
        report = payload["reports"][0]
        assert report["tracepoints"] == report["subscriber"]
        assert "fuse.dispatch" in report["tracepoints"]
        assert report["virtual_ns"] > 0
        phases = [entry["phase"] for entry in report["psi"]["timeline"]]
        assert phases == ["boot", "prepared", "ran"]

    def test_trace_module_is_wallclock_allowlisted(self):
        from repro.analyze.core import DEFAULT_CONFIG

        assert "repro.trace.__main__" in DEFAULT_CONFIG.wallclock_allow
        assert "repro.trace" in DEFAULT_CONFIG.layers
        patterns = DEFAULT_CONFIG.zero_cost
        assert any(p.startswith("PsiStallTracker") for p in patterns)
        assert any(p.startswith("Tracer") for p in patterns)
