"""Snapshot/fork isolation and equivalence properties.

The raw-speed program replaced ~200 fresh boots per run with
``Kernel.snapshot()`` + per-case forks, so the whole test pyramid now rests
on two properties:

* **Isolation** — mutating a fork (files, page caches, sysctl knobs,
  cgroups, the clock, RNG streams) and discarding it leaves the parent
  observationally identical, on the native machine and through a CntrFS
  mount alike;
* **Equivalence** — a forked boot is observationally identical to a fresh
  boot, so harnesses may substitute one for the other freely.

Observations read simulator state directly (clock, meminfo text, page-cache
contents and LRU order, cgroup accounting, writeback pending, inode tables)
rather than through syscalls, which would themselves charge virtual time
and perturb what is being compared.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fs.constants import OpenFlags
from repro.kernel.machine import boot, boot_forked
from repro.sim.rng import DeterministicRandom

CREAT_WR = OpenFlags.O_CREAT | OpenFlags.O_WRONLY


def _cgroup_digest(cg) -> list[tuple]:
    out = [(cg.path, cg.mem_cache_bytes, cg.mem_dirty_bytes,
            cg.stats_memory_peak, tuple(sorted(cg.procs)))]
    for name in sorted(cg.children):
        out.extend(_cgroup_digest(cg.children[name]))
    return out


def _fs_digest(fs) -> tuple:
    cache = fs.page_cache
    stats = cache.stats
    inodes = tuple(sorted(
        (ino, inode.mode, inode.nlink, inode.size)
        for ino, inode in fs._inodes.items()))  # noqa: SLF001
    return (inodes,
            tuple(sorted(cache.resident_pages().items())),
            tuple(cache.lru_order()),
            (stats.hits, stats.misses, stats.evictions, stats.writebacks),
            fs.writeback.pending(),
            tuple(sorted(fs.writeback.pending_inodes())))


def _observe(kernel, *filesystems) -> tuple:
    return (kernel.clock.now_ns,
            kernel.vm.meminfo_text(),
            tuple(_cgroup_digest(kernel.cgroups.root)),
            tuple(_fs_digest(fs) for fs in filesystems))


#: One fork-side mutation: (kind, small-int parameters).
_mutations = st.lists(
    st.tuples(st.sampled_from(["write", "mkdir", "unlink", "advance",
                               "knob", "cgroup", "rng", "sync"]),
              st.integers(min_value=0, max_value=7),
              st.integers(min_value=1, max_value=64)),
    min_size=1, max_size=12)


def _apply(sc, clock, rng, base: str, ops) -> None:
    for kind, n, size in ops:
        try:
            if kind == "write":
                fd = sc.open(f"{base}/f{n}", CREAT_WR)
                sc.write(fd, b"m" * (size * 512))
                sc.close(fd)
            elif kind == "mkdir":
                sc.mkdir(f"{base}/d{n}")
            elif kind == "unlink":
                sc.unlink(f"{base}/f{n}")
            elif kind == "advance":
                clock.advance(size * 1_000_000)
            elif kind == "knob":
                fd = sc.open("/proc/sys/vm/dirty_writeback_centisecs",
                             OpenFlags.O_WRONLY)
                sc.write(fd, str(size).encode())
                sc.close(fd)
            elif kind == "cgroup":
                sc.kernel.cgroups.create(f"/forked/{n}")
            elif kind == "rng":
                rng.random()
            elif kind == "sync":
                sc.sync()
        except Exception:
            continue    # EEXIST/ENOENT from colliding ops are fine


class TestSnapshotForkIsolation:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=_mutations)
    def test_discarded_fork_leaves_native_parent_untouched(self, ops):
        machine = boot_forked()
        rng = DeterministicRandom("isolation")
        rng.random()                       # a stream position past the seed
        snap = machine.kernel.snapshot(machine, rng)
        before = _observe(machine.kernel, machine.rootfs)
        rng_state = rng.getstate()

        _kernel, (fork, fork_rng) = snap.fork()
        _apply(fork.syscalls, fork.clock, fork_rng, "/root", ops)
        mutated = any(k in ("write", "mkdir", "advance") for k, _, _ in ops)
        if mutated:
            assert _observe(fork.kernel, fork.rootfs) != before
        del fork, fork_rng

        assert _observe(machine.kernel, machine.rootfs) == before
        # The parent stream position (and substream derivation root) is
        # untouched by the fork's own draws.
        assert rng.getstate() == rng_state
        assert rng.substream("probe").initial_seed == \
            DeterministicRandom("isolation").substream("probe").initial_seed

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=_mutations)
    def test_discarded_fork_leaves_cntrfs_parent_untouched(self, ops):
        from repro.bench.harness import BenchEnvironment

        env = BenchEnvironment()
        kernel = env.machine.kernel
        snap = kernel.snapshot(env)
        before = _observe(kernel, env.backing, env.client,
                          env.machine.rootfs)

        _kernel, (fork_env,) = snap.fork()
        fork_sc, base = fork_env.cntr_access()
        _apply(fork_sc, fork_env.machine.clock, DeterministicRandom(0),
               base, ops)
        del fork_env

        assert _observe(kernel, env.backing, env.client,
                        env.machine.rootfs) == before


class TestSnapshotForkEquivalence:
    def test_forked_boot_equals_fresh_boot(self):
        fresh = boot()
        forked = boot_forked()
        assert _observe(fresh.kernel, fresh.rootfs) == \
            _observe(forked.kernel, forked.rootfs)

    def test_forks_are_independent_of_each_other(self):
        a = boot_forked()
        b = boot_forked()
        before = _observe(b.kernel, b.rootfs)
        fd = a.syscalls.open("/root/only-in-a", CREAT_WR)
        a.syscalls.write(fd, b"x" * 8192)
        a.syscalls.close(fd)
        assert _observe(b.kernel, b.rootfs) == before
        assert _observe(a.kernel, a.rootfs) != before

    def test_snapshot_is_immune_to_later_parent_mutation(self):
        machine = boot_forked()
        snap = machine.kernel.snapshot(machine)
        before = _observe(machine.kernel, machine.rootfs)
        fd = machine.syscalls.open("/root/parent-side", CREAT_WR)
        machine.syscalls.write(fd, b"p" * 4096)
        machine.syscalls.close(fd)
        _kernel, (clone,) = snap.fork()
        assert _observe(clone.kernel, clone.rootfs) == before
