"""Each observability xfstests case, individually, on both environments.

The aggregate suite runs inside ``tests/test_fuse_and_vfs.py`` and the CI
``xfstests`` job; this module additionally surfaces the observability wave —
the PSI pressure files, the nanosecond-exact stall decompositions, the
``/proc/vmstat`` + per-cgroup ``io.stat`` counters and the tracefs control
surface (generic/204-209) — as one pytest test per (case, environment)
pair, so a regression names the exact case and environment instead of a
pass-rate delta.
"""

from __future__ import annotations

import pytest

from repro.fs.errors import FsError
from repro.xfstests import harness
from repro.xfstests.generic import GENERIC_TESTS

#: The PSI / tracepoint / counter observability wave.
NEW_CASES = [case for case in GENERIC_TESTS if 204 <= case.number <= 209]


def test_the_new_surface_is_six_cases():
    assert len(NEW_CASES) == 6
    for case in NEW_CASES:
        assert "psi" in case.groups
        assert "auto" in case.groups and "quick" in case.groups


@pytest.fixture(scope="module", params=["native", "cntrfs"])
def xfs_env(request):
    if request.param == "native":
        return harness.native_environment()
    return harness.cntrfs_environment()


@pytest.mark.parametrize("case", NEW_CASES, ids=lambda case: case.test_id)
def test_generic_case(xfs_env, case):
    workdir = f"{xfs_env.test_dir}/{case.test_id.replace('/', '-')}-unit"
    try:
        xfs_env.sc.makedirs(workdir)
    except FsError:
        pass
    sandboxed = harness.TestEnvironment(
        name=xfs_env.name, machine=xfs_env.machine, sc=xfs_env.sc,
        test_dir=workdir, scratch_dir=xfs_env.scratch_dir,
        fs_under_test=xfs_env.fs_under_test, is_cntrfs=xfs_env.is_cntrfs)
    case.func(sandboxed)
