"""Each locks/crash/stress xfstests case, individually, on both environments.

The aggregate suite runs inside ``tests/test_fuse_and_vfs.py`` and the CI
``xfstests`` job; this module additionally surfaces the crash-consistency
wave — the POSIX byte-range lock cases (generic/151-165), the power-fail +
journal-replay cases (generic/166-185) and the seeded shadow-model stress
soups (generic/186-203) — as one pytest test per (case, environment) pair,
so a regression names the exact case and environment instead of a
pass-rate delta.
"""

from __future__ import annotations

import pytest

from repro.fs.errors import FsError
from repro.xfstests import harness
from repro.xfstests.generic import GENERIC_TESTS

#: The advisory-locking, power-fail and stress-soup conformance waves.
NEW_CASES = [case for case in GENERIC_TESTS if 151 <= case.number <= 203]


def test_the_new_surface_is_at_least_fortyfive_cases():
    assert len(NEW_CASES) >= 45
    groups = {group for case in NEW_CASES for group in case.groups}
    # The issue's coverage checklist: byte-range locks, crash durability
    # semantics and the seeded stress soups are all represented.
    assert {"locks", "crash", "stress"} <= groups
    by_group = {g: sum(1 for c in NEW_CASES if g in c.groups)
                for g in ("locks", "crash", "stress")}
    assert by_group["locks"] == 15
    assert by_group["crash"] == 20
    assert by_group["stress"] == 18


@pytest.fixture(scope="module", params=["native", "cntrfs"])
def xfs_env(request):
    if request.param == "native":
        return harness.native_environment()
    return harness.cntrfs_environment()


@pytest.mark.parametrize("case", NEW_CASES, ids=lambda case: case.test_id)
def test_generic_case(xfs_env, case):
    workdir = f"{xfs_env.test_dir}/{case.test_id.replace('/', '-')}-unit"
    try:
        xfs_env.sc.makedirs(workdir)
    except FsError:
        pass
    sandboxed = harness.TestEnvironment(
        name=xfs_env.name, machine=xfs_env.machine, sc=xfs_env.sc,
        test_dir=workdir, scratch_dir=xfs_env.scratch_dir,
        fs_under_test=xfs_env.fs_under_test, is_cntrfs=xfs_env.is_cntrfs)
    case.func(sandboxed)
