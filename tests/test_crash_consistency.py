"""Crash-consistency properties: clean shutdowns, no-op crashes, fuzzer
determinism and the crashed-engine timer lifecycle.

The per-case conformance surface lives in ``tests/test_xfstests_crash.py``;
this module pins the *invariants* of the power-fail engine:

* a clean shutdown (``sync`` then power-fail then remount) is byte-identical
  to never having remounted at all, on both environments;
* a crash with no dirty state anywhere is an observational no-op, however
  many times it happens;
* the seeded differential fuzzer is fully deterministic — same seed, same
  ops, same crash points, same state hashes;
* a crashed writeback engine never fires against the shared clock, and the
  remount re-arms it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.fs.constants import OpenFlags
from repro.stress import FsStress
from repro.xfstests import harness

CREAT_RW = OpenFlags.O_CREAT | OpenFlags.O_RDWR

#: (op, file index, offset, size) soups for the equivalence properties.
_fs_ops = st.lists(
    st.tuples(st.sampled_from(["write", "write", "write", "truncate",
                               "fsync", "unlink"]),
              st.integers(min_value=0, max_value=3),           # file index
              st.integers(min_value=0, max_value=16384),       # offset / size
              st.integers(min_value=1, max_value=4096)),       # write size
    min_size=1, max_size=30)


def _apply_ops(env, base: str, ops) -> dict[str, int]:
    """Drive the op soup against ``base``; returns the open fds by name."""
    fds: dict[str, int] = {}
    for kind, idx, offset, size in ops:
        name = f"f{idx}"
        path = f"{base}/{name}"
        if kind == "write":
            if name not in fds:
                fds[name] = env.sc.open(path, CREAT_RW, 0o644)
            env.sc.pwrite(fds[name], bytes([65 + idx]) * size, offset)
        elif kind == "truncate" and name in fds:
            env.sc.ftruncate(fds[name], offset)
        elif kind == "fsync" and name in fds:
            env.sc.fsync(fds[name])
        elif kind == "unlink" and name in fds:
            env.sc.close(fds.pop(name))
            env.sc.unlink(path)
    return fds


def _tree(env, base: str) -> dict[str, bytes]:
    return {name: env.read_file(f"{base}/{name}")
            for name in sorted(env.sc.listdir(base))}


def _cleanup(env, base: str, fds: dict[str, int]) -> None:
    for fd in fds.values():
        env.sc.close(fd)
    for name in env.sc.listdir(base):
        env.sc.unlink(f"{base}/{name}")
    env.sc.rmdir(base)
    env.make_durable()


@pytest.fixture(scope="module", params=["native", "cntrfs"])
def xfs_env(request):
    if request.param == "native":
        return harness.native_environment()
    return harness.cntrfs_environment()


class TestCleanShutdownEquivalence:
    """sync() + power-fail + remount must be byte-identical to never having
    remounted: a clean shutdown loses nothing, resurrects nothing."""

    _counter = [0]

    @given(_fs_ops)
    @settings(max_examples=60, deadline=None)
    def test_clean_shutdown_is_byte_identical(self, xfs_env, ops):
        self._counter[0] += 1
        base = xfs_env.path(f"clean-{self._counter[0]}")
        xfs_env.sc.makedirs(base)
        fds = _apply_ops(xfs_env, base, ops)
        for fd in fds.values():
            xfs_env.sc.close(fd)
        xfs_env.make_durable()
        before = _tree(xfs_env, base)
        xfs_env.power_fail()
        assert _tree(xfs_env, base) == before
        _cleanup(xfs_env, base, {})

    @given(_fs_ops, st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_crash_with_no_dirty_state_is_a_noop(self, xfs_env, ops, crashes):
        self._counter[0] += 1
        base = xfs_env.path(f"noop-{self._counter[0]}")
        xfs_env.sc.makedirs(base)
        fds = _apply_ops(xfs_env, base, ops)
        for fd in fds.values():
            xfs_env.sc.close(fd)
        xfs_env.make_durable()
        before = _tree(xfs_env, base)
        for _ in range(crashes):
            xfs_env.power_fail()
        assert _tree(xfs_env, base) == before
        _cleanup(xfs_env, base, {})


class TestFuzzerDeterminism:
    """The differential fuzzer is a reproducer: a seed names a run exactly."""

    def test_same_seed_same_trace(self):
        first = FsStress(42, ops_per_round=60, rounds=2).run()
        second = FsStress(42, ops_per_round=60, rounds=2).run()
        assert first.passed and second.passed
        assert first.state_trace == second.state_trace
        assert first.ops_applied == second.ops_applied
        assert first.crashes == second.crashes == 2

    def test_different_seeds_diverge_in_trace(self):
        a = FsStress(1, ops_per_round=60, rounds=1).run()
        b = FsStress(2, ops_per_round=60, rounds=1).run()
        assert a.passed and b.passed
        assert a.state_trace != b.state_trace

    def test_a_seed_range_runs_clean(self):
        for seed in range(1, 4):
            report = FsStress(seed, ops_per_round=80, rounds=2).run()
            assert report.passed, "\n".join(report.divergences)


class TestCrashedEngineTimers:
    """A crashed writeback engine must never fire against the shared clock
    (satellite b: the ClockTimer lifecycle audit made into a regression)."""

    def _armed_env_with_dirty_data(self):
        env = harness.native_environment()
        fd = env.sc.open("/proc/sys/vm/dirty_writeback_centisecs",
                         OpenFlags.O_WRONLY)
        try:
            env.sc.write(fd, b"5\n")
        finally:
            env.sc.close(fd)
        env.make_durable()   # pin testdir itself before the power goes out
        path = env.path("timer-victim")
        wfd = env.sc.open(path, CREAT_RW, 0o644)
        env.sc.write(wfd, b"t" * 8192)
        env.sc.process.fds.pop(wfd, None)     # power loss: no close, no flush
        return env

    def test_crash_disarms_and_remount_rearms(self):
        env = self._armed_env_with_dirty_data()
        engine = env.fs_under_test.writeback
        assert engine._flusher_timer is not None
        env.fs_under_test.crash()
        assert engine._flusher_timer is None
        flushes_before = dict(engine.stats.flushes_by_reason)
        # Whole seconds pass on the shared clock: a live kupdate timer would
        # have fired many times over.  A crashed engine must stay silent.
        env.machine.clock.advance(3_000_000_000)
        assert dict(engine.stats.flushes_by_reason) == flushes_before
        env.fs_under_test.remount()
        assert engine._flusher_timer is not None

    def test_rearmed_flusher_works_after_remount(self):
        env = self._armed_env_with_dirty_data()
        engine = env.fs_under_test.writeback
        env.fs_under_test.crash()
        env.fs_under_test.remount()
        path = env.path("timer-revenant")
        fd = env.sc.open(path, CREAT_RW, 0o644)
        env.sc.write(fd, b"r" * 8192)
        ino = env.sc.fstat(fd).st_ino
        assert engine.pending(ino) > 0
        env.machine.clock.advance(200_000_000)   # several 50ms periods
        assert engine.pending(ino) == 0, \
            "the re-armed kupdate timer writes back again"
        env.sc.close(fd)
