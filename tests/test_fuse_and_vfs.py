"""Tests for the VFS path layer and the FUSE client/CntrFS stack."""

import errno

import pytest

from repro.fs.constants import OpenFlags
from repro.fs.errors import FsError
from repro.fs.tmpfs import TmpFS
from repro.fuse.options import FuseMountOptions
from repro.fuse.protocol import FuseOpcode
from repro.xfstests.harness import cntrfs_environment, native_environment


class TestVfsThroughSyscalls:
    def test_bind_mount_shares_inodes(self, machine, syscalls):
        syscalls.makedirs("/srv/data")
        fd = syscalls.open("/srv/data/shared", OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.write(fd, b"one copy")
        syscalls.close(fd)
        syscalls.makedirs("/mnt/view")
        syscalls.bind_mount("/srv/data", "/mnt/view")
        assert syscalls.read(syscalls.open("/mnt/view/shared"), 100) == b"one copy"
        assert syscalls.stat("/mnt/view/shared").st_ino == \
            syscalls.stat("/srv/data/shared").st_ino

    def test_file_bind_mount(self, machine, syscalls):
        fd = syscalls.open("/etc/app-config", OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.write(fd, b"config-a")
        syscalls.close(fd)
        fd = syscalls.open("/etc/other-config", OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.write(fd, b"config-b")
        syscalls.close(fd)
        syscalls.bind_mount("/etc/app-config", "/etc/other-config")
        assert syscalls.read(syscalls.open("/etc/other-config"), 100) == b"config-a"

    def test_umount_busy_with_child_mounts(self, machine, syscalls):
        inner = TmpFS("inner", machine.kernel.clock, machine.kernel.costs)
        outer = TmpFS("outer", machine.kernel.clock, machine.kernel.costs)
        syscalls.makedirs("/mnt/outer")
        syscalls.mount(outer, "/mnt/outer")
        syscalls.makedirs("/mnt/outer/inner")
        syscalls.mount(inner, "/mnt/outer/inner")
        with pytest.raises(FsError) as exc:
            syscalls.umount("/mnt/outer")
        assert exc.value.errno == errno.EBUSY
        syscalls.umount("/mnt/outer/inner")
        syscalls.umount("/mnt/outer")

    def test_dotdot_crosses_mountpoints(self, machine, syscalls):
        extra = TmpFS("extra", machine.kernel.clock, machine.kernel.costs)
        syscalls.makedirs("/opt/app")
        syscalls.mount(extra, "/opt/app")
        syscalls.makedirs("/opt/app/deep")
        assert syscalls.stat("/opt/app/deep/../../..").st_ino == syscalls.stat("/").st_ino

    def test_rename_across_filesystems_is_exdev(self, machine, syscalls):
        fd = syscalls.open("/root/on-rootfs", OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.close(fd)
        with pytest.raises(FsError) as exc:
            syscalls.rename("/root/on-rootfs", "/tmp/on-tmpfs")
        assert exc.value.errno == errno.EXDEV

    def test_mount_propagation_private_vs_shared(self, machine, syscalls):
        from repro.kernel.namespaces import NamespaceKind
        # Host tree is shared (set up by boot); a cloned namespace receives
        # mounts made under shared mounts, but not after making it private.
        cloned = machine.spawn_host_process(["/usr/bin/cloned"])
        cloned.unshare(NamespaceKind.MNT)
        extra = TmpFS("propagated", machine.kernel.clock, machine.kernel.costs)
        machine.syscalls.makedirs("/srv/propagation-test")
        machine.syscalls.mount(extra, "/srv/propagation-test")
        assert any(m["mountpoint"] == "/srv/propagation-test"
                   for m in cloned.mount_table())
        # Now the private case: new namespace marked private sees nothing new.
        isolated = machine.spawn_host_process(["/usr/bin/isolated"])
        isolated.unshare(NamespaceKind.MNT)
        isolated.process.mnt_ns.make_all_private()
        extra2 = TmpFS("not-propagated", machine.kernel.clock, machine.kernel.costs)
        machine.syscalls.makedirs("/srv/private-test")
        machine.syscalls.mount(extra2, "/srv/private-test")
        assert not any(m["mountpoint"] == "/srv/private-test"
                       for m in isolated.mount_table())


@pytest.fixture(scope="module")
def cntr_env():
    """A CntrFS-over-tmpfs environment shared by the FUSE tests."""
    return cntrfs_environment()


class TestFuseStack:
    def test_basic_roundtrip_through_fuse(self, cntr_env):
        sc = cntr_env.sc
        path = f"{cntr_env.test_dir}/fuse-file"
        fd = sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_RDWR)
        sc.write(fd, b"through the FUSE boundary")
        sc.close(fd)
        assert sc.read(sc.open(path), 100) == b"through the FUSE boundary"

    def test_mkdir_and_listing_through_fuse(self, cntr_env):
        sc = cntr_env.sc
        base = f"{cntr_env.test_dir}/tree"
        sc.makedirs(f"{base}/a/b")
        fd = sc.open(f"{base}/a/b/leaf", OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        sc.close(fd)
        assert sc.listdir(f"{base}/a/b") == ["leaf"]

    def test_requests_are_counted(self, cntr_env):
        stats = cntr_env.fs_under_test.connection.stats
        before = stats.requests_total
        cntr_env.sc.stat(f"{cntr_env.test_dir}")
        assert stats.requests_total >= before

    def test_entry_cache_avoids_second_lookup(self, cntr_env):
        sc = cntr_env.sc
        client = cntr_env.fs_under_test
        path = f"{cntr_env.test_dir}/cached-entry"
        fd = sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        sc.close(fd)
        stats = client.connection.stats
        sc.stat(path)
        lookups_before = stats.requests_by_opcode.get("LOOKUP", 0)
        sc.stat(path)
        assert stats.requests_by_opcode.get("LOOKUP", 0) == lookups_before

    def test_o_direct_rejected(self, cntr_env):
        sc = cntr_env.sc
        path = f"{cntr_env.test_dir}/directio"
        fd = sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        sc.close(fd)
        with pytest.raises(FsError) as exc:
            sc.open(path, OpenFlags.O_RDONLY | OpenFlags.O_DIRECT)
        assert exc.value.errno == errno.EINVAL

    def test_xattrs_forwarded_to_backing_store(self, cntr_env):
        sc = cntr_env.sc
        path = f"{cntr_env.test_dir}/xattr-file"
        fd = sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        sc.close(fd)
        sc.setxattr(path, "user.origin", b"fuse")
        assert sc.getxattr(path, "user.origin") == b"fuse"
        assert "user.origin" in sc.listxattr(path)

    def test_writeback_flush_on_fsync(self, cntr_env):
        sc = cntr_env.sc
        client = cntr_env.fs_under_test
        path = f"{cntr_env.test_dir}/writeback"
        fd = sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        sc.write(fd, b"w" * 8192)
        assert client.writeback.total_pending > 0 \
            or client.options.writeback_cache is False
        sc.fsync(fd)
        assert client.writeback.total_pending == 0
        # Flushed inodes are popped, not left behind as zero entries.
        assert client.writeback.pending_inodes() == []
        sc.close(fd)

    def test_writeback_flush_pops_every_inode(self):
        """Many-file churn must not grow the pending map without bound."""
        env = cntrfs_environment()
        sc = env.sc
        client = env.fs_under_test
        base = f"{env.test_dir}/many"
        sc.makedirs(base)
        for i in range(20):
            fd = sc.open(f"{base}/f{i}", OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
            sc.write(fd, b"w" * 4096)
            sc.close(fd)
        assert client.writeback.pending_inodes() == []
        assert client.writeback.total_pending == 0

    def test_truncate_keeps_pages_below_new_eof(self, cntr_env):
        sc = cntr_env.sc
        client = cntr_env.fs_under_test
        path = f"{cntr_env.test_dir}/trunc"
        fd = sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_RDWR)
        sc.write(fd, b"w" * (8 * 4096))
        sc.fsync(fd)
        resident = len(client.page_cache)
        # Shrink to 4.5 pages: only pages 5..7 go; the partial page 4 stays.
        sc.ftruncate(fd, 4 * 4096 + 2048)
        assert len(client.page_cache) == resident - 3
        hits_before = client.page_cache.stats.hits
        misses_before = client.page_cache.stats.misses
        sc.lseek(fd, 0, 0)
        sc.read(fd, 4 * 4096)
        assert client.page_cache.stats.hits == hits_before + 4
        assert client.page_cache.stats.misses == misses_before
        # Extending drops nothing.
        resident = len(client.page_cache)
        sc.ftruncate(fd, 64 * 4096)
        assert len(client.page_cache) == resident
        sc.close(fd)

    def test_truncate_discards_writeback_for_dropped_pages(self, cntr_env):
        sc = cntr_env.sc
        client = cntr_env.fs_under_test
        path = f"{cntr_env.test_dir}/trunc-dirty"
        fd = sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        sc.write(fd, b"w" * 8192)
        ino = sc.stat(path).st_ino
        assert client.writeback.pending(ino) > 0
        sc.ftruncate(fd, 0)
        # All dirty pages vanished without writeback: no pending bytes may
        # survive to be charged by the next flush.
        assert client.writeback.pending(ino) == 0
        assert client.page_cache.dirty_page_count(ino) == 0
        sc.close(fd)

    def test_punch_hole_invalidates_hole_pages(self, cntr_env):
        from repro.fs.constants import FallocateMode

        sc = cntr_env.sc
        client = cntr_env.fs_under_test
        path = f"{cntr_env.test_dir}/punch"
        fd = sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_RDWR)
        sc.write(fd, b"w" * (8 * 4096))
        sc.fsync(fd)
        resident = len(client.page_cache)
        sc.fallocate(fd, FallocateMode.PUNCH_HOLE | FallocateMode.KEEP_SIZE,
                     2 * 4096, 3 * 4096)
        assert len(client.page_cache) == resident - 3
        misses_before = client.page_cache.stats.misses
        sc.lseek(fd, 2 * 4096, 0)
        assert sc.read(fd, 4096) == b"\x00" * 4096
        # Reading the hole is not a page-cache hit.
        assert client.page_cache.stats.misses > misses_before
        sc.close(fd)

    def test_unknown_opcode_returns_enosys(self, cntr_env):
        from repro.fuse.protocol import FuseRequest
        server = cntr_env.fs_under_test.connection.server
        reply = server.handle(FuseRequest(FuseOpcode.BMAP, 1, args={}))
        assert reply.error == errno.ENOSYS

    def test_forget_batching(self):
        env = cntrfs_environment()
        sc = env.sc
        client = env.fs_under_test
        base = f"{env.test_dir}/forget"
        sc.makedirs(base)
        for i in range(80):
            fd = sc.open(f"{base}/f{i}", OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
            sc.close(fd)
        for i in range(80):
            sc.unlink(f"{base}/f{i}")
        client.flush_forgets()
        assert client.connection.stats.forgets_batched >= 64


class TestMountOptions:
    def test_defaults_match_paper(self):
        options = FuseMountOptions.paper_defaults()
        assert options.keep_cache and options.writeback_cache
        assert options.parallel_dirops and options.async_read and options.splice_read
        assert not options.splice_write

    def test_all_off_configuration(self):
        options = FuseMountOptions.all_optimizations_off()
        assert not any([options.keep_cache, options.writeback_cache,
                        options.parallel_dirops, options.async_read,
                        options.splice_read, options.splice_write])
        assert options.threads == 1

    def test_keep_cache_off_invalidates_on_open(self):
        env = cntrfs_environment(options=FuseMountOptions.paper_defaults()
                                 .with_overrides(keep_cache=False))
        sc = env.sc
        client = env.fs_under_test
        path = f"{env.test_dir}/no-keep-cache"
        fd = sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_RDWR)
        sc.write(fd, b"d" * 8192)
        sc.close(fd)
        sc.read(sc.open(path), 8192)
        resident_before = len(client.page_cache)
        sc.read(sc.open(path), 8192)   # the open invalidates, so pages reload
        assert client.connection.stats.requests_by_opcode.get("READ", 0) >= 2
        assert resident_before >= 0


class TestXfstestsSuite:
    def test_native_passes_everything(self):
        from repro.xfstests import XfstestsRunner
        summary = XfstestsRunner(native_environment).run()
        assert summary.total == 209
        assert summary.passed == 209, summary.format_table()

    def test_cntrfs_matches_paper_pass_rate(self):
        from repro.xfstests import XfstestsRunner, PAPER_FAILING_TESTS
        summary = XfstestsRunner(cntrfs_environment).run()
        assert summary.total == 209
        assert summary.passed == 205, summary.format_table()
        assert sorted(summary.failing_ids()) == sorted(PAPER_FAILING_TESTS)
        assert summary.pass_rate == pytest.approx(205 / 209, abs=1e-3)
