"""VFS dentry-cache correctness: no operation may be served a stale entry.

The dcache (``repro.fs.vfs.DentryCache``) caches positive path components and
invalidates through per-filesystem dentry generations.  Every test here first
*warms* the cache by resolving a path, then mutates the namespace through the
operation under test, and finally asserts that resolution observes the new
truth — for local filesystems, FUSE mounts, bind mounts and stacked mounts.
"""

import errno

import pytest

from repro.fs.constants import OpenFlags
from repro.fs.errors import FsError
from repro.fs.tmpfs import TmpFS
from repro.xfstests.harness import cntrfs_environment


def _create(sc, path, content=b"x"):
    fd = sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_WRONLY, 0o644)
    try:
        sc.write(fd, content)
    finally:
        sc.close(fd)


class TestDcacheHits:
    def test_repeated_walks_hit_the_dcache(self, machine, syscalls):
        syscalls.makedirs("/srv/app/data")
        _create(syscalls, "/srv/app/data/file")
        dcache = machine.kernel.vfs.dcache
        syscalls.stat("/srv/app/data/file")
        hits_before = dcache.hits
        for _ in range(5):
            syscalls.stat("/srv/app/data/file")
        # Every component of every repeated walk must come from the dcache.
        assert dcache.hits >= hits_before + 5 * 4

    def test_dcache_hit_charges_the_same_virtual_cost(self, machine, syscalls):
        """A cold and a warm walk of the same path must cost the same virtual
        time as the seed model, where the fs charged its warm-lookup cost."""
        syscalls.makedirs("/srv/costs")
        _create(syscalls, "/srv/costs/file")
        syscalls.stat("/srv/costs/file")          # warm the dcache
        before = machine.clock.now_ns
        syscalls.stat("/srv/costs/file")
        first = machine.clock.now_ns - before
        before = machine.clock.now_ns
        syscalls.stat("/srv/costs/file")
        second = machine.clock.now_ns - before
        assert first == second


class TestDcacheInvalidation:
    def test_unlink_invalidates(self, machine, syscalls):
        _create(syscalls, "/tmp/doomed")
        assert syscalls.exists("/tmp/doomed")     # warm the dcache
        syscalls.unlink("/tmp/doomed")
        assert not syscalls.exists("/tmp/doomed")
        with pytest.raises(FsError) as exc:
            syscalls.stat("/tmp/doomed")
        assert exc.value.errno == errno.ENOENT

    def test_unlink_and_recreate_resolves_to_new_inode(self, machine, syscalls):
        _create(syscalls, "/tmp/reborn", b"old")
        old_ino = syscalls.stat("/tmp/reborn").st_ino
        syscalls.unlink("/tmp/reborn")
        _create(syscalls, "/tmp/reborn", b"new")
        assert syscalls.stat("/tmp/reborn").st_ino != old_ino
        assert syscalls.read(syscalls.open("/tmp/reborn"), 16) == b"new"

    def test_rmdir_invalidates(self, machine, syscalls):
        syscalls.makedirs("/srv/gone")
        assert syscalls.stat("/srv/gone").st_ino   # warm the dcache
        syscalls.rmdir("/srv/gone")
        assert not syscalls.exists("/srv/gone")

    def test_rename_invalidates_both_names(self, machine, syscalls):
        _create(syscalls, "/tmp/before", b"payload")
        _create(syscalls, "/tmp/target", b"will be replaced")
        syscalls.stat("/tmp/before")
        target_old_ino = syscalls.stat("/tmp/target").st_ino
        syscalls.rename("/tmp/before", "/tmp/target")
        assert not syscalls.exists("/tmp/before")
        stat = syscalls.stat("/tmp/target")
        assert stat.st_ino != target_old_ino
        assert syscalls.read(syscalls.open("/tmp/target"), 32) == b"payload"

    def test_rename_of_directory_keeps_children_resolvable(self, machine, syscalls):
        syscalls.makedirs("/srv/olddir")
        _create(syscalls, "/srv/olddir/child", b"c")
        syscalls.stat("/srv/olddir/child")
        syscalls.rename("/srv/olddir", "/srv/newdir")
        assert not syscalls.exists("/srv/olddir/child")
        assert syscalls.read(syscalls.open("/srv/newdir/child"), 8) == b"c"

    def test_mount_shadows_cached_directory(self, machine, syscalls):
        """Mounting over a dcached directory must immediately shadow it."""
        syscalls.makedirs("/srv/mnt")
        _create(syscalls, "/srv/mnt/underneath")
        assert syscalls.exists("/srv/mnt/underneath")   # warm the dcache
        overlay = TmpFS("overlay", machine.kernel.clock, machine.kernel.costs)
        syscalls.mount(overlay, "/srv/mnt")
        assert not syscalls.exists("/srv/mnt/underneath")
        _create(syscalls, "/srv/mnt/on-top")
        assert syscalls.listdir("/srv/mnt") == ["on-top"]

    def test_umount_reveals_cached_directory_again(self, machine, syscalls):
        syscalls.makedirs("/srv/peek")
        _create(syscalls, "/srv/peek/underneath")
        overlay = TmpFS("overlay2", machine.kernel.clock, machine.kernel.costs)
        syscalls.mount(overlay, "/srv/peek")
        _create(syscalls, "/srv/peek/on-top")
        assert syscalls.listdir("/srv/peek") == ["on-top"]  # warm via the overlay
        syscalls.umount("/srv/peek")
        assert syscalls.listdir("/srv/peek") == ["underneath"]

    def test_symlink_loop_still_detected_after_warming(self, machine, syscalls):
        syscalls.makedirs("/srv/loop")
        syscalls.symlink("/srv/loop/b", "/srv/loop/a")
        syscalls.symlink("/srv/loop/a", "/srv/loop/b")
        for _ in range(2):   # repeated walks must keep failing with ELOOP
            with pytest.raises(FsError) as exc:
                syscalls.stat("/srv/loop/a")
            assert exc.value.errno == errno.ELOOP

    def test_symlink_retarget_via_rename(self, machine, syscalls):
        syscalls.makedirs("/srv/link")
        _create(syscalls, "/srv/link/v1", b"one")
        _create(syscalls, "/srv/link/v2", b"two")
        syscalls.symlink("/srv/link/v1", "/srv/link/current")
        assert syscalls.read(syscalls.open("/srv/link/current"), 8) == b"one"
        syscalls.symlink("/srv/link/v2", "/srv/link/current.new")
        syscalls.rename("/srv/link/current.new", "/srv/link/current")
        assert syscalls.read(syscalls.open("/srv/link/current"), 8) == b"two"

    def test_procfs_entries_are_never_cached(self, machine, syscalls):
        """/proc names come and go with processes; resolution must see exits."""
        child = machine.spawn_host_process(["/usr/bin/short-lived"])
        pid = child.getpid()
        assert syscalls.exists(f"/proc/{pid}")
        child.exit(0)
        assert not syscalls.exists(f"/proc/{pid}")


class TestDcacheThroughFuse:
    def test_fuse_unlink_invalidates(self):
        env = cntrfs_environment()
        sc = env.sc
        path = f"{env.test_dir}/fuse-doomed"
        _create(sc, path)
        assert sc.exists(path)
        sc.unlink(path)
        assert not sc.exists(path)

    def test_fuse_rename_invalidates(self):
        env = cntrfs_environment()
        sc = env.sc
        src = f"{env.test_dir}/fuse-src"
        dst = f"{env.test_dir}/fuse-dst"
        _create(sc, src, b"fuse payload")
        sc.stat(src)
        sc.rename(src, dst)
        assert not sc.exists(src)
        assert sc.read(sc.open(dst), 32) == b"fuse payload"

    def test_fuse_drop_caches_invalidates_dentries(self):
        env = cntrfs_environment()
        sc = env.sc
        client = env.fs_under_test
        path = f"{env.test_dir}/fuse-cold"
        _create(sc, path)
        sc.stat(path)
        gen_before = client.dentry_gen
        client.drop_caches()
        assert client.dentry_gen > gen_before
        assert sc.exists(path)   # re-resolves through fresh LOOKUPs
