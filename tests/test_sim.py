"""Tests for the virtual-time substrate (clock, cost model, tracer, RNG)."""

import pytest

from repro.sim import CostModel, DeterministicRandom, Tracer, VirtualClock
from repro.sim.clock import StopwatchRegion


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now_ns == 0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(100)
        clock.advance(250.7)
        assert clock.now_ns == 350

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start_ns=-5)

    def test_seconds_property(self):
        clock = VirtualClock()
        clock.advance(2_500_000_000)
        assert clock.now_s == pytest.approx(2.5)

    def test_elapsed_since(self):
        clock = VirtualClock()
        t0 = clock.now_ns
        clock.advance(42)
        assert clock.elapsed_since(t0) == 42

    def test_stopwatch_region(self):
        clock = VirtualClock()
        with StopwatchRegion(clock) as region:
            clock.advance(1234)
        assert region.elapsed_ns == 1234


class TestCostModel:
    def test_copy_cost_scales_with_bytes(self):
        costs = CostModel()
        assert costs.copy_cost(2000) == pytest.approx(2 * costs.copy_cost(1000))

    def test_splice_cheaper_than_copy_for_large_transfers(self):
        costs = CostModel()
        size = 1 << 20
        assert costs.splice_cost(size) < costs.copy_cost(size)

    def test_random_disk_read_pays_full_seek(self):
        costs = CostModel()
        assert costs.disk_read_cost(4096, sequential=False) > \
            costs.disk_read_cost(4096, sequential=True)

    def test_with_overrides_does_not_mutate_original(self):
        costs = CostModel()
        changed = costs.with_overrides(fuse_request_ns=1)
        assert changed.fuse_request_ns == 1
        assert costs.fuse_request_ns != 1


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(0, "fs", "read", 100)
        assert tracer.count("fs.read") == 0

    def test_enabled_tracer_counts_and_costs(self):
        tracer = Tracer(enabled=True)
        tracer.record(0, "fs", "read", 100)
        tracer.record(10, "fs", "read", 50)
        assert tracer.count("fs.read") == 2
        assert tracer.total_cost("fs.read") == 150

    def test_capacity_limits_event_storage_but_not_counts(self):
        tracer = Tracer(enabled=True, capacity=2)
        for i in range(5):
            tracer.record(i, "fs", "write", 1)
        assert tracer.count("fs.write") == 5
        assert len(list(tracer.events())) == 2
        assert tracer.dropped == 3

    def test_summary_sorted_by_cost(self):
        tracer = Tracer(enabled=True)
        tracer.record(0, "a", "cheap", 1)
        tracer.record(0, "a", "expensive", 1000)
        assert tracer.summary()[0][0] == "a.expensive"

    def test_clear(self):
        tracer = Tracer(enabled=True)
        tracer.record(0, "x", "y", 5)
        tracer.clear()
        assert tracer.count("x.y") == 0


class TestDeterministicRandom:
    def test_same_seed_same_stream(self):
        a, b = DeterministicRandom("seed"), DeterministicRandom("seed")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a, b = DeterministicRandom("one"), DeterministicRandom("two")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_reseed_restarts_stream(self):
        rng = DeterministicRandom(7)
        first = [rng.random() for _ in range(3)]
        rng.reseed()
        assert [rng.random() for _ in range(3)] == first

    def test_zipf_index_in_range(self):
        rng = DeterministicRandom(1)
        for _ in range(100):
            assert 0 <= rng.zipf_index(10) < 10

    def test_zipf_rejects_empty_population(self):
        with pytest.raises(ValueError):
            DeterministicRandom(1).zipf_index(0)
