"""Tests for the virtual-time substrate (clock, cost model, tracer, RNG)."""

import pytest

from repro.sim import CostModel, DeterministicRandom, Tracer, VirtualClock
from repro.sim.clock import StopwatchRegion


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now_ns == 0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(100)
        clock.advance(250)
        assert clock.now_ns == 350

    def test_advance_accepts_integral_floats(self):
        # Cost-model arithmetic naturally produces integral floats (200.0);
        # they are whole nanoseconds and must keep working.
        clock = VirtualClock()
        clock.advance(250.0)
        assert clock.now_ns == 250

    def test_advance_rejects_fractional_floats(self):
        # Regression: advance() used to silently truncate fractional deltas
        # (int(delta_ns)), so repeated sub-nanosecond charges — e.g. the
        # scheduler's per-timeslice accounting — could drift against the
        # cost model.  Fractional costs must now be floored visibly at the
        # charge site; the clock itself rejects them.
        clock = VirtualClock()
        clock.advance(100)
        with pytest.raises(ValueError):
            clock.advance(250.7)
        assert clock.now_ns == 100, "a rejected advance must not move time"

    def test_advance_rejects_nan_and_inf(self):
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError):
                VirtualClock().advance(bad)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start_ns=-5)

    def test_seconds_property(self):
        clock = VirtualClock()
        clock.advance(2_500_000_000)
        assert clock.now_s == pytest.approx(2.5)

    def test_elapsed_since(self):
        clock = VirtualClock()
        t0 = clock.now_ns
        clock.advance(42)
        assert clock.elapsed_since(t0) == 42

    def test_stopwatch_region(self):
        clock = VirtualClock()
        with StopwatchRegion(clock) as region:
            clock.advance(1234)
        assert region.elapsed_ns == 1234


class TestClockTimerReentrancy:
    """Regression tests for `_fire_due` under reentrant dispatch.

    The scheduler idles the clock forward in big jumps, so timer callbacks
    (kupdate-style flushers) routinely charge time — nested advances — and
    re-schedule themselves while a dispatch is running.  These lock the
    audited contract: `_next_deadline` can never go stale-high (a missed
    fire), timers made due mid-dispatch fire in the same dispatch, and
    dispatch order stays (deadline, creation order) deterministic.
    """

    def test_callback_scheduling_earlier_timer_then_advancing(self):
        # The ISSUE scenario: a running callback schedules a timer *earlier*
        # than every pending deadline, then advances past it.  The nested
        # advance must not fire reentrantly, but the new timer must still
        # fire inside the same outer dispatch — and `_next_deadline` must be
        # left pointing at the true earliest pending deadline.
        clock = VirtualClock()
        fired = []

        def late(now):
            fired.append(("late", now))

        def first(now):
            clock.schedule(now + 10, lambda t: fired.append(("early", t)))
            clock.advance(50)         # nested: crosses the new deadline

        clock.schedule(100, first)
        clock.schedule(1_000, late)
        clock.advance(100)
        assert fired == [("early", 150)], "the earlier timer fires in-dispatch"
        clock.advance(1_000)
        assert fired == [("early", 150), ("late", 1_150)]

    def test_nested_advance_does_not_fire_reentrantly(self):
        clock = VirtualClock()
        order = []

        def outer(now):
            order.append("outer-start")
            clock.schedule(now, lambda t: order.append("due-now"))
            clock.advance(0)          # deadline already due; must wait
            order.append("outer-end")

        clock.schedule(10, outer)
        clock.advance(10)
        assert order == ["outer-start", "outer-end", "due-now"]

    def test_next_deadline_not_stale_after_dispatch(self):
        clock = VirtualClock()
        fired = []
        clock.schedule(10, lambda t: clock.schedule(t + 5, fired.append))
        clock.advance(10)
        assert clock.next_timer_deadline_ns == 15
        # The rescheduled timer must actually fire on the next crossing —
        # a stale-high `_next_deadline` would swallow it.
        clock.advance(5)
        assert fired == [15]

    def test_cancelled_head_timer_is_skipped_not_fired(self):
        clock = VirtualClock()
        fired = []
        head = clock.schedule(10, lambda t: fired.append("head"))
        clock.schedule(20, lambda t: fired.append("tail"))
        head.cancel()
        assert clock.next_timer_deadline_ns == 20
        clock.advance(25)
        assert fired == ["tail"]

    def test_raising_callback_leaves_consistent_state(self):
        clock = VirtualClock()
        fired = []
        clock.schedule(10, lambda t: (_ for _ in ()).throw(RuntimeError("boom")))
        clock.schedule(20, lambda t: fired.append(t))
        with pytest.raises(RuntimeError):
            clock.advance(10)
        # The finally-block recomputed `_next_deadline`; the survivor fires.
        clock.advance(10)
        assert fired == [20]

    def test_tie_break_is_creation_order(self):
        clock = VirtualClock()
        order = []
        clock.schedule(10, lambda t: order.append("a"))
        clock.schedule(10, lambda t: order.append("b"))
        clock.advance(10)
        assert order == ["a", "b"]


class TestCostModel:
    def test_copy_cost_scales_with_bytes(self):
        costs = CostModel()
        assert costs.copy_cost(2000) == pytest.approx(2 * costs.copy_cost(1000))

    def test_splice_cheaper_than_copy_for_large_transfers(self):
        costs = CostModel()
        size = 1 << 20
        assert costs.splice_cost(size) < costs.copy_cost(size)

    def test_random_disk_read_pays_full_seek(self):
        costs = CostModel()
        assert costs.disk_read_cost(4096, sequential=False) > \
            costs.disk_read_cost(4096, sequential=True)

    def test_with_overrides_does_not_mutate_original(self):
        costs = CostModel()
        changed = costs.with_overrides(fuse_request_ns=1)
        assert changed.fuse_request_ns == 1
        assert costs.fuse_request_ns != 1


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(0, "fs", "read", 100)
        assert tracer.count("fs.read") == 0

    def test_enabled_tracer_counts_and_costs(self):
        tracer = Tracer(enabled=True)
        tracer.record(0, "fs", "read", 100)
        tracer.record(10, "fs", "read", 50)
        assert tracer.count("fs.read") == 2
        assert tracer.total_cost("fs.read") == 150

    def test_capacity_limits_event_storage_but_not_counts(self):
        tracer = Tracer(enabled=True, capacity=2)
        for i in range(5):
            tracer.record(i, "fs", "write", 1)
        assert tracer.count("fs.write") == 5
        assert len(list(tracer.events())) == 2
        assert tracer.dropped == 3

    def test_summary_sorted_by_cost(self):
        tracer = Tracer(enabled=True)
        tracer.record(0, "a", "cheap", 1)
        tracer.record(0, "a", "expensive", 1000)
        assert tracer.summary()[0][0] == "a.expensive"

    def test_clear(self):
        tracer = Tracer(enabled=True)
        tracer.record(0, "x", "y", 5)
        tracer.clear()
        assert tracer.count("x.y") == 0


class TestDeterministicRandom:
    def test_same_seed_same_stream(self):
        a, b = DeterministicRandom("seed"), DeterministicRandom("seed")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a, b = DeterministicRandom("one"), DeterministicRandom("two")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_reseed_restarts_stream(self):
        rng = DeterministicRandom(7)
        first = [rng.random() for _ in range(3)]
        rng.reseed()
        assert [rng.random() for _ in range(3)] == first

    def test_zipf_index_in_range(self):
        rng = DeterministicRandom(1)
        for _ in range(100):
            assert 0 <= rng.zipf_index(10) < 10

    def test_zipf_rejects_empty_population(self):
        with pytest.raises(ValueError):
            DeterministicRandom(1).zipf_index(0)
