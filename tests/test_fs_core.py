"""Tests for inodes, file data, ACLs, locks and the page cache."""

import errno

import pytest

from repro.fs.acl import AclTag, PosixAcl
from repro.fs.constants import FileMode, LockType
from repro.fs.errors import FsError
from repro.fs.inode import FileData
from repro.fs.locks import LockTable
from repro.fs.pagecache import PageCache, page_span
from repro.fs.filesystem import Filesystem
from repro.sim import CostModel, VirtualClock


class TestFileData:
    def test_roundtrip(self):
        data = FileData()
        data.write(0, b"hello world")
        assert data.read(0, 11) == b"hello world"
        assert len(data) == 11

    def test_sparse_holes_read_as_zeros(self):
        data = FileData()
        data.write(10_000, b"x")
        assert data.read(0, 4) == b"\x00\x00\x00\x00"
        assert data.read(10_000, 1) == b"x"
        assert len(data) == 10_001

    def test_truncate_shrink_and_grow(self):
        data = FileData(b"abcdef")
        data.truncate(3)
        assert data.to_bytes() == b"abc"
        data.truncate(6)
        assert data.to_bytes() == b"abc\x00\x00\x00"

    def test_punch_hole(self):
        data = FileData(b"A" * 100)
        data.punch_hole(10, 20)
        assert data.read(10, 20) == b"\x00" * 20
        assert data.read(0, 10) == b"A" * 10
        assert len(data) == 100

    def test_store_false_tracks_size_only(self):
        data = FileData(store=False)
        data.write(0, b"payload")
        assert len(data) == 7
        assert data.read(0, 7) == b"\x00" * 7
        assert data.stored_bytes() == 0

    def test_overwrite_within_page(self):
        data = FileData(b"aaaaaaaaaa")
        data.write(3, b"BBB")
        assert data.to_bytes() == b"aaaBBBaaaa"


class TestPosixAcl:
    def test_from_mode(self):
        acl = PosixAcl.from_mode(0o640)
        assert acl.entries_for(AclTag.USER_OBJ)[0].perms == 0o6
        assert acl.entries_for(AclTag.GROUP_OBJ)[0].perms == 0o4
        assert acl.entries_for(AclTag.OTHER)[0].perms == 0o0

    def test_named_user_entry_grants_access(self):
        acl = PosixAcl.from_mode(0o600)
        acl.add(AclTag.USER, 1000, 0o4)
        assert acl.check(1000, {1000}, owner_uid=0, owner_gid=0, want=0o4) is True

    def test_named_group_ids(self):
        acl = PosixAcl.from_mode(0o640)
        acl.add(AclTag.GROUP, 42, 0o6)
        acl.add(AclTag.GROUP, 43, 0o4)
        assert acl.named_group_ids() == {42, 43}

    def test_unmatched_caller_falls_through_to_other(self):
        acl = PosixAcl.from_mode(0o604)
        assert acl.check(999, {999}, owner_uid=0, owner_gid=0, want=0o4) is True
        assert acl.check(999, {999}, owner_uid=0, owner_gid=0, want=0o2) is False


class TestLockTable:
    def test_conflicting_write_locks(self):
        table = LockTable()
        table.acquire(owner=1, lock_type=LockType.F_WRLCK)
        with pytest.raises(FsError) as exc:
            table.acquire(owner=2, lock_type=LockType.F_WRLCK)
        assert exc.value.errno == errno.EAGAIN

    def test_shared_read_locks_allowed(self):
        table = LockTable()
        table.acquire(owner=1, lock_type=LockType.F_RDLCK)
        table.acquire(owner=2, lock_type=LockType.F_RDLCK)
        assert len(table.held_locks()) == 2

    def test_non_overlapping_ranges_do_not_conflict(self):
        table = LockTable()
        table.acquire(owner=1, lock_type=LockType.F_WRLCK, start=0, length=100)
        table.acquire(owner=2, lock_type=LockType.F_WRLCK, start=100, length=100)

    def test_unlock_via_f_unlck(self):
        table = LockTable()
        table.acquire(owner=1, lock_type=LockType.F_WRLCK)
        table.acquire(owner=1, lock_type=LockType.F_UNLCK)
        table.acquire(owner=2, lock_type=LockType.F_WRLCK)

    def test_release_owner(self):
        table = LockTable()
        table.acquire(owner=1, lock_type=LockType.F_WRLCK, start=0, length=10)
        table.acquire(owner=1, lock_type=LockType.F_WRLCK, start=20, length=10)
        table.release_owner(1)
        assert table.held_locks() == []

    def test_same_owner_upgrade(self):
        table = LockTable()
        table.acquire(owner=1, lock_type=LockType.F_RDLCK)
        table.acquire(owner=1, lock_type=LockType.F_WRLCK)
        locks = table.held_locks()
        assert len(locks) == 1
        assert locks[0].lock_type == LockType.F_WRLCK


class TestPageCache:
    def test_page_span(self):
        assert list(page_span(0, 4096)) == [0]
        assert list(page_span(4095, 2)) == [0, 1]
        assert list(page_span(8192, 0)) == []

    def test_miss_then_hit(self):
        cache = PageCache()
        hits, misses = cache.access(1, 0, 8192)
        assert (hits, misses) == (0, 2)
        hits, misses = cache.access(1, 0, 8192)
        assert (hits, misses) == (2, 0)
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_dirty_tracking_and_clean(self):
        cache = PageCache()
        assert cache.write(1, 0, 4096) == 1
        assert cache.dirty_pages(1) == [(1, 0)]
        assert cache.clean(1) == 1
        assert cache.dirty_pages(1) == []

    def test_lru_eviction(self):
        cache = PageCache(max_bytes=2 * 4096)
        cache.access(1, 0, 4096)
        cache.access(1, 4096, 4096)
        cache.access(1, 8192, 4096)   # evicts page 0
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        hits, misses = cache.access(1, 0, 4096)
        assert misses == 1

    def test_invalidate_single_inode(self):
        cache = PageCache()
        cache.access(1, 0, 4096)
        cache.access(2, 0, 4096)
        assert cache.invalidate(1) == 1
        assert cache.is_resident(2, 0)
        assert not cache.is_resident(1, 0)

    def test_sustained_rewrite_keeps_structure_bounded(self):
        """Regression: rewriting the same ranges forever must not grow any
        internal ordering structure.

        The old eviction order was a lazy-deletion seq-heap: every LRU
        refresh pushed a new entry and left the stale one behind, so a
        steady rewrite loop grew the heap without bound (and each eviction
        had to pop through the garbage).  The intrusive LRU list is O(1) per
        refresh with no stale state; after any number of rewrites the
        bookkeeping is exactly one node per live extent.
        """
        cache = PageCache(max_bytes=64 * 4096)
        for i in range(5000):
            cache.write(1 + (i % 4), 0, 4 * 4096)      # 4 inodes, same range
            cache.access(1 + (i % 4), 0, 4 * 4096)
        assert len(cache) == 16                        # 4 inodes x 4 pages
        # One live extent per inode, one LRU node per live extent, and a
        # dirty index covering exactly the dirty extents — nothing stale.
        assert cache.extent_count() == 4
        assert len(cache._live) == 4
        lru_nodes = 0
        node = cache._lru_head.nxt
        while node is not cache._lru_tail:
            lru_nodes += 1
            node = node.nxt
        assert lru_nodes == 4
        assert sum(len(d) for d in cache._dirty_exts.values()) == 4
        # The refreshed extents' sequence numbers stay totally ordered and
        # the LRU list agrees with them (the heap's ordering contract).
        seqs = [ext.seq for ext in cache._live.values()]
        assert len(set(seqs)) == len(seqs)

    def test_eviction_order_matches_seq_heap_reference(self):
        """The LRU list must evict exactly what a (seq, start) min-heap—the
        old implementation's order—would evict, under a churny mixed load."""
        import heapq
        import random

        rng = random.Random(7)
        cache = PageCache(max_bytes=48 * 4096)
        for _ in range(800):
            ino = rng.randrange(1, 6)
            page = rng.randrange(0, 40)
            n = rng.randrange(1, 6)
            if rng.random() < 0.5:
                cache.access(ino, page * 4096, n * 4096)
            else:
                cache.write(ino, page * 4096, n * 4096)
            # The next capacity eviction starts at the extent a seq-heap
            # (rebuilt fresh, i.e. with perfect lazy deletion) would pop.
            live = list(cache._live.values())
            if live:
                heap = [(ext.seq, ext.start, ext.eid) for ext in live]
                heapq.heapify(heap)
                oldest_eid = heap[0][2]
                head = cache._lru_head.nxt
                assert head.eid == oldest_eid
                assert cache.oldest_seq() == heap[0][0]


class TestFilesystemObjectModel:
    def _fs(self):
        return Filesystem("testfs", VirtualClock(), CostModel())

    def test_create_lookup_roundtrip(self):
        fs = self._fs()
        inode = fs.create(fs.root_ino, "file", 0o644)
        assert fs.lookup(fs.root_ino, "file").ino == inode.ino

    def test_nlink_accounting_for_directories(self):
        fs = self._fs()
        assert fs.root().nlink == 2
        fs.mkdir(fs.root_ino, "child", 0o755)
        assert fs.root().nlink == 3
        fs.rmdir(fs.root_ino, "child")
        assert fs.root().nlink == 2

    def test_unlink_drops_inode_unless_pinned(self):
        fs = self._fs()
        inode = fs.create(fs.root_ino, "pinned", 0o644)
        fs.pin(inode.ino)
        fs.unlink(fs.root_ino, "pinned")
        assert fs.iget(inode.ino) is inode
        fs.unpin(inode.ino)
        with pytest.raises(FsError):
            fs.iget(inode.ino)

    def test_rename_exchange(self):
        fs = self._fs()
        a = fs.create(fs.root_ino, "a", 0o644)
        b = fs.create(fs.root_ino, "b", 0o644)
        from repro.fs.constants import RenameFlags
        fs.rename(fs.root_ino, "a", fs.root_ino, "b", RenameFlags.RENAME_EXCHANGE)
        assert fs.lookup(fs.root_ino, "a").ino == b.ino
        assert fs.lookup(fs.root_ino, "b").ino == a.ino

    def test_write_charges_virtual_time(self):
        fs = self._fs()
        inode = fs.create(fs.root_ino, "timed", 0o644)
        before = fs.clock.now_ns
        fs.write(inode.ino, 0, b"x" * 4096)
        assert fs.clock.now_ns > before

    def test_statfs_reports_usage(self):
        fs = self._fs()
        inode = fs.create(fs.root_ino, "big", 0o644)
        fs.write(inode.ino, 0, b"z" * (1 << 20))
        stats = fs.statfs()
        assert stats.f_bfree < stats.f_blocks

    def test_readdir_includes_dot_entries(self):
        fs = self._fs()
        fs.create(fs.root_ino, "x", 0o644)
        names = [name for name, _, _ in fs.readdir(fs.root_ino)]
        assert names[:2] == [".", ".."] and "x" in names

    def test_mode_type_bits(self):
        fs = self._fs()
        fifo = fs.mknod(fs.root_ino, "fifo", int(FileMode.S_IFIFO) | 0o600)
        assert fifo.file_type == FileMode.S_IFIFO
