"""Tests for the ``repro.analyze`` invariant checker suite.

Each rule gets a minimal bad-example fixture (embedded here as strings,
written to a scratch package) asserting the checker fires exactly where
expected — plus the suppression round trip, the unused-suppression audit,
and the contract that the committed tree itself analyzes clean.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analyze import AnalysisConfig, run_analysis

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"


def make_pkg(tmp_path: Path, files: dict[str, str], name: str = "pkg") -> Path:
    """Write a scratch package tree and return its root directory."""
    root = tmp_path / name
    root.mkdir()
    (root / "__init__.py").write_text("")
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        if not (path.parent / "__init__.py").exists():
            (path.parent / "__init__.py").write_text("")
        path.write_text(textwrap.dedent(body))
    return root


FIXTURE_CONFIG = AnalysisConfig(
    wallclock_allow=("pkg.bench",),
    entry_classes=("Syscalls",),
    mutators=("PageCache.write",),
    zero_cost=("Journal.*",),
    layers=("pkg.sim", "pkg.fs", "pkg.kernel"),
    hard_bans=(("pkg.sim", ("pkg.fs", "pkg.kernel")),
               ("pkg.fs", ("pkg.kernel",))),
    errno_layers=("pkg.fs", "pkg.kernel"),
    errno_base="FsError",
    hook_base="Filesystem",
    lifecycle_hooks=("crash", "remount", "_inode_released"),
    rng_modules=("pkg.rng",),
    rng_class="DeterministicRandom",
)


def analyze(root: Path, rules=None):
    return run_analysis([root], config=FIXTURE_CONFIG, rules=rules)


class CliResult:
    """Mimics the ``subprocess.run`` surface for in-process CLI calls."""

    def __init__(self, returncode: int, stdout: str, stderr: str) -> None:
        self.returncode = returncode
        self.stdout = stdout
        self.stderr = stderr


def run_cli_inprocess(*argv: str) -> CliResult:
    """Drive ``python -m repro.analyze`` through its ``main()`` in-process.

    Exercises the same argument parsing, output rendering and exit codes as
    the subprocess form, but shares the parsed-AST caches with the rest of
    the suite — the live-tree CLI checks would otherwise re-parse the whole
    package in a fresh interpreter each (a multi-second tax per test).
    Fresh-interpreter coverage is retained by the subprocess tests that run
    on small scratch packages.
    """
    import contextlib
    import io

    from repro.analyze.__main__ import main as analyze_main

    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        rc = analyze_main(list(argv))
    return CliResult(rc, out.getvalue(), err.getvalue())


def findings_by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


class TestDeterminism:
    def test_wall_clock_banned(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": """\
            import time

            def stamp():
                return time.time()
            """})
        (hit,) = findings_by_rule(analyze(root), "determinism")
        assert hit.line == 4
        assert "time.time" in hit.message

    def test_from_import_alias_resolved(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": """\
            from time import perf_counter as pc

            def stamp():
                return pc()
            """})
        (hit,) = findings_by_rule(analyze(root), "determinism")
        assert hit.line == 4

    def test_bench_allowlist(self, tmp_path):
        root = make_pkg(tmp_path, {"bench.py": """\
            import time

            def wall():
                return time.perf_counter()
            """})
        assert findings_by_rule(analyze(root), "determinism") == []

    def test_entropy_banned(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": """\
            import os
            import uuid

            def token():
                return os.urandom(8) + uuid.uuid4().bytes
            """})
        hits = findings_by_rule(analyze(root), "determinism")
        assert len(hits) == 2 and all(h.line == 5 for h in hits)

    def test_global_random_banned(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": """\
            import random

            def pick():
                return random.randint(0, 9)
            """})
        (hit,) = findings_by_rule(analyze(root), "determinism")
        assert "process-global" in hit.message

    def test_set_iteration_flagged(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": """\
            def emit(trace):
                pending = set()
                pending.add(1)
                for ino in pending:
                    trace.append(ino)
            """})
        (hit,) = findings_by_rule(analyze(root), "determinism")
        assert hit.line == 4

    def test_sorted_set_iteration_ok(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": """\
            def emit(trace):
                pending = {3, 1, 2}
                for ino in sorted(pending):
                    trace.append(ino)
            """})
        assert findings_by_rule(analyze(root), "determinism") == []

    def test_set_annotation_tracked(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": """\
            def emit(pins: set[int]):
                return list(pins)
            """})
        (hit,) = findings_by_rule(analyze(root), "determinism")
        assert "list() conversion" in hit.message

    def test_id_sort_key_flagged(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": """\
            def order(engines):
                return sorted(engines, key=lambda e: id(e))
            """})
        (hit,) = findings_by_rule(analyze(root), "determinism")
        assert "allocation address" in hit.message

    def test_membership_test_ok(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": """\
            def check(pins: set[int], ino: int) -> bool:
                return ino in pins and len(pins) > 0
            """})
        assert findings_by_rule(analyze(root), "determinism") == []


class TestClockAccounting:
    UNCHARGED = """\
        class PageCache:
            def write(self, ino, data):
                self.pages = data

        class Syscalls:
            def __init__(self, cache: PageCache):
                self.cache = cache

            def pwrite(self, ino, data):
                self.cache.write(ino, data)
        """

    def test_uncharged_mutation_flagged(self, tmp_path):
        root = make_pkg(tmp_path, {"kernel/sys.py": self.UNCHARGED})
        (hit,) = findings_by_rule(analyze(root), "clock-accounting")
        assert "Syscalls.pwrite" in hit.message
        assert "PageCache.write" in hit.message

    def test_charged_mutation_ok(self, tmp_path):
        charged = self.UNCHARGED.replace(
            "self.cache.write(ino, data)",
            "self.clock.advance(10)\n        self.cache.write(ino, data)")
        root = make_pkg(tmp_path, {"kernel/sys.py": charged})
        assert findings_by_rule(analyze(root), "clock-accounting") == []

    def test_charge_through_helper_ok(self, tmp_path):
        root = make_pkg(tmp_path, {"kernel/sys.py": """\
            class PageCache:
                def write(self, ino, data):
                    self.pages = data

            class Syscalls:
                def __init__(self, cache: PageCache):
                    self.cache = cache

                def _charge(self):
                    self.clock.advance(100)

                def pwrite(self, ino, data):
                    self._charge()
                    self.cache.write(ino, data)
            """})
        assert findings_by_rule(analyze(root), "clock-accounting") == []

    def test_zero_cost_path_reaching_charge_flagged(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/journal.py": """\
            class Journal:
                def record(self, op):
                    self.clock.advance(50)
            """})
        (hit,) = findings_by_rule(analyze(root), "clock-accounting")
        assert "zero-virtual-time" in hit.message

    def test_zero_cost_clean_path_ok(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/journal.py": """\
            class Journal:
                def record(self, op):
                    self.records.append(op)
            """})
        assert findings_by_rule(analyze(root), "clock-accounting") == []


class TestConstantConditionPruning:
    """Call extraction must ignore statically-dead ``if`` bodies: calls under
    ``if False:`` / ``if 0:`` / ``if TYPE_CHECKING:`` can never execute, so
    they create neither mutation edges nor charge credit."""

    def test_mutation_under_if_false_not_flagged(self, tmp_path):
        root = make_pkg(tmp_path, {"kernel/sys.py": """\
            class PageCache:
                def write(self, ino, data):
                    self.pages = data

            class Syscalls:
                def __init__(self, cache: PageCache):
                    self.cache = cache

                def pwrite(self, ino, data):
                    if False:
                        self.cache.write(ino, data)
                    return 0
            """})
        assert findings_by_rule(analyze(root), "clock-accounting") == []

    def test_charge_under_type_checking_gives_no_credit(self, tmp_path):
        # The dead charge must not satisfy the rule: the mutation is still
        # reached over a zero-virtual-time path.
        root = make_pkg(tmp_path, {"kernel/sys.py": """\
            from typing import TYPE_CHECKING

            class PageCache:
                def write(self, ino, data):
                    self.pages = data

            class Syscalls:
                def __init__(self, cache: PageCache):
                    self.cache = cache

                def pwrite(self, ino, data):
                    if TYPE_CHECKING:
                        self.clock.advance(10)
                    self.cache.write(ino, data)
            """})
        (hit,) = findings_by_rule(analyze(root), "clock-accounting")
        assert "Syscalls.pwrite" in hit.message

    def test_else_branch_of_dead_conditional_stays_live(self, tmp_path):
        root = make_pkg(tmp_path, {"kernel/sys.py": """\
            class PageCache:
                def write(self, ino, data):
                    self.pages = data

            class Syscalls:
                def __init__(self, cache: PageCache):
                    self.cache = cache

                def pwrite(self, ino, data):
                    if 0:
                        pass
                    else:
                        self.clock.advance(10)
                    self.cache.write(ino, data)
            """})
        assert findings_by_rule(analyze(root), "clock-accounting") == []

    def test_dotted_type_checking_pruned(self, tmp_path):
        root = make_pkg(tmp_path, {"kernel/sys.py": """\
            import typing

            class PageCache:
                def write(self, ino, data):
                    self.pages = data

            class Syscalls:
                def __init__(self, cache: PageCache):
                    self.cache = cache

                def pwrite(self, ino, data):
                    if typing.TYPE_CHECKING:
                        self.cache.write(ino, data)
                    return 0
            """})
        assert findings_by_rule(analyze(root), "clock-accounting") == []


class TestLayering:
    def test_upward_module_scope_import_flagged(self, tmp_path):
        root = make_pkg(tmp_path, {
            "sim/clock.py": "from pkg.fs import inode\n",
            "fs/inode.py": "X = 1\n",
        })
        hits = findings_by_rule(analyze(root, rules=["layering"]), "layering")
        # Both the layer-order violation and the sim hard ban fire.
        assert any("hard ban" in h.message for h in hits)
        assert any("module scope" in h.message for h in hits)

    def test_deferred_upward_import_allowed(self, tmp_path):
        root = make_pkg(tmp_path, {
            "fs/inode.py": """\
                def late():
                    from pkg.kernel import boot
                    return boot
                """,
            "kernel/boot.py": "X = 1\n",
        })
        # fs -> kernel is hard-banned even deferred...
        hits = findings_by_rule(analyze(root, rules=["layering"]), "layering")
        assert len(hits) == 1 and "hard ban" in hits[0].message

    def test_deferred_import_without_ban_ok(self, tmp_path):
        root = make_pkg(tmp_path, {
            "fs/inode.py": "X = 1\n",
            "kernel/boot.py": """\
                def late():
                    from pkg.fs import inode
                    return inode
                """,
        })
        assert findings_by_rule(analyze(root, rules=["layering"]), "layering") == []

    def test_cycle_detected(self, tmp_path):
        root = make_pkg(tmp_path, {
            "kernel/a.py": "from pkg.kernel import b\n",
            "kernel/b.py": "from pkg.kernel import a\n",
        })
        hits = findings_by_rule(analyze(root, rules=["layering"]), "layering")
        assert any("cycle" in h.message for h in hits)


class TestErrnoDiscipline:
    def test_bare_oserror_flagged(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/vfs.py": """\
            def resolve(path):
                raise OSError(2, path)
            """})
        (hit,) = findings_by_rule(analyze(root), "errno-discipline")
        assert hit.line == 2

    def test_fs_error_subclass_ok(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/vfs.py": """\
            class FsError(OSError):
                pass

            class QuotaError(FsError):
                pass

            def resolve(path):
                raise QuotaError(122, path)

            def lookup(path):
                raise FsError(2, path)
            """})
        assert findings_by_rule(analyze(root), "errno-discipline") == []

    def test_internal_guard_ok(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/vfs.py": """\
            def advance(delta):
                if delta < 0:
                    raise ValueError("negative time")
            """})
        assert findings_by_rule(analyze(root), "errno-discipline") == []

    def test_outside_errno_layers_ok(self, tmp_path):
        root = make_pkg(tmp_path, {"sim/clock.py": """\
            def boom():
                raise RuntimeError("clock is not a syscall path")
            """})
        assert findings_by_rule(analyze(root), "errno-discipline") == []


class TestHookSuper:
    BASE = """\
        class Filesystem:
            def crash(self):
                self.locks = {}

            def _inode_released(self, ino):
                pass
        """

    def test_missing_super_flagged(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/base.py": self.BASE, "fs/tmpfs.py": """\
            from pkg.fs.base import Filesystem

            class TmpFS(Filesystem):
                def crash(self):
                    self.tree = {}
            """})
        (hit,) = findings_by_rule(analyze(root), "hook-super")
        assert "TmpFS.crash" in hit.message

    def test_delegating_override_ok(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/base.py": self.BASE, "fs/tmpfs.py": """\
            from pkg.fs.base import Filesystem

            class TmpFS(Filesystem):
                def crash(self):
                    self.tree = {}
                    super().crash()

                def _inode_released(self, ino):
                    super()._inode_released(ino)
                    self.wb.discard(ino)
            """})
        assert findings_by_rule(analyze(root), "hook-super") == []

    def test_non_hook_override_ignored(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/base.py": self.BASE, "fs/tmpfs.py": """\
            from pkg.fs.base import Filesystem

            class TmpFS(Filesystem):
                def sync(self):
                    pass
            """})
        assert findings_by_rule(analyze(root), "hook-super") == []


class TestTimerDiscard:
    def test_stored_timer_without_cancel_flagged(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/engine.py": """\
            class Engine:
                def arm(self):
                    self._timer = self.clock.schedule(100, self._tick)
            """})
        (hit,) = findings_by_rule(analyze(root), "timer-discard")
        assert "self._timer" in hit.message

    def test_cancel_path_ok(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/engine.py": """\
            class Engine:
                def arm(self):
                    self._timer = self.clock.schedule(100, self._tick)

                def crash_discard(self):
                    if self._timer is not None:
                        self._timer.cancel()
            """})
        assert findings_by_rule(analyze(root), "timer-discard") == []

    def test_discarded_schedule_result_flagged(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/engine.py": """\
            class Engine:
                def arm(self):
                    self.clock.schedule(100, self._tick)
            """})
        (hit,) = findings_by_rule(analyze(root), "timer-discard")
        assert "discarded" in hit.message


class TestRngHygiene:
    def test_adhoc_random_instance_flagged(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/gen.py": """\
            import random

            def make():
                return random.Random(42)
            """})
        (hit,) = findings_by_rule(analyze(root), "rng-hygiene")
        assert "random.Random" in hit.message

    def test_midrun_reseed_flagged(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/gen.py": """\
            def reset(rng):
                rng.seed(7)
            """})
        (hit,) = findings_by_rule(analyze(root), "rng-hygiene")
        assert "substream" in hit.message

    def test_rng_module_exempt(self, tmp_path):
        root = make_pkg(tmp_path, {"rng.py": """\
            import random

            class DeterministicRandom(random.Random):
                def reseed(self):
                    super().seed(self._initial_seed)
            """})
        assert findings_by_rule(analyze(root), "rng-hygiene") == []

    def test_substream_usage_ok(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/gen.py": """\
            def streams(rng):
                return rng.substream("ops"), rng.substream("data")
            """})
        assert findings_by_rule(analyze(root), "rng-hygiene") == []


class TestSuppressions:
    def test_suppression_absorbs_finding(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": """\
            import time

            def stamp():
                return time.time()  # simlint: ignore[determinism]
            """})
        assert analyze(root) == []

    def test_unused_suppression_flagged(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": """\
            def stamp():
                return 42  # simlint: ignore[determinism]
            """})
        (hit,) = analyze(root)
        assert hit.rule == "suppression" and "unused" in hit.message

    def test_unknown_rule_in_suppression_flagged(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": """\
            def stamp():
                return 42  # simlint: ignore[no-such-rule]
            """})
        (hit,) = analyze(root)
        assert hit.rule == "suppression" and "unknown rule" in hit.message

    def test_docstring_mention_is_not_a_suppression(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": '''\
            def doc():
                """Docs may say  # simlint: ignore[determinism]  freely."""
                return 42
            '''})
        assert analyze(root) == []

    def test_rule_filter_skips_unused_audit(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": """\
            def stamp():
                return 42  # simlint: ignore[determinism]
            """})
        assert analyze(root, rules=["layering"]) == []

    def test_unknown_rule_selection_rejected(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": "X = 1\n"})
        with pytest.raises(ValueError, match="unknown rule"):
            analyze(root, rules=["nope"])


class TestLiveTree:
    def test_committed_tree_is_clean(self):
        assert run_analysis([SRC_REPRO]) == []

    def test_cli_exit_codes(self, tmp_path):
        clean = run_cli_inprocess("--json")
        assert clean.returncode == 0, clean.stdout + clean.stderr
        assert '"count": 0' in clean.stdout

        # The dirty case stays a real subprocess: it doubles as the
        # fresh-interpreter smoke test, and the scratch package is tiny.
        bad = make_pkg(tmp_path, {"fs/mod.py": "import time\nT = time.time()\n"})
        dirty = subprocess.run(
            [sys.executable, "-m", "repro.analyze", str(bad)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(SRC_REPRO.parent), "PATH": "/usr/bin:/bin"})
        assert dirty.returncode == 1
        assert "determinism" in dirty.stdout

    def test_list_rules(self):
        out = run_cli_inprocess("--list-rules")
        assert out.returncode == 0
        for rule in ("determinism", "clock-accounting", "layering",
                     "errno-discipline", "hook-super", "timer-discard",
                     "rng-hygiene"):
            assert rule in out.stdout


class TestSuppressionRegistry:
    def run_check(self, root, registry):
        return run_cli_inprocess(str(root),
                                 "--check-suppression-registry", str(registry))

    def test_unregistered_suppression_fails(self, tmp_path):
        root = make_pkg(tmp_path, {
            "fs/mod.py": "X = 1  # simlint: ignore[determinism]\n"})
        registry = tmp_path / "ANALYSIS.md"
        registry.write_text("### Suppression registry\n\n(none)\n")
        out = self.run_check(root, registry)
        assert out.returncode == 1
        assert "mod.py:determinism" in out.stderr

    def test_registered_suppression_passes(self, tmp_path):
        root = make_pkg(tmp_path, {
            "fs/mod.py": "X = 1  # simlint: ignore[determinism]\n"})
        registry = tmp_path / "ANALYSIS.md"
        registry.write_text("### Suppression registry\n\n"
                            "- `mod.py:determinism` — test fixture.\n")
        out = self.run_check(root, registry)
        assert out.returncode == 0, out.stderr

    def test_stale_registry_entry_fails(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": "X = 1\n"})
        registry = tmp_path / "ANALYSIS.md"
        registry.write_text("### Suppression registry\n\n"
                            "- `gone.py:determinism` — removed long ago.\n")
        out = self.run_check(root, registry)
        assert out.returncode == 1
        assert "gone.py:determinism" in out.stderr

    def test_fenced_format_example_does_not_register(self, tmp_path):
        root = make_pkg(tmp_path, {"fs/mod.py": "X = 1\n"})
        registry = tmp_path / "ANALYSIS.md"
        registry.write_text("### Suppression registry\n\n(none)\n\n"
                            "```markdown\n"
                            "- `example.py:determinism` — just the format.\n"
                            "```\n")
        out = self.run_check(root, registry)
        assert out.returncode == 0, out.stderr

    def test_committed_registry_agrees_with_tree(self):
        repo = SRC_REPRO.parent.parent
        out = self.run_check(SRC_REPRO, repo / "ANALYSIS.md")
        assert out.returncode == 0, out.stderr


class TestFixedViolations:
    """Behavioral regressions for the live-tree violations the analyzer
    found when first run (see ANALYSIS.md for the war stories)."""

    def test_exit_charges_virtual_time(self, machine, syscalls):
        # clock-accounting: Syscalls.exit tears down fds (reaching
        # DirectoryInode.remove via /proc cleanup) and must charge the
        # virtual clock like its sibling kill() does.
        child = syscalls.spawn(["/usr/bin/child"])
        before = machine.clock.now_ns
        child.exit(0)
        assert machine.clock.now_ns > before

    def test_unshare_ns_id_assignment_is_deterministic(self):
        # determinism: unshare used to iterate its `kinds` set directly, so
        # which fresh namespace drew which sequential ns_id depended on hash
        # order.  Two independent interpreter runs must now agree exactly.
        script = textwrap.dedent("""\
            from repro.kernel.machine import boot
            from repro.kernel.namespaces import NamespaceKind

            machine = boot()
            sc = machine.spawn_host_process(["/usr/bin/p"])
            sc.unshare(NamespaceKind.UTS, NamespaceKind.MNT, NamespaceKind.PID)
            print([(k.name, sc.process.namespaces[k].ns_id)
                   for k in NamespaceKind])
            """)
        runs = [subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            env={"PYTHONPATH": str(SRC_REPRO.parent), "PATH": "/usr/bin:/bin",
                 "PYTHONHASHSEED": seed})
            for seed in ("1", "2")]
        assert all(r.returncode == 0 for r in runs), runs[0].stderr + runs[1].stderr
        assert runs[0].stdout == runs[1].stdout

    def test_filesystem_lifecycle_hooks_delegate(self):
        # hook-super: Ext4Fs/TmpFS `_inode_released` overrides shadowed the
        # base hook without delegating.
        assert run_analysis([SRC_REPRO], rules=["hook-super"]) == []

    def test_syscall_entry_points_all_charge(self):
        # clock-accounting over the live tree stays clean (exit() was the
        # one uncharged entry point).
        assert run_analysis([SRC_REPRO], rules=["clock-accounting"]) == []

    def test_no_wall_clock_outside_bench(self):
        assert run_analysis([SRC_REPRO], rules=["determinism"]) == []
