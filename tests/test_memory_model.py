"""The memory-pressure model: /proc/meminfo, ratio knobs, BDI, drop_caches.

Regression tests for the invariants the memory model introduced:

* ``/proc/meminfo`` and the ``vm.*`` sysctls resolve through one shared
  :class:`repro.fs.writeback.MemInfo`/:class:`VmSysctl`, so no reader can
  ever observe the two disagreeing;
* the ratio knobs resolve to byte thresholds against modelled memory with
  the bytes knobs winning when nonzero (Linux rule);
* writing ``/proc/sys/vm/drop_caches`` is observationally identical to the
  old direct ``fs.drop_caches()`` call (page counts, dentry-generation bump,
  subsequent lookup costs);
* O_SYNC/O_DSYNC writes leave no pending writeback behind;
* BDI bandwidth shaping charges exactly ``bytes / bandwidth``.
"""

from __future__ import annotations

import pytest

from repro.fs.constants import OpenFlags
from repro.fs.errors import FsError


def _read_proc(sc, path: str) -> str:
    fd = sc.open(path)
    try:
        return sc.read(fd, 1 << 16).decode()
    finally:
        sc.close(fd)


def _write_proc(sc, path: str, value) -> None:
    fd = sc.open(path, OpenFlags.O_WRONLY)
    try:
        sc.write(fd, f"{value}\n".encode())
    finally:
        sc.close(fd)


def _meminfo_kb(sc) -> dict[str, int]:
    fields = {}
    for line in _read_proc(sc, "/proc/meminfo").splitlines():
        label, rest = line.split(":", 1)
        fields[label] = int(rest.split()[0])
    return fields


class TestMeminfo:
    def test_memtotal_renders_the_modelled_memory(self, machine):
        fields = _meminfo_kb(machine.syscalls)
        assert fields["MemTotal"] == machine.kernel.mem.total_bytes >> 10
        # The historical static file said 16384000 kB; the model's default
        # reproduces it.
        assert fields["MemTotal"] == 16384000
        assert 0 <= fields["MemFree"] <= fields["MemTotal"]

    def test_dirty_field_tracks_engine_pending(self, machine, syscalls):
        before = _meminfo_kb(machine.syscalls)["Dirty"]
        fd = syscalls.open("/root/dirty.dat", OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.write(fd, b"d" * (256 << 10))
        after = _meminfo_kb(machine.syscalls)["Dirty"]
        assert after == before + 256
        syscalls.fsync(fd)
        syscalls.close(fd)
        assert _meminfo_kb(machine.syscalls)["Dirty"] == before

    def test_meminfo_and_ratios_share_one_source(self, machine):
        """The coherence invariant: /proc/meminfo and every engine's ratio
        resolution read the same MemInfo object, so changing the modelled
        memory moves both at once and no reader can see them disagree."""
        kernel = machine.kernel
        for engine in kernel.vm.engines():
            assert engine.meminfo is kernel.mem
        _write_proc(machine.syscalls, "/proc/sys/vm/dirty_ratio", 10)
        for total in (1 << 30, 256 << 20):
            kernel.mem.total_bytes = total
            memtotal_kb = _meminfo_kb(machine.syscalls)["MemTotal"]
            assert memtotal_kb == total >> 10
            limits = machine.rootfs.writeback.effective_limits()
            # What a reader computes from /proc/meminfo and /proc/sys/vm is
            # exactly what the flusher threads enforce.
            ratio = int(_read_proc(machine.syscalls, "/proc/sys/vm/dirty_ratio"))
            assert limits.dirty_bytes == (memtotal_kb << 10) * ratio // 100


class TestRatioKnobs:
    def test_ratio_resolves_against_modelled_memory(self, machine):
        machine.kernel.mem.total_bytes = 512 << 20
        # ext4's per-fs default background threshold is a nonzero bytes knob
        # and bytes knobs win; zero it first, as an operator would.
        _write_proc(machine.syscalls, "/proc/sys/vm/dirty_background_bytes", 0)
        _write_proc(machine.syscalls, "/proc/sys/vm/dirty_background_ratio", 5)
        limits = machine.rootfs.writeback.effective_limits()
        assert limits.dirty_background_bytes == (512 << 20) * 5 // 100

    def test_bytes_knob_wins_when_nonzero(self, machine):
        _write_proc(machine.syscalls, "/proc/sys/vm/dirty_ratio", 20)
        _write_proc(machine.syscalls, "/proc/sys/vm/dirty_bytes", 4096)
        assert machine.rootfs.writeback.effective_limits().dirty_bytes == 4096
        # Zeroing the bytes knob reactivates the ratio.
        _write_proc(machine.syscalls, "/proc/sys/vm/dirty_bytes", 0)
        expected = machine.kernel.mem.total_bytes * 20 // 100
        assert machine.rootfs.writeback.effective_limits().dirty_bytes == expected

    def test_ratio_range_is_validated(self, machine):
        with pytest.raises(FsError):
            _write_proc(machine.syscalls, "/proc/sys/vm/dirty_ratio", 101)
        with pytest.raises(FsError):
            _write_proc(machine.syscalls, "/proc/sys/vm/dirty_background_ratio", -1)

    def test_ratio_drives_flushes_like_bytes(self, machine, syscalls):
        """End-to-end: a ratio-derived threshold flushes at the same point
        the equivalent bytes threshold would."""
        machine.kernel.mem.total_bytes = 1 << 20          # 1 MiB modelled RAM
        _write_proc(machine.syscalls, "/proc/sys/vm/dirty_ratio", 25)   # 256 KiB
        engine = machine.rootfs.writeback
        flushes_before = engine.stats.flushes_by_reason.get("dirty_limit", 0)
        fd = syscalls.open("/root/ratio.dat", OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.write(fd, b"r" * (300 << 10))            # crosses 256 KiB
        syscalls.close(fd)
        assert engine.stats.flushes_by_reason.get("dirty_limit", 0) > flushes_before


class TestDropCachesProcfs:
    @staticmethod
    def _make_dirty_state(machine):
        sc = machine.syscalls
        sc.makedirs("/root/dropdir")
        fd = sc.open("/root/dropdir/data", OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        sc.write(fd, b"z" * (128 << 10))
        sc.close(fd)
        sc.stat("/root/dropdir/data")         # warm the dcache

    @staticmethod
    def _observe_after_drop(machine):
        rootfs = machine.rootfs
        clock = machine.kernel.clock
        start = clock.now_ns
        machine.syscalls.stat("/usr/bin/ls")  # post-drop lookup cost
        return {
            "resident_pages": len(rootfs.page_cache),
            "pending": rootfs.writeback.total_pending,
            "dentry_gen": rootfs.dentry_gen,
            "lookup_cost_ns": clock.now_ns - start,
        }

    def test_procfs_write_identical_to_direct_call(self):
        """The regression lock: `echo 3 > /proc/sys/vm/drop_caches` must be
        observationally identical to the old direct fs.drop_caches() call —
        same page counts, same dentry-generation bump, same post-drop lookup
        cost."""
        from repro.kernel.machine import boot

        direct, procfs = boot(), boot()
        for machine in (direct, procfs):
            self._make_dirty_state(machine)
        gen_deltas = []
        observed = []
        for machine, use_procfs in ((direct, False), (procfs, True)):
            gen_before = machine.rootfs.dentry_gen
            if use_procfs:
                _write_proc(machine.syscalls, "/proc/sys/vm/drop_caches", 3)
            else:
                machine.rootfs.drop_caches()
            state = self._observe_after_drop(machine)
            gen_deltas.append(state.pop("dentry_gen") - gen_before)
            observed.append(state)
        assert gen_deltas[0] == gen_deltas[1] == 1
        assert observed[0] == observed[1]
        assert observed[0]["resident_pages"] == 0
        assert observed[0]["pending"] == 0

    def test_mode_1_drops_pages_keeps_dentries(self, machine):
        self._make_dirty_state(machine)
        gen_before = machine.rootfs.dentry_gen
        _write_proc(machine.syscalls, "/proc/sys/vm/drop_caches", 1)
        assert len(machine.rootfs.page_cache) == 0
        assert machine.rootfs.writeback.total_pending == 0
        assert machine.rootfs.dentry_gen == gen_before

    def test_mode_2_drops_dentries_keeps_pages(self, machine):
        self._make_dirty_state(machine)
        pages_before = len(machine.rootfs.page_cache)
        assert pages_before > 0
        gen_before = machine.rootfs.dentry_gen
        _write_proc(machine.syscalls, "/proc/sys/vm/drop_caches", 2)
        assert len(machine.rootfs.page_cache) == pages_before
        assert machine.rootfs.dentry_gen == gen_before + 1

    def test_file_reads_back_last_written_mode(self, machine):
        assert _read_proc(machine.syscalls, "/proc/sys/vm/drop_caches") == "0\n"
        _write_proc(machine.syscalls, "/proc/sys/vm/drop_caches", 2)
        assert _read_proc(machine.syscalls, "/proc/sys/vm/drop_caches") == "2\n"

    def test_invalid_mode_rejected(self, machine):
        for bad in (0, 4, 7):
            with pytest.raises(FsError):
                _write_proc(machine.syscalls, "/proc/sys/vm/drop_caches", bad)

    def test_mount_registers_umount_unregisters(self, machine, syscalls):
        from repro.fs.ext4 import Ext4Fs

        kernel = machine.kernel
        extra = Ext4Fs("extra-drop", kernel.clock, kernel.costs)
        syscalls.makedirs("/mnt/extra-drop")
        syscalls.mount(extra, "/mnt/extra-drop")
        assert extra in kernel.vm.filesystems()
        assert extra.writeback.meminfo is kernel.mem
        syscalls.umount("/mnt/extra-drop")
        assert extra not in kernel.vm.filesystems()
        # The still-mounted root filesystem keeps its registration.
        assert machine.rootfs in kernel.vm.filesystems()


class TestReclaim:
    @staticmethod
    def _tighten(machine, slack_bytes):
        kernel = machine.kernel
        kernel.mem.reserved_bytes = 0
        kernel.mem.total_bytes = (kernel.vm.cached_bytes_total()
                                  + kernel.vm.dirty_bytes_total() + slack_bytes)
        kernel.mem.reclaim_enabled = True

    def test_budget_is_rendered_memavailable(self, machine):
        """The reclaim budget and /proc/meminfo's MemAvailable are the same
        number — one formula, two surfaces."""
        self._tighten(machine, 1 << 20)
        budget = machine.kernel.vm.cache_budget_bytes()
        fields = _meminfo_kb(machine.syscalls)
        assert budget >> 10 == fields["MemAvailable"]
        assert fields["MemFree"] >= 0

    def test_pressure_reclaims_to_budget(self, machine, syscalls):
        self._tighten(machine, 256 << 10)
        vm = machine.kernel.vm
        fd = syscalls.open("/root/pressure.dat",
                           OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.write(fd, b"p" * (1 << 20))
        syscalls.close(fd)
        assert vm.reclaim_stats.pages_reclaimed > 0
        assert vm.cached_bytes_total() <= vm.cache_budget_bytes()

    def test_disabled_budget_reads_none(self, machine):
        assert machine.kernel.vm.cache_budget_bytes() is None

    def test_vfs_cache_pressure_debt_accumulator(self, machine, syscalls):
        """Pressure 250 shrinks two dentry caches per pass and carries 50
        points of debt into the next pass (deterministic weighting)."""
        _write_proc(machine.syscalls, "/proc/sys/vm/vfs_cache_pressure", 250)
        self._tighten(machine, 128 << 10)
        vm = machine.kernel.vm
        fd = syscalls.open("/root/dcache.dat",
                           OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.write(fd, b"d" * (512 << 10))
        syscalls.close(fd)
        passes = vm.reclaim_stats.reclaims
        assert passes > 0
        expected = (passes * 250) // 100
        assert vm.reclaim_stats.dcache_shrinks == expected

    def test_snapshot_restore_roundtrip(self, machine):
        vm = machine.kernel.vm
        default_background = \
            machine.rootfs.writeback.tunables.dirty_background_bytes
        state = vm.snapshot()
        _write_proc(machine.syscalls, "/proc/sys/vm/dirty_background_bytes", 0)
        _write_proc(machine.syscalls, "/proc/sys/vm/dirty_writeback_centisecs", 7)
        assert machine.rootfs.writeback.tunables.dirty_background_bytes == 0
        assert machine.rootfs.writeback._flusher_timer is not None
        vm.restore(state)
        assert machine.rootfs.writeback.tunables.dirty_background_bytes == \
            default_background
        assert machine.rootfs.writeback._flusher_timer is None
        assert vm.get("dirty_writeback_centisecs") == 0


class TestPeriodicFlusher:
    def test_tick_flushes_without_write_activity(self, machine, syscalls):
        _write_proc(machine.syscalls, "/proc/sys/vm/dirty_writeback_centisecs", 4)
        engine = machine.rootfs.writeback
        fd = syscalls.open("/root/kupdate.dat",
                           OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.write(fd, b"k" * (64 << 10))
        ino = syscalls.fstat(fd).st_ino
        assert engine.pending(ino) > 0
        machine.clock.advance(9 * 10_000_000)     # two periods, zero writes
        assert engine.pending(ino) == 0
        assert engine.stats.flushes_by_reason.get("periodic", 0) >= 1
        syscalls.close(fd)

    def test_zero_keeps_the_flusher_asleep(self, machine, syscalls):
        engine = machine.rootfs.writeback
        fd = syscalls.open("/root/asleep.dat",
                           OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.write(fd, b"z" * (64 << 10))
        ino = syscalls.fstat(fd).st_ino
        machine.clock.advance(10_000_000_000)
        assert engine.pending(ino) == 64 << 10
        syscalls.close(fd)

    def test_mounting_under_live_knob_arms_the_engine(self, machine, syscalls):
        from repro.fs.ext4 import Ext4Fs

        _write_proc(machine.syscalls, "/proc/sys/vm/dirty_writeback_centisecs", 5)
        kernel = machine.kernel
        extra = Ext4Fs("late-mount", kernel.clock, kernel.costs)
        assert extra.writeback._flusher_timer is None
        syscalls.makedirs("/mnt/late")
        syscalls.mount(extra, "/mnt/late")
        assert extra.writeback._flusher_timer is not None

    def test_umount_disarms_the_flusher_timer(self, machine, syscalls):
        """A detached engine must not keep firing on — and charging flush
        costs into — the shared clock after its filesystem goes away."""
        from repro.fs.ext4 import Ext4Fs

        _write_proc(machine.syscalls, "/proc/sys/vm/dirty_writeback_centisecs", 5)
        kernel = machine.kernel
        extra = Ext4Fs("transient", kernel.clock, kernel.costs)
        syscalls.makedirs("/mnt/transient")
        syscalls.mount(extra, "/mnt/transient")
        fd = syscalls.open("/mnt/transient/dirty.dat",
                           OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.write(fd, b"t" * 8192)
        syscalls.close(fd)
        syscalls.umount("/mnt/transient")
        assert extra.writeback._flusher_timer is None
        pending = extra.writeback.total_pending
        machine.clock.advance(10 * 10_000_000)
        assert extra.writeback.total_pending == pending
        assert extra.writeback.stats.flushes_by_reason.get("periodic", 0) == 0

    def test_restore_does_not_rearm_unmounted_engine(self, machine, syscalls):
        """A knob snapshot taken while an engine was mounted must not, on
        restore, re-arm the kupdate timer of an engine unmounted in between
        (the conformance harness snapshot/restore straddles every case)."""
        from repro.fs.ext4 import Ext4Fs

        _write_proc(machine.syscalls, "/proc/sys/vm/dirty_writeback_centisecs", 5)
        kernel = machine.kernel
        extra = Ext4Fs("straddled", kernel.clock, kernel.costs)
        syscalls.makedirs("/mnt/straddled")
        syscalls.mount(extra, "/mnt/straddled")
        assert extra.writeback._flusher_timer is not None
        state = kernel.vm.snapshot()
        syscalls.umount("/mnt/straddled")
        assert extra.writeback._flusher_timer is None
        kernel.vm.restore(state)
        assert extra.writeback._flusher_timer is None
        flushes = extra.writeback.stats.flushes_by_reason.get("periodic", 0)
        machine.clock.advance(10 * 10_000_000)
        assert extra.writeback.stats.flushes_by_reason.get("periodic", 0) == flushes
        # A later remount re-registers the engine and re-arms it normally.
        syscalls.mount(extra, "/mnt/straddled")
        assert extra.writeback._flusher_timer is not None
        syscalls.umount("/mnt/straddled")

    def test_unregister_disarms_non_sysctl_engine(self):
        """An engine outside the /proc/sys/vm control (tmpfs style) whose
        private tunables enable the periodic flusher still follows the mount
        lifecycle: registration re-arms it, unregistration disarms it."""
        from repro.fs.writeback import VmSysctl, VmTunables, WritebackEngine
        from repro.sim.clock import VirtualClock

        clock = VirtualClock()
        engine = WritebackEngine(
            "private", VmTunables(dirty_writeback_centisecs=5),
            lambda items, reason: None, clock=clock, sysctl_tunable=False)
        assert engine._flusher_timer is not None    # armed at construction
        vm = VmSysctl()
        vm.register(engine)
        assert engine not in vm.engines()           # stays outside vm.* knobs
        assert engine._flusher_timer is not None
        vm.unregister(engine)
        assert engine._flusher_timer is None
        clock.advance(10 * 10_000_000)              # orphan would re-arm here
        assert engine._flusher_timer is None
        vm.register(engine)                         # remount re-arms
        assert engine._flusher_timer is not None


class TestReadShaping:
    def test_sysfs_directory_follows_mounts(self, machine, syscalls):
        from repro.fs.ext4 import Ext4Fs

        sc = machine.syscalls
        names = sc.listdir("/sys/class/bdi")
        assert machine.rootfs.device.bdi.name in names
        kernel = machine.kernel
        extra = Ext4Fs("bdi-probe", kernel.clock, kernel.costs)
        syscalls.makedirs("/mnt/bdi-probe")
        syscalls.mount(extra, "/mnt/bdi-probe")
        assert extra.device.bdi.name in sc.listdir("/sys/class/bdi")
        syscalls.umount("/mnt/bdi-probe")
        assert extra.device.bdi.name not in sc.listdir("/sys/class/bdi")

    def test_colliding_device_names_stay_reachable(self, machine, syscalls):
        """Two mounts whose devices share a name both appear in
        /sys/class/bdi (the second is disambiguated) and each file retunes
        its own device."""
        from repro.fs.ext4 import Ext4Fs

        kernel = machine.kernel
        twins = []
        for mountpoint in ("/mnt/twin-a", "/mnt/twin-b"):
            fs = Ext4Fs("twin", kernel.clock, kernel.costs)
            syscalls.makedirs(mountpoint)
            syscalls.mount(fs, mountpoint)
            twins.append(fs)
        names = {fs.device.bdi.name for fs in twins}
        assert len(names) == 2
        sc = machine.syscalls
        listed = set(sc.listdir("/sys/class/bdi"))
        assert names <= listed
        fd = sc.open(f"/sys/class/bdi/{twins[1].device.bdi.name}/read_ahead_kb",
                     OpenFlags.O_WRONLY)
        sc.write(fd, b"64\n")
        sc.close(fd)
        assert twins[1].device.bdi.read_ahead_kb == 64
        assert twins[0].device.bdi.read_ahead_kb is None

    def test_non_kib_max_readahead_window_is_preserved(self, machine):
        """The FUSE BDI falls back to the mount's *exact* max_readahead —
        odd windows are neither floored to KiB nor silently disabled."""
        from repro.fs.writeback import BacklogDeviceInfo

        bdi = BacklogDeviceInfo("odd", default_read_ahead_bytes=512)
        assert bdi.read_ahead_bytes == 512
        bdi.read_ahead_kb = 4
        assert bdi.read_ahead_bytes == 4096
        bdi.read_ahead_kb = None
        assert bdi.read_ahead_bytes == 512

    def test_read_ahead_kb_write_retunes_the_device(self, machine):
        sc = machine.syscalls
        path = f"/sys/class/bdi/{machine.rootfs.device.bdi.name}/read_ahead_kb"
        fd = sc.open(path, OpenFlags.O_WRONLY)
        sc.write(fd, b"256\n")
        sc.close(fd)
        assert machine.rootfs.device.bdi.read_ahead_kb == 256
        assert sc.read(sc.open(path), 64) == b"256\n"

    def test_ext4_readahead_batches_sequential_misses(self, machine, syscalls):
        rootfs = machine.rootfs
        fd = syscalls.open("/root/ra.dat", OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.write(fd, b"r" * (256 << 10))
        syscalls.close(fd)

        def cold_read_device_reads() -> int:
            rootfs.drop_caches(1)
            before = rootfs.device.stats.reads
            rfd = syscalls.open("/root/ra.dat", OpenFlags.O_RDONLY)
            for offset in range(0, 256 << 10, 16 << 10):
                syscalls.pread(rfd, 16 << 10, offset)
            syscalls.close(rfd)
            return rootfs.device.stats.reads - before

        unbatched = cold_read_device_reads()     # default: no readahead
        rootfs.device.bdi.read_ahead_kb = 128
        try:
            batched = cold_read_device_reads()
        finally:
            rootfs.device.bdi.read_ahead_kb = None
        assert unbatched == 16
        assert batched == 2

    def test_read_bandwidth_charges_exactly(self, machine, syscalls):
        rootfs = machine.rootfs
        fd = syscalls.open("/root/shaped-read.dat",
                           OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.write(fd, b"s" * (128 << 10))
        syscalls.close(fd)
        rootfs.drop_caches(1)
        bdi = rootfs.device.bdi
        bdi.read_bandwidth_bytes_s = 64 << 20
        try:
            before = machine.clock.now_ns
            rfd = syscalls.open("/root/shaped-read.dat", OpenFlags.O_RDONLY)
            syscalls.read(rfd, 128 << 10)
            syscalls.close(rfd)
            assert bdi.stats.shaped_read_bytes == 128 << 10
            assert bdi.stats.read_busy_ns == \
                (128 << 10) * 1_000_000_000 // (64 << 20)
            assert machine.clock.now_ns - before >= bdi.stats.read_busy_ns
        finally:
            bdi.read_bandwidth_bytes_s = 0


class TestSyncOpenFlags:
    def test_o_sync_write_flushes_pending(self, machine, syscalls):
        engine = machine.rootfs.writeback
        fd = syscalls.open("/root/osync.dat",
                           OpenFlags.O_CREAT | OpenFlags.O_WRONLY | OpenFlags.O_SYNC)
        syscalls.write(fd, b"s" * 8192)
        ino = syscalls.fstat(fd).st_ino
        assert engine.pending(ino) == 0
        assert engine.stats.flushes_by_reason.get("fsync", 0) >= 1
        syscalls.close(fd)

    def test_o_dsync_write_flushes_pending(self, machine, syscalls):
        engine = machine.rootfs.writeback
        fd = syscalls.open("/root/odsync.dat",
                           OpenFlags.O_CREAT | OpenFlags.O_WRONLY | OpenFlags.O_DSYNC)
        syscalls.write(fd, b"d" * 8192)
        assert engine.pending(syscalls.fstat(fd).st_ino) == 0
        syscalls.close(fd)

    def test_plain_write_keeps_pending(self, machine, syscalls):
        engine = machine.rootfs.writeback
        fd = syscalls.open("/root/lazy.dat",
                           OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.write(fd, b"l" * 8192)
        assert engine.pending(syscalls.fstat(fd).st_ino) == 8192
        syscalls.close(fd)


class TestBdiShaping:
    def test_flush_charges_bytes_over_bandwidth(self, machine, syscalls):
        device_bdi = machine.rootfs.device.bdi
        assert machine.rootfs.writeback.bdi is device_bdi
        device_bdi.write_bandwidth_bytes_s = 100 << 20        # 100 MiB/s
        fd = syscalls.open("/root/shaped.dat",
                           OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.write(fd, b"b" * (1 << 20))
        ino = syscalls.fstat(fd).st_ino
        pending = machine.rootfs.writeback.pending(ino)
        busy_before = device_bdi.stats.busy_ns
        clock_before = machine.kernel.clock.now_ns
        syscalls.fsync(fd)
        syscalls.close(fd)
        shaped_ns = device_bdi.stats.busy_ns - busy_before
        assert shaped_ns == pending * 1_000_000_000 // (100 << 20)
        # The shaping is part of the caller-visible virtual time of the flush.
        assert machine.kernel.clock.now_ns - clock_before >= shaped_ns

    def test_default_bandwidth_is_unshaped(self, machine, syscalls):
        fd = syscalls.open("/root/unshaped.dat",
                           OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.write(fd, b"u" * (1 << 20))
        syscalls.fsync(fd)
        syscalls.close(fd)
        assert machine.rootfs.device.bdi.stats.busy_ns == 0
        assert machine.rootfs.device.bdi.stats.shaped_flushes == 0
