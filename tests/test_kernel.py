"""Tests for the kernel layer: processes, namespaces, cgroups, IPC, /proc."""

import errno

import pytest

from repro.fs.constants import OpenFlags
from repro.fs.errors import FsError
from repro.kernel.capabilities import CapabilitySet, DOCKER_DEFAULT_CAPS
from repro.kernel.namespaces import NamespaceKind
from repro.kernel.objects import make_pipe, make_pty, make_socketpair


class TestBoot:
    def test_init_is_pid_one(self, machine):
        assert machine.init.pid == 1
        assert machine.init.ppid == 0

    def test_host_filesystem_layout(self, machine):
        sc = machine.syscalls
        assert sc.stat("/usr/bin/gdb").st_size > 1_000_000
        assert sc.readlink("/bin/bash") == "/usr/bin/bash"
        assert "proc" in [m["fs_type"] for m in sc.mount_table()]

    def test_devices_work(self, machine):
        sc = machine.syscalls
        fd = sc.open("/dev/zero")
        assert sc.read(fd, 8) == b"\x00" * 8
        sc.close(fd)
        fd = sc.open("/dev/null")
        assert sc.write(fd, b"discard") == 7
        sc.close(fd)


class TestProcesses:
    def test_fork_inherits_environment_and_cwd(self, machine, syscalls):
        syscalls.setenv("MARKER", "42")
        child = syscalls.spawn(["/usr/bin/child"])
        assert child.getenv("MARKER") == "42"
        assert child.getcwd() == syscalls.getcwd()

    def test_exit_removes_process(self, machine, syscalls):
        child = syscalls.spawn(["/usr/bin/child"])
        pid = child.process.pid
        child.exit(0)
        assert pid not in machine.kernel.processes

    def test_kill_requires_permission(self, machine, syscalls):
        victim = syscalls.spawn(["/usr/bin/victim"])
        attacker = syscalls.spawn(["/usr/bin/attacker"])
        attacker.process.uid = 999
        attacker.process.caps = CapabilitySet.empty()
        with pytest.raises(FsError):
            attacker.kill(victim.process.pid)

    def test_fd_limit(self, machine, syscalls):
        syscalls.process.rlimits.nofile = 4
        syscalls.open("/etc/hostname")
        with pytest.raises(FsError) as exc:
            for _ in range(10):
                syscalls.open("/etc/hostname")
        assert exc.value.errno == errno.EMFILE

    def test_rlimit_fsize_independent_after_fork(self, machine, syscalls):
        child = syscalls.spawn(["/usr/bin/child"])
        child.setrlimit_fsize(1024)
        assert syscalls.process.rlimits.fsize_bytes is None


class TestNamespaces:
    def test_unshare_uts_isolates_hostname(self, machine, syscalls):
        original = syscalls.gethostname()
        syscalls.unshare(NamespaceKind.UTS)
        syscalls.sethostname("isolated")
        assert syscalls.gethostname() == "isolated"
        assert machine.syscalls.gethostname() == original

    def test_unshare_mount_namespace_isolates_mounts(self, machine, syscalls):
        from repro.fs.tmpfs import TmpFS
        syscalls.unshare(NamespaceKind.MNT)
        syscalls.process.mnt_ns.make_all_private()
        extra = TmpFS("extra", machine.kernel.clock, machine.kernel.costs)
        syscalls.makedirs("/mnt/extra")
        syscalls.mount(extra, "/mnt/extra")
        child_mounts = [m["mountpoint"] for m in syscalls.mount_table()]
        host_mounts = [m["mountpoint"] for m in machine.syscalls.mount_table()]
        assert "/mnt/extra" in child_mounts
        assert "/mnt/extra" not in host_mounts

    def test_setns_joins_target_namespace(self, machine, syscalls):
        target = machine.spawn_host_process(["/usr/bin/target"])
        target.unshare(NamespaceKind.UTS)
        target.sethostname("target-ns")
        syscalls.setns(target.process.namespaces[NamespaceKind.UTS])
        assert syscalls.gethostname() == "target-ns"

    def test_unshare_requires_cap_sys_admin(self, machine, syscalls):
        syscalls.process.caps = CapabilitySet.for_container()
        with pytest.raises(FsError):
            syscalls.unshare(NamespaceKind.MNT)

    def test_pid_namespace_virtual_pids(self, machine, syscalls):
        syscalls.unshare(NamespaceKind.PID)
        child = syscalls.spawn(["/usr/bin/inner"])
        assert child.getpid() != child.getpid_global() or child.getpid() == 1

    def test_chroot_confines_path_resolution(self, machine, syscalls):
        syscalls.makedirs("/jail/etc")
        fd = syscalls.open("/jail/etc/inside", OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
        syscalls.write(fd, b"jailed")
        syscalls.close(fd)
        syscalls.chroot("/jail")
        assert syscalls.read(syscalls.open("/etc/inside"), 100) == b"jailed"
        assert not syscalls.exists("/usr/bin/gdb")
        assert syscalls.exists("/../../etc/inside")


class TestCgroupsAndCaps:
    def test_cgroup_attach_and_lookup(self, machine):
        cg = machine.kernel.cgroups
        cg.attach(123, "/docker/abc")
        assert cg.cgroup_of(123).path == "/docker/abc"
        assert cg.proc_cgroup_line(123) == "0::/docker/abc"

    def test_cgroup_limits_inherit(self, machine):
        cg = machine.kernel.cgroups
        parent = cg.create("/limited")
        parent.limits.memory_limit_bytes = 1 << 30
        child = cg.create("/limited/app")
        assert child.effective_memory_limit() == 1 << 30

    def test_cgroup_remove_busy(self, machine):
        cg = machine.kernel.cgroups
        cg.attach(5, "/busy")
        with pytest.raises(FsError):
            cg.remove("/busy")

    def test_capability_drop(self):
        caps = CapabilitySet.for_host_root().drop({"CAP_SYS_ADMIN"})
        assert not caps.has("CAP_SYS_ADMIN")
        assert caps.has("CAP_CHOWN")

    def test_container_capabilities_are_limited(self):
        caps = CapabilitySet.for_container()
        assert caps.effective == DOCKER_DEFAULT_CAPS
        assert not caps.has("CAP_SYS_ADMIN")


class TestProcfs:
    def test_environ_and_cmdline(self, machine, syscalls):
        syscalls.setenv("FOO", "BAR")
        pid = syscalls.process.pid
        sc = machine.syscalls
        blob = sc.read(sc.open(f"/proc/{pid}/environ"), 1 << 16)
        assert b"FOO=BAR" in blob
        cmdline = sc.read(sc.open(f"/proc/{pid}/cmdline"), 1 << 16)
        assert b"test-process" in cmdline

    def test_ns_links_differ_after_unshare(self, machine, syscalls):
        sc = machine.syscalls
        before = sc.readlink(f"/proc/{syscalls.process.pid}/ns/uts")
        syscalls.unshare(NamespaceKind.UTS)
        after = sc.readlink(f"/proc/{syscalls.process.pid}/ns/uts")
        assert before != after

    def test_status_contains_capabilities(self, machine):
        sc = machine.syscalls
        text = sc.read(sc.open("/proc/1/status"), 1 << 16).decode()
        assert "CapEff" in text and "Pid:\t1" in text

    def test_missing_pid_raises_enoent(self, machine):
        sc = machine.syscalls
        with pytest.raises(FsError):
            sc.open("/proc/99999/status")

    def test_proc_listing_contains_pids(self, machine, syscalls):
        names = machine.syscalls.listdir("/proc")
        assert str(syscalls.process.pid) in names


class TestProcSysVm:
    def test_listing_and_defaults(self, machine):
        sc = machine.syscalls
        assert "sys" in sc.listdir("/proc")
        assert sc.listdir("/proc/sys") == ["vm"]
        names = sc.listdir("/proc/sys/vm")
        assert set(names) == {"dirty_background_bytes", "dirty_background_ratio",
                              "dirty_bytes", "dirty_expire_centisecs",
                              "dirty_ratio", "dirty_writeback_centisecs",
                              "vfs_cache_pressure", "drop_caches"}
        # 0 means "per-filesystem defaults in effect"; vfs_cache_pressure
        # reads Linux's default of 100 instead.
        for name in names:
            expected = b"100\n" if name == "vfs_cache_pressure" else b"0\n"
            assert sc.read(sc.open(f"/proc/sys/vm/{name}"), 64) == expected

    def test_write_retunes_mounted_filesystems(self, machine):
        from repro.fs.constants import OpenFlags

        sc = machine.syscalls
        fd = sc.open("/proc/sys/vm/dirty_bytes", OpenFlags.O_WRONLY)
        sc.write(fd, b"1048576\n")
        sc.close(fd)
        assert sc.read(sc.open("/proc/sys/vm/dirty_bytes"), 64) == b"1048576\n"
        # The rootfs ext4 engine is registered at boot and follows the knob;
        # its background threshold keeps its per-fs default.
        assert machine.rootfs.writeback.tunables.dirty_bytes == 1 << 20
        assert machine.rootfs.writeback.tunables.dirty_background_bytes == 256 << 20

    def test_mounting_registers_engine(self, machine, syscalls):
        from repro.fs.constants import OpenFlags
        from repro.fs.ext4 import Ext4Fs

        kernel = machine.kernel
        fd = machine.syscalls.open("/proc/sys/vm/dirty_background_bytes",
                                   OpenFlags.O_WRONLY)
        machine.syscalls.write(fd, b"65536\n")
        machine.syscalls.close(fd)
        extra = Ext4Fs("extra", kernel.clock, kernel.costs)
        syscalls.makedirs("/mnt/extra")
        syscalls.mount(extra, "/mnt/extra")
        # Registration applies the already-written kernel-wide knob.
        assert extra.writeback.tunables.dirty_background_bytes == 65536

    def test_umount_unregisters_engine(self, machine, syscalls):
        from repro.fs.ext4 import Ext4Fs

        kernel = machine.kernel
        extra = Ext4Fs("ephemeral", kernel.clock, kernel.costs)
        syscalls.makedirs("/mnt/ephemeral")
        syscalls.mount(extra, "/mnt/ephemeral")
        assert extra.writeback in kernel.vm.engines()
        syscalls.umount("/mnt/ephemeral")
        assert extra.writeback not in kernel.vm.engines()
        # The rootfs engine (still mounted) is untouched.
        assert machine.rootfs.writeback in kernel.vm.engines()

    def test_unlinked_inode_releases_writeback_state(self, machine, syscalls):
        from repro.fs.constants import OpenFlags

        rootfs = machine.rootfs
        pending_before = len(rootfs.writeback.pending_inodes())
        dirty_before = rootfs.page_cache.dirty_page_count()
        syscalls.makedirs("/var/churn")
        for i in range(20):
            fd = syscalls.open(f"/var/churn/f{i}",
                               OpenFlags.O_CREAT | OpenFlags.O_WRONLY)
            syscalls.write(fd, b"x" * 8192)
            syscalls.close(fd)
            syscalls.unlink(f"/var/churn/f{i}")
        # Inode eviction discarded the deleted files' dirty pages and pending
        # bytes: create/delete churn must not grow either map.
        assert len(rootfs.writeback.pending_inodes()) == pending_before
        assert rootfs.page_cache.dirty_page_count() == dirty_before

    def test_invalid_value_rejected(self, machine):
        from repro.fs.constants import OpenFlags

        sc = machine.syscalls
        for payload in (b"not-a-number", b"-5"):
            fd = sc.open("/proc/sys/vm/dirty_bytes", OpenFlags.O_WRONLY)
            with pytest.raises(FsError):
                sc.write(fd, payload)
            sc.close(fd)

    def test_other_proc_files_stay_read_only(self, machine):
        from repro.fs.constants import OpenFlags

        sc = machine.syscalls
        with pytest.raises(FsError):
            fd = sc.open("/proc/version", OpenFlags.O_WRONLY)
            sc.write(fd, b"nope")


class TestIpcObjects:
    def test_pipe_roundtrip(self):
        read_end, write_end = make_pipe()
        write_end.write(b"through the pipe")
        assert read_end.read(100) == b"through the pipe"

    def test_pipe_eof_after_writer_close(self):
        read_end, write_end = make_pipe()
        write_end.close()
        assert read_end.read(10) == b""

    def test_pipe_epipe_after_reader_close(self):
        read_end, write_end = make_pipe()
        read_end.close()
        with pytest.raises(FsError) as exc:
            write_end.write(b"x")
        assert exc.value.errno == errno.EPIPE

    def test_socketpair_bidirectional(self):
        a, b = make_socketpair()
        a.write(b"ping")
        b.write(b"pong")
        assert b.read(10) == b"ping"
        assert a.read(10) == b"pong"

    def test_pty_master_slave(self):
        master, slave = make_pty(0)
        master.write(b"ls\n")
        assert slave.read(10) == b"ls\n"
        slave.write(b"file1 file2\n")
        assert master.read(100) == b"file1 file2\n"

    def test_unix_socket_via_syscalls(self, machine, syscalls):
        server = machine.spawn_host_process(["/usr/bin/server"])
        server.unix_listen("/run/test.sock")
        client_fd = syscalls.unix_connect("/run/test.sock")
        conn_fd = server.unix_accept(3)          # listener is the first fd (3)
        syscalls.write(client_fd, b"hello server")
        assert server.read(conn_fd, 100) == b"hello server"

    def test_unix_connect_without_listener_refused(self, machine, syscalls):
        with pytest.raises(FsError) as exc:
            syscalls.unix_connect("/run/absent.sock")
        assert exc.value.errno == errno.ENOENT or exc.value.errno == errno.ECONNREFUSED

    def test_epoll_reports_readable_socket(self, machine, syscalls):
        fd_a, fd_b = syscalls.socketpair()
        epfd = syscalls.epoll_create()
        syscalls.epoll_ctl_add(epfd, fd_a, {"in"})
        assert syscalls.epoll_wait(epfd) == []
        syscalls.write(fd_b, b"wake up")
        events = syscalls.epoll_wait(epfd)
        assert events and events[0][0] == fd_a

    def test_splice_between_file_and_socket(self, machine, syscalls):
        fd = syscalls.open("/tmp/splice-src", OpenFlags.O_CREAT | OpenFlags.O_RDWR)
        syscalls.write(fd, b"spliced payload")
        syscalls.lseek(fd, 0)
        sock_a, sock_b = syscalls.socketpair()
        moved = syscalls.splice(fd, sock_a, 1 << 16)
        assert moved == len(b"spliced payload")
        assert syscalls.read(sock_b, 100) == b"spliced payload"

    def test_ptrace_allowed_within_same_pid_namespace(self, machine, syscalls):
        target = machine.spawn_host_process(["/usr/bin/app"])
        assert syscalls.ptrace_attach(target.process.pid)
