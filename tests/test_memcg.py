"""The cgroup memory controller: charging, reclaim, throttling, cgroupfs.

Four contracts are locked down here (see PERFORMANCE.md "Per-cgroup memory
and write throttling"):

* **attribution** — page-cache and dirty bytes are charged, hierarchically,
  to the cgroup of the process whose syscall created them; uncharging is
  conservative (the root's counters always equal the kernel-wide totals).
* **enforcement** — ``memory.max`` is honoured by per-cgroup LRU reclaim
  (flush-before-drop through the owning engine) and ``memory.high`` by
  deterministic writer stalls; the ``stats_memory_peak`` watermark follows
  the charges.
* **validation** — the cgroupfs rejects malformed limits with EINVAL and
  reclaims synchronously when ``memory.max`` drops below the usage.
* **default equivalence** — with no limit configured anywhere the whole
  system is observationally identical to the PR 4 engine (same page-cache
  state, same flush batches, same virtual time), the memcg analogue of the
  infinite-budget ≡ seed property.
"""

from __future__ import annotations

import errno

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.constants import OpenFlags
from repro.fs.errors import FsError
from repro.fs.pagecache import PageCache
from repro.fs.writeback import VmSysctl, VmTunables, WritebackEngine
from repro.kernel.cgroups import CgroupHierarchy, CgroupLimits
from repro.kernel.memcg import MemcgController
from repro.sim.clock import VirtualClock

CREAT_WR = OpenFlags.O_CREAT | OpenFlags.O_WRONLY


def _write_file(sc, path, payload):
    fd = sc.open(path, CREAT_WR, 0o644)
    try:
        sc.write(fd, payload)
    finally:
        sc.close(fd)


def _cgroupfs_write(sc, path, payload: bytes):
    fd = sc.open(path, OpenFlags.O_WRONLY)
    try:
        sc.write(fd, payload)
    finally:
        sc.close(fd)


def _cgroupfs_read(sc, path) -> bytes:
    fd = sc.open(path, OpenFlags.O_RDONLY)
    try:
        return sc.read(fd, 1 << 14)
    finally:
        sc.close(fd)


class TestChargeAttribution:
    def test_charges_follow_the_calling_process_cgroup(self, machine, syscalls):
        cgroup = machine.kernel.cgroups.attach(syscalls.process.pid, "/box")
        _write_file(syscalls, "/root/owned.dat", b"o" * (64 << 10))
        assert cgroup.mem_cache_bytes == 64 << 10
        assert cgroup.mem_dirty_bytes == 64 << 10
        # Hierarchy: the root covers the child's charges.
        root = machine.kernel.cgroups.root
        assert root.mem_cache_bytes >= cgroup.mem_cache_bytes

    def test_root_counters_equal_kernel_totals(self, machine, syscalls):
        kernel = machine.kernel
        _write_file(syscalls, "/root/a.dat", b"a" * (128 << 10))
        machine.kernel.cgroups.attach(syscalls.process.pid, "/other")
        _write_file(syscalls, "/root/b.dat", b"b" * (64 << 10))
        root = kernel.cgroups.root
        assert root.mem_cache_bytes == kernel.vm.cached_bytes_total()
        assert root.mem_dirty_bytes == kernel.vm.dirty_bytes_total()

    def test_uncharge_on_drop_caches(self, machine, syscalls):
        cgroup = machine.kernel.cgroups.attach(syscalls.process.pid, "/box")
        _write_file(syscalls, "/root/gone.dat", b"g" * (64 << 10))
        assert cgroup.mem_cache_bytes > 0
        machine.kernel.vm.drop_caches(1)
        assert cgroup.mem_cache_bytes == 0
        assert cgroup.mem_dirty_bytes == 0
        assert machine.kernel.cgroups.root.mem_cache_bytes == \
            machine.kernel.vm.cached_bytes_total()

    def test_flush_uncharges_dirty_only(self, machine, syscalls):
        cgroup = machine.kernel.cgroups.attach(syscalls.process.pid, "/box")
        fd = syscalls.open("/root/f.dat", CREAT_WR, 0o644)
        try:
            syscalls.write(fd, b"f" * (64 << 10))
            assert cgroup.mem_dirty_bytes == 64 << 10
            syscalls.fsync(fd)
            assert cgroup.mem_dirty_bytes == 0
            assert cgroup.mem_cache_bytes == 64 << 10
        finally:
            syscalls.close(fd)

    def test_unmount_releases_the_charges(self, machine, syscalls):
        from repro.fs.ext4 import Ext4Fs

        kernel = machine.kernel
        cgroup = kernel.cgroups.attach(syscalls.process.pid, "/box")
        extra = Ext4Fs("memcg-extra", kernel.clock, kernel.costs, kernel.tracer)
        syscalls.makedirs("/mnt/extra")
        syscalls.mount(extra, "/mnt/extra")
        _write_file(syscalls, "/mnt/extra/x.dat", b"x" * (64 << 10))
        assert cgroup.mem_cache_bytes == 64 << 10
        syscalls.umount("/mnt/extra")
        assert cgroup.mem_cache_bytes == 0
        assert kernel.cgroups.root.mem_cache_bytes == \
            kernel.vm.cached_bytes_total()


class TestEnforcement:
    def test_memory_max_bounds_usage(self, machine, syscalls):
        cgroup = machine.kernel.cgroups.attach(syscalls.process.pid, "/box")
        cgroup.limits.memory_limit_bytes = 128 << 10
        _write_file(syscalls, "/root/big.dat", b"B" * (512 << 10))
        assert cgroup.mem_cache_bytes <= 128 << 10
        stats = cgroup.memcg_stats
        assert stats.pages_reclaimed == stats.pages_dropped + stats.pages_flushed
        assert stats.bytes_reclaimed == stats.pages_reclaimed * 4096
        assert stats.bytes_reclaimed >= 384 << 10

    def test_tightest_limit_wins(self, machine, syscalls):
        hierarchy = machine.kernel.cgroups
        parent = hierarchy.create("/pod")
        parent.limits.memory_limit_bytes = 128 << 10
        child = hierarchy.attach(syscalls.process.pid, "/pod/leaf")
        child.limits.memory_limit_bytes = 1 << 20
        assert child.effective_memory_limit() == 128 << 10
        _write_file(syscalls, "/root/tree.dat", b"T" * (512 << 10))
        assert parent.mem_cache_bytes <= 128 << 10
        assert child.mem_cache_bytes <= 128 << 10
        assert parent.memcg_stats.pages_reclaimed > 0

    def test_sibling_isolation(self, machine, syscalls):
        hierarchy = machine.kernel.cgroups
        quiet = hierarchy.attach(syscalls.process.pid, "/quiet")
        _write_file(syscalls, "/root/quiet.dat", b"q" * (128 << 10))
        quiet_usage = quiet.mem_cache_bytes
        assert quiet_usage == 128 << 10
        greedy = hierarchy.attach(syscalls.process.pid, "/greedy")
        greedy.limits.memory_limit_bytes = 64 << 10
        _write_file(syscalls, "/root/greedy.dat", b"G" * (256 << 10))
        assert greedy.memcg_stats.pages_reclaimed > 0
        assert quiet.mem_cache_bytes == quiet_usage

    def test_memory_peak_watermark_is_driven(self, machine, syscalls):
        """The satellite bugfix: stats_memory_peak was declared but never
        updated — it now tracks the high watermark of memory.current."""
        cgroup = machine.kernel.cgroups.attach(syscalls.process.pid, "/box")
        assert cgroup.stats_memory_peak == 0
        _write_file(syscalls, "/root/p1.dat", b"1" * (256 << 10))
        assert cgroup.stats_memory_peak == 256 << 10
        machine.kernel.vm.drop_caches(1)
        assert cgroup.mem_cache_bytes == 0
        assert cgroup.stats_memory_peak == 256 << 10
        _write_file(syscalls, "/root/p2.dat", b"2" * (512 << 10))
        assert cgroup.stats_memory_peak >= 512 << 10

    def test_memcg_runs_under_the_global_budget(self, machine, syscalls):
        """Layering: per-cgroup limits first, the kernel-wide MemAvailable
        budget afterwards — both are enforced on the same growth."""
        kernel = machine.kernel
        kernel.vm.drop_caches(3)
        cgroup = kernel.cgroups.attach(syscalls.process.pid, "/box")
        cgroup.limits.memory_limit_bytes = 256 << 10
        mem = kernel.mem
        mem.reserved_bytes = 0
        mem.total_bytes = kernel.vm.cached_bytes_total() \
            + kernel.vm.dirty_bytes_total() + (128 << 10)
        mem.reclaim_enabled = True
        _write_file(syscalls, "/root/both.dat", b"L" * (512 << 10))
        budget = kernel.vm.cache_budget_bytes()
        assert budget is not None
        assert kernel.vm.cached_bytes_total() <= budget
        assert cgroup.mem_cache_bytes <= 256 << 10


class TestThrottle:
    def test_stall_formula_and_determinism(self, machine, syscalls):
        kernel = machine.kernel
        rate = kernel.memcg.throttle_ns_per_byte
        record = 64 << 10

        def run(tag: str) -> tuple[int, int, int]:
            cgroup = kernel.cgroups.attach(syscalls.process.pid, f"/t{tag}")
            cgroup.limits.memory_high_bytes = record
            t0 = kernel.clock.now_ns
            fd = syscalls.open(f"/root/thr-{tag}.dat", CREAT_WR, 0o644)
            try:
                for _ in range(4):
                    syscalls.write(fd, b"s" * record)
            finally:
                syscalls.close(fd)
            return (cgroup.memcg_stats.throttle_stall_ns,
                    cgroup.memcg_stats.throttle_events,
                    kernel.clock.now_ns - t0)

        first = run("a")
        second = run("b")
        # Record 1 lands exactly on the ceiling; records 2-4 each stall.
        assert first[0] == 3 * record * rate
        assert first[1] == 3
        assert first == second

    def test_stall_charges_clock_and_engine_stats(self, machine, syscalls):
        kernel = machine.kernel
        cgroup = kernel.cgroups.attach(syscalls.process.pid, "/box")
        cgroup.limits.memory_high_bytes = 4 << 10
        engine = machine.rootfs.writeback
        stalled_before = engine.stats.throttle_stall_ns
        t0 = kernel.clock.now_ns
        _write_file(syscalls, "/root/over.dat", b"o" * (64 << 10))
        stall = cgroup.memcg_stats.throttle_stall_ns
        assert stall > 0
        assert engine.stats.throttle_stall_ns - stalled_before == stall
        assert kernel.clock.now_ns - t0 >= stall

    def test_stall_is_counted_on_the_breached_ancestor(self, machine, syscalls):
        """When a parent's memory.high is the ceiling that bit, the breach is
        counted on the parent (the enforcing node), not the writing child —
        the same attribution rule reclaim stats follow."""
        hierarchy = machine.kernel.cgroups
        parent = hierarchy.create("/pod")
        parent.limits.memory_high_bytes = 4 << 10
        child = hierarchy.attach(syscalls.process.pid, "/pod/leaf")
        _write_file(syscalls, "/root/deep.dat", b"d" * (64 << 10))
        assert parent.memcg_stats.throttle_stall_ns > 0
        assert child.memcg_stats.throttle_stall_ns == 0

    def test_no_high_no_stall(self, machine, syscalls):
        cgroup = machine.kernel.cgroups.attach(syscalls.process.pid, "/box")
        _write_file(syscalls, "/root/free.dat", b"f" * (256 << 10))
        assert cgroup.memcg_stats.throttle_events == 0
        assert cgroup.memcg_stats.throttle_stall_ns == 0


class TestCgroupfsValidation:
    def test_malformed_limits_are_einval(self, machine, syscalls):
        syscalls.mkdir("/sys/fs/cgroup/v")
        for knob in ("memory.max", "memory.high"):
            for payload in (b"-1", b"1.5", b"words", b""):
                fd = syscalls.open(f"/sys/fs/cgroup/v/{knob}", OpenFlags.O_WRONLY)
                try:
                    with pytest.raises(FsError) as exc:
                        syscalls.write(fd, payload)
                    assert exc.value.errno == errno.EINVAL
                finally:
                    syscalls.close(fd)
            assert _cgroupfs_read(syscalls, f"/sys/fs/cgroup/v/{knob}") == b"max\n"

    def test_lowering_max_below_usage_reclaims_synchronously(self, machine, syscalls):
        kernel = machine.kernel
        syscalls.mkdir("/sys/fs/cgroup/shrink")
        _cgroupfs_write(syscalls, "/sys/fs/cgroup/shrink/cgroup.procs",
                        f"{syscalls.process.pid}\n".encode())
        _write_file(syscalls, "/root/grown.dat", b"g" * (512 << 10))
        cgroup = kernel.cgroups.lookup("/shrink")
        assert cgroup.mem_cache_bytes == 512 << 10
        _cgroupfs_write(syscalls, "/sys/fs/cgroup/shrink/memory.max", b"131072")
        assert cgroup.mem_cache_bytes <= 131072
        assert cgroup.memcg_stats.pages_reclaimed > 0

    def test_zero_and_max_sentinels_disable_the_limit(self, machine, syscalls):
        syscalls.mkdir("/sys/fs/cgroup/z")
        cgroup = machine.kernel.cgroups.lookup("/z")
        _cgroupfs_write(syscalls, "/sys/fs/cgroup/z/memory.max", b"65536")
        assert cgroup.limits.memory_limit_bytes == 65536
        _cgroupfs_write(syscalls, "/sys/fs/cgroup/z/memory.max", b"0")
        assert cgroup.limits.memory_limit_bytes is None
        _cgroupfs_write(syscalls, "/sys/fs/cgroup/z/memory.max", b"65536")
        _cgroupfs_write(syscalls, "/sys/fs/cgroup/z/memory.max", b"max")
        assert cgroup.limits.memory_limit_bytes is None

    def test_procs_file_validates_pids(self, machine, syscalls):
        syscalls.mkdir("/sys/fs/cgroup/p")
        fd = syscalls.open("/sys/fs/cgroup/p/cgroup.procs", OpenFlags.O_WRONLY)
        try:
            with pytest.raises(FsError) as exc:
                syscalls.write(fd, b"424242")
            assert exc.value.errno == errno.ESRCH
            with pytest.raises(FsError) as exc:
                syscalls.write(fd, b"pid-one")
            assert exc.value.errno == errno.EINVAL
        finally:
            syscalls.close(fd)


def _make_image(name: str):
    from repro.container.image import ImageBuilder

    return (ImageBuilder(name, "1.0")
            .add_file("/usr/sbin/app", size=100_000, mode=0o755)
            .entrypoint("/usr/sbin/app")
            .build())


class TestContainerEngineWiring:
    def test_engine_limits_reach_the_cgroup(self, machine):
        from repro.container.docker import DockerEngine

        engine = DockerEngine(machine)
        limits = CgroupLimits(memory_limit_bytes=256 << 10,
                              memory_high_bytes=128 << 10)
        container = engine.run(_make_image("memcg-app"), name="budgeted",
                               limits=limits)
        cgroup = machine.kernel.cgroups.lookup(container.cgroup_path)
        assert cgroup.limits == limits
        assert cgroup.effective_memory_limit() == 256 << 10
        assert container.init_pid in cgroup.procs
        # The cgroup holds a copy: retuning one container through the
        # cgroupfs can never mutate the caller's object or a sibling
        # created from the same limits.
        assert cgroup.limits is not limits
        sibling = engine.run(_make_image("memcg-app2"), name="budgeted-2",
                             limits=limits)
        sibling_cgroup = machine.kernel.cgroups.lookup(sibling.cgroup_path)
        sibling_cgroup.limits.memory_limit_bytes = 1 << 20
        assert cgroup.limits.memory_limit_bytes == 256 << 10
        assert limits.memory_limit_bytes == 256 << 10

    def test_injected_tool_inherits_the_budget(self, machine):
        """The paper's §3.2.3 semantics: a process moved into the container's
        cgroup (what Cntr does to its tools) is bounded by its limits."""
        from repro.container.docker import DockerEngine

        engine = DockerEngine(machine)
        limits = CgroupLimits(memory_limit_bytes=128 << 10)
        container = engine.run(_make_image("victim"), name="bounded",
                               limits=limits)
        tool = machine.spawn_host_process(["/usr/bin/gdb"])
        cgroup = machine.kernel.cgroups.attach(tool.process.pid,
                                               container.cgroup_path)
        _write_file(tool, "/root/tool-output.dat", b"t" * (512 << 10))
        assert cgroup.mem_cache_bytes <= 128 << 10
        assert cgroup.memcg_stats.pages_reclaimed > 0


# ---------------------------------------------------------------------------
# Property: no limits anywhere ⇒ observationally the PR 4 engine
# ---------------------------------------------------------------------------
class _MemcgFs:
    """A filesystem reduced to what the memory controller interacts with: a
    page cache, an engine whose flush cleans the cache, and the
    note-dirty-then-balance write path of ext4/fuse."""

    PAGE = 4096

    def __init__(self, name: str, clock: VirtualClock,
                 background: int = 64 * 4096) -> None:
        self.page_cache = PageCache(page_size=self.PAGE)
        self.writeback = WritebackEngine(
            name, VmTunables(dirty_background_bytes=background),
            self._flush, clock=clock)

    def _flush(self, items, reason):
        for ino, _pending in items:
            self.page_cache.clean(ino)

    def drop_caches(self, mode=3):
        if mode & 1:
            self.writeback.flush()
            self.page_cache.invalidate_all()

    def write(self, ino, offset, size):
        dirtied = self.page_cache.write(ino, offset, size)
        self.writeback.note_dirty(ino, dirtied * self.PAGE)
        self.page_cache.balance_pressure()

    def read(self, ino, offset, size):
        self.page_cache.access(ino, offset, size)


class TestNoLimitEquivalence:
    """The memcg analogue of the infinite-budget ≡ seed property: a fully
    wired controller with no limit configured anywhere must be
    observationally identical to an unwired PR 4 system — same resident
    pages, same LRU order, same stats, same flush batches, same virtual
    time."""

    _rw_ops = st.lists(
        st.tuples(st.sampled_from(["write", "write", "read", "drop"]),
                  st.integers(min_value=1, max_value=4),          # ino
                  st.integers(min_value=0, max_value=64),         # page offset
                  st.integers(min_value=1, max_value=32)),        # pages
        min_size=1, max_size=40)

    @given(_rw_ops, st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_no_limits_is_observationally_pr4(self, ops, with_cgroups):
        rigs = {}
        for mode in ("wired", "plain"):
            clock = VirtualClock()
            vm = VmSysctl()
            fs = _MemcgFs(mode, clock)
            if mode == "wired":
                hierarchy = CgroupHierarchy()
                controller = MemcgController(hierarchy, clock)
                vm.memcg = controller
                if with_cgroups:
                    # Cgroups may exist and hold processes — what matters is
                    # that no limit is configured on any of them.
                    hierarchy.attach(7, "/containers/one")
                    controller.set_current(7)
            vm.register_fs(fs)
            rigs[mode] = (fs, clock, vm)
        for kind, ino, page, pages in ops:
            for fs, _clock, _vm in rigs.values():
                if kind == "write":
                    fs.write(ino, page * fs.PAGE, pages * fs.PAGE)
                elif kind == "read":
                    fs.read(ino, page * fs.PAGE, pages * fs.PAGE)
                else:
                    fs.drop_caches(1)
        wired, plain = rigs["wired"], rigs["plain"]
        assert wired[0].page_cache.resident_pages() == \
            plain[0].page_cache.resident_pages()
        assert wired[0].page_cache.lru_order() == plain[0].page_cache.lru_order()
        assert vars(wired[0].page_cache.stats) == vars(plain[0].page_cache.stats)
        assert vars(wired[0].writeback.stats) == vars(plain[0].writeback.stats)
        assert wired[1].now_ns == plain[1].now_ns
        # And the controller's books balance: with everything uncharged or
        # charged, the hierarchy's root equals the kernel-wide totals.
        if wired[2].memcg is not None:
            root = wired[2].memcg.cgroups.root
            assert root.mem_cache_bytes == wired[2].cached_bytes_total()
            assert root.mem_dirty_bytes == wired[2].dirty_bytes_total()
            assert root.memcg_stats.pages_reclaimed == 0
            assert root.memcg_stats.throttle_stall_ns == 0
