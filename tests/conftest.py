"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.kernel.machine import boot_forked


@pytest.fixture()
def machine():
    """A freshly booted simulated host (cloned from a cached boot image)."""
    return boot_forked()


@pytest.fixture()
def syscalls(machine):
    """A syscall facade for a host process forked off init."""
    return machine.spawn_host_process(["/usr/bin/test-process"])
