"""Property-based tests (hypothesis) for the core data structures."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fs.constants import LockType, OpenFlags
from repro.fs.inode import FileData
from repro.fs.locks import FileLock, LockRange, LockTable
from repro.fs.pagecache import PageCache
from repro.fs.errors import FsError

# Keep examples small: every operation is pure Python.
SMALL_OFFSET = st.integers(min_value=0, max_value=64 * 1024)
SMALL_DATA = st.binary(min_size=0, max_size=4096)

write_ops = st.tuples(SMALL_OFFSET, SMALL_DATA)


class TestFileDataProperties:
    @given(st.lists(write_ops, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_bytearray_model(self, ops):
        """FileData must behave exactly like a flat, zero-filled bytearray."""
        data = FileData()
        reference = bytearray()
        for offset, payload in ops:
            data.write(offset, payload)
            end = offset + len(payload)
            if len(reference) < end:
                reference.extend(b"\x00" * (end - len(reference)))
            reference[offset:end] = payload
        assert len(data) == len(reference)
        assert data.to_bytes() == bytes(reference)

    @given(st.lists(write_ops, max_size=10), st.integers(min_value=0, max_value=32768))
    @settings(max_examples=40, deadline=None)
    def test_truncate_matches_reference(self, ops, new_size):
        data = FileData()
        reference = bytearray()
        for offset, payload in ops:
            data.write(offset, payload)
            end = offset + len(payload)
            if len(reference) < end:
                reference.extend(b"\x00" * (end - len(reference)))
            reference[offset:end] = payload
        data.truncate(new_size)
        if len(reference) < new_size:
            reference.extend(b"\x00" * (new_size - len(reference)))
        else:
            del reference[new_size:]
        assert data.to_bytes() == bytes(reference)

    @given(SMALL_OFFSET, SMALL_DATA, SMALL_OFFSET, st.integers(min_value=0, max_value=8192))
    @settings(max_examples=50, deadline=None)
    def test_reads_never_exceed_file_size(self, woff, payload, roff, rsize):
        data = FileData()
        data.write(woff, payload)
        out = data.read(roff, rsize)
        assert len(out) <= max(0, len(data) - roff) if roff < len(data) else out == b""


class TestPageCacheProperties:
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=3),
                              SMALL_OFFSET,
                              st.integers(min_value=1, max_value=16384)),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_second_access_is_always_a_hit(self, accesses):
        cache = PageCache()          # unbounded
        for ino, offset, size in accesses:
            cache.access(ino, offset, size)
            hits, misses = cache.access(ino, offset, size)
            assert misses == 0, "a repeated access with no eviction must hit"

    @given(st.integers(min_value=1, max_value=64),
           st.lists(st.tuples(SMALL_OFFSET, st.integers(min_value=1, max_value=16384)),
                    min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_capacity_is_never_exceeded(self, max_pages, accesses):
        cache = PageCache(max_bytes=max_pages * 4096)
        for offset, size in accesses:
            cache.access(1, offset, size)
            assert len(cache) <= max_pages


class TestLockTableProperties:
    lock_requests = st.lists(
        st.tuples(st.integers(min_value=1, max_value=4),              # owner
                  st.sampled_from([LockType.F_RDLCK, LockType.F_WRLCK,
                                   LockType.F_UNLCK]),
                  st.integers(min_value=0, max_value=1000),           # start
                  st.integers(min_value=0, max_value=500)),           # length
        max_size=25)

    @given(lock_requests)
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_granted_locks_never_conflict(self, requests):
        """Invariant: the set of granted locks is always conflict-free."""
        table = LockTable()
        for owner, lock_type, start, length in requests:
            try:
                table.acquire(owner, lock_type, start, length)
            except FsError:
                pass
            held = table.held_locks()
            for i, a in enumerate(held):
                for b in held[i + 1:]:
                    assert not a.conflicts_with(b), f"conflicting locks granted: {a} {b}"

    @given(st.integers(min_value=0, max_value=100), st.integers(min_value=0, max_value=50),
           st.integers(min_value=0, max_value=100), st.integers(min_value=0, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_range_overlap_symmetry(self, s1, l1, s2, l2):
        a, b = LockRange(s1, l1), LockRange(s2, l2)
        assert a.overlaps(b) == b.overlaps(a)


class TestVfsPathProperties:
    name_strategy = st.text(alphabet="abcdefgh", min_size=1, max_size=8)

    @given(st.lists(name_strategy, min_size=1, max_size=4), st.binary(max_size=256))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_write_read_roundtrip_at_any_depth(self, components, payload):
        """Whatever is written at a path is read back, regardless of nesting."""
        from repro.fs.ext4 import Ext4Fs
        from repro.fs.mount import MountNamespace
        from repro.fs.vfs import Credentials, PathContext, VFS, VNode

        from repro.sim import CostModel, VirtualClock
        fs = Ext4Fs("prop", VirtualClock(), CostModel())
        ns = MountNamespace(fs)
        vfs = VFS()
        root = VNode(ns.root_mount, fs.root_ino)
        ctx = PathContext(ns=ns, root=root, cwd=root, creds=Credentials())
        directory = "/" + "/".join(components[:-1]) if len(components) > 1 else "/"
        if directory != "/":
            vfs.makedirs(ctx, directory)
        path = directory.rstrip("/") + "/" + components[-1]
        handle = vfs.open(ctx, path, OpenFlags.O_CREAT | OpenFlags.O_RDWR, 0o644)
        vfs.write(handle, payload)
        handle.close()
        handle = vfs.open(ctx, path, OpenFlags.O_RDONLY)
        assert vfs.read(handle, len(payload) + 10) == payload
        handle.close()
        assert vfs.stat(ctx, path).st_size == len(payload)
