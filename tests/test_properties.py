"""Property-based tests (hypothesis) for the core data structures."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fs.constants import LockType, OpenFlags
from repro.fs.inode import FileData
from repro.fs.locks import LockRange, LockTable
from repro.fs.pagecache import PageCache
from repro.fs.errors import FsError

# Keep examples small: every operation is pure Python.
SMALL_OFFSET = st.integers(min_value=0, max_value=64 * 1024)
SMALL_DATA = st.binary(min_size=0, max_size=4096)

write_ops = st.tuples(SMALL_OFFSET, SMALL_DATA)


class TestFileDataProperties:
    @given(st.lists(write_ops, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_bytearray_model(self, ops):
        """FileData must behave exactly like a flat, zero-filled bytearray."""
        data = FileData()
        reference = bytearray()
        for offset, payload in ops:
            data.write(offset, payload)
            end = offset + len(payload)
            if len(reference) < end:
                reference.extend(b"\x00" * (end - len(reference)))
            reference[offset:end] = payload
        assert len(data) == len(reference)
        assert data.to_bytes() == bytes(reference)

    @given(st.lists(write_ops, max_size=10), st.integers(min_value=0, max_value=32768))
    @settings(max_examples=40, deadline=None)
    def test_truncate_matches_reference(self, ops, new_size):
        data = FileData()
        reference = bytearray()
        for offset, payload in ops:
            data.write(offset, payload)
            end = offset + len(payload)
            if len(reference) < end:
                reference.extend(b"\x00" * (end - len(reference)))
            reference[offset:end] = payload
        data.truncate(new_size)
        if len(reference) < new_size:
            reference.extend(b"\x00" * (new_size - len(reference)))
        else:
            del reference[new_size:]
        assert data.to_bytes() == bytes(reference)

    @given(SMALL_OFFSET, SMALL_DATA, SMALL_OFFSET, st.integers(min_value=0, max_value=8192))
    @settings(max_examples=50, deadline=None)
    def test_reads_never_exceed_file_size(self, woff, payload, roff, rsize):
        data = FileData()
        data.write(woff, payload)
        out = data.read(roff, rsize)
        assert len(out) <= max(0, len(data) - roff) if roff < len(data) else out == b""


class TestPageCacheProperties:
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=3),
                              SMALL_OFFSET,
                              st.integers(min_value=1, max_value=16384)),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_second_access_is_always_a_hit(self, accesses):
        cache = PageCache()          # unbounded
        for ino, offset, size in accesses:
            cache.access(ino, offset, size)
            hits, misses = cache.access(ino, offset, size)
            assert misses == 0, "a repeated access with no eviction must hit"

    @given(st.integers(min_value=1, max_value=64),
           st.lists(st.tuples(SMALL_OFFSET, st.integers(min_value=1, max_value=16384)),
                    min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_capacity_is_never_exceeded(self, max_pages, accesses):
        cache = PageCache(max_bytes=max_pages * 4096)
        for offset, size in accesses:
            cache.access(1, offset, size)
            assert len(cache) <= max_pages


class _ReferencePageCache:
    """Naive per-page model of the extent page cache's batch semantics.

    Residency/dirtiness is one ``OrderedDict`` entry per ``(ino, page)`` key.
    ``access``/``write`` are batch operations (hits and misses counted for the
    whole range before insertion), eviction pops the LRU front one page at a
    time, and an eviction pass charges one writeback per maximal contiguous
    dirty run evicted — the semantics documented in PERFORMANCE.md.
    """

    def __init__(self, max_pages=None, page_size=4096):
        from collections import OrderedDict
        from repro.fs.pagecache import PageCacheStats

        self.page_size = page_size
        self.max_pages = max_pages
        self.pages = OrderedDict()       # (ino, page) -> dirty
        self.stats = PageCacheStats()

    def __len__(self):
        return len(self.pages)

    def _evict(self):
        prev = None
        while self.max_pages is not None and len(self.pages) > self.max_pages:
            (ino, page), dirty = self.pages.popitem(last=False)
            self.stats.evictions += 1
            if dirty:
                contiguous = (prev is not None and prev[2]
                              and prev[0] == ino and prev[1] == page - 1)
                if not contiguous:
                    self.stats.writebacks += 1
            prev = (ino, page, dirty)

    def access(self, ino, offset, size):
        from repro.fs.pagecache import page_span
        span = page_span(offset, size, self.page_size)
        hits = sum(1 for p in span if (ino, p) in self.pages)
        misses = len(span) - hits
        for p in span:
            key = (ino, p)
            dirty = self.pages.pop(key, False)
            self.pages[key] = dirty
        self.stats.hits += hits
        self.stats.misses += misses
        self._evict()
        return hits, misses

    def write(self, ino, offset, size):
        from repro.fs.pagecache import page_span
        span = page_span(offset, size, self.page_size)
        dirtied = sum(1 for p in span if not self.pages.get((ino, p), False))
        for p in span:
            self.pages.pop((ino, p), None)
            self.pages[(ino, p)] = True
        self._evict()
        return dirtied

    def is_resident(self, ino, page):
        key = (ino, page)
        if key in self.pages:
            self.pages.move_to_end(key)
            return True
        return False

    def clean(self, ino=None):
        cleaned = 0
        for key, dirty in self.pages.items():
            if dirty and (ino is None or key[0] == ino):
                self.pages[key] = False
                cleaned += 1
        if cleaned:
            self.stats.writebacks += 1
        return cleaned

    def invalidate(self, ino):
        victims = [k for k in self.pages if k[0] == ino]
        for key in victims:
            del self.pages[key]
        return len(victims)

    def invalidate_range(self, ino, start_page, end_page=None):
        if end_page is None:
            end_page = 1 << 62
        victims = [k for k in self.pages
                   if k[0] == ino and start_page <= k[1] < end_page]
        for key in victims:
            del self.pages[key]
        return len(victims)

    def dirty_pages(self, ino=None):
        return sorted(k for k, dirty in self.pages.items()
                      if dirty and (ino is None or k[0] == ino))

    def resident_pages(self):
        return dict(self.pages)

    def lru_order(self):
        return list(self.pages)


# One operation: (kind, ino, offset, size) over a handful of inodes.  Sizes up
# to 16 pages keep runs fast while still splitting/merging extents heavily.
_pc_ops = st.lists(
    st.tuples(st.sampled_from(["access", "write", "clean", "clean_all",
                               "invalidate", "invalidate_range",
                               "invalidate_tail", "probe"]),
              st.integers(min_value=1, max_value=3),
              st.integers(min_value=0, max_value=48 * 4096),
              st.integers(min_value=0, max_value=16 * 4096)),
    min_size=1, max_size=40)


class TestPageCacheExtentEquivalence:
    """The extent engine must be observationally equivalent to the per-page
    reference model: same return values, same stats, same resident/dirty
    state, same LRU order — for any operation sequence."""

    def _run(self, ops, max_pages):
        from repro.fs.pagecache import PageCache

        max_bytes = None if max_pages is None else max_pages * 4096
        cache = PageCache(max_bytes=max_bytes)
        ref = _ReferencePageCache(max_pages=max_pages)
        for kind, ino, offset, size in ops:
            if kind == "access":
                assert cache.access(ino, offset, size) == ref.access(ino, offset, size)
            elif kind == "write":
                assert cache.write(ino, offset, size) == ref.write(ino, offset, size)
            elif kind == "clean":
                assert cache.clean(ino) == ref.clean(ino)
            elif kind == "clean_all":
                assert cache.clean() == ref.clean()
            elif kind == "invalidate":
                assert cache.invalidate(ino) == ref.invalidate(ino)
            elif kind == "invalidate_range":
                start, end = offset // 4096, (offset + size) // 4096
                assert cache.invalidate_range(ino, start, end) == \
                    ref.invalidate_range(ino, start, end)
            elif kind == "invalidate_tail":
                start = offset // 4096
                assert cache.invalidate_range(ino, start) == \
                    ref.invalidate_range(ino, start)
            elif kind == "probe":
                page = offset // 4096
                assert cache.is_resident(ino, page) == ref.is_resident(ino, page)
            assert len(cache) == len(ref)
            assert cache.resident_pages() == ref.resident_pages()
            assert cache.dirty_pages() == ref.dirty_pages()
            assert cache.dirty_page_count() == len(ref.dirty_pages())
            assert (cache.stats.hits, cache.stats.misses, cache.stats.evictions,
                    cache.stats.writebacks) == \
                   (ref.stats.hits, ref.stats.misses, ref.stats.evictions,
                    ref.stats.writebacks)
        assert cache.lru_order() == ref.lru_order()

    @given(_pc_ops)
    @settings(max_examples=60, deadline=None)
    def test_unbounded_cache_matches_reference(self, ops):
        self._run(ops, max_pages=None)

    @given(_pc_ops, st.integers(min_value=1, max_value=24))
    @settings(max_examples=60, deadline=None)
    def test_bounded_cache_matches_reference(self, ops, max_pages):
        self._run(ops, max_pages=max_pages)

    # Nested interior carves of a single large extent are where split
    # bookkeeping can misorder same-age fragments; hammer that shape.
    _carve_ops = st.lists(
        st.tuples(st.sampled_from(["access", "write", "probe"]),
                  st.just(1),
                  st.integers(min_value=0, max_value=12 * 4096),
                  st.integers(min_value=1, max_value=3 * 4096)),
        min_size=1, max_size=25)

    @given(_carve_ops, st.one_of(st.none(), st.integers(min_value=4, max_value=14)))
    @settings(max_examples=60, deadline=None)
    def test_nested_interior_carves_match_reference(self, ops, max_pages):
        self._run([("access", 1, 0, 12 * 4096)] + ops, max_pages=max_pages)

    def test_nested_split_fragments_keep_page_order(self):
        """Regression: two interior carves of one extent must leave the
        untouched fragments in page order at their original LRU age, exactly
        like the per-page model (same-seq heap ties break by start page)."""
        self._run([("access", 1, 0, 10 * 4096),        # pages 0-9
                   ("access", 1, 4 * 4096, 2 * 4096),  # carve [4,6)
                   ("access", 1, 2 * 4096, 4096),      # carve [2,3)
                   ("access", 2, 0, 3 * 4096)],        # force eviction order out
                  max_pages=10)


class TestWritebackEngineProperties:
    """Threshold, conservation and pop-on-flush invariants of the engine."""

    _engine_ops = st.lists(
        st.tuples(st.sampled_from(["note", "note", "note", "flush", "flush_all",
                                   "discard", "discard_part", "tick"]),
                  st.integers(min_value=1, max_value=4),           # ino
                  st.integers(min_value=1, max_value=64 * 1024)),  # nbytes
        min_size=1, max_size=50)

    @given(_engine_ops,
           st.integers(min_value=0, max_value=128 * 1024),   # background
           st.integers(min_value=0, max_value=128 * 1024),   # dirty limit
           st.integers(min_value=0, max_value=20))           # expire centisecs
    @settings(max_examples=80, deadline=None)
    def test_invariants_hold_for_any_interleaving(self, ops, background,
                                                  dirty, expire):
        from repro.fs.writeback import VmTunables, WritebackEngine
        from repro.sim.clock import VirtualClock

        clock = VirtualClock()
        flushed_items: list[tuple[int, int]] = []

        def flush_fn(items, reason):
            flushed_items.extend(items)

        engine = WritebackEngine(
            "prop", VmTunables(dirty_background_bytes=background,
                               dirty_bytes=dirty,
                               dirty_expire_centisecs=expire),
            flush_fn, clock=clock)
        noted = 0
        for kind, ino, nbytes in ops:
            if kind == "note":
                engine.note_dirty(ino, nbytes)
                noted += nbytes
                # The flushers ran: no enabled threshold may stay exceeded.
                if background:
                    assert engine.total_pending < background
                if dirty:
                    assert engine.total_pending < dirty
            elif kind == "flush":
                before = engine.pending(ino)
                assert engine.flush(ino) == before
            elif kind == "flush_all":
                before = engine.total_pending
                assert engine.flush() == before
                assert engine.total_pending == 0
            elif kind == "discard":
                engine.discard(ino)
            elif kind == "discard_part":
                engine.discard(ino, nbytes)
            elif kind == "tick":
                clock.advance(nbytes * 1_000)   # up to ~65ms of idle time
            # Universal invariants, checked after every operation:
            pending_map = {i: engine.pending(i) for i in engine.pending_inodes()}
            assert all(v > 0 for v in pending_map.values()), \
                "flushed/discarded inodes must be popped, not zeroed"
            assert engine.total_pending == sum(pending_map.values())
            assert noted == (engine.stats.flushed_bytes +
                             engine.stats.discarded_bytes + engine.total_pending)
        # Every byte handed to flush_fn is a byte the stats account for.
        assert sum(p for _, p in flushed_items) == engine.stats.flushed_bytes

    @given(st.integers(min_value=1, max_value=10),
           st.integers(min_value=1, max_value=16 * 1024))
    @settings(max_examples=40, deadline=None)
    def test_expiry_flushes_aged_inodes(self, expire_cs, nbytes):
        from repro.fs.writeback import CENTISEC_NS, VmTunables, WritebackEngine
        from repro.sim.clock import VirtualClock

        clock = VirtualClock()
        engine = WritebackEngine(
            "prop", VmTunables(dirty_expire_centisecs=expire_cs),
            lambda items, reason: None, clock=clock)
        engine.note_dirty(1, nbytes)
        clock.advance(expire_cs * CENTISEC_NS)
        # The next write activity wakes the flusher, which must expire ino 1.
        engine.note_dirty(2, 1)
        assert engine.pending(1) == 0
        assert engine.stats.flushes_by_reason.get("expired", 0) >= 1


class TestMemoryPressureProperties:
    """Issue invariants of the memory-pressure model: ratio-derived
    thresholds are observationally equivalent to the same value set via the
    bytes knobs, and BDI bandwidth shaping conserves flushed bytes."""

    _note_ops = st.lists(
        st.tuples(st.integers(min_value=1, max_value=4),             # ino
                  st.integers(min_value=1, max_value=48 * 1024)),    # nbytes
        min_size=1, max_size=40)

    @given(_note_ops,
           st.integers(min_value=1, max_value=100),                  # ratio %
           st.integers(min_value=64 * 1024, max_value=1 << 20))      # mem total
    @settings(max_examples=60, deadline=None)
    def test_ratio_equivalent_to_bytes(self, ops, ratio, mem_total):
        from repro.fs.writeback import MemInfo, VmTunables, WritebackEngine

        log_ratio: list[tuple] = []
        log_bytes: list[tuple] = []
        ratio_engine = WritebackEngine(
            "ratio", VmTunables(dirty_ratio=ratio),
            lambda items, reason: log_ratio.append((tuple(items), reason)),
            meminfo=MemInfo(total_bytes=mem_total))
        bytes_engine = WritebackEngine(
            "bytes", VmTunables(dirty_bytes=mem_total * ratio // 100),
            lambda items, reason: log_bytes.append((tuple(items), reason)))
        for ino, nbytes in ops:
            ratio_engine.note_dirty(ino, nbytes)
            bytes_engine.note_dirty(ino, nbytes)
            # Observationally equivalent after every step: pending state,
            # flush decisions and the exact batches handed to flush_fn.
            assert ratio_engine.total_pending == bytes_engine.total_pending
            assert log_ratio == log_bytes
        assert ratio_engine.stats.flushes == bytes_engine.stats.flushes
        assert ratio_engine.stats.flushed_bytes == bytes_engine.stats.flushed_bytes
        assert ratio_engine.stats.flushes_by_reason == \
            bytes_engine.stats.flushes_by_reason

    @given(_note_ops,
           st.integers(min_value=1, max_value=100),
           st.integers(min_value=64 * 1024, max_value=1 << 20))
    @settings(max_examples=40, deadline=None)
    def test_background_ratio_equivalent_to_bytes(self, ops, ratio, mem_total):
        from repro.fs.writeback import MemInfo, VmTunables, WritebackEngine

        ratio_engine = WritebackEngine(
            "ratio", VmTunables(dirty_background_ratio=ratio),
            lambda items, reason: None, meminfo=MemInfo(total_bytes=mem_total))
        bytes_engine = WritebackEngine(
            "bytes", VmTunables(dirty_background_bytes=mem_total * ratio // 100),
            lambda items, reason: None)
        for ino, nbytes in ops:
            ratio_engine.note_dirty(ino, nbytes)
            bytes_engine.note_dirty(ino, nbytes)
            assert ratio_engine.total_pending == bytes_engine.total_pending
        assert ratio_engine.stats.flushes_by_reason == \
            bytes_engine.stats.flushes_by_reason

    @given(st.integers(min_value=0, max_value=64 * 1024))            # threshold
    @settings(max_examples=40, deadline=None)
    def test_bytes_knob_wins_over_ratio(self, dirty_bytes):
        """Nonzero bytes knobs shadow the ratio knobs entirely (Linux rule)."""
        from repro.fs.writeback import MemInfo, VmTunables, WritebackEngine

        both = WritebackEngine(
            "both", VmTunables(dirty_bytes=dirty_bytes, dirty_ratio=7),
            lambda items, reason: None, meminfo=MemInfo(total_bytes=1 << 20))
        limits = both.effective_limits()
        if dirty_bytes > 0:
            assert limits.dirty_bytes == dirty_bytes
        else:
            assert limits.dirty_bytes == (1 << 20) * 7 // 100

    @given(_note_ops,
           st.lists(st.integers(min_value=0, max_value=1 << 30),
                    min_size=2, max_size=5))                         # bandwidths
    @settings(max_examples=40, deadline=None)
    def test_bdi_shaping_conserves_flushed_bytes(self, ops, bandwidths):
        """Sweeping the modelled write bandwidth changes only the virtual
        time spent flushing — never which bytes are flushed."""
        from repro.fs.writeback import (
            BacklogDeviceInfo,
            VmTunables,
            WritebackEngine,
        )
        from repro.sim.clock import VirtualClock

        results = []
        for bandwidth in bandwidths:
            clock = VirtualClock()
            engine = WritebackEngine(
                "bdi", VmTunables(dirty_background_bytes=32 * 1024),
                lambda items, reason: None, clock=clock,
                bdi=BacklogDeviceInfo("dev", bandwidth))
            for ino, nbytes in ops:
                engine.note_dirty(ino, nbytes)
            engine.flush()
            results.append((engine.stats.flushes, engine.stats.flushed_bytes,
                            clock.now_ns, engine.bdi.stats.busy_ns))
        flushes, flushed, elapsed, busy = zip(*results, strict=True)
        # Conservation: the flush decisions and total flushed bytes are
        # independent of the bandwidth.
        assert len(set(flushes)) == 1
        assert len(set(flushed)) == 1
        # Decomposition: all elapsed virtual time is the shaper's (flush_fn
        # charges nothing here), so elapsed == BDI busy for every bandwidth.
        assert elapsed == busy


class _PressureFs:
    """A filesystem reduced to what the reclaim coordinator interacts with:
    a page cache, a writeback engine whose flush cleans the cache, and the
    note-dirty-then-balance write path of ext4/fuse."""

    PAGE = 4096

    def __init__(self, name, clock=None, background=0):
        from repro.fs.writeback import VmTunables, WritebackEngine

        self.page_cache = PageCache(page_size=self.PAGE)
        self.writeback = WritebackEngine(
            name, VmTunables(dirty_background_bytes=background),
            self._flush, clock=clock)
        self.dcache_drops = 0

    def _flush(self, items, reason):
        for ino, _pending in items:
            self.page_cache.clean(ino)

    def drop_caches(self, mode=3):
        if mode & 2:
            self.dcache_drops += 1

    def write(self, ino, offset, size):
        dirtied = self.page_cache.write(ino, offset, size)
        self.writeback.note_dirty(ino, dirtied * self.PAGE)
        self.page_cache.balance_pressure()

    def read(self, ino, offset, size):
        self.page_cache.access(ino, offset, size)


class TestReclaimProperties:
    """Issue invariants of the reclaim subsystem: conservation (dropped +
    flushed == reclaimed, the cache never outgrows the budget), the
    infinite-budget engine being observationally the seed engine, and the
    periodic flusher matching the write-driven expiry on its period grid."""

    _rw_ops = st.lists(
        st.tuples(st.sampled_from(["write", "write", "read"]),
                  st.integers(min_value=1, max_value=4),          # ino
                  st.integers(min_value=0, max_value=64),         # page offset
                  st.integers(min_value=1, max_value=32)),        # pages
        min_size=1, max_size=40)

    @staticmethod
    def _vm(total_pages, reclaim=True):
        from repro.fs.writeback import MemInfo, VmSysctl

        mem = MemInfo(total_bytes=total_pages * _PressureFs.PAGE,
                      reserved_bytes=0, reclaim_enabled=reclaim)
        return VmSysctl(meminfo=mem)

    @given(_rw_ops, st.integers(min_value=4, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_reclaim_conservation_and_budget(self, ops, budget_pages):
        vm = self._vm(budget_pages)
        filesystems = [_PressureFs("a"), _PressureFs("b")]
        for fs in filesystems:
            vm.register_fs(fs)
        for kind, ino, page, pages in ops:
            fs = filesystems[ino % 2]
            if kind == "write":
                fs.write(ino, page * fs.PAGE, pages * fs.PAGE)
            else:
                fs.read(ino, page * fs.PAGE, pages * fs.PAGE)
            stats = vm.reclaim_stats
            # Conservation: every reclaimed page was dropped clean or
            # flushed first, and bytes agree with pages.
            assert stats.pages_reclaimed == \
                stats.pages_dropped + stats.pages_flushed
            assert stats.bytes_reclaimed == \
                stats.pages_reclaimed * _PressureFs.PAGE
            # The budget bound: Cached never exceeds the live budget.
            budget = vm.cache_budget_bytes()
            assert budget is not None
            assert vm.cached_bytes_total() <= budget
            # Flushed-before-dropped: a reclaimed page can never leave
            # pending bytes behind without dirty pages backing them, per fs.
            for member in filesystems:
                if member.page_cache.dirty_page_count() == 0:
                    assert member.writeback.total_pending >= 0

    @given(_rw_ops)
    @settings(max_examples=60, deadline=None)
    def test_infinite_budget_is_observationally_the_seed_engine(self, ops):
        """A reclaim-enabled kernel whose budget is never crossed behaves
        byte-for-byte like one with reclaim disabled (the seed)."""
        enabled = (self._vm(1 << 30, reclaim=True), _PressureFs("on"))
        disabled = (self._vm(1 << 30, reclaim=False), _PressureFs("off"))
        for vm, fs in (enabled, disabled):
            vm.register_fs(fs)
        for kind, ino, page, pages in ops:
            for _vm_obj, fs in (enabled, disabled):
                if kind == "write":
                    fs.write(ino, page * fs.PAGE, pages * fs.PAGE)
                else:
                    fs.read(ino, page * fs.PAGE, pages * fs.PAGE)
        fs_on, fs_off = enabled[1], disabled[1]
        assert fs_on.page_cache.resident_pages() == \
            fs_off.page_cache.resident_pages()
        assert fs_on.page_cache.lru_order() == fs_off.page_cache.lru_order()
        assert vars(fs_on.page_cache.stats) == vars(fs_off.page_cache.stats)
        assert vars(fs_on.writeback.stats) == vars(fs_off.writeback.stats)
        assert enabled[0].reclaim_stats.pages_reclaimed == 0
        assert disabled[0].reclaim_stats.pages_reclaimed == 0

    @given(st.lists(st.integers(min_value=1, max_value=64 * 1024),
                    min_size=1, max_size=30),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_periodic_flusher_matches_expiry_on_its_grid(self, sizes, period):
        """With writes arriving on the flusher's period grid (one fresh inode
        per write), the periodic flusher (period=E, no expiry knob) produces
        the identical flush schedule — same inodes, same bytes, same virtual
        times — as the write-driven expiry (expire=E, no timer)."""
        from repro.fs.writeback import CENTISEC_NS, VmTunables, WritebackEngine
        from repro.sim.clock import VirtualClock

        logs = {"periodic": [], "expired": []}
        clocks = {}
        engines = {}
        for mode, tunables in (
                ("periodic", VmTunables(dirty_writeback_centisecs=period)),
                ("expired", VmTunables(dirty_expire_centisecs=period))):
            clock = VirtualClock()
            clocks[mode] = clock

            def flush_fn(items, reason, _mode=mode, _clock=clock):
                logs[_mode].append((tuple(items), _clock.now_ns))

            engines[mode] = WritebackEngine(mode, tunables, flush_fn,
                                            clock=clock)
        for step, nbytes in enumerate(sizes):
            for mode in ("periodic", "expired"):
                clocks[mode].advance(period * CENTISEC_NS)
                engines[mode].note_dirty(step + 1, nbytes)
        assert logs["periodic"] == logs["expired"]
        # The reasons differ — that is the only observable difference.
        assert set(engines["periodic"].stats.flushes_by_reason) <= {"periodic"}
        assert set(engines["expired"].stats.flushes_by_reason) <= {"expired"}
        # And the distinguishing behaviour: with no further writes, only the
        # periodic engine drains the remaining aged data.
        for mode in ("periodic", "expired"):
            clocks[mode].advance(3 * period * CENTISEC_NS)
        assert engines["periodic"].total_pending == 0
        if sizes:
            assert engines["expired"].total_pending > 0


class _ClientWritebackModel:
    """The FuseClientFs coupling between page cache and writeback engine,
    reduced to its accounting skeleton (same rules, no FUSE plumbing)."""

    MAX_WRITE = 4 * 4096

    def __init__(self, max_pages=None, background=128 * 1024):
        import math

        from repro.fs.pagecache import PageCache
        from repro.fs.writeback import VmTunables, WritebackEngine

        self._math = math
        max_bytes = None if max_pages is None else max_pages * 4096
        self.cache = PageCache(max_bytes=max_bytes)
        self.charged_requests = 0
        self.flushed_inodes = 0
        self.engine = WritebackEngine(
            "model", VmTunables(dirty_background_bytes=background),
            self._flush_fn)

    def _flush_fn(self, items, reason):
        for ino, pending in items:
            self.charged_requests += max(
                1, self._math.ceil(pending / self.MAX_WRITE))
            self.flushed_inodes += 1
            self.cache.clean(ino)

    # -- the exact coupling rules FuseClientFs implements ------------------
    def write(self, ino, offset, size):
        self.cache.write(ino, offset, size)
        self.engine.note_dirty(ino, size)

    def fsync(self, ino):
        self.engine.flush(ino, reason="fsync")

    def open_no_keep_cache(self, ino):
        if self.engine.pending(ino):
            self.engine.flush(ino)
        self.cache.invalidate(ino)

    def _drop_range(self, ino, start_page, end_page=None):
        dropped = self.cache.invalidate_range(ino, start_page, end_page)
        if dropped and self.cache.dirty_page_count(ino) == 0:
            self.engine.discard(ino)

    def truncate(self, ino, size):
        self._drop_range(ino, -(-size // 4096))

    def punch_hole(self, ino, offset, length):
        first = -(-offset // 4096)
        last = (offset + length) // 4096
        self._drop_range(ino, first, last)


_client_ops = st.lists(
    st.tuples(st.sampled_from(["write", "write", "write", "fsync", "reopen",
                               "truncate", "punch", "read"]),
              st.integers(min_value=1, max_value=3),
              st.integers(min_value=0, max_value=24 * 4096),
              st.integers(min_value=1, max_value=8 * 4096)),
    min_size=1, max_size=40)


class TestWritebackAccountingProperties:
    """Issue invariant: pending-byte counters, ``dirty_page_count`` and
    charged writebacks stay in lockstep across write/flush/invalidate/evict
    interleavings."""

    def _run(self, ops, max_pages, background):
        model = _ClientWritebackModel(max_pages=max_pages, background=background)
        cache, engine = model.cache, model.engine
        for kind, ino, offset, size in ops:
            if kind == "write":
                model.write(ino, offset, size)
            elif kind == "fsync":
                model.fsync(ino)
                assert engine.pending(ino) == 0
                assert cache.dirty_page_count(ino) == 0
            elif kind == "reopen":
                model.open_no_keep_cache(ino)
                assert engine.pending(ino) == 0
                assert cache.dirty_page_count(ino) == 0
            elif kind == "truncate":
                model.truncate(ino, offset)
            elif kind == "punch":
                model.punch_hole(ino, offset, size)
            elif kind == "read":
                cache.access(ino, offset, size)
            # Lockstep invariants after every operation:
            pending_map = {i: engine.pending(i) for i in engine.pending_inodes()}
            assert all(v > 0 for v in pending_map.values())
            assert engine.total_pending == sum(pending_map.values())
            for node in (1, 2, 3):
                if cache.dirty_page_count(node) > 0:
                    assert engine.pending(node) > 0, \
                        "dirty pages with no pending bytes would never flush"
                if max_pages is None and engine.pending(node) > 0:
                    assert cache.dirty_page_count(node) > 0, \
                        "pending bytes for vanished pages would be overcharged"
        # Charged writebacks in lockstep: every flushed inode cleaned dirty
        # pages (one PageCache writeback each); evictions account the rest.
        if max_pages is None:
            assert cache.stats.writebacks == model.flushed_inodes
        else:
            assert cache.stats.writebacks >= model.flushed_inodes
        # Request charging is exact per flush: ceil(pending / max_write).
        assert model.charged_requests >= model.flushed_inodes

    @given(_client_ops)
    @settings(max_examples=60, deadline=None)
    def test_unbounded_cache_lockstep(self, ops):
        self._run(ops, max_pages=None, background=128 * 1024)

    @given(_client_ops, st.integers(min_value=4, max_value=32))
    @settings(max_examples=60, deadline=None)
    def test_bounded_cache_lockstep(self, ops, max_pages):
        self._run(ops, max_pages=max_pages, background=128 * 1024)

    @given(_client_ops, st.integers(min_value=4096, max_value=64 * 1024))
    @settings(max_examples=40, deadline=None)
    def test_lockstep_for_any_background_threshold(self, ops, background):
        self._run(ops, max_pages=None, background=background)


class TestLockTableProperties:
    lock_requests = st.lists(
        st.tuples(st.integers(min_value=1, max_value=4),              # owner
                  st.sampled_from([LockType.F_RDLCK, LockType.F_WRLCK,
                                   LockType.F_UNLCK]),
                  st.integers(min_value=0, max_value=1000),           # start
                  st.integers(min_value=0, max_value=500)),           # length
        max_size=25)

    @given(lock_requests)
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_granted_locks_never_conflict(self, requests):
        """Invariant: the set of granted locks is always conflict-free."""
        table = LockTable()
        for owner, lock_type, start, length in requests:
            try:
                table.acquire(owner, lock_type, start, length)
            except FsError:
                pass
            held = table.held_locks()
            for i, a in enumerate(held):
                for b in held[i + 1:]:
                    assert not a.conflicts_with(b), f"conflicting locks granted: {a} {b}"

    @given(st.integers(min_value=0, max_value=100), st.integers(min_value=0, max_value=50),
           st.integers(min_value=0, max_value=100), st.integers(min_value=0, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_range_overlap_symmetry(self, s1, l1, s2, l2):
        a, b = LockRange(s1, l1), LockRange(s2, l2)
        assert a.overlaps(b) == b.overlaps(a)


class TestVfsPathProperties:
    name_strategy = st.text(alphabet="abcdefgh", min_size=1, max_size=8)

    @given(st.lists(name_strategy, min_size=1, max_size=4), st.binary(max_size=256))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_write_read_roundtrip_at_any_depth(self, components, payload):
        """Whatever is written at a path is read back, regardless of nesting."""
        from repro.fs.ext4 import Ext4Fs
        from repro.fs.mount import MountNamespace
        from repro.fs.vfs import Credentials, PathContext, VFS, VNode

        from repro.sim import CostModel, VirtualClock
        fs = Ext4Fs("prop", VirtualClock(), CostModel())
        ns = MountNamespace(fs)
        vfs = VFS()
        root = VNode(ns.root_mount, fs.root_ino)
        ctx = PathContext(ns=ns, root=root, cwd=root, creds=Credentials())
        directory = "/" + "/".join(components[:-1]) if len(components) > 1 else "/"
        if directory != "/":
            vfs.makedirs(ctx, directory)
        path = directory.rstrip("/") + "/" + components[-1]
        handle = vfs.open(ctx, path, OpenFlags.O_CREAT | OpenFlags.O_RDWR, 0o644)
        vfs.write(handle, payload)
        handle.close()
        handle = vfs.open(ctx, path, OpenFlags.O_RDONLY)
        assert vfs.read(handle, len(payload) + 10) == payload
        handle.close()
        assert vfs.stat(ctx, path).st_size == len(payload)
