"""CPU controller: glue between the cgroup hierarchy and the sim scheduler.

:class:`repro.sim.sched.Scheduler` is deliberately generic (the sim layer may
not import kernel types); this module maps kernel objects onto it:

* every cgroup with runnable work gets a :class:`~repro.sim.sched.CpuGroup`
  whose weight/quota/period are read from the cgroup's
  :class:`~repro.kernel.cgroups.CgroupLimits` — the knobs operated through
  cgroupfs ``cpu.weight`` / ``cpu.max`` writes — and whose stats sink *is*
  the cgroup's ``cpu_stats``, so ``cpu.stat`` reads observe scheduler
  charges live;
* every :class:`~repro.kernel.process.Process` handed to :meth:`spawn` runs
  as a task in its cgroup's group, with slice time accumulated into
  ``process.cpu_time_ns``.

One controller owns one scheduler run; benches construct a fresh controller
(with a seeded RNG for jittered interleavings) per experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.sched import (
    DEFAULT_TIMESLICE_NS,
    CpuGroup,
    Scheduler,
    SchedTask,
    SchedulerStats,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.cgroups import Cgroup
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process
    from repro.sim.rng import DeterministicRandom


class CpuController:
    """Drives one multi-tenant scheduler run over a kernel's processes."""

    def __init__(self, kernel: "Kernel",
                 rng: "DeterministicRandom | None" = None,
                 timeslice_ns: int = DEFAULT_TIMESLICE_NS) -> None:
        self.kernel = kernel
        self.scheduler = Scheduler(
            kernel.clock, rng=rng, timeslice_ns=timeslice_ns,
            context_switch_ns=kernel.costs.context_switch_ns,
            psi=kernel.psi, tracer=kernel.tracer)
        self._groups: dict[str, CpuGroup] = {}

    # ------------------------------------------------------------- groups
    def group_for(self, cgroup: "Cgroup") -> CpuGroup:
        """The scheduling group backing ``cgroup`` (created on first use).

        The root cgroup maps to the scheduler's root group; every other
        cgroup gets a group parented at its cgroup-parent's group, so quota
        throttling applies hierarchically exactly like ``cpu.max``.
        """
        path = cgroup.path
        group = self._groups.get(path)
        if group is None:
            if cgroup.parent is None:
                group = self.scheduler.root_group
                group.stats = cgroup.cpu_stats
            else:
                limits = cgroup.limits
                group = self.scheduler.new_group(
                    path,
                    weight=limits.cpu_weight(),
                    quota_ns=None if limits.cpu_quota_us is None
                    else limits.cpu_quota_us * 1_000,
                    period_ns=limits.cpu_period_us * 1_000,
                    parent=self.group_for(cgroup.parent),
                    stats=cgroup.cpu_stats)
            # Throttle stalls accrue CPU pressure against the cgroup's own
            # PSI chain (leaf to root), not whichever task happens to be
            # current when the period refreshes.
            group.psi = self.kernel.psi
            group.tracer = self.kernel.tracer
            group.psi_groups = tuple(
                self.kernel.memcg.psi_chain(cgroup))
            self._groups[path] = group
        return group

    def sync_limits(self) -> None:
        """Re-read ``cpu.weight``/``cpu.max`` for every mapped group.

        Called at :meth:`run` so knob writes made through cgroupfs after a
        task was spawned still take effect, like an enforcement-period
        boundary picking up new limits.
        """
        for path in sorted(self._groups):
            group = self._groups[path]
            if group is self.scheduler.root_group:
                continue
            limits = self.kernel.cgroups.lookup(path).limits
            group.weight = limits.cpu_weight()
            group.quota_ns = None if limits.cpu_quota_us is None \
                else limits.cpu_quota_us * 1_000
            group.period_ns = limits.cpu_period_us * 1_000

    # ------------------------------------------------------------- tasks
    def spawn(self, process: "Process", body,
              name: str | None = None) -> SchedTask:
        """Run ``body`` as ``process``, scheduled in the process's cgroup."""
        cgroup = self.kernel.cgroups.cgroup_of(process.pid)
        task = self.scheduler.spawn(name or process.comm, body,
                                    group=self.group_for(cgroup))

        def charge(delta_ns: int, _process=process) -> None:
            _process.cpu_time_ns += delta_ns

        task.charge_hook = charge
        return task

    def run(self, until_ns: int | None = None,
            max_picks: int | None = None) -> SchedulerStats:
        """Dispatch all spawned tasks to completion."""
        self.sync_limits()
        return self.scheduler.run(until_ns=until_ns, max_picks=max_picks)
