"""The cgroup v2 memory controller: per-cgroup page-cache budgets.

Cntr moves the processes it injects into the container's cgroup precisely so
that the debugging tools are subject to the container's resource limits
(design §3.2.3).  Until this module existed those limits were decorative: the
PR 4 reclaim subsystem drew every registered page cache from one kernel-wide
``MemAvailable`` budget, so a greedy container's cache could starve every
other filesystem.  ``MemcgController`` closes that gap with the three memcg
mechanisms the conformance wave pins:

* **hierarchical charge/uncharge** — every page entering a registered page
  cache (and every dirty byte entering a registered writeback engine) is
  charged to the cgroup of the process performing the syscall, walking up to
  the root so ``memory.current`` of an ancestor always covers its subtree.
  Ownership is per inode, first-toucher: the cgroup that first instantiates
  an inode's pages owns all of them until they leave the cache (the model's
  page-granular stand-in for Linux's per-page ``page->memcg``).
* **per-cgroup LRU reclaim** — growth past the tightest ``memory.max`` along
  the charge path evicts the LRU-oldest extents *owned by that cgroup's
  subtree* across all registered filesystems, flushing dirty victims through
  the owning engine first (``WB_REASON_RECLAIM``), exactly like the global
  reclaim of :meth:`repro.fs.writeback.VmSysctl.balance` — which still runs
  *after* the memcg pass, enforcing the kernel-wide budget on whatever the
  per-cgroup limits let through.
* **write throttling** — a writer dirtying data while ``memory.current`` sits
  above ``memory.high`` is stalled for a deterministic
  ``bytes * throttle_ns_per_byte`` of virtual time (the shape of Linux's
  ``mem_cgroup_handle_over_high`` penalty), charged to the
  :class:`~repro.sim.clock.VirtualClock` and surfaced in ``memory.stat`` and
  :class:`~repro.fs.writeback.WritebackStats`.

With no limit set anywhere (the default) the controller is pure bookkeeping:
it never advances the clock and never reclaims, so the system is
observationally identical to the PR 4 engine — the property
``tests/test_memcg.py`` locks down the same way ``reclaim_enabled=False``
was.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.fs.writeback import WB_REASON_RECLAIM
from repro.kernel.cgroups import Cgroup, CgroupHierarchy, CgroupIoStat

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fs.filesystem import Filesystem
    from repro.fs.pagecache import PageCache
    from repro.fs.writeback import WritebackEngine
    from repro.sim.clock import VirtualClock
    from repro.sim.psi import PsiGroup, PsiRegistry
    from repro.sim.trace import Tracer

#: Default writer-stall price while over ``memory.high``: 2 ns per dirtied
#: byte (~500 MB/s of modelled throttle drain).
MEMCG_THROTTLE_NS_PER_BYTE = 2


def _limit_of(value: int | None) -> int | None:
    """Normalise a limit knob: ``None`` and ``0`` both mean unlimited."""
    if value is None or value <= 0:
        return None
    return value


class MemcgController:
    """Charge attribution, per-cgroup reclaim and write throttling.

    One instance lives on the :class:`~repro.kernel.kernel.Kernel`
    (``kernel.memcg``); :class:`~repro.fs.writeback.VmSysctl` forwards
    filesystem registration so every mounted page cache and tunable writeback
    engine reports its growth here, exactly as they already report to the
    kernel-wide knobs.
    """

    def __init__(self, cgroups: CgroupHierarchy, clock: "VirtualClock") -> None:
        self.cgroups = cgroups
        self.clock = clock
        self.throttle_ns_per_byte = MEMCG_THROTTLE_NS_PER_BYTE
        #: Pid of the process whose syscall is executing; set by
        #: ``Syscalls._charge`` (the model's ``current``).  Charges are
        #: attributed to this process's cgroup.
        self._current_pid = 0
        self._filesystems: list["Filesystem"] = []
        #: cache -> {ino -> owning cgroup} / {ino -> charged bytes}.  Keyed
        #: by the cache/engine objects themselves (identity hash), not by
        #: ``id()``: a kernel snapshot deep-copies the whole object graph and
        #: raw ids do not survive the copy, while object keys are remapped
        #: consistently by the deepcopy memo.
        self._cache_owner: dict["PageCache", dict[int, Cgroup]] = {}
        self._cache_charged: dict["PageCache", dict[int, int]] = {}
        #: engine -> {ino -> owning cgroup} / {ino -> charged dirty bytes}.
        self._dirty_owner: dict["WritebackEngine", dict[int, Cgroup]] = {}
        self._dirty_charged: dict["WritebackEngine", dict[int, int]] = {}
        #: Cgroups whose charges grew since the last balance pass and that
        #: have a limit somewhere on their charge path (insertion-ordered).
        self._pending: dict[Cgroup, None] = {}
        self._balancing = False
        #: Observability hooks, installed by the kernel: the PSI registry
        #: (memory stalls: ``memory.high`` throttling as ``some``, reclaim
        #: passes as ``some``+``full``) and the tracepoint registry
        #: (``memcg.reclaim``).  Both optional; pure bookkeeping when unset.
        self.psi: "PsiRegistry | None" = None
        self.tracer: "Tracer | None" = None

    # ------------------------------------------------------------ attribution
    def current_cgroup(self) -> Cgroup:
        """The cgroup of the process whose syscall is executing."""
        return self.cgroups.cgroup_of(self._current_pid)

    @staticmethod
    def psi_chain(cgroup: Cgroup) -> "list[PsiGroup]":
        """The PSI groups a stall in ``cgroup`` is attributed to (leaf→root)."""
        groups = []
        node = cgroup
        while node is not None:
            groups.append(node.psi)
            node = node.parent
        return groups

    # ------------------------------------------------------------ registration
    def register_fs(self, fs: "Filesystem") -> None:
        """Bring a mounted filesystem's cache and engine under the controller."""
        if fs in self._filesystems:
            return
        self._filesystems.append(fs)
        cache = getattr(fs, "page_cache", None)
        if cache is not None:
            cache.memcg = self
        engine = getattr(fs, "writeback", None)
        if engine is not None and engine.sysctl_tunable:
            # tmpfs-style engines stay out, exactly like they stay out of the
            # kernel-wide Dirty accounting (VmSysctl only sums tunable
            # engines), so memory.stat file_dirty and /proc/meminfo Dirty
            # can never disagree.
            engine.memcg = self
            if engine.bdi is not None:
                # Device reads report through the BDI so ``io.stat`` rbytes
                # are attributed to the faulting process's cgroup.
                engine.bdi.memcg = self

    def unregister_fs(self, fs: "Filesystem") -> None:
        """Detach a filesystem (last umount), releasing its charges."""
        if fs not in self._filesystems:
            return
        self._filesystems.remove(fs)
        cache = getattr(fs, "page_cache", None)
        if cache is not None and getattr(cache, "memcg", None) is self:
            self.cache_cleared(cache)
            cache.memcg = None
        engine = getattr(fs, "writeback", None)
        if engine is not None and getattr(engine, "memcg", None) is self:
            for ino, nbytes in self._dirty_charged.pop(engine, {}).items():
                owner = self._dirty_owner.get(engine, {}).get(ino)
                if owner is not None:
                    self._walk(owner, -nbytes, dirty=True)
            self._dirty_owner.pop(engine, None)
            engine.memcg = None
            if engine.bdi is not None and \
                    getattr(engine.bdi, "memcg", None) is self:
                engine.bdi.memcg = None

    def set_current(self, pid: int) -> None:
        """Record the process whose syscall is executing (charge attribution)."""
        self._current_pid = pid

    def _current_cgroup(self) -> Cgroup:
        return self.current_cgroup()

    # ------------------------------------------------------------ charging
    def _walk(self, cgroup: Cgroup, delta: int, dirty: bool) -> bool:
        """Apply a charge delta from ``cgroup`` up to the root.

        Returns True when some node on the path carries a memory limit or a
        high ceiling — the only case where an enforcement pass can have any
        work to do.
        """
        limited = False
        node = cgroup
        while node is not None:
            if dirty:
                node.mem_dirty_bytes += delta
            else:
                node.mem_cache_bytes += delta
                if node.mem_cache_bytes > node.stats_memory_peak:
                    node.stats_memory_peak = node.mem_cache_bytes
            limits = node.limits
            # Inlined _limit_of (hot path): None and <= 0 mean unlimited.
            lm = limits.memory_limit_bytes
            hm = limits.memory_high_bytes
            if (lm is not None and lm > 0) or (hm is not None and hm > 0):
                limited = True
            node = node.parent
        return limited

    def cache_delta(self, cache: "PageCache", ino: int, delta_bytes: int) -> None:
        """Page-cache residency of ``ino`` changed by ``delta_bytes``."""
        if delta_bytes == 0:
            return
        owners = self._cache_owner.setdefault(cache, {})
        charged = self._cache_charged.setdefault(cache, {})
        if delta_bytes > 0:
            owner = owners.get(ino)
            if owner is None:
                owner = self._current_cgroup()
                owners[ino] = owner
            charged[ino] = charged.get(ino, 0) + delta_bytes
            if self._walk(owner, delta_bytes, dirty=False):
                self._pending[owner] = None
            return
        owner = owners.get(ino)
        if owner is None:
            return                       # pages predating the memcg wiring
        have = charged.get(ino, 0)
        take = min(have, -delta_bytes)
        if take <= 0:
            return
        if have - take > 0:
            charged[ino] = have - take
        else:
            charged.pop(ino, None)
            owners.pop(ino, None)
        self._walk(owner, -take, dirty=False)

    def cache_cleared(self, cache: "PageCache") -> None:
        """The whole cache was invalidated: release every charge it held."""
        owners = self._cache_owner.pop(cache, {})
        for ino, nbytes in self._cache_charged.pop(cache, {}).items():
            owner = owners.get(ino)
            if owner is not None:
                self._walk(owner, -nbytes, dirty=False)

    # ------------------------------------------------------------ dirty + stall
    def note_dirty(self, engine: "WritebackEngine", ino: int, nbytes: int) -> None:
        """Account freshly dirtied bytes, stalling the writer while the owning
        cgroup sits above ``memory.high`` (balance_dirty_pages semantics)."""
        if nbytes <= 0:
            return
        owners = self._dirty_owner.setdefault(engine, {})
        owner = owners.get(ino)
        if owner is None:
            owner = self._current_cgroup()
            owners[ino] = owner
        charged = self._dirty_charged.setdefault(engine, {})
        charged[ino] = charged.get(ino, 0) + nbytes
        self._walk(owner, nbytes, dirty=True)
        over = self._over_high(owner)
        if over is not None:
            stall = nbytes * self.throttle_ns_per_byte
            if stall > 0:
                # The breach is counted on the node whose ceiling was
                # exceeded (as reclaim stats are counted on the enforcing
                # node), which is the writer's own cgroup unless an
                # ancestor's high is the one that bit.
                over.memcg_stats.throttle_events += 1
                over.memcg_stats.throttle_stall_ns += stall
                engine.stats.throttle_stall_ns += stall
                self.clock.advance(stall)
                if self.psi is not None:
                    # The stalled writer is the victim: memory pressure on
                    # its own chain, delta identical to the
                    # ``throttle_stall_ns`` increment above.
                    self.psi.account("memory", stall,
                                     groups=self.psi_chain(owner))

    def _over_high(self, cgroup: Cgroup) -> Cgroup | None:
        """The nearest ancestor (or ``cgroup`` itself) above its high ceiling."""
        node = cgroup
        while node is not None:
            high = _limit_of(node.limits.memory_high_bytes)
            if high is not None and node.mem_cache_bytes > high:
                return node
            node = node.parent
        return None

    def dirty_flushed(self, engine: "WritebackEngine",
                      items: list[tuple[int, int]]) -> None:
        """Pending bytes were written back: uncharge them."""
        self._dirty_uncharge(engine, items)

    def dirty_discarded(self, engine: "WritebackEngine", ino: int,
                        nbytes: int) -> None:
        """Pending bytes were dropped without writeback: uncharge them."""
        self._dirty_uncharge(engine, [(ino, nbytes)])

    def _dirty_uncharge(self, engine: "WritebackEngine",
                        items: list[tuple[int, int]]) -> None:
        owners = self._dirty_owner.get(engine)
        charged = self._dirty_charged.get(engine)
        if not owners or charged is None:
            return
        for ino, nbytes in items:
            owner = owners.get(ino)
            if owner is None:
                continue
            take = min(charged.get(ino, 0), nbytes)
            if take <= 0:
                continue
            if charged[ino] - take > 0:
                charged[ino] -= take
            else:
                charged.pop(ino, None)
                owners.pop(ino, None)
            self._walk(owner, -take, dirty=True)

    # ------------------------------------------------------------ enforcement
    def balance(self) -> None:
        """Enforce ``memory.max`` for every cgroup whose charges grew.

        Called by every registered page cache after growth (before the
        kernel-wide :meth:`VmSysctl.balance`, so the per-container limits are
        applied first and the global budget sees the result).  A no-op unless
        some charge path carries a limit — the default configuration never
        enters the loop.
        """
        if self._balancing or not self._pending:
            return
        self._balancing = True
        try:
            while self._pending:
                cgroup = next(iter(self._pending))
                del self._pending[cgroup]
                self._enforce(cgroup)
        finally:
            self._balancing = False

    def enforce(self, cgroup: Cgroup) -> None:
        """Synchronously reclaim ``cgroup``'s subtree back under its limits
        (the ``memory.max``-written-below-usage path of the cgroupfs)."""
        if self._balancing:
            return
        self._balancing = True
        try:
            self._enforce(cgroup)
        finally:
            self._balancing = False

    def _enforce(self, cgroup: Cgroup) -> None:
        # Tightest-limit-wins falls out of walking the whole charge path:
        # every over-limit ancestor reclaims its own subtree down to its own
        # limit, so the strictest one has the final word.
        node = cgroup
        while node is not None:
            limit = _limit_of(node.limits.memory_limit_bytes)
            if limit is not None and node.mem_cache_bytes > limit:
                self._reclaim(node, limit)
            node = node.parent

    def _owned_pred(self, cache: "PageCache", node: Cgroup) -> Callable[[int], bool]:
        """An O(1)-per-extent membership test for "``ino`` is owned by
        ``node``'s subtree" in the given cache.

        The owned set is materialised once (one ancestor walk per owned
        inode, not per live extent): ownership cannot grow during a reclaim
        pass — no charges happen inside it — and inodes that become fully
        evicted simply stop having live extents, so a stale member is
        harmless.
        """
        owned = set()
        for ino, owner in self._cache_owner.get(cache, {}).items():
            walk = owner
            while walk is not None:
                if walk is node:
                    owned.add(ino)
                    break
                walk = walk.parent
        return owned.__contains__

    def _reclaim(self, node: Cgroup, limit: int) -> None:
        """Evict the LRU-oldest pages owned by ``node``'s subtree until its
        ``memory.current`` fits ``limit`` (or nothing owned remains)."""
        t0 = self.clock.now_ns
        stats = node.memcg_stats
        freed = 0
        preds = {}
        for fs in self._filesystems:
            cache = getattr(fs, "page_cache", None)
            if cache is not None:
                preds[cache] = self._owned_pred(cache, node)
        while node.mem_cache_bytes > limit:
            victim_fs = None
            victim_pred = None
            best_seq = None
            for fs in self._filesystems:
                cache = getattr(fs, "page_cache", None)
                if cache is None:
                    continue
                pred = preds[cache]
                seq = cache.oldest_seq(ino_filter=pred)
                if seq is not None and (best_seq is None or seq < best_seq):
                    best_seq, victim_fs, victim_pred = seq, fs, pred
            if victim_fs is None:
                break
            cache = victim_fs.page_cache
            engine = getattr(victim_fs, "writeback", None)

            def flush_inode(ino: int, _engine=engine) -> None:
                if _engine is not None:
                    _engine.flush(ino, reason=WB_REASON_RECLAIM)

            want = -(-(node.mem_cache_bytes - limit) // cache.page_size)
            clean, flushed = cache.reclaim_oldest(want, flush_inode,
                                                  ino_filter=victim_pred)
            if clean == 0 and flushed == 0:
                break
            stats.pages_dropped += clean
            stats.pages_flushed += flushed
            freed += (clean + flushed) * cache.page_size
        if freed:
            stats.reclaims += 1
            stats.bytes_reclaimed += freed
        delta = self.clock.now_ns - t0
        stats.reclaim_cost_ns += delta
        if delta > 0:
            if self.psi is not None:
                # Direct reclaim stops the charging task dead: some *and*
                # full memory pressure on the enforcing cgroup's chain.
                self.psi.account("memory", delta, full=True,
                                 groups=self.psi_chain(node))
            tracer = self.tracer
            if tracer is not None and tracer.active:
                tracer.emit(self.clock.now_ns, "memcg.reclaim", cost_ns=delta,
                            cgroup=node.path, bytes=freed)

    # ------------------------------------------------------------ block I/O
    def io_read(self, device: str, nbytes: int) -> None:
        """A device read on ``device``: charge ``io.stat`` rbytes/rios to the
        current process's cgroup chain (zero virtual cost — the BDI itself
        charges the transfer time)."""
        if nbytes <= 0:
            return
        node = self._current_cgroup()
        while node is not None:
            row = node.io_stats.get(device)
            if row is None:
                row = node.io_stats[device] = CgroupIoStat()
            row.rbytes += nbytes
            row.rios += 1
            node = node.parent

    def io_wrote(self, engine: "WritebackEngine", device: str,
                 items: list[tuple[int, int]]) -> None:
        """Writeback hit the device: charge ``io.stat`` wbytes/wios per flushed
        inode to the *dirtying* cgroup (cgroup-writeback attribution), falling
        back to the current cgroup for bytes that predate the memcg wiring."""
        owners = self._dirty_owner.get(engine, {})
        fallback = None
        for ino, nbytes in items:
            if nbytes <= 0:
                continue
            owner = owners.get(ino)
            if owner is None:
                if fallback is None:
                    fallback = self._current_cgroup()
                owner = fallback
            node = owner
            while node is not None:
                row = node.io_stats.get(device)
                if row is None:
                    row = node.io_stats[device] = CgroupIoStat()
                row.wbytes += nbytes
                row.wios += 1
                node = node.parent

    def total_pages_reclaimed(self) -> int:
        """Pages reclaimed by *per-cgroup* enforcement across the hierarchy
        (``/proc/vmstat`` ``pgsteal_memcg``); the root subtree sum would
        double-count, so walk every node."""
        total = 0
        stack = [self.cgroups.root]
        while stack:
            node = stack.pop()
            total += node.memcg_stats.pages_reclaimed
            stack.extend(node.children.values())
        return total

    # ------------------------------------------------------------ rendering
    def memory_stat_text(self, cgroup: Cgroup) -> str:
        """Render the cgroup's ``memory.stat`` file."""
        stats = cgroup.memcg_stats
        rows = [
            ("file", cgroup.mem_cache_bytes),
            ("file_dirty", cgroup.mem_dirty_bytes),
            ("reclaims", stats.reclaims),
            ("pages_dropped", stats.pages_dropped),
            ("pages_flushed", stats.pages_flushed),
            ("bytes_reclaimed", stats.bytes_reclaimed),
            ("reclaim_cost_ns", stats.reclaim_cost_ns),
            ("throttle_events", stats.throttle_events),
            ("throttle_stall_ns", stats.throttle_stall_ns),
        ]
        return "".join(f"{key} {value}\n" for key, value in rows)
