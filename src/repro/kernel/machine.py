"""Booting a simulated host machine.

:func:`boot` assembles a complete host: an ext4-like root filesystem populated
with a small FHS tree and a set of host tools (debuggers, editors, shells — the
things the paper's "fat image / host tools" use-cases revolve around), the
``/proc``, ``/dev``, ``/sys``, ``/tmp`` and ``/run`` mounts, and the init
process.  Everything else (container engines, Cntr) runs on top of the
returned :class:`Machine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fs.constants import FileMode, OpenFlags
from repro.fs.ext4 import Ext4Fs
from repro.fs.tmpfs import TmpFS
from repro.kernel.kernel import (
    DEV_FUSE_RDEV,
    DEV_NULL_RDEV,
    DEV_URANDOM_RDEV,
    DEV_ZERO_RDEV,
    Kernel,
)
from repro.kernel.procfs import ProcFS
from repro.kernel.process import Process
from repro.kernel.syscalls import Syscalls
from repro.fs.mount import MountNamespace
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.trace import Tracer

#: Host tools installed under /usr/bin with their nominal sizes in bytes.
HOST_TOOLS = {
    "bash": 1_100_000,
    "sh": 120_000,
    "ls": 140_000,
    "cat": 40_000,
    "cp": 150_000,
    "mv": 140_000,
    "rm": 70_000,
    "find": 300_000,
    "grep": 200_000,
    "tar": 420_000,
    "gzip": 100_000,
    "ps": 140_000,
    "top": 120_000,
    "free": 40_000,
    "gdb": 8_500_000,
    "strace": 1_600_000,
    "ltrace": 350_000,
    "perf": 9_000_000,
    "tcpdump": 1_200_000,
    "vim": 3_200_000,
    "nano": 280_000,
    "less": 180_000,
    "curl": 250_000,
    "ip": 650_000,
    "ss": 200_000,
    "lsof": 160_000,
    "du": 150_000,
    "df": 120_000,
    "python3": 5_400_000,
    "htop": 350_000,
    "git": 3_400_000,
}

#: Host configuration files and their contents.
HOST_ETC_FILES = {
    "/etc/passwd": "root:x:0:0:root:/root:/bin/bash\nnobody:x:65534:65534::/:/sbin/nologin\n",
    "/etc/group": "root:x:0:\nnogroup:x:65534:\n",
    "/etc/hostname": "host\n",
    "/etc/hosts": "127.0.0.1 localhost\n",
    "/etc/resolv.conf": "nameserver 10.0.0.2\n",
    "/etc/os-release": 'NAME="Repro Host Linux"\nID=repro\nVERSION_ID="1.0"\n',
    "/etc/ld.so.cache": "# cache\n",
    "/etc/nsswitch.conf": "passwd: files\ngroup: files\nhosts: files dns\n",
}


@dataclass
class Machine:
    """A booted simulated host."""

    kernel: Kernel
    init: Process
    rootfs: Ext4Fs
    procfs: ProcFS
    devfs: TmpFS
    tmpfs: TmpFS
    syscalls: Syscalls = field(init=False)

    def __post_init__(self) -> None:
        self.syscalls = Syscalls(self.kernel, self.init)

    @property
    def clock(self) -> VirtualClock:
        """The machine's virtual clock."""
        return self.kernel.clock

    def syscalls_for(self, process: Process) -> Syscalls:
        """Syscall facade bound to an arbitrary process."""
        return Syscalls(self.kernel, process)

    def spawn_host_process(self, argv: list[str],
                           env: dict[str, str] | None = None) -> Syscalls:
        """Fork a new host process off init and return its syscall facade."""
        return self.syscalls.spawn(argv, env)


def _write_file(sc: Syscalls, path: str, content: bytes | str, mode: int = 0o644,
                size: int | None = None) -> None:
    """Create a file with optional synthetic padding up to ``size`` bytes."""
    if isinstance(content, str):
        content = content.encode()
    fd = sc.open(path, OpenFlags.O_CREAT | OpenFlags.O_WRONLY | OpenFlags.O_TRUNC, mode)
    sc.write(fd, content)
    if size is not None and size > len(content):
        sc.ftruncate(fd, size)
    sc.close(fd)


def populate_host_rootfs(sc: Syscalls) -> None:
    """Create the FHS skeleton, host tools and configuration files."""
    for directory in ("/bin", "/sbin", "/usr", "/usr/bin", "/usr/sbin", "/usr/lib",
                      "/usr/share", "/usr/local", "/usr/local/bin", "/lib", "/lib64",
                      "/etc", "/root", "/home", "/var", "/var/log", "/var/lib",
                      "/var/cache", "/opt", "/srv", "/mnt", "/media", "/proc", "/sys",
                      "/dev", "/tmp", "/run"):
        sc.makedirs(directory)
    for name, size in HOST_TOOLS.items():
        header = f"#!ELF simulated binary {name}\n".encode()
        _write_file(sc, f"/usr/bin/{name}", header, mode=0o755, size=size)
    sc.symlink("/usr/bin/bash", "/bin/bash")
    sc.symlink("/usr/bin/sh", "/bin/sh")
    sc.symlink("/usr/bin/gzip", "/bin/gzip")
    _write_file(sc, "/usr/lib/libc.so.6", b"\x7fELF libc", mode=0o755, size=1_900_000)
    _write_file(sc, "/usr/lib/libpthread.so.0", b"\x7fELF pthread", mode=0o755, size=150_000)
    _write_file(sc, "/usr/lib/libncurses.so.6", b"\x7fELF ncurses", mode=0o755, size=400_000)
    _write_file(sc, "/sbin/init", b"\x7fELF init", mode=0o755, size=60_000)
    for path, content in HOST_ETC_FILES.items():
        _write_file(sc, path, content)
    # Home directory for root with a debugger configuration the paper's
    # host-to-container use case would pick up.
    sc.makedirs("/root/.config")
    _write_file(sc, "/root/.gdbinit", "set pagination off\n")
    _write_file(sc, "/root/.bashrc", "export PS1='host# '\n")


def populate_devfs(sc: Syscalls) -> None:
    """Create the standard device nodes under /dev."""
    sc.mknod("/dev/null", FileMode.S_IFCHR | 0o666, rdev=DEV_NULL_RDEV)
    sc.mknod("/dev/zero", FileMode.S_IFCHR | 0o666, rdev=DEV_ZERO_RDEV)
    sc.mknod("/dev/urandom", FileMode.S_IFCHR | 0o666, rdev=DEV_URANDOM_RDEV)
    sc.mknod("/dev/random", FileMode.S_IFCHR | 0o666, rdev=DEV_URANDOM_RDEV)
    sc.mknod("/dev/fuse", FileMode.S_IFCHR | 0o666, rdev=DEV_FUSE_RDEV)
    sc.makedirs("/dev/pts")
    sc.makedirs("/dev/shm")


def boot(cost_model: CostModel | None = None, tracer: Tracer | None = None,
         store_data: bool = True, page_cache_bytes: int = 12 << 30) -> Machine:
    """Boot a simulated host and return the :class:`Machine`.

    ``store_data=False`` turns off byte storage for file contents on every
    filesystem created here; the benchmarks use it to keep memory flat.
    """
    clock = VirtualClock()
    costs = cost_model or CostModel()
    trace = tracer or Tracer(enabled=False)
    kernel = Kernel(clock, costs, trace)

    rootfs = Ext4Fs("rootfs", clock, costs, trace, page_cache_bytes=page_cache_bytes)
    rootfs.store_data = store_data
    # The root mount never goes through Syscalls.mount, so bring it under the
    # kernel-wide vm.* control (dirty_* knobs + drop_caches) by hand.
    kernel.vm.register_fs(rootfs)
    mounts = MountNamespace(rootfs)
    init = kernel.create_init_process(mounts)
    sc = Syscalls(kernel, init)

    populate_host_rootfs(sc)

    # /proc bound to the host PID namespace.
    procfs = ProcFS("proc", kernel, init.pid_ns)
    sc.mount(procfs, "/proc")

    # /dev, /tmp, /run, /sys as tmpfs instances.
    devfs = TmpFS("devtmpfs", clock, costs, trace)
    sc.mount(devfs, "/dev")
    populate_devfs(sc)

    tmpfs = TmpFS("tmpfs", clock, costs, trace)
    tmpfs.store_data = store_data
    sc.mount(tmpfs, "/tmp")
    sc.mount(TmpFS("run", clock, costs, trace), "/run")
    sysfs = TmpFS("sysfs", clock, costs, trace)
    sc.mount(sysfs, "/sys")
    sc.makedirs("/sys/fs/cgroup")
    sc.makedirs("/sys/fs/fuse/connections")
    # /sys/class/bdi: per-device writeback knobs (read_ahead_kb); devices
    # appear here as their filesystems are mounted.  /sys/fs/cgroup: the
    # writable cgroup v2 hierarchy driving the memory controller.
    from repro.kernel.sysfs import BdiSysFS, CgroupFS, TracingFS
    sc.makedirs("/sys/class/bdi")
    sc.mount(BdiSysFS("bdi-sysfs", kernel), "/sys/class/bdi")
    sc.mount(CgroupFS("cgroupfs", kernel), "/sys/fs/cgroup")
    # /sys/kernel/debug/tracing: the ftrace-shaped tracepoint control surface.
    sc.makedirs("/sys/kernel/debug/tracing")
    sc.mount(TracingFS("tracefs", kernel), "/sys/kernel/debug/tracing")

    # Register the FUSE character-device driver (deferred import: the fuse
    # package depends on repro.kernel.objects but not on this module).
    from repro.fuse.device import register_fuse_device
    register_fuse_device(kernel)

    # Mark the host mount tree shared, as systemd does on modern hosts; the
    # container runtimes then make their namespaces private, and Cntr relies
    # on re-marking everything private inside its nested namespace.
    mounts.make_shared(mounts.root_mount, recursive=True)
    # The freshly-populated root tree is the installed system: checkpoint it
    # into the journal's durable image so a simulated power failure replays
    # back to a booted host instead of an empty disk.  Pure bookkeeping.
    rootfs.checkpoint()
    return Machine(kernel=kernel, init=init, rootfs=rootfs, procfs=procfs,
                   devfs=devfs, tmpfs=tmpfs)


#: Cached post-boot kernel snapshots keyed by the ``boot()`` arguments that
#: change the image.  Custom cost models / tracers bypass the cache.
_BOOT_CACHE: dict[tuple[bool, int], "object"] = {}


def boot_forked(store_data: bool = True,
                page_cache_bytes: int = 12 << 30) -> Machine:
    """A booted host cloned from a cached :meth:`Kernel.snapshot` image.

    Observationally identical to :func:`boot` with the same arguments — the
    first call boots for real and snapshots the result; later calls fork the
    frozen image, which is several times cheaper than re-running the whole
    rootfs population.  Every clone is fully independent (no shared mutable
    state), so this is safe for per-test fixtures.
    """
    key = (store_data, page_cache_bytes)
    snap = _BOOT_CACHE.get(key)
    if snap is None:
        m = boot(store_data=store_data, page_cache_bytes=page_cache_bytes)
        snap = m.kernel.snapshot(m)
        _BOOT_CACHE[key] = snap
    _kernel, (machine,) = snap.fork()
    return machine
