"""Per-process syscall facade.

A :class:`Syscalls` object is "libc plus the kernel entry point" for one
process: every call charges the syscall trap cost, builds the process's path
context (mount namespace, root, cwd, credentials) and dispatches either to the
VFS or to the kernel-object layer.  Everything above this module — container
engines, Cntr, the workload generators — interacts with the simulated OS only
through this interface.
"""

from __future__ import annotations

from repro.fs.constants import FileMode, OpenFlags, SeekWhence
from repro.fs.errors import FsError
from repro.fs.filesystem import Filesystem
from repro.fs.inode import DeviceInode, SocketInode
from repro.fs.mount import Mount
from repro.fs.stat import FileStat, StatVfs
from repro.fs.vfs import OpenFile, PathContext
from repro.kernel.kernel import Kernel
from repro.kernel.namespaces import NamespaceKind, UtsNamespace
from repro.kernel.objects import (
    EpollInstance,
    KernelObject,
    UnixListener,
    make_pipe,
    make_pty,
    make_socketpair,
)
from repro.kernel.process import Process

#: Precomputed int mask for "this open may write" — the LSM gate runs on every
#: ``open(2)`` and IntFlag arithmetic there is measurable in the profile.
_WRITE_INTENT = int(OpenFlags.O_WRONLY | OpenFlags.O_RDWR | OpenFlags.O_CREAT)


class Syscalls:
    """The system-call interface bound to one process."""

    def __init__(self, kernel: Kernel, process: Process) -> None:
        self.kernel = kernel
        self.process = process
        self.vfs = kernel.vfs
        #: Memoised PathContext: rebuilt only when an identity input (mount
        #: namespace, root, cwd, credentials) changes.  All four are replaced
        #: wholesale on mutation (unshare/setns/chroot/cred changes), so four
        #: ``is`` checks decide validity — the VFS treats the context as
        #: read-only, making sharing one object across syscalls safe.
        self._ctx_cache: PathContext | None = None

    # ------------------------------------------------------------- context
    def _charge(self) -> None:
        # The memory controller attributes page-cache and dirty charges to
        # the cgroup of the process whose syscall is executing ("current").
        self.kernel.memcg.set_current(self.process.pid)
        self.kernel.clock.advance(self.kernel.costs.syscall_ns)

    def _ctx(self) -> PathContext:
        proc = self.process
        creds = proc.credentials()
        ns = proc.mnt_ns
        ctx = self._ctx_cache
        if ctx is not None and ctx.creds is creds and ctx.ns is ns \
                and ctx.root is proc.root and ctx.cwd is proc.cwd:
            return ctx
        ctx = PathContext(ns=ns, root=proc.root, cwd=proc.cwd, creds=creds)
        self._ctx_cache = ctx
        return ctx

    def _lsm_check(self, path: str, write: bool = False) -> None:
        self.process.lsm_profile.check_path(path, write)

    def _write_creds(self):
        """Credentials for the VFS write path, or None when they cannot matter.

        The VFS consults them only to enforce ``RLIMIT_FSIZE``; building the
        frozenset-heavy :class:`Credentials` object on every write is pure
        hot-path overhead for the (default) unlimited case.
        """
        if self.process.rlimits.fsize_bytes is None:
            return None
        return self.process.credentials()

    def for_process(self, process: Process) -> "Syscalls":
        """A facade bound to another process (used after fork)."""
        return Syscalls(self.kernel, process)

    # ------------------------------------------------------------- identity
    def getpid(self) -> int:
        """Pid as seen inside the process's PID namespace."""
        return self.process.vpid()

    def sched_yield(self) -> int:
        """Relinquish the CPU (``sched_yield(2)``).

        Inline (non-scheduled) callers just pay the trap cost; workload
        generators running under :mod:`repro.kernel.cpu` call this before a
        ``yield`` statement so the voluntary preemption point also charges
        the syscall the real program would make.
        """
        self._charge()
        return 0

    def getpid_global(self) -> int:
        """Host (global) pid."""
        return self.process.pid

    def getuid(self) -> int:
        """Real uid."""
        return self.process.uid

    def getgid(self) -> int:
        """Real gid."""
        return self.process.gid

    def setuid(self, uid: int) -> None:
        """Change uid (requires CAP_SETUID when not already that uid)."""
        self._charge()
        if uid != self.process.uid and not self.process.caps.has("CAP_SETUID"):
            raise FsError.eperm("setuid")
        self.process.uid = uid

    def setgid(self, gid: int) -> None:
        """Change gid (requires CAP_SETGID)."""
        self._charge()
        if gid != self.process.gid and not self.process.caps.has("CAP_SETGID"):
            raise FsError.eperm("setgid")
        self.process.gid = gid

    def umask(self, mask: int) -> int:
        """Set the file-creation mask; returns the previous mask."""
        previous = self.process.umask
        self.process.umask = mask & 0o777
        return previous

    def setrlimit_fsize(self, limit: int | None) -> None:
        """Set RLIMIT_FSIZE."""
        self.process.rlimits.fsize_bytes = limit

    def capset_drop(self, caps: set[str]) -> None:
        """Drop capabilities from every set."""
        self.process.caps = self.process.caps.drop(frozenset(caps))

    def apply_lsm_profile(self, profile_name: str) -> None:
        """Apply an AppArmor/SELinux profile to the calling process."""
        self.process.lsm_profile = self.kernel.lsm.get(profile_name)

    def sethostname(self, hostname: str) -> None:
        """Set the hostname of the process's UTS namespace."""
        self._charge()
        uts = self.process.namespaces[NamespaceKind.UTS]
        assert isinstance(uts, UtsNamespace)
        uts.hostname = hostname

    def gethostname(self) -> str:
        """Hostname of the process's UTS namespace."""
        uts = self.process.namespaces[NamespaceKind.UTS]
        assert isinstance(uts, UtsNamespace)
        return uts.hostname

    # ------------------------------------------------------------- fd-based I/O
    def open(self, path: str, flags: int = OpenFlags.O_RDONLY, mode: int = 0o644) -> int:
        """``open(2)``; returns a file descriptor."""
        self._charge()
        write = bool(int(flags) & _WRITE_INTENT)
        self._lsm_check(path, write)
        ctx = self._ctx()
        # Device nodes are dispatched to their driver instead of the VFS.
        try:
            vnode = self.vfs.resolve(ctx, path)
            inode = vnode.inode()
        except FsError:
            inode = None
        if inode is not None and isinstance(inode, DeviceInode):
            handle = self.kernel.open_device(inode.rdev)
            return self.process.alloc_fd(handle)
        handle = self.vfs.open(ctx, path, flags, mode, owner_pid=self.process.pid)
        return self.process.alloc_fd(handle)

    def close(self, fd: int) -> None:
        """``close(2)``."""
        self._charge()
        self.process.close_fd(fd)

    def _file(self, fd: int) -> OpenFile:
        obj = self.process.get_fd(fd)
        if not isinstance(obj, OpenFile):
            raise FsError.einval(f"fd {fd} is not a regular file")
        return obj

    def _object(self, fd: int) -> object:
        return self.process.get_fd(fd)

    def read(self, fd: int, size: int) -> bytes:
        """``read(2)`` on any descriptor type."""
        self._charge()
        obj = self.process.get_fd(fd)
        if isinstance(obj, OpenFile):
            return self.vfs.read(obj, size)
        assert isinstance(obj, KernelObject)
        data = obj.read(size)
        self.kernel.clock.advance(int(self.kernel.costs.copy_cost(len(data))))
        return data

    def write(self, fd: int, data: bytes) -> int:
        """``write(2)`` on any descriptor type."""
        self._charge()
        obj = self.process.get_fd(fd)
        if isinstance(obj, OpenFile):
            return self.vfs.write(obj, data, creds=self._write_creds())
        assert isinstance(obj, KernelObject)
        written = obj.write(data)
        self.kernel.clock.advance(int(self.kernel.costs.copy_cost(written)))
        return written

    def pread(self, fd: int, size: int, offset: int) -> bytes:
        """``pread(2)``."""
        self._charge()
        return self.vfs.pread(self._file(fd), size, offset)

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        """``pwrite(2)``."""
        self._charge()
        return self.vfs.pwrite(self._file(fd), data, offset,
                               creds=self._write_creds())

    def lseek(self, fd: int, offset: int, whence: SeekWhence = SeekWhence.SEEK_SET) -> int:
        """``lseek(2)``."""
        self._charge()
        return self.vfs.lseek(self._file(fd), offset, whence)

    def fstat(self, fd: int) -> FileStat:
        """``fstat(2)``."""
        self._charge()
        return self.vfs.fstat(self._file(fd))

    def fsync(self, fd: int) -> None:
        """``fsync(2)``."""
        self._charge()
        self.vfs.fsync(self._file(fd), datasync=False)

    def fdatasync(self, fd: int) -> None:
        """``fdatasync(2)``."""
        self._charge()
        self.vfs.fsync(self._file(fd), datasync=True)

    def ftruncate(self, fd: int, size: int) -> None:
        """``ftruncate(2)``."""
        self._charge()
        self.vfs.ftruncate(self._file(fd), size)

    def fallocate(self, fd: int, mode: int, offset: int, length: int) -> None:
        """``fallocate(2)``."""
        self._charge()
        self.vfs.fallocate(self._file(fd), mode, offset, length)

    def flock(self, fd: int, lock_type, start: int = 0, length: int = 0) -> None:
        """Advisory locking on an open file."""
        self._charge()
        handle = self._file(fd)
        handle.fs.locks(handle.ino).acquire(self.process.pid, lock_type, start, length)

    def dup(self, fd: int) -> int:
        """``dup(2)`` — both descriptors share the open file description."""
        self._charge()
        return self.process.alloc_fd(self.process.get_fd(fd))

    def dup2(self, fd: int, newfd: int) -> int:
        """``dup2(2)``."""
        self._charge()
        obj = self.process.get_fd(fd)
        if newfd in self.process.fds:
            self.process.fds.pop(newfd)
        return self.process.alloc_fd(obj, fd=newfd)

    # ------------------------------------------------------------- path ops
    def stat(self, path: str) -> FileStat:
        """``stat(2)``."""
        self._charge()
        return self.vfs.stat(self._ctx(), path, follow=True)

    def lstat(self, path: str) -> FileStat:
        """``lstat(2)``."""
        self._charge()
        return self.vfs.stat(self._ctx(), path, follow=False)

    def exists(self, path: str) -> bool:
        """True when ``path`` resolves."""
        self._charge()
        return self.vfs.exists(self._ctx(), path)

    def access(self, path: str, mode: int) -> None:
        """``access(2)``."""
        self._charge()
        self.vfs.access(self._ctx(), path, mode)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        """``mkdir(2)``."""
        self._charge()
        self._lsm_check(path, write=True)
        self.vfs.mkdir(self._ctx(), path, mode)

    def makedirs(self, path: str, mode: int = 0o755) -> None:
        """Recursive mkdir."""
        self._charge()
        self.vfs.makedirs(self._ctx(), path, mode)

    def rmdir(self, path: str) -> None:
        """``rmdir(2)``."""
        self._charge()
        self.vfs.rmdir(self._ctx(), path)

    def unlink(self, path: str) -> None:
        """``unlink(2)``."""
        self._charge()
        self._lsm_check(path, write=True)
        self.vfs.unlink(self._ctx(), path)

    def rename(self, old: str, new: str, flags: int = 0) -> None:
        """``rename(2)``."""
        self._charge()
        self.vfs.rename(self._ctx(), old, new, flags)

    def symlink(self, target: str, path: str) -> None:
        """``symlink(2)``."""
        self._charge()
        self.vfs.symlink(self._ctx(), target, path)

    def readlink(self, path: str) -> str:
        """``readlink(2)``."""
        self._charge()
        return self.vfs.readlink(self._ctx(), path)

    def link(self, existing: str, new: str) -> None:
        """``link(2)``."""
        self._charge()
        self.vfs.link(self._ctx(), existing, new)

    def mknod(self, path: str, mode: int, rdev: int = 0) -> None:
        """``mknod(2)``."""
        self._charge()
        self.vfs.mknod(self._ctx(), path, mode, rdev)

    def listdir(self, path: str) -> list[str]:
        """Directory entry names (no dot entries)."""
        self._charge()
        return self.vfs.listdir(self._ctx(), path)

    def readdir(self, path: str) -> list[tuple[str, int, int]]:
        """Directory entries with inode numbers and types."""
        self._charge()
        return self.vfs.readdir(self._ctx(), path)

    def chmod(self, path: str, mode: int) -> None:
        """``chmod(2)``."""
        self._charge()
        self.vfs.chmod(self._ctx(), path, mode)

    def chown(self, path: str, uid: int, gid: int) -> None:
        """``chown(2)``."""
        self._charge()
        self.vfs.chown(self._ctx(), path, uid, gid)

    def truncate(self, path: str, size: int) -> None:
        """``truncate(2)``."""
        self._charge()
        self.vfs.truncate(self._ctx(), path, size)

    def utimens(self, path: str, atime_ns: int | None, mtime_ns: int | None) -> None:
        """``utimensat(2)``."""
        self._charge()
        self.vfs.utimens(self._ctx(), path, atime_ns, mtime_ns)

    def statfs(self, path: str) -> StatVfs:
        """``statfs(2)``."""
        self._charge()
        return self.vfs.statfs(self._ctx(), path)

    def setxattr(self, path: str, name: str, value: bytes, flags: int = 0) -> None:
        """``setxattr(2)``."""
        self._charge()
        self.vfs.setxattr(self._ctx(), path, name, value, flags)

    def getxattr(self, path: str, name: str) -> bytes:
        """``getxattr(2)``."""
        self._charge()
        return self.vfs.getxattr(self._ctx(), path, name)

    def listxattr(self, path: str) -> list[str]:
        """``listxattr(2)``."""
        self._charge()
        return self.vfs.listxattr(self._ctx(), path)

    def removexattr(self, path: str, name: str) -> None:
        """``removexattr(2)``."""
        self._charge()
        self.vfs.removexattr(self._ctx(), path, name)

    def set_acl(self, path: str, acl) -> None:
        """Attach a POSIX ACL (``setfacl``)."""
        self._charge()
        self.vfs.set_acl(self._ctx(), path, acl)

    def get_acl(self, path: str):
        """Read the POSIX ACL (``getfacl``)."""
        self._charge()
        return self.vfs.get_acl(self._ctx(), path)

    def name_to_handle_at(self, path: str) -> tuple[int, int, int]:
        """``name_to_handle_at(2)``."""
        self._charge()
        return self.vfs.name_to_handle(self._ctx(), path)

    def open_by_handle_at(self, handle: tuple[int, int, int]) -> int:
        """``open_by_handle_at(2)``; returns a read-only file descriptor."""
        self._charge()
        open_file = self.vfs.open_by_handle(self._ctx(), handle,
                                            owner_pid=self.process.pid)
        return self.process.alloc_fd(open_file)

    # ------------------------------------------------------------- cwd / root
    def chdir(self, path: str) -> None:
        """``chdir(2)``."""
        self._charge()
        vnode = self.vfs.resolve(self._ctx(), path)
        if not vnode.inode().is_dir:
            raise FsError.enotdir(path)
        self.process.cwd = vnode
        if path.startswith("/"):
            self.process.cwd_path = path
        else:
            base = self.process.cwd_path.rstrip("/")
            self.process.cwd_path = f"{base}/{path}"

    def getcwd(self) -> str:
        """``getcwd(3)`` (tracked textually)."""
        return self.process.cwd_path

    def chroot(self, path: str) -> None:
        """``chroot(2)``: requires CAP_SYS_CHROOT."""
        self._charge()
        if not self.process.caps.has("CAP_SYS_CHROOT"):
            raise FsError.eperm("chroot")
        vnode = self.vfs.resolve(self._ctx(), path)
        if not vnode.inode().is_dir:
            raise FsError.enotdir(path)
        self.process.root = vnode
        self.process.cwd = vnode
        self.process.cwd_path = "/"

    # ------------------------------------------------------------- mounts
    def mount(self, fs: Filesystem, target: str, read_only: bool = False) -> Mount:
        """Mount a filesystem object at ``target`` in the caller's mount namespace."""
        self._charge()
        if not self.process.caps.has("CAP_SYS_ADMIN"):
            raise FsError.eperm("mount")
        ctx = self._ctx()
        vnode = self.vfs.resolve(ctx, target)
        mount = self.process.mnt_ns.mount(fs, (vnode.mount, vnode.ino), target,
                                          read_only=read_only)
        # A mounted filesystem comes under the kernel-wide vm.* control
        # (/proc/sys/vm): its writeback engine follows the dirty_* knobs and
        # the filesystem becomes reachable from drop_caches, like Linux's
        # writeback control spanning all mounted filesystems.
        self.kernel.vm.register_fs(fs)
        return mount

    def bind_mount(self, source: str, target: str, read_only: bool = False,
                   recursive: bool = False) -> Mount:
        """``mount --bind`` (or ``--rbind`` with ``recursive``)."""
        self._charge()
        if not self.process.caps.has("CAP_SYS_ADMIN"):
            raise FsError.eperm("mount")
        ctx = self._ctx()
        src = self.vfs.resolve(ctx, source)
        dst = self.vfs.resolve(ctx, target)
        return self.process.mnt_ns.bind_mount((src.mount, src.ino),
                                              (dst.mount, dst.ino), target,
                                              read_only=read_only,
                                              recursive=recursive)

    def move_mount(self, source: str, target: str) -> Mount:
        """``mount --move source target``."""
        self._charge()
        if not self.process.caps.has("CAP_SYS_ADMIN"):
            raise FsError.eperm("mount")
        ctx = self._ctx()
        src = self.vfs.resolve(ctx, source)
        dst = self.vfs.resolve(ctx, target)
        if src.ino != src.mount.root_ino:
            raise FsError.einval(f"{source} is not a mountpoint")
        return self.process.mnt_ns.move_mount(src.mount, (dst.mount, dst.ino), target)

    def umount(self, target: str, force: bool = False) -> None:
        """``umount(2)``."""
        self._charge()
        if not self.process.caps.has("CAP_SYS_ADMIN"):
            raise FsError.eperm("umount")
        vnode = self.vfs.resolve(self._ctx(), target)
        if vnode.ino != vnode.mount.root_ino:
            raise FsError.einval(f"{target} is not a mountpoint")
        fs = vnode.mount.fs
        self.process.mnt_ns.umount(vnode.mount, force=force)
        # Once the filesystem has no mounts left in this namespace it leaves
        # the kernel-wide vm.* control (the inverse of the registration in
        # ``mount``).
        if not any(m.fs is fs for m in self.process.mnt_ns.mounts):
            self.kernel.vm.unregister_fs(fs)

    def mount_make_rprivate(self, target: str = "/") -> None:
        """``mount --make-rprivate``."""
        self._charge()
        vnode = self.vfs.resolve(self._ctx(), target)
        self.process.mnt_ns.make_private(vnode.mount, recursive=True)

    def mount_make_rshared(self, target: str = "/") -> None:
        """``mount --make-rshared``."""
        self._charge()
        vnode = self.vfs.resolve(self._ctx(), target)
        self.process.mnt_ns.make_shared(vnode.mount, recursive=True)

    def mount_table(self) -> list[dict]:
        """The caller's view of ``/proc/self/mounts``."""
        return self.process.mnt_ns.mount_table()

    # ------------------------------------------------------------- namespaces
    def unshare(self, *kinds: NamespaceKind) -> None:
        """``unshare(2)``."""
        self.kernel.unshare(self.process, set(kinds))

    def setns(self, namespace) -> None:
        """``setns(2)``."""
        self.kernel.setns(self.process, namespace)

    def setns_to_process(self, target_pid: int,
                         kinds: set[NamespaceKind] | None = None) -> None:
        """Join the namespaces of another process (by global pid)."""
        target = self.kernel.find_process(target_pid)
        self.kernel.setns_all_of(self.process, target, kinds)

    # ------------------------------------------------------------- processes
    def fork(self, argv: list[str] | None = None, env: dict[str, str] | None = None) -> Process:
        """Fork (optionally exec) a child process; returns the child object."""
        return self.kernel.fork(self.process, argv=argv, env=env)

    def spawn(self, argv: list[str], env: dict[str, str] | None = None) -> "Syscalls":
        """Fork + exec convenience: returns a syscall facade for the child."""
        child = self.kernel.fork(self.process, argv=argv, env=env)
        return Syscalls(self.kernel, child)

    def exit(self, code: int = 0) -> None:
        """``exit(2)``."""
        # Like every other trap, exiting charges the syscall cost: the fd
        # teardown below drops inodes and invalidates caches, and uncharged
        # kernel work would deflate virtual time (clock-accounting rule).
        self._charge()
        self.kernel.exit_process(self.process, code)

    def kill(self, pid: int, signal: int = 15) -> None:
        """``kill(2)`` (only termination signals are modelled)."""
        self._charge()
        target = self.kernel.find_process(pid)
        if not self.process.caps.has("CAP_KILL") and self.process.uid not in (0, target.uid):
            raise FsError.eperm("kill")
        if signal in (9, 15):
            self.kernel.exit_process(target, code=128 + signal)

    def ptrace_attach(self, pid: int) -> bool:
        """``ptrace(PTRACE_ATTACH)``: returns whether the attach is permitted."""
        self._charge()
        target = self.kernel.find_process(pid)
        return self.kernel.ptrace_allowed(self.process, target)

    # ------------------------------------------------------------- IPC objects
    def pipe(self) -> tuple[int, int]:
        """``pipe(2)``: returns (read_fd, write_fd)."""
        self._charge()
        read_end, write_end = make_pipe()
        return self.process.alloc_fd(read_end), self.process.alloc_fd(write_end)

    def socketpair(self) -> tuple[int, int]:
        """``socketpair(2)`` for AF_UNIX stream sockets."""
        self._charge()
        a, b = make_socketpair()
        return self.process.alloc_fd(a), self.process.alloc_fd(b)

    def unix_listen(self, path: str, backlog: int = 128) -> int:
        """Bind and listen on a Unix socket path."""
        self._charge()
        listener = UnixListener(path, backlog)
        ctx = self._ctx()
        parent, name = self.vfs.resolve(ctx, path, want_parent=True)
        inode = parent.fs.mknod(parent.ino, name, FileMode.S_IFSOCK | 0o666,
                                uid=self.process.uid, gid=self.process.gid)
        assert isinstance(inode, SocketInode)
        inode.socket_id = listener.object_id
        # Key the registry by inode, not path, so that the socket is reachable
        # from any mount namespace that can see it (bind mounts, Cntr's
        # /var/lib/cntr view of the application container).
        self._socket_registry()[(parent.fs.fs_id, inode.ino)] = listener
        return self.process.alloc_fd(listener)

    def unix_connect(self, path: str) -> int:
        """Connect to a Unix socket path."""
        self._charge()
        self.kernel.clock.advance(self.kernel.costs.unix_socket_rtt_ns)
        ctx = self._ctx()
        vnode = self.vfs.resolve(ctx, path)
        inode = vnode.inode()
        if not isinstance(inode, SocketInode):
            raise FsError.econnrefused(path)
        listener = self._socket_registry().get((vnode.fs.fs_id, vnode.ino))
        if listener is None or listener.closed:
            # The socket file exists but nobody is listening behind it.
            raise FsError.econnrefused(path)
        client = listener.enqueue_connection()
        return self.process.alloc_fd(client)

    def unix_accept(self, listener_fd: int) -> int:
        """Accept one pending connection."""
        self._charge()
        listener = self.process.get_fd(listener_fd)
        if not isinstance(listener, UnixListener):
            raise FsError.einval("not a listening socket")
        endpoint = listener.accept()
        return self.process.alloc_fd(endpoint)

    def _socket_registry(self) -> dict[tuple[int, int], UnixListener]:
        registry = getattr(self.kernel, "_unix_sockets", None)
        if registry is None:
            registry = {}
            self.kernel._unix_sockets = registry
        return registry

    # ------------------------------------------------------------- epoll
    def epoll_create(self) -> int:
        """``epoll_create1(2)``."""
        self._charge()
        return self.process.alloc_fd(EpollInstance())

    def epoll_ctl_add(self, epfd: int, fd: int, events: set[str]) -> None:
        """``epoll_ctl(EPOLL_CTL_ADD)``."""
        self._charge()
        epoll = self.process.get_fd(epfd)
        if not isinstance(epoll, EpollInstance):
            raise FsError.einval("not an epoll fd")
        obj = self.process.get_fd(fd)
        if not isinstance(obj, KernelObject):
            raise FsError.eperm("only kernel objects are pollable in this simulation")
        epoll.add(fd, obj, events)

    def epoll_ctl_del(self, epfd: int, fd: int) -> None:
        """``epoll_ctl(EPOLL_CTL_DEL)``."""
        self._charge()
        epoll = self.process.get_fd(epfd)
        if not isinstance(epoll, EpollInstance):
            raise FsError.einval("not an epoll fd")
        epoll.remove(fd)

    def epoll_wait(self, epfd: int, max_events: int = 64) -> list[tuple[int, set[str]]]:
        """``epoll_wait(2)`` (non-blocking poll of readiness)."""
        self._charge()
        self.kernel.clock.advance(self.kernel.costs.epoll_wait_ns)
        epoll = self.process.get_fd(epfd)
        if not isinstance(epoll, EpollInstance):
            raise FsError.einval("not an epoll fd")
        return epoll.wait(max_events)

    # ------------------------------------------------------------- pty
    def openpty(self) -> tuple[int, int]:
        """``openpty(3)``: returns (master_fd, slave_fd)."""
        self._charge()
        master, slave = make_pty(self.kernel.next_pty_index())
        return self.process.alloc_fd(master), self.process.alloc_fd(slave)

    # ------------------------------------------------------------- splice
    def splice(self, fd_in: int, fd_out: int, length: int) -> int:
        """``splice(2)``: move bytes between descriptors without a userspace copy."""
        self._charge()
        src = self.process.get_fd(fd_in)
        dst = self.process.get_fd(fd_out)
        costs = self.kernel.costs

        if isinstance(src, OpenFile):
            data = self.vfs.read(src, length)
        else:
            assert isinstance(src, KernelObject)
            data = src.read(length)
        if not data:
            return 0
        if isinstance(dst, OpenFile):
            written = self.vfs.write(dst, data, creds=self._write_creds())
        else:
            assert isinstance(dst, KernelObject)
            written = dst.write(data)
        # splice avoids the user-space copy: charge the cheap remap cost and
        # credit back nothing (the fs/object layers already charged their own
        # per-byte costs, which model the device side, not the copy).
        self.kernel.clock.advance(int(costs.splice_cost(written)))
        return written

    # ------------------------------------------------------------- environment
    def getenv(self, key: str, default: str | None = None) -> str | None:
        """Read an environment variable of the calling process."""
        return self.process.getenv(key, default)

    def setenv(self, key: str, value: str) -> None:
        """Set an environment variable of the calling process."""
        self.process.setenv(key, value)

    def environ(self) -> dict[str, str]:
        """A copy of the process environment."""
        return dict(self.process.env)
