"""Kernel IPC objects: pipes, Unix sockets, epoll instances and pseudo-TTYs.

These are the non-filesystem objects that can live in a process's file
descriptor table.  They follow non-blocking semantics (EAGAIN instead of
blocking) because the simulation is single-threaded; the socket proxy and the
pseudo-TTY forwarder drive them from explicit event loops, exactly as the Rust
implementation does with epoll.
"""

from __future__ import annotations

import itertools

from repro.fs.errors import FsError

PIPE_BUF_CAPACITY = 64 * 1024

_object_id_counter = itertools.count(1)


class KernelObject:
    """Base class for everything a non-VFS file descriptor can point at."""

    def __init__(self) -> None:
        self.object_id = next(_object_id_counter)
        self.closed = False

    # Subclasses override the subset of operations they support.
    def read(self, size: int) -> bytes:
        """Read up to ``size`` bytes."""
        raise FsError.einval("object is not readable")

    def write(self, data: bytes) -> int:
        """Write ``data``; returns bytes accepted."""
        raise FsError.einval("object is not writable")

    def close(self) -> None:
        """Release the object (idempotent)."""
        self.closed = True

    def poll(self) -> set[str]:
        """Readiness events: subset of {"in", "out", "hup"}."""
        return set()


class Pipe:
    """An anonymous pipe shared by one read end and one write end."""

    def __init__(self, capacity: int = PIPE_BUF_CAPACITY) -> None:
        self.capacity = capacity
        self.buffer = bytearray()
        self.read_open = True
        self.write_open = True

    @property
    def fill(self) -> int:
        """Bytes currently buffered."""
        return len(self.buffer)

    def space(self) -> int:
        """Free space remaining."""
        return self.capacity - len(self.buffer)


class PipeReadEnd(KernelObject):
    """The read end of a pipe."""

    def __init__(self, pipe: Pipe) -> None:
        super().__init__()
        self.pipe = pipe

    def read(self, size: int) -> bytes:
        if self.closed:
            raise FsError.ebadf("pipe read end closed")
        if not self.pipe.buffer:
            if not self.pipe.write_open:
                return b""
            raise FsError.eagain("pipe empty")
        data = bytes(self.pipe.buffer[:size])
        del self.pipe.buffer[:size]
        return data

    def poll(self) -> set[str]:
        events = set()
        if self.pipe.buffer:
            events.add("in")
        if not self.pipe.write_open:
            events.add("hup")
        return events

    def close(self) -> None:
        super().close()
        self.pipe.read_open = False


class PipeWriteEnd(KernelObject):
    """The write end of a pipe."""

    def __init__(self, pipe: Pipe) -> None:
        super().__init__()
        self.pipe = pipe

    def write(self, data: bytes) -> int:
        if self.closed:
            raise FsError.ebadf("pipe write end closed")
        if not self.pipe.read_open:
            raise FsError.epipe("reader closed")
        space = self.pipe.space()
        if space <= 0:
            raise FsError.eagain("pipe full")
        accepted = data[:space]
        self.pipe.buffer.extend(accepted)
        return len(accepted)

    def poll(self) -> set[str]:
        events = set()
        if self.pipe.space() > 0:
            events.add("out")
        if not self.pipe.read_open:
            events.add("hup")
        return events

    def close(self) -> None:
        super().close()
        self.pipe.write_open = False


def make_pipe(capacity: int = PIPE_BUF_CAPACITY) -> tuple[PipeReadEnd, PipeWriteEnd]:
    """Create a pipe and return ``(read_end, write_end)``."""
    pipe = Pipe(capacity)
    return PipeReadEnd(pipe), PipeWriteEnd(pipe)


class SocketEndpoint(KernelObject):
    """One endpoint of a connected Unix stream socket."""

    def __init__(self, name: str = "") -> None:
        super().__init__()
        self.name = name
        self.rx = bytearray()
        self.peer: "SocketEndpoint | None" = None

    def connect_peer(self, peer: "SocketEndpoint") -> None:
        """Wire two endpoints together."""
        self.peer = peer
        peer.peer = self

    def read(self, size: int) -> bytes:
        if self.closed:
            raise FsError.ebadf("socket closed")
        if not self.rx:
            if self.peer is None or self.peer.closed:
                return b""
            raise FsError.eagain("no data")
        data = bytes(self.rx[:size])
        del self.rx[:size]
        return data

    def write(self, data: bytes) -> int:
        if self.closed:
            raise FsError.ebadf("socket closed")
        if self.peer is None:
            raise FsError.enotconn()
        if self.peer.closed:
            raise FsError.epipe("peer closed")
        self.peer.rx.extend(data)
        return len(data)

    def poll(self) -> set[str]:
        events = set()
        if self.rx:
            events.add("in")
        if self.peer is not None and not self.peer.closed:
            events.add("out")
        if self.peer is None or self.peer.closed:
            events.add("hup")
            if not self.rx:
                events.add("in")  # EOF is readable
        return events


class UnixListener(KernelObject):
    """A listening Unix socket bound to a filesystem path."""

    def __init__(self, path: str, backlog: int = 128) -> None:
        super().__init__()
        self.path = path
        self.backlog_limit = backlog
        self._pending: list[SocketEndpoint] = []

    def enqueue_connection(self) -> SocketEndpoint:
        """Called by ``connect``: create a socket pair, queue the server side."""
        if self.closed:
            raise FsError.econnrefused(self.path)
        if len(self._pending) >= self.backlog_limit:
            raise FsError.eagain("backlog full")
        client = SocketEndpoint(name=f"client:{self.path}")
        server = SocketEndpoint(name=f"server:{self.path}")
        client.connect_peer(server)
        self._pending.append(server)
        return client

    def accept(self) -> SocketEndpoint:
        """Pop one pending connection."""
        if self.closed:
            raise FsError.ebadf("listener closed")
        if not self._pending:
            raise FsError.eagain("no pending connections")
        return self._pending.pop(0)

    def poll(self) -> set[str]:
        return {"in"} if self._pending else set()


def make_socketpair() -> tuple[SocketEndpoint, SocketEndpoint]:
    """``socketpair(AF_UNIX, SOCK_STREAM)``."""
    a = SocketEndpoint(name="socketpair:a")
    b = SocketEndpoint(name="socketpair:b")
    a.connect_peer(b)
    return a, b


class EpollInstance(KernelObject):
    """An epoll interest list."""

    def __init__(self) -> None:
        super().__init__()
        self._watched: dict[int, tuple[KernelObject, set[str]]] = {}

    def add(self, fd: int, obj: KernelObject, events: set[str]) -> None:
        """``EPOLL_CTL_ADD``."""
        if fd in self._watched:
            raise FsError.eexist(str(fd))
        self._watched[fd] = (obj, set(events))

    def modify(self, fd: int, events: set[str]) -> None:
        """``EPOLL_CTL_MOD``."""
        if fd not in self._watched:
            raise FsError.enoent(str(fd))
        obj, _ = self._watched[fd]
        self._watched[fd] = (obj, set(events))

    def remove(self, fd: int) -> None:
        """``EPOLL_CTL_DEL``."""
        self._watched.pop(fd, None)

    def wait(self, max_events: int = 64) -> list[tuple[int, set[str]]]:
        """Return up to ``max_events`` ready ``(fd, events)`` pairs (non-blocking)."""
        ready = []
        for fd, (obj, interest) in self._watched.items():
            events = obj.poll()
            fired = (events & interest) | ({"hup"} & events)
            if fired:
                ready.append((fd, fired))
            if len(ready) >= max_events:
                break
        return ready

    def watched_count(self) -> int:
        """Number of registered file descriptors."""
        return len(self._watched)


class PtyPair:
    """A pseudo-terminal: master and slave ends with two byte streams."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.to_slave = bytearray()     # written by master, read by slave (stdin)
        self.to_master = bytearray()    # written by slave, read by master (stdout)
        self.master_open = True
        self.slave_open = True
        self.window_size = (24, 80)


class PtyMaster(KernelObject):
    """The master (user-terminal facing) end of a PTY."""

    def __init__(self, pair: PtyPair) -> None:
        super().__init__()
        self.pair = pair

    def read(self, size: int) -> bytes:
        if not self.pair.to_master:
            if not self.pair.slave_open:
                return b""
            raise FsError.eagain("no output from slave")
        data = bytes(self.pair.to_master[:size])
        del self.pair.to_master[:size]
        return data

    def write(self, data: bytes) -> int:
        if not self.pair.slave_open:
            raise FsError.epipe("slave closed")
        self.pair.to_slave.extend(data)
        return len(data)

    def poll(self) -> set[str]:
        events = {"out"}
        if self.pair.to_master:
            events.add("in")
        if not self.pair.slave_open:
            events.add("hup")
        return events

    def close(self) -> None:
        super().close()
        self.pair.master_open = False


class PtySlave(KernelObject):
    """The slave (shell facing) end of a PTY; this is the shell's controlling tty."""

    def __init__(self, pair: PtyPair) -> None:
        super().__init__()
        self.pair = pair

    def read(self, size: int) -> bytes:
        if not self.pair.to_slave:
            if not self.pair.master_open:
                return b""
            raise FsError.eagain("no input from master")
        data = bytes(self.pair.to_slave[:size])
        del self.pair.to_slave[:size]
        return data

    def write(self, data: bytes) -> int:
        if not self.pair.master_open:
            raise FsError.epipe("master closed")
        self.pair.to_master.extend(data)
        return len(data)

    def poll(self) -> set[str]:
        events = {"out"}
        if self.pair.to_slave:
            events.add("in")
        if not self.pair.master_open:
            events.add("hup")
        return events

    def close(self) -> None:
        super().close()
        self.pair.slave_open = False


def make_pty(index: int = 0) -> tuple[PtyMaster, PtySlave]:
    """``openpty(3)``."""
    pair = PtyPair(index)
    return PtyMaster(pair), PtySlave(pair)
