"""Process objects: identity, namespaces, file descriptors and credentials."""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.errors import FsError
from repro.fs.mount import MountNamespace
from repro.fs.vfs import Credentials, VNode
from repro.kernel.capabilities import CapabilitySet
from repro.kernel.lsm import LsmProfile, UNCONFINED
from repro.kernel.namespaces import MntNamespace, Namespace, NamespaceKind, PidNamespace

#: Soft cap on per-process file descriptors (RLIMIT_NOFILE).
DEFAULT_NOFILE_LIMIT = 1024


@dataclass
class Rlimits:
    """The subset of resource limits the reproduction cares about."""

    fsize_bytes: int | None = None       # RLIMIT_FSIZE
    nofile: int = DEFAULT_NOFILE_LIMIT   # RLIMIT_NOFILE
    nproc: int | None = None             # RLIMIT_NPROC


class Process:
    """A simulated process/task."""

    def __init__(self, pid: int, ppid: int, argv: list[str], env: dict[str, str],
                 namespaces: dict[NamespaceKind, Namespace], root: VNode, cwd: VNode,
                 cwd_path: str = "/", uid: int = 0, gid: int = 0,
                 groups: frozenset[int] = frozenset(),
                 caps: CapabilitySet | None = None,
                 lsm_profile: LsmProfile = UNCONFINED) -> None:
        self.pid = pid
        self.ppid = ppid
        self.argv = list(argv)
        self.env = dict(env)
        self.namespaces = dict(namespaces)
        self.root = root
        self.cwd = cwd
        self.cwd_path = cwd_path
        self.uid = uid
        self.gid = gid
        self.groups = frozenset(groups)
        self.caps = caps or CapabilitySet.for_host_root()
        self.lsm_profile = lsm_profile
        self.umask = 0o022
        self.rlimits = Rlimits()
        self.fds: dict[int, object] = {}
        self._next_fd = 3           # 0/1/2 reserved for stdio
        self.children: list[int] = []
        self.state = "running"      # running | zombie | dead
        self.exit_code: int | None = None
        self.start_time_ns = 0
        #: CPU time consumed while scheduled by the multi-tenant scheduler
        #: (see :mod:`repro.kernel.cpu`); stays 0 for processes that only
        #: ever run inline on the virtual clock.
        self.cpu_time_ns = 0
        #: Memoised Credentials plus the identity inputs it was built from.
        #: Every syscall builds a path context; rebuilding the frozenset-heavy
        #: Credentials per trap dominated dispatch.  The key tuple is compared
        #: on each call, so direct attribute writes (tests poke ``uid`` etc.)
        #: invalidate naturally without setter hooks.
        self._creds_cache: Credentials | None = None
        self._creds_key: tuple | None = None

    # ------------------------------------------------------------- identity
    @property
    def comm(self) -> str:
        """Short command name (basename of argv[0])."""
        if not self.argv:
            return "unknown"
        return self.argv[0].rsplit("/", 1)[-1][:15]

    def credentials(self) -> Credentials:
        """Credentials used by the VFS for this process (memoised)."""
        key = (self.uid, self.gid, self.groups, self.caps.effective,
               self.umask, self.rlimits.fsize_bytes)
        if self._creds_key == key:
            return self._creds_cache
        creds = Credentials(
            uid=self.uid,
            gid=self.gid,
            groups=self.groups,
            capabilities=self.caps.effective,
            umask=self.umask,
            fsize_limit=self.rlimits.fsize_bytes,
        )
        self._creds_cache = creds
        self._creds_key = key
        return creds

    # ------------------------------------------------------------- namespaces
    def namespace(self, kind: NamespaceKind) -> Namespace:
        """The namespace of the given kind this process is a member of."""
        return self.namespaces[kind]

    @property
    def mnt_ns(self) -> MountNamespace:
        """The mount-namespace tree this process sees."""
        ns = self.namespaces[NamespaceKind.MNT]
        assert isinstance(ns, MntNamespace)
        return ns.mounts

    @property
    def pid_ns(self) -> PidNamespace:
        """The PID namespace this process is a member of."""
        ns = self.namespaces[NamespaceKind.PID]
        assert isinstance(ns, PidNamespace)
        return ns

    def vpid(self) -> int:
        """The pid as seen from inside the process's own PID namespace."""
        return self.pid_ns.vpid_of(self.pid) or self.pid

    def shares_namespace(self, other: "Process", kind: NamespaceKind) -> bool:
        """True when both processes are in the same namespace of ``kind``."""
        return self.namespaces[kind].ns_id == other.namespaces[kind].ns_id

    # ------------------------------------------------------------- fd table
    def alloc_fd(self, obj: object, fd: int | None = None) -> int:
        """Install an object into the fd table, returning the fd number."""
        if len(self.fds) >= self.rlimits.nofile:
            raise FsError.emfile(f"pid {self.pid}")
        if fd is None:
            fd = self._next_fd
            while fd in self.fds:
                fd += 1
            self._next_fd = fd + 1
        self.fds[fd] = obj
        return fd

    def get_fd(self, fd: int) -> object:
        """Look up a file descriptor."""
        if fd not in self.fds:
            raise FsError.ebadf(f"fd {fd}")
        return self.fds[fd]

    def close_fd(self, fd: int) -> None:
        """Remove a descriptor and close the underlying object."""
        obj = self.fds.pop(fd, None)
        if obj is None:
            raise FsError.ebadf(f"fd {fd}")
        close = getattr(obj, "close", None)
        if callable(close):
            close()

    def close_all_fds(self) -> None:
        """Close every descriptor (process exit)."""
        for fd in list(self.fds):
            try:
                self.close_fd(fd)
            except FsError:
                pass

    # ------------------------------------------------------------- env
    def getenv(self, key: str, default: str | None = None) -> str | None:
        """Read one environment variable."""
        return self.env.get(key, default)

    def setenv(self, key: str, value: str) -> None:
        """Set one environment variable."""
        self.env[key] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process(pid={self.pid}, comm={self.comm!r}, state={self.state})"
