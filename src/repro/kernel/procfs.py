"""The synthetic ``/proc`` filesystem.

Cntr's container-context gathering (design step #1) works exclusively by
reading ``/proc``: the namespaces links, environment, capability sets, cgroup
membership, uid/gid maps and mount table of the container's init process.
This module provides a procfs instance bound to a PID namespace, exactly like
Linux, so the same information is available to the reproduction of that step
and so that ``/proc`` can be bind-mounted from the application container into
Cntr's nested namespace (design step #3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.fs.constants import FileMode
from repro.fs.errors import FsError
from repro.fs.filesystem import Filesystem
from repro.fs.inode import DirectoryInode, Inode, RegularInode, SymlinkInode
from repro.fs.writeback import VmSysctl
from repro.kernel.namespaces import NamespaceKind, PidNamespace
from repro.sim.psi import PSI_RESOURCES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel

#: Files generated inside every ``/proc/<pid>`` directory.
PID_FILES = ("status", "environ", "cmdline", "cgroup", "mounts", "mountinfo",
             "limits", "uid_map", "gid_map", "stat", "comm")
#: Symlinks generated inside every ``/proc/<pid>`` directory.
PID_LINKS = ("root", "cwd", "exe")
#: Entries of ``/proc/<pid>/ns``.
NS_LINKS = tuple(kind.value for kind in NamespaceKind)
#: Top-level non-pid entries.
TOP_FILES = ("mounts", "filesystems", "uptime", "version", "cpuinfo", "meminfo",
             "vmstat")
#: Entries of ``/proc/pressure`` (the PSI files).
PRESSURE_FILES = PSI_RESOURCES
#: Writable ``/proc/sys/vm`` files: the writeback knobs plus drop_caches.
SYS_VM_FILES = VmSysctl.KNOBS + ("drop_caches",)


@dataclass(frozen=True)
class ProcEntry:
    """What a synthetic procfs inode refers to."""

    kind: str          # "root" | "piddir" | "nsdir" | "attrdir" | "file" |
                       # "link" | "sysdir" | "sysvmdir" | "sysctl" |
                       # "pressuredir"
    pid: int | None
    name: str


class ProcFS(Filesystem):
    """A procfs instance bound to a PID namespace."""

    fs_type = "proc"
    supports_direct_io = False
    supports_export_handles = False
    #: Entries appear and disappear with processes, without any name-mutating
    #: filesystem call the dentry generation could track — never dcache them.
    dcacheable = False

    def __init__(self, name: str, kernel: "Kernel", pid_ns: PidNamespace) -> None:
        super().__init__(name, kernel.clock, kernel.costs, kernel.tracer,
                         capacity_bytes=0)
        self.kernel = kernel
        self.pid_ns = pid_ns
        self._entries: dict[int, ProcEntry] = {
            self.root_ino: ProcEntry("root", None, "/")}
        self._path_to_ino: dict[tuple[int | None, str, str], int] = {}

    # ------------------------------------------------------------- plumbing
    def _synthetic_inode(self, entry: ProcEntry) -> Inode:
        key = (entry.pid, entry.kind, entry.name)
        ino = self._path_to_ino.get(key)
        if ino is not None and ino in self._inodes:
            return self._inodes[ino]
        if entry.kind in ("piddir", "nsdir", "attrdir", "sysdir", "sysvmdir",
                          "pressuredir"):
            inode = DirectoryInode(ino=self._alloc_ino(), mode=FileMode.S_IFDIR | 0o555)
        elif entry.kind == "link":
            inode = SymlinkInode(ino=self._alloc_ino(), mode=FileMode.S_IFLNK | 0o777,
                                 target=self._link_target(entry))
        elif entry.kind == "sysctl":
            inode = RegularInode(ino=self._alloc_ino(), mode=FileMode.S_IFREG | 0o644)
        else:
            inode = RegularInode(ino=self._alloc_ino(), mode=FileMode.S_IFREG | 0o444)
        inode.fs_name = self.name
        self._inodes[inode.ino] = inode
        self._entries[inode.ino] = entry
        self._path_to_ino[key] = inode.ino
        return inode

    def _resolve_pid(self, name: str) -> int | None:
        """Translate a directory name (a vpid in this namespace) to a global pid."""
        if not name.isdigit():
            return None
        vpid = int(name)
        for global_pid, mapped in self.pid_ns.vpid_map.items():
            if mapped == vpid and global_pid in self.kernel.processes:
                return global_pid
        return None

    def entry_of(self, ino: int) -> ProcEntry:
        """The synthetic entry behind an inode number."""
        entry = self._entries.get(ino)
        if entry is None:
            raise FsError.estale(f"procfs ino {ino}")
        return entry

    # ------------------------------------------------------------- fs interface
    def lookup(self, dir_ino: int, name: str) -> Inode:
        self._charge_metadata("lookup")
        entry = self.entry_of(dir_ino)
        if entry.kind == "root":
            if name == "self":
                raise FsError.enoent("/proc/self (reader identity not modelled)")
            if name == "sys":
                return self._synthetic_inode(ProcEntry("sysdir", None, "sys"))
            if name == "pressure":
                return self._synthetic_inode(
                    ProcEntry("pressuredir", None, "pressure"))
            if name in TOP_FILES:
                return self._synthetic_inode(ProcEntry("file", None, name))
            pid = self._resolve_pid(name)
            if pid is not None:
                return self._synthetic_inode(ProcEntry("piddir", pid, name))
            raise FsError.enoent(name)
        if entry.kind == "sysdir":
            if name == "vm":
                return self._synthetic_inode(ProcEntry("sysvmdir", None, "vm"))
            raise FsError.enoent(name)
        if entry.kind == "sysvmdir":
            if name in SYS_VM_FILES:
                return self._synthetic_inode(ProcEntry("sysctl", None, name))
            raise FsError.enoent(name)
        if entry.kind == "pressuredir":
            if name in PRESSURE_FILES:
                return self._synthetic_inode(
                    ProcEntry("file", None, f"pressure/{name}"))
            raise FsError.enoent(name)
        if entry.kind == "piddir":
            if name == "ns":
                return self._synthetic_inode(ProcEntry("nsdir", entry.pid, "ns"))
            if name == "attr":
                return self._synthetic_inode(ProcEntry("attrdir", entry.pid, "attr"))
            if name in PID_FILES:
                return self._synthetic_inode(ProcEntry("file", entry.pid, name))
            if name in PID_LINKS:
                return self._synthetic_inode(ProcEntry("link", entry.pid, name))
            raise FsError.enoent(name)
        if entry.kind == "nsdir":
            if name in NS_LINKS:
                return self._synthetic_inode(ProcEntry("link", entry.pid, f"ns/{name}"))
            raise FsError.enoent(name)
        if entry.kind == "attrdir":
            if name in ("current", "exec"):
                return self._synthetic_inode(ProcEntry("file", entry.pid, f"attr/{name}"))
            raise FsError.enoent(name)
        raise FsError.enotdir(name)

    def readdir(self, dir_ino: int) -> list[tuple[str, int, int]]:
        self._charge_metadata("readdir")
        entry = self.entry_of(dir_ino)
        out = [(".", dir_ino, int(FileMode.S_IFDIR)), ("..", dir_ino, int(FileMode.S_IFDIR))]
        if entry.kind == "root":
            for name in TOP_FILES:
                inode = self._synthetic_inode(ProcEntry("file", None, name))
                out.append((name, inode.ino, int(FileMode.S_IFREG)))
            inode = self._synthetic_inode(ProcEntry("sysdir", None, "sys"))
            out.append(("sys", inode.ino, int(FileMode.S_IFDIR)))
            inode = self._synthetic_inode(
                ProcEntry("pressuredir", None, "pressure"))
            out.append(("pressure", inode.ino, int(FileMode.S_IFDIR)))
            for global_pid in self.pid_ns.member_pids():
                if global_pid not in self.kernel.processes:
                    continue
                vpid = self.pid_ns.vpid_of(global_pid)
                inode = self._synthetic_inode(ProcEntry("piddir", global_pid, str(vpid)))
                out.append((str(vpid), inode.ino, int(FileMode.S_IFDIR)))
        elif entry.kind == "piddir":
            for name in PID_FILES:
                inode = self._synthetic_inode(ProcEntry("file", entry.pid, name))
                out.append((name, inode.ino, int(FileMode.S_IFREG)))
            for name in PID_LINKS:
                inode = self._synthetic_inode(ProcEntry("link", entry.pid, name))
                out.append((name, inode.ino, int(FileMode.S_IFLNK)))
            for name in ("ns", "attr"):
                inode = self._synthetic_inode(ProcEntry(f"{name}dir", entry.pid, name))
                out.append((name, inode.ino, int(FileMode.S_IFDIR)))
        elif entry.kind == "nsdir":
            for name in NS_LINKS:
                inode = self._synthetic_inode(ProcEntry("link", entry.pid, f"ns/{name}"))
                out.append((name, inode.ino, int(FileMode.S_IFLNK)))
        elif entry.kind == "attrdir":
            for name in ("current", "exec"):
                inode = self._synthetic_inode(ProcEntry("file", entry.pid, f"attr/{name}"))
                out.append((name, inode.ino, int(FileMode.S_IFREG)))
        elif entry.kind == "sysdir":
            inode = self._synthetic_inode(ProcEntry("sysvmdir", None, "vm"))
            out.append(("vm", inode.ino, int(FileMode.S_IFDIR)))
        elif entry.kind == "sysvmdir":
            for name in SYS_VM_FILES:
                inode = self._synthetic_inode(ProcEntry("sysctl", None, name))
                out.append((name, inode.ino, int(FileMode.S_IFREG)))
        elif entry.kind == "pressuredir":
            for name in PRESSURE_FILES:
                inode = self._synthetic_inode(
                    ProcEntry("file", None, f"pressure/{name}"))
                out.append((name, inode.ino, int(FileMode.S_IFREG)))
        return out

    def read(self, ino: int, offset: int, size: int) -> bytes:
        entry = self.entry_of(ino)
        if entry.kind not in ("file", "sysctl"):
            raise FsError.eisdir(entry.name)
        content = self._generate(entry)
        self._charge_read(ino, offset, min(size, len(content)))
        return content[offset:offset + size]

    def readlink(self, ino: int) -> str:
        self._charge_metadata("readlink")
        entry = self.entry_of(ino)
        if entry.kind != "link":
            raise FsError.einval(entry.name)
        return self._link_target(entry)

    def getattr(self, ino: int):
        self._charge_metadata("getattr")
        inode = self.iget(ino)
        entry = self._entries.get(ino)
        if entry is not None and entry.kind in ("file", "sysctl") \
                and isinstance(inode, RegularInode):
            content = self._generate(entry)
            inode.data.truncate(0)
            inode.data.write(0, content)
        return inode.stat(st_dev=self.fs_id)

    def write(self, ino: int, offset: int, data: bytes) -> int:
        entry = self._entries.get(ino)
        if entry is None or entry.kind != "sysctl":
            raise FsError.eacces("procfs is read-only in this simulation")
        text = data.decode("ascii", errors="replace").strip()
        try:
            value = int(text.split()[0]) if text else 0
        except ValueError:
            raise FsError.einval(f"vm.{entry.name}: {text!r}") from None
        self._charge_metadata("sysctl")
        if entry.name == "drop_caches":
            self.kernel.vm.drop_caches(value)
        else:
            self.kernel.vm.set(entry.name, value)
        return len(data)

    def truncate(self, ino: int, size: int) -> None:
        # O_TRUNC on a sysctl file (shell `echo N >` idiom) is a no-op.
        entry = self._entries.get(ino)
        if entry is None or entry.kind != "sysctl":
            raise FsError.eacces("procfs is read-only in this simulation")

    # ------------------------------------------------------------- content
    def _proc(self, pid: int):
        proc = self.kernel.processes.get(pid)
        if proc is None:
            raise FsError.esrch(f"pid {pid}")
        return proc

    def _link_target(self, entry: ProcEntry) -> str:
        if entry.pid is None:
            return ""
        proc = self._proc(entry.pid)
        if entry.name.startswith("ns/"):
            kind = NamespaceKind(entry.name.split("/", 1)[1])
            return proc.namespaces[kind].proc_link()
        if entry.name == "root":
            return "/"
        if entry.name == "cwd":
            return proc.cwd_path
        if entry.name == "exe":
            return proc.argv[0] if proc.argv else ""
        return ""

    def _generate(self, entry: ProcEntry) -> bytes:
        if entry.kind == "sysctl":
            if entry.name == "drop_caches":
                return f"{self.kernel.vm.drop_caches_last}\n".encode()
            return f"{self.kernel.vm.get(entry.name)}\n".encode()
        if entry.pid is None:
            return self._generate_top(entry.name)
        proc = self._proc(entry.pid)
        name = entry.name
        if name == "environ":
            return b"\x00".join(f"{k}={v}".encode() for k, v in proc.env.items()) + b"\x00"
        if name == "cmdline":
            return b"\x00".join(a.encode() for a in proc.argv) + b"\x00"
        if name == "comm":
            return (proc.comm + "\n").encode()
        if name == "cgroup":
            return (self.kernel.cgroups.proc_cgroup_line(proc.pid) + "\n").encode()
        if name in ("mounts", "mountinfo"):
            rows = proc.mnt_ns.mount_table()
            lines = [f"{r['source']} {r['mountpoint']} {r['fs_type']} {r['options']} 0 0"
                     for r in rows]
            return ("\n".join(lines) + "\n").encode()
        if name == "status":
            caps = proc.caps.to_proc_status()
            lines = [
                f"Name:\t{proc.comm}",
                "State:\tS (sleeping)" if proc.state == "running" else "State:\tZ (zombie)",
                f"Pid:\t{proc.vpid()}",
                f"PPid:\t{proc.ppid}",
                f"Uid:\t{proc.uid}\t{proc.uid}\t{proc.uid}\t{proc.uid}",
                f"Gid:\t{proc.gid}\t{proc.gid}\t{proc.gid}\t{proc.gid}",
                f"Groups:\t{' '.join(str(g) for g in sorted(proc.groups))}",
                f"NStgid:\t{proc.vpid()}",
            ] + [f"{k}:\t{v}" for k, v in caps.items()] + [
                "Seccomp:\t0",
            ]
            return ("\n".join(lines) + "\n").encode()
        if name == "limits":
            fsize = proc.rlimits.fsize_bytes
            fsize_text = "unlimited" if fsize is None else str(fsize)
            lines = [
                "Limit                     Soft Limit           Hard Limit           Units",
                f"Max file size             {fsize_text:<20} {fsize_text:<20} bytes",
                f"Max open files            {proc.rlimits.nofile:<20} {proc.rlimits.nofile:<20} files",
            ]
            return ("\n".join(lines) + "\n").encode()
        if name == "uid_map":
            user_ns = proc.namespaces[NamespaceKind.USER]
            rows = getattr(user_ns, "uid_map", [(0, 0, 4294967295)])
            return ("".join(f"{a:>10} {b:>10} {c:>10}\n" for a, b, c in rows)).encode()
        if name == "gid_map":
            user_ns = proc.namespaces[NamespaceKind.USER]
            rows = getattr(user_ns, "gid_map", [(0, 0, 4294967295)])
            return ("".join(f"{a:>10} {b:>10} {c:>10}\n" for a, b, c in rows)).encode()
        if name == "stat":
            return (f"{proc.vpid()} ({proc.comm}) S {proc.ppid} 0 0 0 -1 0 0\n").encode()
        if name == "attr/current":
            return (proc.lsm_profile.proc_attr_current + "\n").encode()
        if name == "attr/exec":
            return b"\n"
        raise FsError.enoent(name)

    def _generate_top(self, name: str) -> bytes:
        if name == "filesystems":
            return b"nodev\tproc\nnodev\ttmpfs\nnodev\tfuse\n\text4\n"
        if name == "uptime":
            seconds = self.clock.now_s
            return f"{seconds:.2f} {seconds:.2f}\n".encode()
        if name == "version":
            return b"Linux version 4.14.13-repro (simulated) #1 SMP\n"
        if name == "cpuinfo":
            block = "\n".join(
                f"processor\t: {i}\nmodel name\t: Intel(R) Xeon(R) CPU E5-2686 v4 @ 2.30GHz"
                for i in range(4))
            return (block + "\n").encode()
        if name == "meminfo":
            # Rendered by VmSysctl from the same MemInfo the ratio knobs
            # resolve against, so the two surfaces can never disagree.
            return self.kernel.vm.meminfo_text().encode()
        if name == "vmstat":
            return self.kernel.vm.vmstat_text().encode()
        if name.startswith("pressure/"):
            resource = name.split("/", 1)[1]
            now_ns = self.kernel.clock.now_ns
            return self.kernel.psi.system.render(resource, now_ns).encode()
        if name == "mounts":
            return b"rootfs / rootfs rw 0 0\n"
        raise FsError.enoent(name)
