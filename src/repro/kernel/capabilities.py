"""POSIX capability sets.

Cntr gathers the capability sets of the container's init process and applies
them to the processes it injects, so that attached tools run with exactly the
privilege the container had (design §3.2.3, property (1)).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.fs.vfs import ALL_CAPS, DEFAULT_CONTAINER_CAPS

#: Every capability name known to the simulation.
KNOWN_CAPABILITIES = frozenset(ALL_CAPS) | frozenset({
    "CAP_NET_BIND_SERVICE", "CAP_NET_RAW", "CAP_SETPCAP", "CAP_SETFCAP",
    "CAP_SYS_NICE", "CAP_SYS_RESOURCE", "CAP_SYS_TIME", "CAP_IPC_LOCK",
    "CAP_LINUX_IMMUTABLE", "CAP_SYS_MODULE", "CAP_SYS_RAWIO", "CAP_SYS_BOOT",
})

#: The bounding set Docker grants by default (plus net-bind/raw/setpcap/setfcap).
DOCKER_DEFAULT_CAPS = frozenset(DEFAULT_CONTAINER_CAPS) | frozenset({
    "CAP_NET_BIND_SERVICE", "CAP_NET_RAW", "CAP_SETPCAP", "CAP_SETFCAP",
})

#: Full capability set held by host root.
FULL_CAPS = frozenset(KNOWN_CAPABILITIES)


@dataclass(frozen=True)
class CapabilitySet:
    """The five per-process capability sets (ambient omitted for brevity)."""

    effective: frozenset[str] = FULL_CAPS
    permitted: frozenset[str] = FULL_CAPS
    inheritable: frozenset[str] = frozenset()
    bounding: frozenset[str] = FULL_CAPS

    def has(self, cap: str) -> bool:
        """True when ``cap`` is in the effective set."""
        return cap in self.effective

    def drop(self, caps: frozenset[str] | set[str]) -> "CapabilitySet":
        """Remove ``caps`` from every set (CAP_DROP)."""
        caps = frozenset(caps)
        return CapabilitySet(
            effective=self.effective - caps,
            permitted=self.permitted - caps,
            inheritable=self.inheritable - caps,
            bounding=self.bounding - caps,
        )

    def limit_to_bounding(self, bounding: frozenset[str] | set[str]) -> "CapabilitySet":
        """Intersect every set with a new bounding set (entering a container)."""
        bounding = frozenset(bounding)
        return CapabilitySet(
            effective=self.effective & bounding,
            permitted=self.permitted & bounding,
            inheritable=self.inheritable & bounding,
            bounding=bounding,
        )

    def with_effective(self, effective: frozenset[str] | set[str]) -> "CapabilitySet":
        """Replace the effective set (must stay within permitted)."""
        effective = frozenset(effective) & self.permitted
        return replace(self, effective=effective)

    @classmethod
    def for_host_root(cls) -> "CapabilitySet":
        """Capabilities of a root process on the host."""
        return cls()

    @classmethod
    def for_container(cls, extra: frozenset[str] | set[str] = frozenset(),
                      dropped: frozenset[str] | set[str] = frozenset()) -> "CapabilitySet":
        """Capabilities of a container's init process with Docker defaults."""
        caps = (DOCKER_DEFAULT_CAPS | frozenset(extra)) - frozenset(dropped)
        return cls(effective=caps, permitted=caps, inheritable=frozenset(), bounding=caps)

    @classmethod
    def empty(cls) -> "CapabilitySet":
        """No capabilities at all (fully unprivileged)."""
        return cls(effective=frozenset(), permitted=frozenset(),
                   inheritable=frozenset(), bounding=frozenset())

    def to_proc_status(self) -> dict[str, str]:
        """The ``Cap*`` lines of ``/proc/<pid>/status`` (hex bitmask placeholders)."""
        def mask(s: frozenset[str]) -> str:
            bits = 0
            for i, cap in enumerate(sorted(KNOWN_CAPABILITIES)):
                if cap in s:
                    bits |= 1 << i
            return f"{bits:016x}"

        return {
            "CapInh": mask(self.inheritable),
            "CapPrm": mask(self.permitted),
            "CapEff": mask(self.effective),
            "CapBnd": mask(self.bounding),
        }
