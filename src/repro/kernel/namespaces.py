"""The seven Linux namespace kinds and their per-kind state."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.fs.mount import MountNamespace

_ns_id_counter = itertools.count(0x4000_0000)


class NamespaceKind(enum.Enum):
    """Namespace kinds, named as in ``/proc/<pid>/ns``."""

    MNT = "mnt"
    PID = "pid"
    NET = "net"
    UTS = "uts"
    IPC = "ipc"
    USER = "user"
    CGROUP = "cgroup"


@dataclass
class Namespace:
    """Base namespace object: a kind plus an inode-like identity."""

    kind: NamespaceKind
    ns_id: int = field(default_factory=lambda: next(_ns_id_counter))

    def proc_link(self) -> str:
        """The symlink text shown in ``/proc/<pid>/ns/<kind>``."""
        return f"{self.kind.value}:[{self.ns_id}]"

    def clone_for_unshare(self) -> "Namespace":
        """Create the new namespace that ``unshare`` of this kind produces."""
        return Namespace(self.kind)


@dataclass
class MntNamespace(Namespace):
    """Mount namespace: wraps the :class:`repro.fs.mount.MountNamespace` tree."""

    mounts: MountNamespace = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.kind = NamespaceKind.MNT

    def clone_for_unshare(self) -> "MntNamespace":
        return MntNamespace(kind=NamespaceKind.MNT, mounts=self.mounts.clone())


@dataclass
class PidNamespace(Namespace):
    """PID namespace: maps global pids to namespace-local (virtual) pids."""

    parent: "PidNamespace | None" = None
    vpid_map: dict[int, int] = field(default_factory=dict)
    next_vpid: int = 1
    init_pid: int | None = None

    def __post_init__(self) -> None:
        self.kind = NamespaceKind.PID

    def register(self, global_pid: int) -> int:
        """Assign the next virtual pid to a process joining this namespace."""
        if global_pid in self.vpid_map:
            return self.vpid_map[global_pid]
        vpid = self.next_vpid
        self.next_vpid += 1
        self.vpid_map[global_pid] = vpid
        if self.init_pid is None:
            self.init_pid = global_pid
        return vpid

    def unregister(self, global_pid: int) -> None:
        """Remove a process from the namespace (on exit)."""
        self.vpid_map.pop(global_pid, None)
        if self.init_pid == global_pid:
            self.init_pid = None

    def vpid_of(self, global_pid: int) -> int | None:
        """Virtual pid of a process, or None when it is not a member."""
        return self.vpid_map.get(global_pid)

    def member_pids(self) -> list[int]:
        """Global pids of every member process."""
        return sorted(self.vpid_map)

    def clone_for_unshare(self) -> "PidNamespace":
        return PidNamespace(kind=NamespaceKind.PID, parent=self)


@dataclass
class NetNamespace(Namespace):
    """Network namespace: interface list and bound abstract sockets."""

    interfaces: list[str] = field(default_factory=lambda: ["lo"])
    bound_ports: dict[int, int] = field(default_factory=dict)  # port -> owner pid

    def __post_init__(self) -> None:
        self.kind = NamespaceKind.NET

    def clone_for_unshare(self) -> "NetNamespace":
        return NetNamespace(kind=NamespaceKind.NET)


@dataclass
class UtsNamespace(Namespace):
    """UTS namespace: hostname and domain name."""

    hostname: str = "host"
    domainname: str = "(none)"

    def __post_init__(self) -> None:
        self.kind = NamespaceKind.UTS

    def clone_for_unshare(self) -> "UtsNamespace":
        return UtsNamespace(kind=NamespaceKind.UTS, hostname=self.hostname,
                            domainname=self.domainname)


@dataclass
class IpcNamespace(Namespace):
    """IPC namespace: System-V shared memory / message queue identifiers."""

    shm_segments: dict[int, int] = field(default_factory=dict)  # id -> size
    msg_queues: dict[int, list] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.kind = NamespaceKind.IPC

    def clone_for_unshare(self) -> "IpcNamespace":
        return IpcNamespace(kind=NamespaceKind.IPC)


@dataclass
class UserNamespace(Namespace):
    """User namespace: uid/gid mappings between the namespace and its parent."""

    parent: "UserNamespace | None" = None
    uid_map: list[tuple[int, int, int]] = field(default_factory=lambda: [(0, 0, 4294967295)])
    gid_map: list[tuple[int, int, int]] = field(default_factory=lambda: [(0, 0, 4294967295)])

    def __post_init__(self) -> None:
        self.kind = NamespaceKind.USER

    def map_uid_to_host(self, uid: int) -> int | None:
        """Translate a namespace uid to the parent (host) uid."""
        for inside, outside, count in self.uid_map:
            if inside <= uid < inside + count:
                return outside + (uid - inside)
        return None

    def map_gid_to_host(self, gid: int) -> int | None:
        """Translate a namespace gid to the parent (host) gid."""
        for inside, outside, count in self.gid_map:
            if inside <= gid < inside + count:
                return outside + (gid - inside)
        return None

    def clone_for_unshare(self) -> "UserNamespace":
        return UserNamespace(kind=NamespaceKind.USER, parent=self)


@dataclass
class CgroupNamespace(Namespace):
    """Cgroup namespace: the cgroup path that appears as the namespace root."""

    root_path: str = "/"

    def __post_init__(self) -> None:
        self.kind = NamespaceKind.CGROUP

    def clone_for_unshare(self) -> "CgroupNamespace":
        return CgroupNamespace(kind=NamespaceKind.CGROUP, root_path=self.root_path)


def make_host_namespaces(mounts: MountNamespace) -> dict[NamespaceKind, Namespace]:
    """Build the initial (host) namespace set for pid 1."""
    return {
        NamespaceKind.MNT: MntNamespace(kind=NamespaceKind.MNT, mounts=mounts),
        NamespaceKind.PID: PidNamespace(kind=NamespaceKind.PID),
        NamespaceKind.NET: NetNamespace(kind=NamespaceKind.NET, interfaces=["lo", "eth0"]),
        NamespaceKind.UTS: UtsNamespace(kind=NamespaceKind.UTS, hostname="host"),
        NamespaceKind.IPC: IpcNamespace(kind=NamespaceKind.IPC),
        NamespaceKind.USER: UserNamespace(kind=NamespaceKind.USER),
        NamespaceKind.CGROUP: CgroupNamespace(kind=NamespaceKind.CGROUP),
    }
