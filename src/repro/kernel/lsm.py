"""Mandatory access control: AppArmor / SELinux profile modelling.

The reproduction only needs what Cntr needs: to *read* the LSM confinement of
the container's init process and to *apply* the same confinement to injected
processes, so profiles are modelled as named objects with a small path-based
deny list that the syscall layer consults.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.errors import FsError


@dataclass(frozen=True)
class LsmProfile:
    """One AppArmor profile or SELinux domain."""

    name: str
    kind: str = "apparmor"          # "apparmor" | "selinux"
    mode: str = "enforce"            # "enforce" | "complain" | "unconfined"
    denied_path_prefixes: tuple[str, ...] = ()
    denied_capabilities: tuple[str, ...] = ()

    @property
    def proc_attr_current(self) -> str:
        """The text of ``/proc/<pid>/attr/current``."""
        if self.kind == "selinux":
            return f"system_u:system_r:{self.name}:s0"
        if self.mode == "unconfined":
            return "unconfined"
        return f"{self.name} ({self.mode})"

    def allows_path(self, path: str, write: bool) -> bool:
        """Check a filesystem access against the profile's deny rules."""
        if self.mode != "enforce":
            return True
        for prefix in self.denied_path_prefixes:
            if path.startswith(prefix):
                return False
        return True

    def check_path(self, path: str, write: bool = False) -> None:
        """Raise EACCES when the profile denies the access."""
        if not self.allows_path(path, write):
            raise FsError.eacces(path)


#: The profile of an unconfined host process.
UNCONFINED = LsmProfile(name="unconfined", mode="unconfined")

#: The default profile Docker applies to containers.
DOCKER_DEFAULT_PROFILE = LsmProfile(
    name="docker-default",
    kind="apparmor",
    mode="enforce",
    denied_path_prefixes=("/sys/firmware", "/sys/kernel/security", "/proc/sysrq-trigger"),
    denied_capabilities=("CAP_SYS_MODULE", "CAP_SYS_RAWIO"),
)


class LsmRegistry:
    """Loaded LSM profiles on the simulated host."""

    def __init__(self) -> None:
        self._profiles: dict[str, LsmProfile] = {
            UNCONFINED.name: UNCONFINED,
            DOCKER_DEFAULT_PROFILE.name: DOCKER_DEFAULT_PROFILE,
        }

    def load(self, profile: LsmProfile) -> None:
        """Register a profile (like ``apparmor_parser -r``)."""
        self._profiles[profile.name] = profile

    def get(self, name: str) -> LsmProfile:
        """Look a profile up by name, falling back to unconfined."""
        return self._profiles.get(name, UNCONFINED)

    def names(self) -> list[str]:
        """Names of every loaded profile."""
        return sorted(self._profiles)
