"""Control groups: hierarchy, controllers and process membership.

Cntr reads the cgroup membership of the container's init process and moves the
processes it injects into the same cgroup so that the injected tools are
subject to the container's resource limits (design §3.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.errors import FsError
from repro.sim.psi import PsiGroup
from repro.sim.sched import CPU_WEIGHT_MAX, CPU_WEIGHT_MIN, CpuGroupStats

#: Controllers modelled by the simulation (a subset of cgroup v1/v2).
CONTROLLERS = ("cpu", "memory", "pids", "blkio", "devices")

#: v1 ``cpu.shares`` value corresponding to the v2 ``cpu.weight`` default 100.
CPU_SHARES_NICE0 = 1024


def cpu_weight_from_shares(shares: int) -> int:
    """Render stored v1-style ``cpu_shares`` as a v2 ``cpu.weight`` (1-10000)."""
    weight = (shares * 100 + CPU_SHARES_NICE0 // 2) // CPU_SHARES_NICE0
    return min(CPU_WEIGHT_MAX, max(CPU_WEIGHT_MIN, weight))


def cpu_shares_from_weight(weight: int) -> int:
    """Store a v2 ``cpu.weight`` write in the v1-style ``cpu_shares`` field.

    The mapping is linear with the fixed point ``weight 100 == shares 1024``
    and integer half-up rounding on both directions: the scale factor is
    10.24 shares per weight unit, so the rounding error survives the inverse
    conversion undistorted and *every* weight in [1, 10000] round-trips
    exactly through a cgroupfs write+read.  The floor of 2 matches the
    kernel's minimum shares value.
    """
    return max(2, (weight * CPU_SHARES_NICE0 + 50) // 100)


@dataclass
class CgroupLimits:
    """Per-cgroup resource limits."""

    cpu_shares: int = 1024
    cpu_quota_us: int | None = None
    cpu_period_us: int = 100_000
    #: ``memory.max``: hard page-cache budget enforced by per-cgroup reclaim
    #: (None or 0 = unlimited, matching the cgroupfs "max" sentinel).
    memory_limit_bytes: int | None = None
    #: ``memory.high``: soft ceiling; charging past it applies
    #: balance_dirty_pages-style write throttling instead of reclaim.
    memory_high_bytes: int | None = None
    pids_max: int | None = None
    blkio_weight: int = 500

    def cpu_fraction(self) -> float:
        """Fraction of one CPU this cgroup may use (1.0 = unlimited/one full core)."""
        if self.cpu_quota_us is None:
            return 1.0
        return min(1.0, self.cpu_quota_us / self.cpu_period_us)

    def cpu_weight(self) -> int:
        """The v2 ``cpu.weight`` view of the stored ``cpu_shares``."""
        return cpu_weight_from_shares(self.cpu_shares)

    def cpu_max_text(self) -> str:
        """Render the ``cpu.max`` file content ("$MAX $PERIOD")."""
        quota = "max" if self.cpu_quota_us is None else str(self.cpu_quota_us)
        return f"{quota} {self.cpu_period_us}\n"


@dataclass
class MemcgStats:
    """Memory-controller accounting for one cgroup (``memory.stat``)."""

    reclaims: int = 0              # enforcement passes that reclaimed something
    pages_dropped: int = 0         # clean pages dropped without writeback
    pages_flushed: int = 0         # dirty pages flushed via their engine first
    bytes_reclaimed: int = 0       # total bytes freed by per-cgroup reclaim
    reclaim_cost_ns: int = 0       # virtual time spent inside reclaim passes
    throttle_events: int = 0       # note_dirty calls that stalled the writer
    throttle_stall_ns: int = 0     # virtual time charged as writer stalls

    @property
    def pages_reclaimed(self) -> int:
        """Every reclaimed page was either dropped clean or flushed first."""
        return self.pages_dropped + self.pages_flushed


@dataclass
class CgroupIoStat:
    """Per-device block I/O accounting for one cgroup (one ``io.stat`` row)."""

    rbytes: int = 0    # bytes fetched from the device (page-cache misses)
    wbytes: int = 0    # bytes written back, charged to the dirtying cgroup
    rios: int = 0      # read operations
    wios: int = 0      # write operations (one per flushed inode)


class Cgroup:
    """One node in the cgroup hierarchy."""

    def __init__(self, name: str, parent: "Cgroup | None" = None) -> None:
        self.name = name
        self.parent = parent
        self.children: dict[str, "Cgroup"] = {}
        self.procs: set[int] = set()
        self.limits = CgroupLimits()
        #: CPU-controller counters (``cpu.stat``), shared live with the
        #: scheduler's :class:`repro.sim.sched.CpuGroup` by the kernel glue
        #: (:mod:`repro.kernel.cpu`), so cgroupfs reads see charges as they
        #: accrue.
        self.cpu_stats = CpuGroupStats()
        #: High watermark of ``mem_cache_bytes`` (``memory.peak``), driven by
        #: the memory controller's charge path.
        self.stats_memory_peak = 0
        #: Hierarchical charge counters (this cgroup plus every descendant):
        #: resident page-cache bytes (``memory.current``) and unflushed dirty
        #: bytes (``memory.stat`` ``file_dirty``), maintained by
        #: :class:`repro.kernel.memcg.MemcgController`.
        self.mem_cache_bytes = 0
        self.mem_dirty_bytes = 0
        self.memcg_stats = MemcgStats()
        #: Per-cgroup pressure-stall trackers (``cpu.pressure`` /
        #: ``memory.pressure`` / ``io.pressure``), fed by the stall sites
        #: through :class:`repro.sim.psi.PsiRegistry`; hierarchical — every
        #: stall is accounted to the victim cgroup and all its ancestors.
        self.psi = PsiGroup()
        #: Per-device block I/O counters (``io.stat``), hierarchical like the
        #: memory charges; maintained by the memory controller's I/O hooks.
        self.io_stats: dict[str, CgroupIoStat] = {}

    @property
    def path(self) -> str:
        """Absolute path of the cgroup within the hierarchy."""
        if self.parent is None:
            return "/"
        parent_path = self.parent.path
        return f"{parent_path.rstrip('/')}/{self.name}"

    def effective_memory_limit(self) -> int | None:
        """The tightest memory limit along the path to the root."""
        limit = self.limits.memory_limit_bytes
        node = self.parent
        while node is not None:
            parent_limit = node.limits.memory_limit_bytes
            if parent_limit is not None and (limit is None or parent_limit < limit):
                limit = parent_limit
            node = node.parent
        return limit

    def descendant_procs(self) -> set[int]:
        """Pids of this cgroup and every descendant."""
        pids = set(self.procs)
        for child in self.children.values():
            pids |= child.descendant_procs()
        return pids


class CgroupHierarchy:
    """The (unified, v2-style) cgroup tree."""

    def __init__(self) -> None:
        self.root = Cgroup("")
        self._proc_to_cgroup: dict[int, Cgroup] = {}

    def create(self, path: str) -> Cgroup:
        """Create (or return) the cgroup at ``path``."""
        node = self.root
        for part in [p for p in path.split("/") if p]:
            if part not in node.children:
                node.children[part] = Cgroup(part, parent=node)
            node = node.children[part]
        return node

    def lookup(self, path: str) -> Cgroup:
        """Find a cgroup by path."""
        node = self.root
        for part in [p for p in path.split("/") if p]:
            if part not in node.children:
                raise FsError.enoent(path)
            node = node.children[part]
        return node

    def attach(self, pid: int, path: str) -> Cgroup:
        """Move a process into the cgroup at ``path`` (``echo pid > cgroup.procs``)."""
        group = self.create(path)
        previous = self._proc_to_cgroup.get(pid)
        if previous is not None:
            previous.procs.discard(pid)
        group.procs.add(pid)
        self._proc_to_cgroup[pid] = group
        return group

    def detach(self, pid: int) -> None:
        """Remove a process from the hierarchy (on exit)."""
        group = self._proc_to_cgroup.pop(pid, None)
        if group is not None:
            group.procs.discard(pid)

    def cgroup_of(self, pid: int) -> Cgroup:
        """The cgroup a process belongs to (the root if never attached)."""
        return self._proc_to_cgroup.get(pid, self.root)

    def remove(self, path: str) -> None:
        """Remove an empty cgroup."""
        group = self.lookup(path)
        if group.procs or group.children:
            raise FsError.ebusy(path)
        if group.parent is not None:
            del group.parent.children[group.name]

    def proc_cgroup_line(self, pid: int) -> str:
        """The ``/proc/<pid>/cgroup`` content (cgroup v2 single line)."""
        return f"0::{self.cgroup_of(pid).path}"
