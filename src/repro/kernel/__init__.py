"""Simulated Linux kernel: processes, namespaces, cgroups, IPC and syscalls.

The kernel layer provides the per-process isolation mechanisms that container
runtimes (and Cntr itself) are built from:

* all seven namespace kinds with ``unshare``/``setns`` semantics,
* cgroup hierarchy with controller limits and process membership,
* capability sets and LSM (AppArmor/SELinux-style) profiles,
* a process table with fork/exec/exit, file-descriptor tables, chroot,
* kernel IPC objects: pipes, Unix sockets, epoll, pseudo-TTYs, splice,
* the synthetic ``/proc`` and ``/dev`` filesystems,
* a per-process syscall facade (:class:`repro.kernel.syscalls.Syscalls`).

:func:`repro.kernel.machine.boot` assembles all of it into a ready-to-use
simulated host.
"""

from repro.kernel.capabilities import CapabilitySet
from repro.kernel.namespaces import Namespace, NamespaceKind
from repro.kernel.cgroups import Cgroup, CgroupHierarchy
from repro.kernel.process import Process
from repro.kernel.kernel import Kernel
from repro.kernel.syscalls import Syscalls
from repro.kernel.machine import Machine, boot

__all__ = [
    "CapabilitySet",
    "Namespace",
    "NamespaceKind",
    "Cgroup",
    "CgroupHierarchy",
    "Process",
    "Kernel",
    "Syscalls",
    "Machine",
    "boot",
]
