"""The kernel object: process table, namespace operations, devices.

The kernel is deliberately mechanism-only: containers are *not* a kernel
concept here (exactly as the paper stresses in §2.3) — the container runtimes
in :mod:`repro.container` and Cntr itself in :mod:`repro.core` are userspace
programs that compose the primitives exposed by this class.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.fs.errors import FsError
from repro.fs.mount import MountNamespace
from repro.fs.vfs import VFS, VNode
from repro.fs.writeback import MemInfo, VmSysctl
from repro.kernel.capabilities import CapabilitySet
from repro.kernel.cgroups import CgroupHierarchy
from repro.kernel.lsm import LsmRegistry, UNCONFINED
from repro.kernel.memcg import MemcgController
from repro.kernel.namespaces import (
    MntNamespace,
    Namespace,
    NamespaceKind,
    PidNamespace,
    make_host_namespaces,
)
from repro.kernel.objects import KernelObject
from repro.kernel.process import Process
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.psi import PsiRegistry
from repro.sim.trace import Tracer

#: Device numbers of the character devices the kernel knows about.
DEV_NULL_RDEV = 0x0103
DEV_ZERO_RDEV = 0x0105
DEV_URANDOM_RDEV = 0x0109
DEV_FUSE_RDEV = 0x0AE5
DEV_TTY_RDEV = 0x0500


class NullDevice(KernelObject):
    """``/dev/null``: reads return EOF, writes are discarded."""

    def read(self, size: int) -> bytes:
        return b""

    def write(self, data: bytes) -> int:
        return len(data)

    def poll(self) -> set[str]:
        return {"in", "out"}


class ZeroDevice(KernelObject):
    """``/dev/zero``: reads return zero bytes."""

    def read(self, size: int) -> bytes:
        return b"\x00" * size

    def write(self, data: bytes) -> int:
        return len(data)

    def poll(self) -> set[str]:
        return {"in", "out"}


class UrandomDevice(KernelObject):
    """``/dev/urandom``: deterministic pseudo-random bytes."""

    def __init__(self, seed: int = 0xC0FFEE) -> None:
        super().__init__()
        self._state = seed

    def read(self, size: int) -> bytes:
        out = bytearray()
        while len(out) < size:
            self._state = (self._state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            out.extend(self._state.to_bytes(8, "little"))
        return bytes(out[:size])

    def poll(self) -> set[str]:
        return {"in"}


class _CurrentPsiChain:
    """Resolve the current process's cgroup PSI chain for the registry.

    A named class instead of a closure so the kernel snapshot (which pickles
    the whole object graph) can serialise the registry's hook.
    """

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    def __call__(self):
        memcg = self.kernel.memcg
        return memcg.psi_chain(memcg.current_cgroup())


class Kernel:
    """Top-level simulated kernel."""

    def __init__(self, clock: VirtualClock | None = None,
                 costs: CostModel | None = None,
                 tracer: Tracer | None = None) -> None:
        self.clock = clock or VirtualClock()
        self.costs = costs or CostModel()
        self.tracer = tracer or Tracer(enabled=False)
        self.vfs = VFS()
        self.cgroups = CgroupHierarchy()
        self.lsm = LsmRegistry()
        #: Modelled memory size; /proc/meminfo renders it and the
        #: vm.dirty_*_ratio knobs resolve against it.
        self.mem = MemInfo()
        #: The cgroup v2 memory controller: per-cgroup page-cache budgets,
        #: memcg reclaim and memory.high write throttling.  Filesystem
        #: registration (below) wires caches and engines into it.
        self.memcg = MemcgController(self.cgroups, self.clock)
        #: Kernel-wide vm.* knobs (/proc/sys/vm) plus the memory model behind
        #: them; mounting a filesystem registers it (and its writeback
        #: engine, if any) here.
        self.vm = VmSysctl(meminfo=self.mem)
        self.vm.memcg = self.memcg
        #: Pressure-stall accounting (/proc/pressure + per-cgroup *.pressure
        #: files): every stall site reports through this registry; stalls are
        #: attributed to the current process's cgroup chain unless the site
        #: knows its victim better (scheduler throttling, memcg stalls).
        self.psi = PsiRegistry(self.clock)
        self.psi.current_groups = _CurrentPsiChain(self)
        self.memcg.psi = self.psi
        self.memcg.tracer = self.tracer
        self.vm.psi = self.psi
        self.vm.tracer = self.tracer
        self.processes: dict[int, Process] = {}
        self._next_pid = 1
        self._pty_index = 0
        #: rdev -> factory producing a KernelObject when the device is opened.
        self.device_drivers: dict[int, Callable[[], KernelObject]] = {
            DEV_NULL_RDEV: NullDevice,
            DEV_ZERO_RDEV: ZeroDevice,
            DEV_URANDOM_RDEV: UrandomDevice,
        }
        self.host_namespaces: dict[NamespaceKind, Namespace] = {}

    # ------------------------------------------------------------- processes
    def cpu_controller(self, rng=None, timeslice_ns: int | None = None):
        """A fresh multi-tenant scheduler run bound to this kernel.

        Each controller owns one :class:`repro.sim.sched.Scheduler`; benches
        seed ``rng`` (a :class:`repro.sim.rng.DeterministicRandom`) for
        reproducible jittered interleavings.  Inline single-process execution
        never touches this — with no controller the kernel behaves exactly as
        before the scheduler existed.
        """
        from repro.kernel.cpu import CpuController

        kwargs = {} if timeslice_ns is None else {"timeslice_ns": timeslice_ns}
        return CpuController(self, rng=rng, **kwargs)

    def alloc_pid(self) -> int:
        """Allocate the next global pid."""
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def create_init_process(self, mounts: MountNamespace, argv: list[str] | None = None,
                            env: dict[str, str] | None = None) -> Process:
        """Create pid 1 on the host with the initial namespace set."""
        if self.processes:
            raise FsError.eexist("init process already exists")
        self.host_namespaces = make_host_namespaces(mounts)
        pid = self.alloc_pid()
        root_mount = mounts.root_mount
        assert root_mount is not None
        root = VNode(root_mount, root_mount.root_ino)
        init = Process(
            pid=pid, ppid=0, argv=argv or ["/sbin/init"],
            env=env or {"PATH": "/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin:/sbin:/bin",
                        "HOME": "/root", "TERM": "xterm"},
            namespaces=self.host_namespaces, root=root, cwd=root, cwd_path="/",
            uid=0, gid=0, caps=CapabilitySet.for_host_root(), lsm_profile=UNCONFINED)
        init.start_time_ns = self.clock.now_ns
        self.processes[pid] = init
        self._register_in_pid_ns(init)
        self.cgroups.attach(pid, "/")
        return init

    def _register_in_pid_ns(self, proc: Process) -> None:
        pid_ns = proc.pid_ns
        if pid_ns.parent is None:
            # The root PID namespace uses global pids as virtual pids.
            pid_ns.vpid_map[proc.pid] = proc.pid
            pid_ns.next_vpid = max(pid_ns.next_vpid, proc.pid + 1)
            if pid_ns.init_pid is None:
                pid_ns.init_pid = proc.pid
        else:
            pid_ns.register(proc.pid)

    def fork(self, parent: Process, argv: list[str] | None = None,
             env: dict[str, str] | None = None) -> Process:
        """Fork a child of ``parent`` (optionally exec-ing new argv/env)."""
        self.clock.advance(self.costs.context_switch_ns)
        pid = self.alloc_pid()
        child = Process(
            pid=pid, ppid=parent.pid,
            argv=list(argv) if argv is not None else list(parent.argv),
            env=dict(env) if env is not None else dict(parent.env),
            namespaces=dict(parent.namespaces),
            root=parent.root, cwd=parent.cwd, cwd_path=parent.cwd_path,
            uid=parent.uid, gid=parent.gid, groups=parent.groups,
            caps=parent.caps, lsm_profile=parent.lsm_profile)
        child.umask = parent.umask
        child.rlimits = dataclasses.replace(parent.rlimits)
        child.start_time_ns = self.clock.now_ns
        self.processes[pid] = child
        parent.children.append(pid)
        self._register_in_pid_ns(child)
        self.cgroups.attach(pid, self.cgroups.cgroup_of(parent.pid).path)
        return child

    def exit_process(self, proc: Process, code: int = 0) -> None:
        """Terminate a process, releasing descriptors and namespace membership."""
        proc.close_all_fds()
        proc.state = "zombie"
        proc.exit_code = code
        proc.pid_ns.unregister(proc.pid)
        self.cgroups.detach(proc.pid)
        # Reap immediately; orphaned children are re-parented to init (pid 1).
        for child_pid in proc.children:
            child = self.processes.get(child_pid)
            if child is not None and child.state == "running":
                child.ppid = 1
        proc.state = "dead"
        self.processes.pop(proc.pid, None)

    def find_process(self, pid: int) -> Process:
        """Look up a live process by global pid."""
        proc = self.processes.get(pid)
        if proc is None:
            raise FsError.esrch(f"pid {pid}")
        return proc

    def processes_in_pid_ns(self, pid_ns: PidNamespace) -> list[Process]:
        """All live processes that are members of ``pid_ns``."""
        return [self.processes[p] for p in pid_ns.member_pids() if p in self.processes]

    # ------------------------------------------------------------- namespaces
    def unshare(self, proc: Process, kinds: set[NamespaceKind]) -> None:
        """``unshare(2)``: move the process into fresh namespaces of ``kinds``."""
        self.clock.advance(self.costs.syscall_ns)
        if NamespaceKind.USER not in kinds and not proc.caps.has("CAP_SYS_ADMIN"):
            raise FsError.eperm("unshare requires CAP_SYS_ADMIN")
        # Iterate in enum definition order: set order is hash-seed dependent
        # and must never decide the sequence of namespace swaps.
        for kind in [k for k in NamespaceKind if k in kinds]:
            current = proc.namespaces[kind]
            new_ns = current.clone_for_unshare()
            proc.namespaces[kind] = new_ns
            if kind == NamespaceKind.PID:
                assert isinstance(new_ns, PidNamespace)
                # PID namespace membership only changes for children; the
                # caller itself stays in its old namespace in Linux.  The
                # simulation applies it immediately for simplicity but keeps
                # the vpid of the caller stable.
                new_ns.register(proc.pid)
            if kind == NamespaceKind.MNT:
                assert isinstance(new_ns, MntNamespace)
                root_mount = new_ns.mounts.root_mount
                assert root_mount is not None
                # Re-anchor root/cwd onto the copied mount tree.
                proc.root = VNode(self._find_equivalent_mount(new_ns.mounts, proc.root),
                                  proc.root.ino)
                proc.cwd = VNode(self._find_equivalent_mount(new_ns.mounts, proc.cwd),
                                 proc.cwd.ino)

    @staticmethod
    def _find_equivalent_mount(mounts: MountNamespace, vnode: VNode):
        """After a mount-namespace copy, find the copied mount matching ``vnode``."""
        for m in mounts.mounts:
            if m.fs is vnode.mount.fs and m.root_ino == vnode.mount.root_ino \
                    and m.mountpoint_path == vnode.mount.mountpoint_path:
                return m
        return mounts.root_mount

    def setns(self, proc: Process, target: Namespace) -> None:
        """``setns(2)``: join an existing namespace."""
        self.clock.advance(self.costs.syscall_ns)
        if not proc.caps.has("CAP_SYS_ADMIN"):
            raise FsError.eperm("setns requires CAP_SYS_ADMIN")
        proc.namespaces[target.kind] = target
        if target.kind == NamespaceKind.MNT:
            assert isinstance(target, MntNamespace)
            root_mount = target.mounts.root_mount
            assert root_mount is not None
            proc.root = VNode(root_mount, root_mount.root_ino)
            proc.cwd = VNode(root_mount, root_mount.root_ino)
            proc.cwd_path = "/"
        if target.kind == NamespaceKind.PID:
            assert isinstance(target, PidNamespace)
            target.register(proc.pid)

    def setns_all_of(self, proc: Process, target: Process,
                     kinds: set[NamespaceKind] | None = None) -> None:
        """Join every namespace of ``target`` (what ``cntr attach`` does)."""
        # Enum definition order, not set order: the join sequence must not
        # depend on PYTHONHASHSEED.
        for kind in [k for k in NamespaceKind if kinds is None or k in kinds]:
            self.setns(proc, target.namespaces[kind])

    # ------------------------------------------------------------- devices
    def register_device(self, rdev: int, factory: Callable[[], KernelObject]) -> None:
        """Register a character-device driver."""
        self.device_drivers[rdev] = factory

    def open_device(self, rdev: int) -> KernelObject:
        """Open a character device by device number."""
        factory = self.device_drivers.get(rdev)
        if factory is None:
            raise FsError(6, msg=f"no driver for device {rdev:#x}")  # ENXIO
        return factory()

    def next_pty_index(self) -> int:
        """Allocate a pseudo-terminal index."""
        idx = self._pty_index
        self._pty_index += 1
        return idx

    # ------------------------------------------------------------- crash model
    def crash(self) -> None:
        """Power-fail the machine and bring it straight back up.

        Every filesystem under vm control crashes according to its own loss
        semantics — tmpfs resets to an empty tree, ext4 drops its caches and
        replays the journal on remount, a FUSE client loses its writeback
        cache — and is remounted immediately.  Processes and their descriptor
        tables survive in the simulation (the harness keeps driving them);
        handles into vanished inodes surface ESTALE/ENOENT on next use, which
        is exactly the stale-handle behaviour crash tests want to observe.
        """
        filesystems = self.vm.filesystems()
        for fs in filesystems:
            fs.crash()
        for fs in filesystems:
            fs.remount()

    # ------------------------------------------------------------- snapshot/fork
    def snapshot(self, *companions: object) -> "KernelSnapshot":
        """Freeze this kernel (plus any companion objects) into a snapshot.

        The snapshot captures everything reachable from the kernel — mount
        trees, page caches, the cgroup hierarchy, the virtual clock, RNG
        streams — together with ``companions`` (harness-level objects such as
        syscall handles or environment wrappers that must stay wired to the
        same object graph).  Each :meth:`KernelSnapshot.fork` then yields an
        independent copy-on-boot clone, which is ~2x cheaper than a fresh
        :func:`repro.kernel.machine.boot` and skips all environment setup
        replay.  The parent kernel is never touched: the deepcopy taken here
        is itself a private copy, and forks copy from it, not from ``self``.
        """
        return KernelSnapshot(self, companions)

    # ------------------------------------------------------------- misc
    def ptrace_allowed(self, tracer: Process, target: Process) -> bool:
        """Yama-style check: same PID namespace (or a descendant) + CAP_SYS_PTRACE."""
        if not tracer.caps.has("CAP_SYS_PTRACE") and tracer.uid != target.uid:
            return False
        ns = target.pid_ns
        while ns is not None:
            if ns.ns_id == tracer.pid_ns.ns_id:
                return True
            ns = ns.parent
        return False


class KernelSnapshot:
    """A frozen, forkable image of a :class:`Kernel` and its companions.

    Built once via :meth:`Kernel.snapshot`, then forked many times.
    The snapshot holds a private deepcopy of ``(kernel, companions)`` taken at
    construction; every fork deepcopies *that image*, so clones share nothing
    with each other or with the original kernel.  Virtual-clock state, RNG
    stream positions (including :class:`repro.sim.rng.DeterministicRandom`
    substream derivation seeds) and all filesystem state are preserved
    exactly, which is what makes snapshot-clone ≡ fresh-boot for the test
    harnesses.
    """

    def __init__(self, kernel: Kernel, companions: tuple[object, ...] = ()) -> None:
        import copy
        import pickle

        self._blob: bytes | None = None
        self._image: tuple[Kernel, tuple[object, ...]] | None = None
        try:
            # Pickle round-trips the object graph ~4x faster than deepcopy
            # walks it, so prefer a frozen byte image when the graph allows.
            self._blob = pickle.dumps((kernel, companions),
                                      protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            # Graphs holding unpicklable members (test doubles, closures)
            # still snapshot correctly, just at deepcopy speed.
            self._image = copy.deepcopy((kernel, companions))
        self.forks = 0

    def fork(self) -> tuple[Kernel, tuple[object, ...]]:
        """A fully independent clone: ``(kernel, companions)``."""
        import copy
        import pickle

        self.forks += 1
        if self._blob is not None:
            return pickle.loads(self._blob)
        return copy.deepcopy(self._image)
