"""The ``/sys/class/bdi`` surface: per-device writeback/readahead knobs.

Linux exposes every backing device's writeback state under
``/sys/class/bdi/<dev>/``; the knob that matters for the reproduction is
``read_ahead_kb``, the per-device readahead window that replaced the global
``max_readahead`` constant on the ext4/FUSE read paths.  Devices appear here
when their filesystem is mounted (``Syscalls.mount`` registers the
filesystem — and thereby its engine's BDI — with :class:`VmSysctl`) and
disappear at the last umount, exactly like ``/proc`` entries follow
processes.

Reads render the live knob value; writes retune the live
:class:`repro.fs.writeback.BacklogDeviceInfo` object, so the next cache-miss
fetch on that device uses the new window.  Invalid values are ``EINVAL``,
matching the sysctl convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.fs.constants import FileMode
from repro.fs.errors import FsError
from repro.fs.filesystem import Filesystem
from repro.fs.inode import DirectoryInode, Inode, RegularInode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fs.writeback import BacklogDeviceInfo
    from repro.kernel.kernel import Kernel

#: Files generated inside every ``/sys/class/bdi/<dev>`` directory.
BDI_FILES = ("read_ahead_kb",)


@dataclass(frozen=True)
class BdiEntry:
    """What a synthetic bdi-sysfs inode refers to."""

    kind: str          # "root" | "bdidir" | "knob"
    device: str        # bdi name ("" for the root)
    name: str


class BdiSysFS(Filesystem):
    """The ``/sys/class/bdi`` directory, bound to the kernel's BDI registry."""

    fs_type = "sysfs"
    supports_direct_io = False
    supports_export_handles = False
    #: Device directories appear and disappear with mounts, without any
    #: name-mutating filesystem call the dentry generation could track.
    dcacheable = False

    def __init__(self, name: str, kernel: "Kernel") -> None:
        super().__init__(name, kernel.clock, kernel.costs, kernel.tracer,
                         capacity_bytes=0)
        self.kernel = kernel
        self._entries: dict[int, BdiEntry] = {
            self.root_ino: BdiEntry("root", "", "/")}
        self._path_to_ino: dict[tuple[str, str, str], int] = {}

    # ------------------------------------------------------------- plumbing
    def _bdi(self, device: str) -> "BacklogDeviceInfo":
        bdi = self.kernel.vm.bdis().get(device)
        if bdi is None:
            raise FsError.enoent(f"/sys/class/bdi/{device}")
        return bdi

    def _synthetic_inode(self, entry: BdiEntry) -> Inode:
        key = (entry.kind, entry.device, entry.name)
        ino = self._path_to_ino.get(key)
        if ino is not None and ino in self._inodes:
            return self._inodes[ino]
        if entry.kind == "bdidir":
            inode = DirectoryInode(ino=self._alloc_ino(),
                                   mode=FileMode.S_IFDIR | 0o555)
        else:
            inode = RegularInode(ino=self._alloc_ino(),
                                 mode=FileMode.S_IFREG | 0o644)
        inode.fs_name = self.name
        self._inodes[inode.ino] = inode
        self._entries[inode.ino] = entry
        self._path_to_ino[key] = inode.ino
        return inode

    def entry_of(self, ino: int) -> BdiEntry:
        """The synthetic entry behind an inode number."""
        entry = self._entries.get(ino)
        if entry is None:
            raise FsError.estale(f"bdi sysfs ino {ino}")
        return entry

    def _generate(self, entry: BdiEntry) -> bytes:
        bdi = self._bdi(entry.device)
        if entry.name == "read_ahead_kb":
            # The effective window (knob, or the filesystem's default),
            # rendered in KiB as Linux does.
            return f"{bdi.read_ahead_bytes >> 10}\n".encode()
        raise FsError.enoent(entry.name)

    # ------------------------------------------------------------- fs interface
    def lookup(self, dir_ino: int, name: str) -> Inode:
        self._charge_metadata("lookup")
        entry = self.entry_of(dir_ino)
        if entry.kind == "root":
            if name in self.kernel.vm.bdis():
                return self._synthetic_inode(BdiEntry("bdidir", name, name))
            raise FsError.enoent(name)
        if entry.kind == "bdidir":
            if name in BDI_FILES:
                self._bdi(entry.device)          # ESTALE once the mount is gone
                return self._synthetic_inode(BdiEntry("knob", entry.device, name))
            raise FsError.enoent(name)
        raise FsError.enotdir(name)

    def readdir(self, dir_ino: int) -> list[tuple[str, int, int]]:
        self._charge_metadata("readdir")
        entry = self.entry_of(dir_ino)
        out = [(".", dir_ino, int(FileMode.S_IFDIR)),
               ("..", dir_ino, int(FileMode.S_IFDIR))]
        if entry.kind == "root":
            for device in self.kernel.vm.bdis():
                inode = self._synthetic_inode(BdiEntry("bdidir", device, device))
                out.append((device, inode.ino, int(FileMode.S_IFDIR)))
        elif entry.kind == "bdidir":
            for name in BDI_FILES:
                inode = self._synthetic_inode(BdiEntry("knob", entry.device, name))
                out.append((name, inode.ino, int(FileMode.S_IFREG)))
        return out

    def read(self, ino: int, offset: int, size: int) -> bytes:
        entry = self.entry_of(ino)
        if entry.kind != "knob":
            raise FsError.eisdir(entry.name)
        content = self._generate(entry)
        self._charge_read(ino, offset, min(size, len(content)))
        return content[offset:offset + size]

    def getattr(self, ino: int):
        self._charge_metadata("getattr")
        inode = self.iget(ino)
        entry = self._entries.get(ino)
        if entry is not None and entry.kind == "knob" \
                and isinstance(inode, RegularInode):
            content = self._generate(entry)
            inode.data.truncate(0)
            inode.data.write(0, content)
        return inode.stat(st_dev=self.fs_id)

    def write(self, ino: int, offset: int, data: bytes) -> int:
        entry = self._entries.get(ino)
        if entry is None or entry.kind != "knob":
            raise FsError.eacces("bdi sysfs directories are read-only")
        text = data.decode("ascii", errors="replace").strip()
        try:
            value = int(text.split()[0]) if text else 0
        except ValueError:
            raise FsError.einval(f"bdi.{entry.name}: {text!r}") from None
        if value < 0:
            raise FsError.einval(f"bdi.{entry.name} = {value}")
        self._charge_metadata("sysctl")
        bdi = self._bdi(entry.device)
        if entry.name == "read_ahead_kb":
            bdi.read_ahead_kb = value
        return len(data)

    def truncate(self, ino: int, size: int) -> None:
        # O_TRUNC on a knob file (shell `echo N >` idiom) is a no-op.
        entry = self._entries.get(ino)
        if entry is None or entry.kind != "knob":
            raise FsError.eacces("bdi sysfs directories are read-only")
