"""Synthetic sysfs surfaces: ``/sys/class/bdi`` and ``/sys/fs/cgroup``.

Linux exposes every backing device's writeback state under
``/sys/class/bdi/<dev>/``; the knob that matters for the reproduction is
``read_ahead_kb``, the per-device readahead window that replaced the global
``max_readahead`` constant on the ext4/FUSE read paths.  Devices appear here
when their filesystem is mounted (``Syscalls.mount`` registers the
filesystem — and thereby its engine's BDI — with :class:`VmSysctl`) and
disappear at the last umount, exactly like ``/proc`` entries follow
processes.

Reads render the live knob value; writes retune the live
:class:`repro.fs.writeback.BacklogDeviceInfo` object, so the next cache-miss
fetch on that device uses the new window.  Invalid values are ``EINVAL``,
matching the sysctl convention.

:class:`CgroupFS` is the same idea for the cgroup v2 hierarchy: a *writable*
synthetic filesystem mounted at ``/sys/fs/cgroup`` whose directories mirror
the live :class:`repro.kernel.cgroups.CgroupHierarchy` (``mkdir`` creates a
cgroup, ``rmdir`` removes an empty one) and whose files are the memory
controller's interface — ``memory.max`` / ``memory.high`` (writable;
``max``/``0`` mean unlimited, anything non-integer or negative is
``EINVAL``, and lowering ``memory.max`` below the current usage triggers
synchronous reclaim, per Linux semantics), the read-only ``memory.current``
/ ``memory.peak`` / ``memory.stat``, and ``cgroup.procs`` (read the member
pids, write a pid to move a process, the operation Cntr performs on its
injected tools).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.fs.constants import FileMode
from repro.fs.errors import FsError
from repro.fs.filesystem import Filesystem
from repro.fs.inode import DirectoryInode, Inode, RegularInode
from repro.kernel.cgroups import cpu_shares_from_weight
from repro.sim.sched import CPU_WEIGHT_MAX, CPU_WEIGHT_MIN

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fs.writeback import BacklogDeviceInfo
    from repro.kernel.cgroups import Cgroup
    from repro.kernel.kernel import Kernel

#: Files generated inside every ``/sys/class/bdi/<dev>`` directory.
BDI_FILES = ("read_ahead_kb",)


@dataclass(frozen=True)
class BdiEntry:
    """What a synthetic bdi-sysfs inode refers to."""

    kind: str          # "root" | "bdidir" | "knob"
    device: str        # bdi name ("" for the root)
    name: str


class BdiSysFS(Filesystem):
    """The ``/sys/class/bdi`` directory, bound to the kernel's BDI registry."""

    fs_type = "sysfs"
    supports_direct_io = False
    supports_export_handles = False
    #: Device directories appear and disappear with mounts, without any
    #: name-mutating filesystem call the dentry generation could track.
    dcacheable = False

    def __init__(self, name: str, kernel: "Kernel") -> None:
        super().__init__(name, kernel.clock, kernel.costs, kernel.tracer,
                         capacity_bytes=0)
        self.kernel = kernel
        self._entries: dict[int, BdiEntry] = {
            self.root_ino: BdiEntry("root", "", "/")}
        self._path_to_ino: dict[tuple[str, str, str], int] = {}

    # ------------------------------------------------------------- plumbing
    def _bdi(self, device: str) -> "BacklogDeviceInfo":
        bdi = self.kernel.vm.bdis().get(device)
        if bdi is None:
            raise FsError.enoent(f"/sys/class/bdi/{device}")
        return bdi

    def _synthetic_inode(self, entry: BdiEntry) -> Inode:
        key = (entry.kind, entry.device, entry.name)
        ino = self._path_to_ino.get(key)
        if ino is not None and ino in self._inodes:
            return self._inodes[ino]
        if entry.kind == "bdidir":
            inode = DirectoryInode(ino=self._alloc_ino(),
                                   mode=FileMode.S_IFDIR | 0o555)
        else:
            inode = RegularInode(ino=self._alloc_ino(),
                                 mode=FileMode.S_IFREG | 0o644)
        inode.fs_name = self.name
        self._inodes[inode.ino] = inode
        self._entries[inode.ino] = entry
        self._path_to_ino[key] = inode.ino
        return inode

    def entry_of(self, ino: int) -> BdiEntry:
        """The synthetic entry behind an inode number."""
        entry = self._entries.get(ino)
        if entry is None:
            raise FsError.estale(f"bdi sysfs ino {ino}")
        return entry

    def _generate(self, entry: BdiEntry) -> bytes:
        bdi = self._bdi(entry.device)
        if entry.name == "read_ahead_kb":
            # The effective window (knob, or the filesystem's default),
            # rendered in KiB as Linux does.
            return f"{bdi.read_ahead_bytes >> 10}\n".encode()
        raise FsError.enoent(entry.name)

    # ------------------------------------------------------------- fs interface
    def lookup(self, dir_ino: int, name: str) -> Inode:
        self._charge_metadata("lookup")
        entry = self.entry_of(dir_ino)
        if entry.kind == "root":
            if name in self.kernel.vm.bdis():
                return self._synthetic_inode(BdiEntry("bdidir", name, name))
            raise FsError.enoent(name)
        if entry.kind == "bdidir":
            if name in BDI_FILES:
                self._bdi(entry.device)          # ESTALE once the mount is gone
                return self._synthetic_inode(BdiEntry("knob", entry.device, name))
            raise FsError.enoent(name)
        raise FsError.enotdir(name)

    def readdir(self, dir_ino: int) -> list[tuple[str, int, int]]:
        self._charge_metadata("readdir")
        entry = self.entry_of(dir_ino)
        out = [(".", dir_ino, int(FileMode.S_IFDIR)),
               ("..", dir_ino, int(FileMode.S_IFDIR))]
        if entry.kind == "root":
            for device in self.kernel.vm.bdis():
                inode = self._synthetic_inode(BdiEntry("bdidir", device, device))
                out.append((device, inode.ino, int(FileMode.S_IFDIR)))
        elif entry.kind == "bdidir":
            for name in BDI_FILES:
                inode = self._synthetic_inode(BdiEntry("knob", entry.device, name))
                out.append((name, inode.ino, int(FileMode.S_IFREG)))
        return out

    def read(self, ino: int, offset: int, size: int) -> bytes:
        entry = self.entry_of(ino)
        if entry.kind != "knob":
            raise FsError.eisdir(entry.name)
        content = self._generate(entry)
        self._charge_read(ino, offset, min(size, len(content)))
        return content[offset:offset + size]

    def getattr(self, ino: int):
        self._charge_metadata("getattr")
        inode = self.iget(ino)
        entry = self._entries.get(ino)
        if entry is not None and entry.kind == "knob" \
                and isinstance(inode, RegularInode):
            content = self._generate(entry)
            inode.data.truncate(0)
            inode.data.write(0, content)
        return inode.stat(st_dev=self.fs_id)

    def write(self, ino: int, offset: int, data: bytes) -> int:
        entry = self._entries.get(ino)
        if entry is None or entry.kind != "knob":
            raise FsError.eacces("bdi sysfs directories are read-only")
        text = data.decode("ascii", errors="replace").strip()
        try:
            value = int(text.split()[0]) if text else 0
        except ValueError:
            raise FsError.einval(f"bdi.{entry.name}: {text!r}") from None
        if value < 0:
            raise FsError.einval(f"bdi.{entry.name} = {value}")
        self._charge_metadata("sysctl")
        bdi = self._bdi(entry.device)
        if entry.name == "read_ahead_kb":
            bdi.read_ahead_kb = value
        return len(data)

    def truncate(self, ino: int, size: int) -> None:
        # O_TRUNC on a knob file (shell `echo N >` idiom) is a no-op.
        entry = self._entries.get(ino)
        if entry is None or entry.kind != "knob":
            raise FsError.eacces("bdi sysfs directories are read-only")


# ---------------------------------------------------------------------------
# /sys/fs/cgroup — the writable synthetic cgroupfs
# ---------------------------------------------------------------------------
#: Files generated inside every cgroup directory.
CGROUP_FILES = ("cgroup.procs", "cpu.max", "cpu.pressure", "cpu.stat",
                "cpu.weight", "io.pressure", "io.stat",
                "memory.current", "memory.high", "memory.max",
                "memory.peak", "memory.pressure", "memory.stat")
#: The files a write is allowed to reach (everything else is read-only).
CGROUP_WRITABLE = ("cgroup.procs", "cpu.max", "cpu.weight",
                   "memory.high", "memory.max")
#: ``cpu.max`` bounds, matching the kernel's CFS bandwidth limits (usec).
CPU_QUOTA_MIN_US = 1_000
CPU_PERIOD_MIN_US = 1_000
CPU_PERIOD_MAX_US = 1_000_000


@dataclass(frozen=True)
class CgroupEntry:
    """What a synthetic cgroupfs inode refers to."""

    kind: str          # "dir" | "knob"
    cg_path: str       # cgroup path within the hierarchy ("/" for the root)
    name: str


class CgroupFS(Filesystem):
    """The ``/sys/fs/cgroup`` mount, bound to the kernel's cgroup hierarchy."""

    fs_type = "cgroup2"
    supports_direct_io = False
    supports_export_handles = False
    #: Directories appear with ``CgroupHierarchy.create`` calls made by
    #: container engines, not only through this filesystem's own mkdir, so
    #: the dentry generation cannot track the namespace.
    dcacheable = False

    def __init__(self, name: str, kernel: "Kernel") -> None:
        super().__init__(name, kernel.clock, kernel.costs, kernel.tracer,
                         capacity_bytes=0)
        self.kernel = kernel
        self._entries: dict[int, CgroupEntry] = {
            self.root_ino: CgroupEntry("dir", "/", "/")}
        self._path_to_ino: dict[tuple[str, str, str], int] = {}

    # ------------------------------------------------------------- plumbing
    def _cgroup(self, path: str) -> "Cgroup":
        return self.kernel.cgroups.lookup(path)

    def _synthetic_inode(self, entry: CgroupEntry) -> Inode:
        key = (entry.kind, entry.cg_path, entry.name)
        ino = self._path_to_ino.get(key)
        if ino is not None and ino in self._inodes:
            return self._inodes[ino]
        if entry.kind == "dir":
            inode = DirectoryInode(ino=self._alloc_ino(),
                                   mode=FileMode.S_IFDIR | 0o755)
        else:
            mode = 0o644 if entry.name in CGROUP_WRITABLE else 0o444
            inode = RegularInode(ino=self._alloc_ino(),
                                 mode=FileMode.S_IFREG | mode)
        inode.fs_name = self.name
        self._inodes[inode.ino] = inode
        self._entries[inode.ino] = entry
        self._path_to_ino[key] = inode.ino
        return inode

    def entry_of(self, ino: int) -> CgroupEntry:
        """The synthetic entry behind an inode number."""
        entry = self._entries.get(ino)
        if entry is None:
            raise FsError.estale(f"cgroupfs ino {ino}")
        return entry

    @staticmethod
    def _child_path(parent_path: str, name: str) -> str:
        return f"{parent_path.rstrip('/')}/{name}"

    def _forget_path(self, path: str) -> None:
        """Drop the synthetic inodes of a removed cgroup directory."""
        for key in [k for k in self._path_to_ino if k[1] == path]:
            ino = self._path_to_ino.pop(key)
            self._inodes.pop(ino, None)
            self._entries.pop(ino, None)

    # ------------------------------------------------------------- fs interface
    def lookup(self, dir_ino: int, name: str) -> Inode:
        self._charge_metadata("lookup")
        entry = self.entry_of(dir_ino)
        if entry.kind != "dir":
            raise FsError.enotdir(name)
        cgroup = self._cgroup(entry.cg_path)
        if name in CGROUP_FILES:
            return self._synthetic_inode(CgroupEntry("knob", entry.cg_path, name))
        if name in cgroup.children:
            child_path = self._child_path(entry.cg_path, name)
            return self._synthetic_inode(CgroupEntry("dir", child_path, name))
        raise FsError.enoent(name)

    def readdir(self, dir_ino: int) -> list[tuple[str, int, int]]:
        self._charge_metadata("readdir")
        entry = self.entry_of(dir_ino)
        if entry.kind != "dir":
            raise FsError.enotdir(entry.name)
        cgroup = self._cgroup(entry.cg_path)
        out = [(".", dir_ino, int(FileMode.S_IFDIR)),
               ("..", dir_ino, int(FileMode.S_IFDIR))]
        for name in CGROUP_FILES:
            inode = self._synthetic_inode(CgroupEntry("knob", entry.cg_path, name))
            out.append((name, inode.ino, int(FileMode.S_IFREG)))
        for name in cgroup.children:
            child_path = self._child_path(entry.cg_path, name)
            inode = self._synthetic_inode(CgroupEntry("dir", child_path, name))
            out.append((name, inode.ino, int(FileMode.S_IFDIR)))
        return out

    def mkdir(self, dir_ino: int, name: str, mode: int, uid: int = 0,
              gid: int = 0) -> DirectoryInode:
        self._charge_metadata("mkdir")
        entry = self.entry_of(dir_ino)
        if entry.kind != "dir":
            raise FsError.enotdir(name)
        parent = self._cgroup(entry.cg_path)
        if "/" in name or not name or name in CGROUP_FILES:
            raise FsError.einval(name)
        if name in parent.children:
            raise FsError.eexist(name)
        child_path = self._child_path(entry.cg_path, name)
        self.kernel.cgroups.create(child_path)
        inode = self._synthetic_inode(CgroupEntry("dir", child_path, name))
        assert isinstance(inode, DirectoryInode)
        return inode

    def rmdir(self, dir_ino: int, name: str) -> None:
        self._charge_metadata("rmdir")
        entry = self.entry_of(dir_ino)
        if entry.kind != "dir":
            raise FsError.enotdir(name)
        parent = self._cgroup(entry.cg_path)
        if name not in parent.children:
            raise FsError.enoent(name)
        child_path = self._child_path(entry.cg_path, name)
        # EBUSY while member processes or children remain, as in Linux.
        self.kernel.cgroups.remove(child_path)
        self._forget_path(child_path)

    # The rest of the namespace is immutable: cgroupfs only ever contains
    # cgroup directories and controller files.
    def create(self, dir_ino: int, name: str, mode: int, uid: int = 0, gid: int = 0):
        raise FsError.eacces("cgroupfs does not support regular files")

    def unlink(self, dir_ino: int, name: str) -> None:
        raise FsError.eacces("cgroupfs files cannot be unlinked")

    def rename(self, old_dir: int, old_name: str, new_dir: int, new_name: str,
               flags: int = 0) -> None:
        raise FsError.eacces("cgroupfs entries cannot be renamed")

    def symlink(self, dir_ino: int, name: str, target: str, uid: int = 0, gid: int = 0):
        raise FsError.eacces("cgroupfs does not support symlinks")

    def mknod(self, dir_ino: int, name: str, mode: int, rdev: int = 0,
              uid: int = 0, gid: int = 0):
        raise FsError.eacces("cgroupfs does not support device nodes")

    # ------------------------------------------------------------- content
    def _generate(self, entry: CgroupEntry) -> bytes:
        cgroup = self._cgroup(entry.cg_path)
        if entry.name == "memory.current":
            return f"{cgroup.mem_cache_bytes}\n".encode()
        if entry.name == "memory.peak":
            return f"{cgroup.stats_memory_peak}\n".encode()
        if entry.name in ("memory.max", "memory.high"):
            limit = cgroup.limits.memory_limit_bytes if entry.name == "memory.max" \
                else cgroup.limits.memory_high_bytes
            if limit is None or limit <= 0:
                return b"max\n"
            return f"{limit}\n".encode()
        if entry.name == "memory.stat":
            return self.kernel.memcg.memory_stat_text(cgroup).encode()
        if entry.name == "cpu.max":
            return cgroup.limits.cpu_max_text().encode()
        if entry.name == "cpu.weight":
            return f"{cgroup.limits.cpu_weight()}\n".encode()
        if entry.name == "cpu.stat":
            stats = cgroup.cpu_stats
            return (f"usage_usec {stats.usage_ns // 1_000}\n"
                    f"nr_periods {stats.nr_periods}\n"
                    f"nr_throttled {stats.nr_throttled}\n"
                    f"throttled_usec {stats.throttled_ns // 1_000}\n").encode()
        if entry.name == "cgroup.procs":
            return "".join(f"{pid}\n" for pid in sorted(cgroup.procs)).encode()
        if entry.name.endswith(".pressure"):
            resource = entry.name.rsplit(".", 1)[0]
            now_ns = self.kernel.clock.now_ns
            return cgroup.psi.render(resource, now_ns).encode()
        if entry.name == "io.stat":
            rows = [f"{dev} rbytes={s.rbytes} wbytes={s.wbytes}"
                    f" rios={s.rios} wios={s.wios}\n"
                    for dev, s in sorted(cgroup.io_stats.items())]
            return "".join(rows).encode()
        raise FsError.enoent(entry.name)

    def read(self, ino: int, offset: int, size: int) -> bytes:
        entry = self.entry_of(ino)
        if entry.kind != "knob":
            raise FsError.eisdir(entry.name)
        content = self._generate(entry)
        self._charge_read(ino, offset, min(size, len(content)))
        return content[offset:offset + size]

    def getattr(self, ino: int):
        self._charge_metadata("getattr")
        inode = self.iget(ino)
        entry = self._entries.get(ino)
        if entry is not None:
            self._cgroup(entry.cg_path)      # ENOENT once the cgroup is gone
            if entry.kind == "knob" and isinstance(inode, RegularInode):
                content = self._generate(entry)
                inode.data.truncate(0)
                inode.data.write(0, content)
        return inode.stat(st_dev=self.fs_id)

    def write(self, ino: int, offset: int, data: bytes) -> int:
        entry = self._entries.get(ino)
        if entry is None or entry.kind != "knob":
            raise FsError.eacces("cgroupfs directories are read-only")
        if entry.name not in CGROUP_WRITABLE:
            raise FsError.eacces(f"{entry.name} is read-only")
        cgroup = self._cgroup(entry.cg_path)
        text = data.decode("ascii", errors="replace").strip()
        self._charge_metadata("sysctl")
        if entry.name == "cgroup.procs":
            try:
                pid = int(text)
            except ValueError:
                raise FsError.einval(f"cgroup.procs: {text!r}") from None
            if pid not in self.kernel.processes:
                raise FsError.esrch(f"pid {pid}")
            self.kernel.cgroups.attach(pid, entry.cg_path)
            return len(data)
        if entry.name == "cpu.weight":
            try:
                weight = int(text)
            except ValueError:
                raise FsError.einval(f"cpu.weight: {text!r}") from None
            if not CPU_WEIGHT_MIN <= weight <= CPU_WEIGHT_MAX:
                raise FsError.einval(f"cpu.weight = {weight}")
            cgroup.limits.cpu_shares = cpu_shares_from_weight(weight)
            return len(data)
        if entry.name == "cpu.max":
            # "$MAX $PERIOD": quota "max" or usec >= 1000; the period is
            # optional (keeping the current one) and bounded like CFS.
            fields = text.split()
            if not 1 <= len(fields) <= 2:
                raise FsError.einval(f"cpu.max: {text!r}")
            if fields[0] == "max":
                quota = None
            else:
                try:
                    quota = int(fields[0])
                except ValueError:
                    raise FsError.einval(f"cpu.max: {text!r}") from None
                if quota < CPU_QUOTA_MIN_US:
                    raise FsError.einval(f"cpu.max quota = {quota}")
            period = cgroup.limits.cpu_period_us
            if len(fields) == 2:
                try:
                    period = int(fields[1])
                except ValueError:
                    raise FsError.einval(f"cpu.max: {text!r}") from None
                if not CPU_PERIOD_MIN_US <= period <= CPU_PERIOD_MAX_US:
                    raise FsError.einval(f"cpu.max period = {period}")
            cgroup.limits.cpu_quota_us = quota
            cgroup.limits.cpu_period_us = period
            return len(data)
        # memory.max / memory.high: "max" (or 0) means unlimited, as on Linux.
        if text == "max":
            value = None
        else:
            try:
                value = int(text)
            except ValueError:
                raise FsError.einval(f"{entry.name}: {text!r}") from None
            if value < 0:
                raise FsError.einval(f"{entry.name} = {value}")
            if value == 0:
                value = None
        if entry.name == "memory.max":
            cgroup.limits.memory_limit_bytes = value
            if value is not None and cgroup.mem_cache_bytes > value:
                # Linux reclaims synchronously when the new limit sits below
                # the current usage instead of rejecting the write.
                self.kernel.memcg.enforce(cgroup)
        else:
            cgroup.limits.memory_high_bytes = value
        return len(data)

    def truncate(self, ino: int, size: int) -> None:
        # O_TRUNC on a knob file (shell `echo N >` idiom) is a no-op.
        entry = self._entries.get(ino)
        if entry is None or entry.kind != "knob":
            raise FsError.eacces("cgroupfs directories are read-only")


# ---------------------------------------------------------------------------
# /sys/kernel/debug/tracing — the synthetic ftrace control surface
# ---------------------------------------------------------------------------
#: Files generated inside the tracing directory.
TRACING_FILES = ("available_events", "set_event", "trace", "tracing_on")
#: The files a write is allowed to reach.
TRACING_WRITABLE = ("set_event", "trace", "tracing_on")


@dataclass(frozen=True)
class TracingEntry:
    """What a synthetic tracefs inode refers to."""

    kind: str          # "root" | "file"
    name: str


class TracingFS(Filesystem):
    """The ``/sys/kernel/debug/tracing`` mount, bound to the kernel tracer.

    A small ftrace-shaped control surface over :class:`repro.sim.trace.Tracer`:

    * ``available_events`` — every declared or observed tracepoint, sorted;
    * ``set_event`` — read the per-tracepoint filter; write ``name`` to
      enable one, ``!name`` to disable it, an empty write to clear all;
    * ``trace`` — the bounded event ring with a header carrying the entry
      and drop counts (``echo > trace`` clears it, as on Linux);
    * ``tracing_on`` — the global collection switch (``0`` / ``1``).
    """

    fs_type = "tracefs"
    supports_direct_io = False
    supports_export_handles = False
    dcacheable = False

    def __init__(self, name: str, kernel: "Kernel") -> None:
        super().__init__(name, kernel.clock, kernel.costs, kernel.tracer,
                         capacity_bytes=0)
        self.kernel = kernel
        self._entries: dict[int, TracingEntry] = {
            self.root_ino: TracingEntry("root", "/")}
        self._path_to_ino: dict[str, int] = {}

    # ------------------------------------------------------------- plumbing
    def _synthetic_inode(self, entry: TracingEntry) -> Inode:
        ino = self._path_to_ino.get(entry.name)
        if ino is not None and ino in self._inodes:
            return self._inodes[ino]
        mode = 0o644 if entry.name in TRACING_WRITABLE else 0o444
        inode = RegularInode(ino=self._alloc_ino(),
                             mode=FileMode.S_IFREG | mode)
        inode.fs_name = self.name
        self._inodes[inode.ino] = inode
        self._entries[inode.ino] = entry
        self._path_to_ino[entry.name] = inode.ino
        return inode

    def entry_of(self, ino: int) -> TracingEntry:
        """The synthetic entry behind an inode number."""
        entry = self._entries.get(ino)
        if entry is None:
            raise FsError.estale(f"tracefs ino {ino}")
        return entry

    def _generate(self, entry: TracingEntry) -> bytes:
        tracer = self.kernel.tracer
        if entry.name == "available_events":
            return "".join(f"{name}\n"
                           for name in tracer.available_events()).encode()
        if entry.name == "set_event":
            return "".join(f"{name}\n"
                           for name in sorted(tracer.event_filter)).encode()
        if entry.name == "tracing_on":
            return b"1\n" if tracer.enabled else b"0\n"
        if entry.name == "trace":
            events = list(tracer.events())
            lines = [f"# tracer: repro\n"
                     f"# entries: {len(events)} dropped: {tracer.dropped}\n"]
            for key, count in sorted(tracer.dropped_by_key.items()):
                lines.append(f"# dropped {key}: {count}\n")
            for ev in events:
                row = f"{ev.timestamp_ns} {ev.key} cost_ns={ev.cost_ns}"
                if ev.detail:
                    row += f" {ev.detail}"
                lines.append(row + "\n")
            return "".join(lines).encode()
        raise FsError.enoent(entry.name)

    # ------------------------------------------------------------- fs interface
    def lookup(self, dir_ino: int, name: str) -> Inode:
        self._charge_metadata("lookup")
        entry = self.entry_of(dir_ino)
        if entry.kind != "root":
            raise FsError.enotdir(name)
        if name in TRACING_FILES:
            return self._synthetic_inode(TracingEntry("file", name))
        raise FsError.enoent(name)

    def readdir(self, dir_ino: int) -> list[tuple[str, int, int]]:
        self._charge_metadata("readdir")
        entry = self.entry_of(dir_ino)
        if entry.kind != "root":
            raise FsError.enotdir(entry.name)
        out = [(".", dir_ino, int(FileMode.S_IFDIR)),
               ("..", dir_ino, int(FileMode.S_IFDIR))]
        for name in TRACING_FILES:
            inode = self._synthetic_inode(TracingEntry("file", name))
            out.append((name, inode.ino, int(FileMode.S_IFREG)))
        return out

    def read(self, ino: int, offset: int, size: int) -> bytes:
        entry = self.entry_of(ino)
        if entry.kind != "file":
            raise FsError.eisdir(entry.name)
        content = self._generate(entry)
        self._charge_read(ino, offset, min(size, len(content)))
        return content[offset:offset + size]

    def getattr(self, ino: int):
        self._charge_metadata("getattr")
        inode = self.iget(ino)
        entry = self._entries.get(ino)
        if entry is not None and entry.kind == "file" \
                and isinstance(inode, RegularInode):
            content = self._generate(entry)
            inode.data.truncate(0)
            inode.data.write(0, content)
        return inode.stat(st_dev=self.fs_id)

    def write(self, ino: int, offset: int, data: bytes) -> int:
        entry = self._entries.get(ino)
        if entry is None or entry.kind != "file":
            raise FsError.eacces("tracefs is a flat directory")
        if entry.name not in TRACING_WRITABLE:
            raise FsError.eacces(f"{entry.name} is read-only")
        tracer = self.kernel.tracer
        text = data.decode("ascii", errors="replace").strip()
        self._charge_metadata("sysctl")
        if entry.name == "tracing_on":
            if text not in ("0", "1"):
                raise FsError.einval(f"tracing_on: {text!r}")
            tracer.enabled = text == "1"
            return len(data)
        if entry.name == "trace":
            # Any write clears the ring, matching `echo > trace`.
            tracer.clear()
            return len(data)
        # set_event: one directive per whitespace-separated token.
        tokens = text.split()
        if not tokens:
            tracer.clear_events()
            return len(data)
        for token in tokens:
            enable = not token.startswith("!")
            name = token.lstrip("!")
            try:
                tracer.set_event(name, enable=enable)
            except ValueError as exc:
                raise FsError.einval(str(exc)) from None
        return len(data)

    def truncate(self, ino: int, size: int) -> None:
        # O_TRUNC from the `echo > trace` idiom: clear the ring.
        entry = self._entries.get(ino)
        if entry is None or entry.kind != "file":
            raise FsError.eacces("tracefs is a flat directory")
        if entry.name not in TRACING_WRITABLE:
            raise FsError.eacces(f"{entry.name} is read-only")
        if entry.name == "trace":
            self.kernel.tracer.clear()
