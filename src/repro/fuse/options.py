"""FUSE mount options / negotiated INIT flags.

Each boolean corresponds to one of the optimizations the paper describes in
§3.3 and evaluates individually in §5.2.3 (Figures 3 and 4).  The defaults
match the configuration CntrFS ships with: every optimization on except
splice-write, which the paper measured as a net loss and disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class FuseMountOptions:
    """Options negotiated between the FUSE client (kernel) and server."""

    #: FOPEN_KEEP_CACHE: keep the page cache across open() calls so reads can
    #: be shared between processes (§3.3 "Caching", Figure 3a).
    keep_cache: bool = True
    #: FUSE_WRITEBACK_CACHE: buffer writes in the kernel and flush them in
    #: large batches (§3.3 "Caching", Figure 3b).
    writeback_cache: bool = True
    #: FUSE_PARALLEL_DIROPS: allow concurrent lookups/readdirs (§3.3
    #: "Batching", Figure 3c).
    parallel_dirops: bool = True
    #: Batched FORGET requests (§3.3 "Batching").
    batch_forget: bool = True
    #: FUSE_ASYNC_READ: let the kernel issue multiple concurrent reads /
    #: readahead batches (§3.3 "Batching").
    async_read: bool = True
    #: Splice for READ replies (§3.3 "Splicing", Figure 3d).
    splice_read: bool = True
    #: Splice for WRITE requests; disabled by default, as in the paper,
    #: because the extra context switch slows every other request down.
    splice_write: bool = False
    #: Number of CntrFS worker threads reading /dev/fuse (§3.3
    #: "Multithreading", Figure 4).
    threads: int = 4
    #: Bounded ``/dev/fuse`` background queue (``fuse_conn->max_background``,
    #: Linux default 12).  0 — the default here — leaves the queue unmodelled
    #: (legacy unbounded behavior), which keeps single-tenant runs
    #: byte-identical to the pinned figures; the multi-tenant scale bench
    #: opts in explicitly.
    max_background: int = 0
    #: Depth at which the submitting writer is congestion-stalled
    #: (``congestion_threshold``, Linux default 3/4 of max_background).
    #: 0 derives that default from ``max_background``.
    congestion_threshold: int = 0
    #: Attribute/entry cache validity; the simulation treats any non-zero
    #: value as "cache until invalidated".
    attr_timeout_s: float = 1.0
    entry_timeout_s: float = 1.0
    #: Maximum size of one WRITE request payload.
    max_write: int = 128 * 1024
    #: Readahead window negotiated at INIT time; it seeds the mount's
    #: per-device BDI knob (``/sys/class/bdi/<dev>/read_ahead_kb``), which is
    #: what the read path actually consults — retuning the device knob at
    #: runtime overrides this mount-time value, as on Linux.
    max_readahead: int = 128 * 1024
    #: Allow other users to access the mount (-o allow_other); Cntr needs it
    #: because the container application may run as a non-root uid.
    allow_other: bool = True
    #: Use O_DIRECT-style direct I/O, bypassing the page cache.  Mutually
    #: exclusive with mmap support, so CntrFS leaves it off (the paper's
    #: xfstests failure #391 and the AIO-Stress discussion).
    direct_io: bool = False

    def with_overrides(self, **kwargs) -> "FuseMountOptions":
        """Copy with selected options replaced."""
        return replace(self, **kwargs)

    @classmethod
    def all_optimizations_off(cls) -> "FuseMountOptions":
        """Baseline configuration with every optimization disabled."""
        return cls(keep_cache=False, writeback_cache=False, parallel_dirops=False,
                   batch_forget=False, async_read=False, splice_read=False,
                   splice_write=False, threads=1)

    @classmethod
    def paper_defaults(cls) -> "FuseMountOptions":
        """The configuration evaluated in the paper's Figure 2."""
        return cls()
