"""FUSE wire protocol: opcodes, requests, replies and attribute records."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

_unique_counter = itertools.count(1)


class FuseOpcode(enum.Enum):
    """The subset of FUSE opcodes CntrFS implements (full filesystem API)."""

    LOOKUP = 1
    FORGET = 2
    GETATTR = 3
    SETATTR = 4
    READLINK = 5
    SYMLINK = 6
    MKNOD = 8
    MKDIR = 9
    UNLINK = 10
    RMDIR = 11
    RENAME = 12
    LINK = 13
    OPEN = 14
    READ = 15
    WRITE = 16
    STATFS = 17
    RELEASE = 18
    FSYNC = 20
    SETXATTR = 21
    GETXATTR = 22
    LISTXATTR = 23
    REMOVEXATTR = 24
    FLUSH = 25
    INIT = 26
    OPENDIR = 27
    READDIR = 28
    RELEASEDIR = 29
    FSYNCDIR = 30
    GETLK = 31
    SETLK = 32
    ACCESS = 34
    CREATE = 35
    INTERRUPT = 36
    BMAP = 37
    DESTROY = 38
    IOCTL = 39
    POLL = 40
    BATCH_FORGET = 42
    FALLOCATE = 43
    READDIRPLUS = 44
    RENAME2 = 45
    LSEEK = 46
    COPY_FILE_RANGE = 47

#: Opcodes that carry a data payload from the kernel to userspace.
WRITE_LIKE_OPCODES = frozenset({FuseOpcode.WRITE, FuseOpcode.SETXATTR})
#: Opcodes that return a data payload from userspace to the kernel.
READ_LIKE_OPCODES = frozenset({FuseOpcode.READ, FuseOpcode.READDIR,
                               FuseOpcode.READDIRPLUS, FuseOpcode.GETXATTR,
                               FuseOpcode.LISTXATTR, FuseOpcode.READLINK})
#: Opcodes that never receive a reply.
NO_REPLY_OPCODES = frozenset({FuseOpcode.FORGET, FuseOpcode.BATCH_FORGET})
#: Opcode -> name, precomputed (``Enum.name`` is a descriptor lookup, too
#: slow for the per-request statistics paths).
OPCODE_NAME = {op: op.name for op in FuseOpcode}


@dataclass(frozen=True)
class FuseAttr:
    """Attribute block carried in LOOKUP/GETATTR/CREATE replies."""

    ino: int
    mode: int
    nlink: int
    uid: int
    gid: int
    rdev: int
    size: int
    atime_ns: int
    mtime_ns: int
    ctime_ns: int
    generation: int = 0


@dataclass(slots=True)
class FuseRequest:
    """One request sent from the kernel driver to the userspace server.

    ``coalesced`` is the number of wire-protocol requests this object stands
    for: the kernel driver batches a large extent transfer (e.g. a readahead
    window split into ``max_read``-sized READs, or a writeback flush split
    into ``max_write``-sized WRITEs) into a single dispatch whose protocol
    costs were charged arithmetically.  Accounting layers (connection stats,
    server stats) count ``coalesced`` requests; handlers see one operation.
    """

    opcode: FuseOpcode
    nodeid: int
    args: dict = field(default_factory=dict)
    payload: bytes = b""
    unique: int = field(default_factory=lambda: next(_unique_counter))
    coalesced: int = 1

    @property
    def payload_size(self) -> int:
        """Bytes of data attached to the request."""
        return len(self.payload)


@dataclass(slots=True)
class FuseReply:
    """One reply returned by the userspace server."""

    unique: int
    error: int = 0                     # negated errno, 0 on success
    attr: FuseAttr | None = None
    nodeid: int | None = None
    data: bytes = b""
    entries: list[tuple[str, int, int]] = field(default_factory=list)
    names: list[str] = field(default_factory=list)
    statfs: object | None = None
    target: str = ""
    size: int = 0

    @property
    def ok(self) -> bool:
        """True when the server completed the request successfully."""
        return self.error == 0

    @property
    def data_size(self) -> int:
        """Bytes of data attached to the reply."""
        return len(self.data) if self.data else self.size
