"""Simulated FUSE (Filesystem in Userspace) subsystem.

The package models the three parts of FUSE that the paper's CntrFS depends on:

* the wire protocol (:mod:`repro.fuse.protocol`): opcodes and request/reply
  structures exchanged over ``/dev/fuse``,
* the kernel-side driver (:mod:`repro.fuse.client`): a
  :class:`repro.fs.filesystem.Filesystem` that can be mounted in any mount
  namespace and forwards operations over a :class:`repro.fuse.device.FuseConnection`,
  implementing the caches and batching behaviours whose effect the paper
  evaluates (FOPEN_KEEP_CACHE, FUSE_WRITEBACK_CACHE, FUSE_PARALLEL_DIROPS,
  batched FORGET, FUSE_ASYNC_READ, splice),
* the userspace server loop (:mod:`repro.fuse.server`): the dispatch base
  class that CntrFS (:mod:`repro.core.cntrfs`) implements.
"""

from repro.fuse.protocol import FuseOpcode, FuseRequest, FuseReply, FuseAttr
from repro.fuse.options import FuseMountOptions
from repro.fuse.device import FuseConnection, FuseDeviceHandle, register_fuse_device
from repro.fuse.client import FuseClientFs
from repro.fuse.server import FuseServer

__all__ = [
    "FuseOpcode",
    "FuseRequest",
    "FuseReply",
    "FuseAttr",
    "FuseMountOptions",
    "FuseConnection",
    "FuseDeviceHandle",
    "register_fuse_device",
    "FuseClientFs",
    "FuseServer",
]
