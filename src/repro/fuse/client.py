"""The kernel-side FUSE driver, mountable as a regular filesystem.

``FuseClientFs`` is what the nested namespace in Cntr actually mounts as its
new root: a :class:`repro.fs.filesystem.Filesystem` whose every operation is
translated into FUSE requests on a :class:`repro.fuse.device.FuseConnection`.
It reproduces the kernel-side behaviours the paper's optimizations manipulate:

* dentry/attribute caches (cheap repeated lookups once resolved),
* the page cache, optionally retained across ``open()`` (``FOPEN_KEEP_CACHE``),
* the writeback cache that coalesces small writes into ``max_write``-sized
  WRITE requests (``FUSE_WRITEBACK_CACHE``),
* readahead-sized READ batching (``FUSE_ASYNC_READ``),
* serialized vs. parallel directory operations (``FUSE_PARALLEL_DIROPS``),
* batched FORGET requests,
* splice-based zero-copy transfer on the read and/or write path,
* per-request overhead growing slightly with the number of server threads
  (the effect measured in the paper's Figure 4),
* the uncached ``security.capability`` xattr lookup the kernel performs on
  every write, which the paper identifies as the source of the Apache and
  IOzone write overheads.

Inodes are *proxies*: their numbers equal the server-side nodeids and their
attributes mirror the last reply that mentioned them.
"""

from __future__ import annotations

import math

from repro.fs.constants import FallocateMode, FileMode, RenameFlags
from repro.fs.errors import FsError
from repro.fs.filesystem import Filesystem
from repro.fs.inode import (
    DeviceInode,
    DirectoryInode,
    FifoInode,
    FileData,
    Inode,
    RegularInode,
    SocketInode,
    SymlinkInode,
)
from repro.fs.pagecache import PageCache
from repro.fs.stat import StatVfs
from repro.fs.writeback import (
    WB_REASON_FSYNC,
    BacklogDeviceInfo,
    VmTunables,
    WritebackEngine,
)
from repro.fuse.device import FuseConnection
from repro.fuse.options import FuseMountOptions
from repro.fuse.protocol import FuseAttr, FuseOpcode, FuseReply, FuseRequest
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.trace import Tracer

#: Number of dropped nodeids accumulated before a BATCH_FORGET is emitted.
FORGET_BATCH_SIZE = 64


class FuseClientFs(Filesystem):
    """FUSE client filesystem forwarding operations to a userspace server."""

    fs_type = "fuse.cntrfs"
    #: O_DIRECT is unsupported because CntrFS chose mmap support instead
    #: (xfstests #391 analogue).
    supports_direct_io = False
    #: Inodes are not exportable by handle (xfstests #426 analogue).
    supports_export_handles = False
    #: ACLs are delegated to the backing filesystem, so chmod does not
    #: interpret them (xfstests #375 analogue).
    interprets_acls_on_chmod = False
    #: RLIMIT_FSIZE of the writing process is not enforced when operations are
    #: replayed by the server (xfstests #228 analogue).
    enforces_fsize_limit = False

    def __init__(self, name: str, clock: VirtualClock, costs: CostModel,
                 connection: FuseConnection, options: FuseMountOptions | None = None,
                 tracer: Tracer | None = None,
                 page_cache_bytes: int = 12 << 30,
                 writeback_tunables: VmTunables | None = None) -> None:
        super().__init__(name, clock, costs, tracer, capacity_bytes=1 << 50)
        self.connection = connection
        self.options = options or FuseMountOptions()
        self.page_cache = PageCache(max_bytes=page_cache_bytes, page_size=costs.page_size)
        self._entry_cache: dict[tuple[int, str], int] = {}
        self._attr_fresh: set[int] = set()
        #: The FUSE connection is this filesystem's "backing device"; its BDI
        #: shapes writeback flushes (and, with a read bandwidth, cache-miss
        #: fetches) when given a modelled bandwidth.  Its readahead window
        #: defaults to the mount's exact max_readahead and is retunable per
        #: device through /sys/class/bdi/<dev>/read_ahead_kb.
        self.bdi = BacklogDeviceInfo(
            f"{name}-fuse-conn",
            default_read_ahead_bytes=self.options.max_readahead)
        #: The unified writeback engine; the default background threshold is
        #: the seed's aggregation limit, so flush points are byte-identical.
        self.writeback = WritebackEngine(
            name,
            writeback_tunables or VmTunables(
                dirty_background_bytes=costs.writeback_batch_bytes),
            self._writeback_flush, clock=clock, bdi=self.bdi)
        self._pending_forgets: list[int] = []
        #: Crash pre-images: backing-file content captured before the first
        #: unflushed writeback write dirties an inode.  The eager WRITE
        #: forwarding below keeps the simulated data consistent, but those
        #: bytes are not durable until the dirty pages flush — on a client
        #: power-fail the server rewinds each still-dirty file to its shadow.
        self._crash_shadow: dict[int, FileData] = {}
        #: When True (the default, as in Linux) every write triggers an
        #: uncached security.capability xattr lookup round trip.
        self.xattr_lookup_on_write = True
        # Replace the root placeholder created by the base class with a proxy
        # whose nodeid follows the FUSE convention (1).
        self._send_init()

    # ------------------------------------------------------------ protocol I/O
    def _send_init(self) -> None:
        request = FuseRequest(FuseOpcode.INIT, nodeid=1,
                              args={"options": self.options})
        self.connection.attach_options = self.options
        # Negotiate the bounded background queue (max_background /
        # congestion_threshold); the default 0 leaves it unmodelled.
        self.connection.configure_queue(self.options.max_background,
                                        self.options.congestion_threshold)
        self.connection.request(request)
        self.connection.mark_mounted()
        # Fetch the real root attributes from the server.
        reply = self._send(FuseOpcode.GETATTR, 1, {})
        if reply.attr is not None:
            self._update_proxy(1, reply.attr)

    def _request_overhead(self, dirop: bool, payload: int, received: int) -> float:
        return self._batched_overhead(1, dirop, payload, received)

    def _batched_overhead(self, nreq: int, dirop: bool, payload: int,
                          received: int) -> float:
        """Protocol cost of ``nreq`` requests transferring ``payload`` /
        ``received`` bytes in total.

        This is the arithmetic (O(1)) form of charging ``_request_overhead``
        once per ``max_read``/``max_write``-sized chunk: the per-request fixed
        costs (queueing, small reply, dirop serialization, thread contention,
        splice pipe setup, splice header peek) scale with ``nreq``, the copy
        and splice byte costs are linear in the totals, so the sum is exact.
        """
        costs = self.costs
        options = self.options
        overhead = (costs.fuse_request_ns + costs.fuse_small_reply_ns) * nreq
        if dirop and not options.parallel_dirops:
            overhead += costs.fuse_request_ns * 1.5 * nreq
        if options.threads > 1:
            overhead += (costs.fuse_thread_contention_ns *
                         math.log2(options.threads) * nreq)
        if payload:
            if options.splice_write:
                # Splice writes need an extra context switch to peek the header.
                overhead += (costs.fuse_splice_setup_ns +
                             costs.context_switch_ns) * nreq
                overhead += costs.splice_per_byte_ns * payload
            else:
                overhead += costs.copy_cost(payload)
        if received:
            if options.splice_read:
                overhead += costs.fuse_splice_setup_ns * nreq
                overhead += costs.splice_per_byte_ns * received
            else:
                overhead += costs.copy_cost(received)
        return overhead

    def _send(self, opcode: FuseOpcode, nodeid: int, args: dict,
              payload: bytes = b"", payload_size: int | None = None,
              expected_reply_bytes: int = 0, dirop: bool = False) -> FuseReply:
        """Send one request, charging the protocol costs, and return the reply."""
        send_size = payload_size if payload_size is not None else len(payload)
        overhead = int(self._request_overhead(dirop, send_size, expected_reply_bytes))
        self.clock.advance(overhead)
        tracer = self.tracer
        if tracer.active:
            tracer.record(self.clock.now_ns, "fuse", opcode.name.lower(), overhead)
        request = FuseRequest(opcode, nodeid, args=args, payload=payload)
        reply = self.connection.request(request)
        if not reply.ok:
            raise FsError(reply.error)
        return reply

    def _send_batched(self, opcode: FuseOpcode, nodeid: int, args: dict, nreq: int,
                      payload: bytes = b"", expected_reply_bytes: int = 0,
                      dirop: bool = False) -> FuseReply:
        """Send one coalesced dispatch standing for ``nreq`` wire requests.

        The protocol costs of all ``nreq`` requests are charged arithmetically
        up front; the server handles the extent as a single operation but
        accounts ``nreq`` requests (see :class:`repro.fuse.protocol.FuseRequest`).

        Modelling choice: on an error reply the full batch has already been
        charged and counted, whereas a chunked loop stopped at the first
        failing wire request.  Error paths feed no figure, so the (cheaper)
        arithmetic form keeps its one-shot charge there.
        """
        overhead = int(self._batched_overhead(nreq, dirop, len(payload),
                                              expected_reply_bytes))
        self.clock.advance(overhead)
        tracer = self.tracer
        if tracer.active:
            tracer.record(self.clock.now_ns, "fuse", opcode.name.lower(),
                          overhead, detail=f"coalesced={nreq}")
        request = FuseRequest(opcode, nodeid, args=args, payload=payload,
                              coalesced=nreq)
        reply = self.connection.request(request)
        if not reply.ok:
            raise FsError(reply.error)
        return reply

    # ------------------------------------------------------------ proxy inodes
    def _update_proxy(self, nodeid: int, attr: FuseAttr,
                      parent_ino: int | None = None, symlink_target: str = "") -> Inode:
        ftype = attr.mode & FileMode.S_IFMT
        existing = self._inodes.get(nodeid)
        if existing is None or existing.file_type != ftype:
            if ftype == FileMode.S_IFDIR:
                inode = DirectoryInode(ino=nodeid, mode=attr.mode)
            elif ftype == FileMode.S_IFLNK:
                inode = SymlinkInode(ino=nodeid, mode=attr.mode, target=symlink_target)
            elif ftype in (FileMode.S_IFBLK, FileMode.S_IFCHR):
                inode = DeviceInode(ino=nodeid, mode=attr.mode)
            elif ftype == FileMode.S_IFIFO:
                inode = FifoInode(ino=nodeid, mode=attr.mode)
            elif ftype == FileMode.S_IFSOCK:
                inode = SocketInode(ino=nodeid, mode=attr.mode)
            else:
                inode = RegularInode(ino=nodeid, mode=attr.mode,
                                     data=FileData(store=False))
            inode.fs_name = self.name
            self._inodes[nodeid] = inode
        inode = self._inodes[nodeid]
        inode.mode = attr.mode
        inode.uid = attr.uid
        inode.gid = attr.gid
        inode.nlink = attr.nlink
        inode.rdev = attr.rdev
        inode.atime_ns = attr.atime_ns
        inode.mtime_ns = attr.mtime_ns
        inode.ctime_ns = attr.ctime_ns
        inode.generation = attr.generation
        if isinstance(inode, RegularInode):
            inode.data.truncate(attr.size)
        if isinstance(inode, SymlinkInode) and symlink_target:
            inode.target = symlink_target
        if isinstance(inode, DirectoryInode) and parent_ino is not None:
            inode.parent_ino = parent_ino
        self._attr_fresh.add(nodeid)
        return inode

    def iget(self, ino: int) -> Inode:
        inode = self._inodes.get(ino)
        if inode is not None:
            return inode
        # Unknown nodeid: ask the server (can happen after cache invalidation).
        reply = self._send(FuseOpcode.GETATTR, ino, {})
        if reply.attr is None:
            raise FsError.estale(f"nodeid {ino}")
        return self._update_proxy(ino, reply.attr)

    def _forget(self, nodeid: int) -> None:
        self._attr_fresh.discard(nodeid)
        if self.options.batch_forget:
            self._pending_forgets.append(nodeid)
            if len(self._pending_forgets) >= FORGET_BATCH_SIZE:
                self.flush_forgets()
        else:
            self.clock.advance(self.costs.fuse_forget_batch_ns)
            self.connection.request(FuseRequest(FuseOpcode.FORGET, nodeid, args={}))

    def flush_forgets(self) -> None:
        """Flush batched FORGET intents (on batch overflow and at unmount).

        However many nodeids accumulated, the cost is charged arithmetically
        per FORGET_BATCH_SIZE-sized batch and the whole set goes out as one
        coalesced BATCH_FORGET dispatch.
        """
        count = len(self._pending_forgets)
        if not count:
            return
        batches = math.ceil(count / FORGET_BATCH_SIZE)
        self.clock.advance(self.costs.fuse_forget_batch_ns * batches)
        self.connection.request(FuseRequest(
            FuseOpcode.BATCH_FORGET, 0,
            args={"nodeids": list(self._pending_forgets)}, coalesced=batches))
        self.connection.stats.forgets_batched += count
        self._pending_forgets.clear()

    def drop_caches(self, mode: int = 3) -> None:
        """``echo mode > /proc/sys/vm/drop_caches`` for this mount: 1 drops
        the page cache (flushing the writeback buffer first), 2 the dentry
        and attribute caches (the FUSE analogue of the slab caches)."""
        if mode & 1:
            self.flush_writeback()
            self.page_cache.invalidate_all()
        if mode & 2:
            self._entry_cache.clear()
            self._attr_fresh.clear()
            self.invalidate_dentries()

    # ------------------------------------------------------------ open hooks
    def on_open(self, ino: int, flags: int) -> None:
        """Called by the VFS when a file backed by this mount is opened."""
        self._send(FuseOpcode.OPEN, ino, {"flags": int(flags)})
        if not self.options.keep_cache:
            # Without FOPEN_KEEP_CACHE the kernel invalidates the inode's page
            # cache on every open, so the cache is never shared across opens.
            # Dirty pages are written back first (invalidate_inode_pages2
            # semantics): dropping them while their bytes still sat in the
            # writeback engine would make the next flush charge WRITE
            # requests for pages that no longer exist.
            if self.writeback.pending(ino):
                self.flush_writeback(ino)
            self.page_cache.invalidate(ino)

    def on_release(self, ino: int) -> None:
        """Called by the VFS when the last descriptor for an inode is closed."""
        if self.writeback.pending(ino):
            self.flush_writeback(ino)
        self.connection.request(FuseRequest(FuseOpcode.RELEASE, ino, args={}))

    # ------------------------------------------------------------ dir operations
    def charge_lookup_hit(self, dir_ino: int, name: str, ino: int) -> None:
        if ino in self._inodes and ino in self._attr_fresh:
            # Matches the entry-cache hit path below: half an in-kernel tmpfs op.
            self.clock.advance(int(self.costs.tmpfs_op_ns * 0.5))
        else:
            # Stale proxy attributes (e.g. after fallocate): the kernel
            # revalidates with a full LOOKUP round trip, as the entry-cache
            # miss path always did.
            self.lookup(dir_ino, name)

    def lookup(self, dir_ino: int, name: str) -> Inode:
        cached = self._entry_cache.get((dir_ino, name))
        if cached is not None and cached in self._inodes and cached in self._attr_fresh:
            # Dentry-cache hit: no round trip, only the in-kernel cost.
            self.clock.advance(int(self.costs.tmpfs_op_ns * 0.5))
            return self._inodes[cached]
        reply = self._send(FuseOpcode.LOOKUP, dir_ino, {"name": name}, dirop=True)
        if reply.attr is None or reply.nodeid is None:
            raise FsError.enoent(name)
        inode = self._update_proxy(reply.nodeid, reply.attr, parent_ino=dir_ino,
                                   symlink_target=reply.target)
        self._entry_cache[(dir_ino, name)] = reply.nodeid
        return inode

    def create(self, dir_ino: int, name: str, mode: int, uid: int = 0,
               gid: int = 0) -> RegularInode:
        reply = self._send(FuseOpcode.CREATE, dir_ino,
                           {"name": name, "mode": mode, "uid": uid, "gid": gid},
                           dirop=True)
        inode = self._update_proxy(reply.nodeid, reply.attr, parent_ino=dir_ino)
        self._entry_cache[(dir_ino, name)] = reply.nodeid
        assert isinstance(inode, RegularInode)
        return inode

    def mkdir(self, dir_ino: int, name: str, mode: int, uid: int = 0,
              gid: int = 0) -> DirectoryInode:
        reply = self._send(FuseOpcode.MKDIR, dir_ino,
                           {"name": name, "mode": mode, "uid": uid, "gid": gid},
                           dirop=True)
        inode = self._update_proxy(reply.nodeid, reply.attr, parent_ino=dir_ino)
        self._entry_cache[(dir_ino, name)] = reply.nodeid
        assert isinstance(inode, DirectoryInode)
        return inode

    def symlink(self, dir_ino: int, name: str, target: str, uid: int = 0,
                gid: int = 0) -> SymlinkInode:
        reply = self._send(FuseOpcode.SYMLINK, dir_ino,
                           {"name": name, "target": target, "uid": uid, "gid": gid},
                           dirop=True)
        inode = self._update_proxy(reply.nodeid, reply.attr, parent_ino=dir_ino,
                                   symlink_target=target)
        self._entry_cache[(dir_ino, name)] = reply.nodeid
        assert isinstance(inode, SymlinkInode)
        return inode

    def mknod(self, dir_ino: int, name: str, mode: int, rdev: int = 0,
              uid: int = 0, gid: int = 0) -> Inode:
        reply = self._send(FuseOpcode.MKNOD, dir_ino,
                           {"name": name, "mode": mode, "rdev": rdev,
                            "uid": uid, "gid": gid}, dirop=True)
        inode = self._update_proxy(reply.nodeid, reply.attr, parent_ino=dir_ino)
        self._entry_cache[(dir_ino, name)] = reply.nodeid
        return inode

    def link(self, dir_ino: int, name: str, target_ino: int) -> Inode:
        reply = self._send(FuseOpcode.LINK, dir_ino,
                           {"name": name, "target": target_ino}, dirop=True)
        inode = self._update_proxy(reply.nodeid, reply.attr)
        self._entry_cache[(dir_ino, name)] = reply.nodeid
        return inode

    def unlink(self, dir_ino: int, name: str) -> None:
        self._send(FuseOpcode.UNLINK, dir_ino, {"name": name}, dirop=True)
        self.invalidate_dentries()
        nodeid = self._entry_cache.pop((dir_ino, name), None)
        if nodeid is not None:
            self._forget(nodeid)

    def rmdir(self, dir_ino: int, name: str) -> None:
        self._send(FuseOpcode.RMDIR, dir_ino, {"name": name}, dirop=True)
        self.invalidate_dentries()
        nodeid = self._entry_cache.pop((dir_ino, name), None)
        if nodeid is not None:
            self._forget(nodeid)

    def rename(self, old_dir: int, old_name: str, new_dir: int, new_name: str,
               flags: int = 0) -> None:
        self._send(FuseOpcode.RENAME2 if flags else FuseOpcode.RENAME, old_dir,
                   {"old_name": old_name, "new_dir": new_dir,
                    "new_name": new_name, "flags": flags}, dirop=True)
        self.invalidate_dentries()
        nodeid = self._entry_cache.pop((old_dir, old_name), None)
        overwritten = self._entry_cache.pop((new_dir, new_name), None)
        if overwritten is not None and overwritten != nodeid \
                and not (flags & RenameFlags.RENAME_EXCHANGE):
            # Rename over an existing entry: the replaced inode's proxy
            # attributes (nlink above all) are stale now, and the kernel
            # drops its dentry reference exactly as unlink does.  An open
            # descriptor keeps the inode readable through its nodeid.
            self._forget(overwritten)
        if nodeid is not None:
            self._entry_cache[(new_dir, new_name)] = nodeid
            inode = self._inodes.get(nodeid)
            if isinstance(inode, DirectoryInode):
                inode.parent_ino = new_dir

    def readdir(self, dir_ino: int) -> list[tuple[str, int, int]]:
        self._send(FuseOpcode.OPENDIR, dir_ino, {})
        reply = self._send(FuseOpcode.READDIR, dir_ino, {},
                           expected_reply_bytes=4096, dirop=True)
        self.connection.request(FuseRequest(FuseOpcode.RELEASEDIR, dir_ino, args={}))
        entries = [(".", dir_ino, int(FileMode.S_IFDIR)),
                   ("..", dir_ino, int(FileMode.S_IFDIR))]
        entries.extend(reply.entries)
        return entries

    def readlink(self, ino: int) -> str:
        inode = self._inodes.get(ino)
        if isinstance(inode, SymlinkInode) and inode.target:
            self.clock.advance(int(self.costs.tmpfs_op_ns * 0.5))
            return inode.target
        reply = self._send(FuseOpcode.READLINK, ino, {}, expected_reply_bytes=256)
        return reply.target

    # ------------------------------------------------------------ data I/O
    def read(self, ino: int, offset: int, size: int) -> bytes:
        inode = self.iget(ino)
        if not isinstance(inode, RegularInode):
            raise FsError.einval(f"nodeid {ino} has no data")
        size = max(0, min(size, inode.size - offset))
        if size == 0:
            self.clock.advance(self.costs.syscall_ns)
            return b""
        if self.options.direct_io:
            hits, misses_bytes = 0, size
        else:
            hits, misses = self.page_cache.access(ino, offset, size)
            misses_bytes = misses * self.costs.page_size
            if hits:
                self.clock.advance(int(self.costs.page_cache_hit_per_byte_ns *
                                       hits * self.costs.page_size))
        if misses_bytes or self.options.direct_io:
            # Readahead: with FUSE_ASYNC_READ the kernel issues large
            # readahead-window requests, so subsequent sequential reads hit
            # the page cache instead of paying one round trip per call.  The
            # window is the device's (/sys/class/bdi read_ahead_kb, falling
            # back to the mount's max_readahead); 0 disables readahead.
            readahead = self.bdi.read_ahead_bytes
            if self.options.async_read and not self.options.direct_io \
                    and readahead > 0:
                fetch_size = max(size, readahead)
                fetch_size = min(fetch_size, max(0, inode.size - offset))
                granule = readahead
            else:
                fetch_size = size
                granule = 4 * self.costs.page_size
            self.page_cache.access(ino, offset, fetch_size)
            # The whole fetch extent goes out as one coalesced dispatch whose
            # request count and transfer costs are computed arithmetically
            # (ceil-div by the request granule) instead of looping per chunk.
            # The granule travels with the request so the server charges its
            # backing filesystem per wire request, exactly as a chunked
            # dispatch loop would have.
            nreq = max(1, -(-fetch_size // granule))
            if self.options.async_read and not self.options.direct_io \
                    and readahead > 0:
                # Readahead requests ride the kernel's background queue; a
                # window larger than max_background congests the submitter.
                self.connection.submit_background(nreq)
            reply = self._send_batched(FuseOpcode.READ, ino,
                                       {"offset": offset, "size": fetch_size,
                                        "granule": granule},
                                       nreq, expected_reply_bytes=fetch_size)
            # Read-side BDI shaping: the wire fetch pays bytes/bandwidth on
            # top of the protocol costs (0 = unshaped, the default).
            self.bdi.charge_read(self.clock, fetch_size)
            return bytes(reply.data[:size])
        # Full page-cache hit: fetch the bytes from the server without
        # charging a round trip (the data is already resident in the kernel;
        # the fetch below is only for simulation correctness).
        reply = self.connection.request(
            FuseRequest(FuseOpcode.READ, ino, args={"offset": offset, "size": size,
                                                    "cache_fill": True}))
        if not reply.ok:
            # Fall back to a real round trip if the cheap path failed.
            reply = self._send(FuseOpcode.READ, ino,
                               {"offset": offset, "size": size},
                               expected_reply_bytes=size)
        return reply.data

    def write(self, ino: int, offset: int, data: bytes) -> int:
        inode = self.iget(ino)
        if not isinstance(inode, RegularInode):
            raise FsError.einval(f"nodeid {ino} has no data")
        size = len(data)
        if self.xattr_lookup_on_write:
            # The kernel checks security.capability before every write and the
            # FUSE protocol offers no way to cache the (missing) attribute.
            # The probe is cheaper than a full data request (tiny negative
            # reply), so it is charged at a fraction of the base request cost.
            self.clock.advance(int(self.costs.fuse_request_ns * 0.4))
            self.connection.request(FuseRequest(
                FuseOpcode.GETXATTR, ino, args={"name": "security.capability"}))
        if self.options.writeback_cache:
            self._capture_crash_shadow(ino)
            self.page_cache.write(ino, offset, size)
            self.clock.advance(int(self.costs.page_cache_hit_per_byte_ns * size))
            # Data still has to reach the server for correctness; the request
            # below carries no protocol cost because the writeback flush
            # accounts for it in aggregated form.
            self.connection.request(FuseRequest(
                FuseOpcode.WRITE, ino,
                args={"offset": offset, "size": size, "writeback": True},
                payload=bytes(data)))
            # The engine accounts the dirty bytes and runs the simulated
            # flusher threads against the vm.dirty_* thresholds; only then
            # may memory pressure react (reclaim must find the pending
            # counters so it can flush-before-drop).
            self.writeback.note_dirty(ino, size)
            self.page_cache.balance_pressure()
        elif size:
            # Synchronous writes: one coalesced dispatch per extent, with the
            # max_write-sized request count computed by ceil-div; the granule
            # lets the server charge its backing store per wire request.
            nreq = -(-size // self.options.max_write)
            self._send_batched(FuseOpcode.WRITE, ino,
                               {"offset": offset, "size": size,
                                "granule": self.options.max_write}, nreq,
                               payload=bytes(data))
            self.page_cache.write(ino, offset, size)
            self.page_cache.balance_pressure()
        inode.data.truncate(max(inode.size, offset + size))
        inode.mtime_ns = self.clock.now_ns
        return size

    def flush_writeback(self, ino: int | None = None) -> int:
        """Flush the writeback buffer, charging the aggregated WRITE requests."""
        return self.writeback.flush(ino)

    def _writeback_flush(self, items: list[tuple[int, int]], reason: str) -> None:
        """Writeback price of this filesystem, paid when the engine flushes.

        The aggregated flush is charged arithmetically: ceil-div each inode's
        pending bytes by max_write for the request count, then one linear
        transfer cost for the whole extent.
        """
        for node, pending in items:
            requests = max(1, math.ceil(pending / self.options.max_write))
            # The flusher queues the whole inode batch on the background
            # list before any of it is serviced; admission may stall on the
            # congestion threshold.
            self.connection.submit_background(requests)
            self.clock.advance(int(self._batched_overhead(requests, False, pending, 0)))
            self.clock.advance(self.costs.fuse_writeback_flush_ns)
            self.page_cache.clean(node)
            # The flushed bytes are on the server now: the inode's data would
            # survive a client crash, so its pre-image shadow is retired.
            self._crash_shadow.pop(node, None)

    def _drop_pagecache_range(self, ino: int, start_page: int,
                              end_page: int | None = None) -> int:
        """Invalidate a page range, keeping the writeback engine in lockstep.

        Pages dropped here disappear *without* writeback (Linux semantics for
        truncated / hole-punched data), so once an inode has no dirty pages
        left its pending bytes are discarded rather than charged later.
        While dirty pages remain, the pending bytes stay: the eventual flush
        cleans and pays for them.
        """
        dropped = self.page_cache.invalidate_range(ino, start_page, end_page)
        if dropped and self.page_cache.dirty_page_count(ino) == 0:
            self.writeback.discard(ino)
            # Every formerly-dirty page was truncated or punched away, and
            # those same extents were zeroed synchronously on the server —
            # nothing volatile distinguishes the live file from its shadow.
            self._crash_shadow.pop(ino, None)
        return dropped

    def truncate(self, ino: int, size: int) -> None:
        reply = self._send(FuseOpcode.SETATTR, ino, {"size": size})
        if reply.attr is not None:
            self._update_proxy(ino, reply.attr)
        self._shadow_truncate(ino, size)
        self._truncate_pagecache(ino, size)

    def _truncate_pagecache(self, ino: int, size: int) -> None:
        """Linux ``truncate_pagecache``: only pages wholly beyond the new EOF
        are dropped (the partial page at EOF stays resident, zeroed by the
        server); extending a file drops nothing."""
        first_dropped = -(-size // self.costs.page_size)
        self._drop_pagecache_range(ino, first_dropped)

    def fallocate(self, ino: int, mode: int, offset: int, length: int) -> None:
        self._send(FuseOpcode.FALLOCATE, ino,
                   {"mode": mode, "offset": offset, "length": length})
        self._attr_fresh.discard(ino)
        shadow = self._crash_shadow.get(ino)
        if shadow is not None:
            # The server applied this synchronously; a crash must not undo it.
            if mode & FallocateMode.PUNCH_HOLE:
                shadow.punch_hole(offset, length)
            elif not mode & FallocateMode.KEEP_SIZE:
                shadow.truncate(max(len(shadow), offset + length))
        if mode & FallocateMode.PUNCH_HOLE:
            # Linux truncate_pagecache_range: pages wholly inside the hole
            # are dropped, so reads of the hole are not page-cache hits; the
            # partial pages at the edges stay (the server zeroes them).
            page = self.costs.page_size
            first = -(-offset // page)
            last = (offset + length) // page
            self._drop_pagecache_range(ino, first, last)

    def fsync(self, ino: int, datasync: bool = False) -> None:
        self.writeback.flush(ino, reason=WB_REASON_FSYNC)
        self._send(FuseOpcode.FSYNC, ino, {"datasync": datasync})

    def sync(self) -> None:
        self.flush_writeback()
        self._send(FuseOpcode.FSYNC, 1, {"datasync": False})

    # ------------------------------------------------------------ crash model
    def _capture_crash_shadow(self, ino: int) -> None:
        """Snapshot the backing file before its first unflushed dirtying.

        Pure bookkeeping: the snapshot travels outside the FUSE protocol and
        charges nothing, so the clean-path cost profile is untouched.
        """
        if ino in self._crash_shadow:
            return
        server = getattr(self.connection, "server", None)
        snapshot_of = getattr(server, "crash_snapshot", None)
        if snapshot_of is None:
            return
        shadow = snapshot_of(ino)
        if shadow is not None:
            self._crash_shadow[ino] = shadow

    def _shadow_truncate(self, ino: int, size: int) -> None:
        """Mirror a synchronous (hence durable) truncate onto the pre-image."""
        shadow = self._crash_shadow.get(ino)
        if shadow is not None:
            shadow.truncate(size)

    def crash(self) -> None:
        """Power-fail the client mount: the writeback cache's loss window.

        Metadata operations (create, rename, truncate, xattrs, ...) reached
        the server synchronously and survive.  Data written through the
        writeback cache was forwarded eagerly only to keep the simulated
        bytes consistent — until the dirty pages flush it is *not* durable,
        so every still-dirty backing file is rewound to its pre-image shadow.
        All client-side caches (pages, dentries, attributes, proxy inodes)
        die with the kernel, and the flusher timer is disarmed.
        """
        server = getattr(self.connection, "server", None)
        restore = getattr(server, "crash_restore", None)
        if restore is not None:
            for nodeid, shadow in self._crash_shadow.items():
                restore(nodeid, shadow)
        self._crash_shadow.clear()
        self.page_cache.invalidate_all()
        self.writeback.crash_discard()
        self._entry_cache.clear()
        self._attr_fresh.clear()
        self._pending_forgets.clear()
        # Proxy inodes are kernel memory; remount re-fetches them on demand.
        self._inodes.clear()
        super().crash()

    def remount(self) -> None:
        """Reconnect after :meth:`crash`: refresh the root, re-arm writeback."""
        reply = self._send(FuseOpcode.GETATTR, 1, {})
        if reply.attr is not None:
            self._update_proxy(1, reply.attr)
        self.writeback.retune()
        super().remount()

    # ------------------------------------------------------------ attributes
    def getattr(self, ino: int):
        if ino in self._attr_fresh and ino in self._inodes:
            self.clock.advance(int(self.costs.tmpfs_op_ns * 0.5))
            return self._inodes[ino].stat(st_dev=self.fs_id)
        reply = self._send(FuseOpcode.GETATTR, ino, {})
        inode = self._update_proxy(ino, reply.attr)
        return inode.stat(st_dev=self.fs_id)

    def setattr(self, ino: int, *, mode: int | None = None, uid: int | None = None,
                gid: int | None = None, size: int | None = None,
                atime_ns: int | None = None, mtime_ns: int | None = None) -> None:
        reply = self._send(FuseOpcode.SETATTR, ino,
                           {"mode": mode, "uid": uid, "gid": gid, "size": size,
                            "atime_ns": atime_ns, "mtime_ns": mtime_ns})
        if reply.attr is not None:
            self._update_proxy(ino, reply.attr)
        if size is not None:
            self._shadow_truncate(ino, size)
            self._truncate_pagecache(ino, size)

    # ------------------------------------------------------------ xattrs
    def setxattr(self, ino: int, name: str, value: bytes, flags: int = 0) -> None:
        self._send(FuseOpcode.SETXATTR, ino, {"name": name, "flags": flags},
                   payload=bytes(value))

    def getxattr(self, ino: int, name: str) -> bytes:
        reply = self._send(FuseOpcode.GETXATTR, ino, {"name": name},
                           expected_reply_bytes=256)
        return reply.data

    def listxattr(self, ino: int) -> list[str]:
        reply = self._send(FuseOpcode.LISTXATTR, ino, {}, expected_reply_bytes=256)
        return reply.names

    def removexattr(self, ino: int, name: str) -> None:
        self._send(FuseOpcode.REMOVEXATTR, ino, {"name": name})

    # ------------------------------------------------------------ misc
    def statfs(self) -> StatVfs:
        reply = self._send(FuseOpcode.STATFS, 1, {})
        if reply.statfs is not None:
            return reply.statfs
        return super().statfs()

    def fsync_connection_stats(self):
        """Connection statistics (request counts), for tests and reports."""
        return self.connection.stats
