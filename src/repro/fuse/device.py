"""``/dev/fuse`` and the kernel<->userspace FUSE connection.

In the real system the CntrFS process opens ``/dev/fuse``, passes the file
descriptor to ``mount(2)`` and then reads requests from it in a worker-thread
loop.  The simulation preserves that structure: opening the device produces a
:class:`FuseDeviceHandle` holding a :class:`FuseConnection`; the client
filesystem pushes :class:`~repro.fuse.protocol.FuseRequest` objects into the
connection and the attached server handles them.  Because the simulation is
single-threaded the round trip happens synchronously, but every request still
pays the queueing/context-switch costs of the real protocol, which is what the
paper's performance numbers are made of.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.fs.errors import FsError
from repro.fuse.protocol import (NO_REPLY_OPCODES, OPCODE_NAME, FuseReply,
                                 FuseRequest)
from repro.kernel.objects import KernelObject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fuse.server import FuseServer
    from repro.kernel.kernel import Kernel

_connection_counter = itertools.count(1)


@dataclass
class FuseConnectionStats:
    """Per-connection request accounting (used by tests and benchmark reports)."""

    requests_total: int = 0
    requests_by_opcode: dict[str, int] = field(default_factory=dict)
    bytes_to_server: int = 0
    bytes_from_server: int = 0
    errors: int = 0
    forgets_batched: int = 0

    def record(self, request: FuseRequest, reply: FuseReply | None) -> None:
        """Record one round trip (a coalesced dispatch counts all its requests)."""
        self.requests_total += request.coalesced
        name = OPCODE_NAME[request.opcode]
        self.requests_by_opcode[name] = \
            self.requests_by_opcode.get(name, 0) + request.coalesced
        self.bytes_to_server += request.payload_size
        if reply is not None:
            self.bytes_from_server += reply.data_size
            if not reply.ok:
                self.errors += 1


@dataclass
class FuseQueueStats:
    """Accounting for the bounded ``/dev/fuse`` background queue."""

    queued_total: int = 0          # background requests that entered the queue
    drained_total: int = 0         # requests retired by server worker loops
    max_depth: int = 0             # high watermark of the backlog
    congestion_waits: int = 0      # submissions that blocked on the threshold
    congestion_wait_ns: int = 0    # virtual time writers spent blocked


class FuseConnection:
    """A kernel<->server FUSE session.

    When the mount negotiates ``max_background`` > 0, the connection models
    the kernel's bounded background queue for *asynchronous* request bursts
    (readahead READ batches, writeback WRITE flushes — the request classes
    the real ``fuse_conn->max_background`` governs).  A burst enters the
    queue all at once via :meth:`submit_background`; the server's worker
    loops retire one queued request per ``fuse_request_ns`` each, draining
    the backlog against virtual time between bursts; and a submitter whose
    burst pushes the backlog past ``max_background`` blocks — charging
    virtual time — until the loops drain it back to
    ``congestion_threshold``, exactly the writer stall
    ``fuse_set_congested`` produces.  With the default ``max_background`` =
    0 the queue is unmodelled and the request path is byte-identical to the
    historical synchronous round trip.
    """

    def __init__(self, kernel: "Kernel") -> None:
        self.connection_id = next(_connection_counter)
        self.kernel = kernel
        self.server: "FuseServer | None" = None
        self.mounted = False
        self.aborted = False
        self.stats = FuseConnectionStats()
        self.max_background = 0
        self.congestion_threshold = 0
        self.queue_stats = FuseQueueStats()
        self._backlog = 0
        self._last_drain_ns = 0

    def attach_server(self, server: "FuseServer") -> None:
        """Attach the userspace server that will handle requests."""
        self.server = server

    def configure_queue(self, max_background: int,
                        congestion_threshold: int = 0) -> None:
        """Negotiate the background-queue bounds (INIT time).

        ``congestion_threshold`` 0 derives the Linux default of 3/4 of
        ``max_background``.
        """
        self.max_background = max(0, max_background)
        if self.max_background and not congestion_threshold:
            congestion_threshold = max(1, self.max_background * 3 // 4)
        self.congestion_threshold = min(congestion_threshold,
                                        self.max_background)
        self._last_drain_ns = self.kernel.clock.now_ns

    def submit_background(self, count: int) -> None:
        """Admit one async burst of ``count`` wire requests to the queue.

        Called by the client filesystem where the kernel queues background
        requests: once per readahead READ batch and once per inode batch of
        a writeback flush.  May charge the submitter a congestion stall.
        """
        if not self.max_background or count <= 0:
            return
        workers = self.server.threads if self.server is not None else 1
        service_ns = self.kernel.costs.fuse_request_ns
        now = self.kernel.clock.now_ns
        # The worker loops ran concurrently since the last burst, each
        # retiring one queued request per service interval.
        capacity = (now - self._last_drain_ns) * workers // service_ns
        drained = min(self._backlog, capacity)
        self._backlog -= drained
        self.queue_stats.drained_total += drained
        self._last_drain_ns = now
        self._backlog += count
        self.queue_stats.queued_total += count
        if self._backlog > self.queue_stats.max_depth:
            self.queue_stats.max_depth = self._backlog
        if self._backlog > self.max_background:
            # The submitter blocks until the workers drain the backlog to
            # the congestion threshold: one service interval per round of
            # ``workers`` retirements.
            excess = self._backlog - self.congestion_threshold
            rounds = -(-excess // workers)
            stall_ns = rounds * service_ns
            self.queue_stats.congestion_waits += 1
            self.queue_stats.congestion_wait_ns += stall_ns
            self.queue_stats.drained_total += excess
            self._backlog = self.congestion_threshold
            self.kernel.clock.advance(stall_ns)
            self._last_drain_ns = self.kernel.clock.now_ns
            psi = getattr(self.kernel, "psi", None)
            if psi is not None:
                # The submitter sat out the drain: I/O pressure for exactly
                # the ``congestion_wait_ns`` increment, attributed to the
                # current process's cgroup chain.
                psi.account("io", stall_ns)

    def mark_mounted(self) -> None:
        """Called by the client filesystem once it is mounted in a namespace."""
        self.mounted = True

    def abort(self) -> None:
        """Abort the connection (``umount -f`` / server crash)."""
        self.aborted = True
        self.mounted = False

    def request(self, request: FuseRequest) -> FuseReply:
        """Send one request to the server and return its reply.

        The caller (the kernel-side client filesystem) is responsible for
        charging the protocol costs; the server charges whatever its backing
        filesystem operations cost while handling the request.
        """
        if self.aborted:
            raise FsError(107, msg="FUSE connection aborted")  # ENOTCONN
        if self.server is None:
            raise FsError.enotconn("no FUSE server attached")
        tracer = self.kernel.tracer
        if tracer is not None and tracer.active:
            tracer.emit(self.kernel.clock.now_ns, "fuse.dispatch",
                        opcode=OPCODE_NAME[request.opcode],
                        coalesced=request.coalesced)
        reply = self.server.handle(request)
        if request.opcode in NO_REPLY_OPCODES:
            self.stats.record(request, None)
            return FuseReply(unique=request.unique)
        self.stats.record(request, reply)
        return reply


class FuseDeviceHandle(KernelObject):
    """The object a process gets back from opening ``/dev/fuse``."""

    def __init__(self, kernel: "Kernel") -> None:
        super().__init__()
        self.connection = FuseConnection(kernel)

    def read(self, size: int) -> bytes:
        # The real device blocks until a request arrives; the simulated
        # request flow is synchronous so there is never anything to read here.
        raise FsError.eagain("no pending FUSE requests (synchronous simulation)")

    def write(self, data: bytes) -> int:
        raise FsError.einval("raw FUSE replies are not modelled; use FuseServer")

    def poll(self) -> set[str]:
        return {"out"}

    def close(self) -> None:
        super().close()
        if not self.connection.mounted:
            self.connection.abort()


class _FuseDeviceFactory:
    """Picklable factory bound to one kernel (a lambda here would make the
    whole kernel graph unpicklable, and kernel snapshots pickle it)."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel

    def __call__(self) -> "FuseDeviceHandle":
        return FuseDeviceHandle(self.kernel)


def register_fuse_device(kernel: "Kernel") -> None:
    """Install the ``/dev/fuse`` driver into a kernel."""
    from repro.kernel.kernel import DEV_FUSE_RDEV

    kernel.register_device(DEV_FUSE_RDEV, _FuseDeviceFactory(kernel))
