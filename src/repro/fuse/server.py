"""FUSE userspace server base class.

:class:`FuseServer` implements the dispatch loop and the error handling;
concrete servers (CntrFS in :mod:`repro.core.cntrfs`, the passthrough server
used by the unit tests) implement the per-opcode handlers.  The server runs
"in" a particular process (on the host or inside the fat container) — the
process's mount namespace and credentials determine what the server can see,
which is the mechanism Cntr uses to export the fat container's files.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fs.errors import FsError
from repro.fuse.protocol import (OPCODE_NAME, FuseAttr, FuseOpcode, FuseReply,
                                 FuseRequest)


@dataclass
class FuseServerStats:
    """Server-side accounting."""

    handled: int = 0
    errors: int = 0
    by_opcode: dict[str, int] = field(default_factory=dict)
    #: Requests picked up by each worker loop (index = worker id).  The
    #: dispatch below hands requests to workers round-robin — the
    #: deterministic stand-in for N threads blocking on ``/dev/fuse`` reads —
    #: so the per-worker counts stay balanced like a real multi-queue server.
    per_worker: list = field(default_factory=list)


class FuseServer:
    """Base class for userspace FUSE servers.

    ``threads`` models the worker loops a real server runs over ``/dev/fuse``:
    each dispatch is attributed to the next loop round-robin (``per_worker``
    stats), the client charges the per-request thread-contention cost for
    ``threads`` > 1, and the connection's background queue drains ``threads``
    requests per submission interval — so the thread count shows up in
    queueing delay, exactly the axis the paper's Figure 4 sweeps.
    """

    def __init__(self, threads: int = 4) -> None:
        self.threads = max(1, threads)
        self.stats = FuseServerStats()
        self.stats.per_worker = [0] * self.threads
        self._next_worker = 0
        self._handlers = {
            FuseOpcode.LOOKUP: self.op_lookup,
            FuseOpcode.FORGET: self.op_forget,
            FuseOpcode.BATCH_FORGET: self.op_batch_forget,
            FuseOpcode.GETATTR: self.op_getattr,
            FuseOpcode.SETATTR: self.op_setattr,
            FuseOpcode.READLINK: self.op_readlink,
            FuseOpcode.SYMLINK: self.op_symlink,
            FuseOpcode.MKNOD: self.op_mknod,
            FuseOpcode.MKDIR: self.op_mkdir,
            FuseOpcode.UNLINK: self.op_unlink,
            FuseOpcode.RMDIR: self.op_rmdir,
            FuseOpcode.RENAME: self.op_rename,
            FuseOpcode.RENAME2: self.op_rename,
            FuseOpcode.LINK: self.op_link,
            FuseOpcode.OPEN: self.op_open,
            FuseOpcode.READ: self.op_read,
            FuseOpcode.WRITE: self.op_write,
            FuseOpcode.STATFS: self.op_statfs,
            FuseOpcode.RELEASE: self.op_release,
            FuseOpcode.FSYNC: self.op_fsync,
            FuseOpcode.FSYNCDIR: self.op_fsync,
            FuseOpcode.FLUSH: self.op_flush,
            FuseOpcode.SETXATTR: self.op_setxattr,
            FuseOpcode.GETXATTR: self.op_getxattr,
            FuseOpcode.LISTXATTR: self.op_listxattr,
            FuseOpcode.REMOVEXATTR: self.op_removexattr,
            FuseOpcode.OPENDIR: self.op_opendir,
            FuseOpcode.READDIR: self.op_readdir,
            FuseOpcode.READDIRPLUS: self.op_readdir,
            FuseOpcode.RELEASEDIR: self.op_release,
            FuseOpcode.ACCESS: self.op_access,
            FuseOpcode.CREATE: self.op_create,
            FuseOpcode.FALLOCATE: self.op_fallocate,
            FuseOpcode.GETLK: self.op_getlk,
            FuseOpcode.SETLK: self.op_setlk,
            FuseOpcode.LSEEK: self.op_lseek,
            FuseOpcode.INIT: self.op_init,
            FuseOpcode.DESTROY: self.op_destroy,
        }

    # --------------------------------------------------------------- dispatch
    def handle(self, request: FuseRequest) -> FuseReply:
        """Dispatch one request to its handler, mapping FsError to an errno reply.

        A coalesced dispatch (``request.coalesced > 1``) stands for a batch of
        identical wire requests over one extent; it is handled once but
        accounted at its full request count, so server-side statistics remain
        comparable with a per-request dispatch loop.
        """
        handler = self._handlers.get(request.opcode)
        self.stats.handled += request.coalesced
        self.stats.per_worker[self._next_worker] += request.coalesced
        self._next_worker = (self._next_worker + 1) % self.threads
        name = OPCODE_NAME[request.opcode]
        self.stats.by_opcode[name] = \
            self.stats.by_opcode.get(name, 0) + request.coalesced
        if handler is None:
            self.stats.errors += 1
            return FuseReply(unique=request.unique, error=38)  # ENOSYS
        try:
            reply = handler(request)
            if reply is None:
                reply = FuseReply(unique=request.unique)
            reply.unique = request.unique
            return reply
        except FsError as exc:
            self.stats.errors += 1
            return FuseReply(unique=request.unique, error=exc.errno or 5)

    @staticmethod
    def attr_from_stat(st) -> FuseAttr:
        """Convert a :class:`repro.fs.stat.FileStat` to a FUSE attribute block."""
        return FuseAttr(ino=st.st_ino, mode=st.st_mode, nlink=st.st_nlink,
                        uid=st.st_uid, gid=st.st_gid, rdev=st.st_rdev,
                        size=st.st_size, atime_ns=st.st_atime_ns,
                        mtime_ns=st.st_mtime_ns, ctime_ns=st.st_ctime_ns)

    # --------------------------------------------------------------- handlers
    # Subclasses override these; the defaults return ENOSYS.
    def _enosys(self, request: FuseRequest) -> FuseReply:
        return FuseReply(unique=request.unique, error=38)

    def op_init(self, request: FuseRequest) -> FuseReply:
        """INIT: negotiate protocol features; default accepts everything."""
        return FuseReply(unique=request.unique)

    def op_destroy(self, request: FuseRequest) -> FuseReply:
        """DESTROY: the filesystem is being unmounted."""
        return FuseReply(unique=request.unique)

    def op_forget(self, request: FuseRequest) -> FuseReply:
        """FORGET: the kernel dropped a reference to a nodeid (no reply)."""
        return FuseReply(unique=request.unique)

    def op_batch_forget(self, request: FuseRequest) -> FuseReply:
        """BATCH_FORGET: forget many nodeids at once (no reply)."""
        return FuseReply(unique=request.unique)

    def op_lookup(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_getattr(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_setattr(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_readlink(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_symlink(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_mknod(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_mkdir(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_unlink(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_rmdir(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_rename(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_link(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_open(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_opendir(self, request: FuseRequest) -> FuseReply:
        return FuseReply(unique=request.unique)

    def op_read(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_write(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_statfs(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_release(self, request: FuseRequest) -> FuseReply:
        return FuseReply(unique=request.unique)

    def op_fsync(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_flush(self, request: FuseRequest) -> FuseReply:
        return FuseReply(unique=request.unique)

    def op_setxattr(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_getxattr(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_listxattr(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_removexattr(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_readdir(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_access(self, request: FuseRequest) -> FuseReply:
        return FuseReply(unique=request.unique)

    def op_create(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_fallocate(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_getlk(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_setlk(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)

    def op_lseek(self, request: FuseRequest) -> FuseReply:
        return self._enosys(request)
