"""``repro.trace`` — run a workload with the observability layer attached.

The CLI boots a standard benchmark environment
(:class:`repro.bench.harness.BenchEnvironment`), enables the tracer, attaches
a wildcard tracepoint subscriber, runs one named workload through CntrFS and
emits a JSON report: per-tracepoint counts and virtual costs (from both the
collector subscriber and the tracer's own counters), drop counters, the
top-N cost summary, PSI totals sampled at each phase boundary plus the
rendered ``/proc/pressure`` files, and the final ``/proc/vmstat``.

The report is deterministic except for the single ``wall_s`` field (the only
wall-clock read; ``repro.trace`` is on the determinism gate's wall-clock
allowlist for it), so CI can diff consecutive runs after dropping that key.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bench.harness import BenchEnvironment
from repro.bench.phoronix import ALL_WORKLOADS, IoZoneRead, IoZoneWrite, Workload
from repro.sim.psi import PSI_RESOURCES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.sim.trace import TraceEvent


def workload_slug(name: str) -> str:
    """The CLI name of a workload ("IOzone: Write" -> "iozone-write")."""
    return name.lower().replace(" ", "-").replace(":", "").replace(".", "")


def workload_registry() -> dict[str, Workload]:
    """Every Phoronix workload, keyed by CLI slug."""
    return {workload_slug(w.name): w for w in ALL_WORKLOADS}


class TraceCollector:
    """Wildcard subscriber accumulating per-tracepoint counts and costs.

    A named class (not a closure) so a kernel carrying an attached collector
    stays snapshot-picklable.
    """

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.costs: dict[str, int] = {}

    def __call__(self, event: "TraceEvent") -> None:
        key = event.key
        self.counts[key] = self.counts.get(key, 0) + 1
        self.costs[key] = self.costs.get(key, 0) + event.cost_ns


def psi_sample(kernel: "Kernel") -> dict[str, dict[str, int]]:
    """System-level PSI totals, per resource."""
    out = {}
    for resource in PSI_RESOURCES:
        tracker = kernel.psi.system.tracker(resource)
        out[resource] = {"some_total_ns": tracker.total_some_ns,
                         "full_total_ns": tracker.total_full_ns}
    return out


def parse_vmstat(text: str) -> dict[str, int]:
    """``/proc/vmstat`` text -> {counter: value}."""
    out = {}
    for line in text.splitlines():
        name, _, value = line.partition(" ")
        out[name] = int(value)
    return out


def run_traced(workload: Workload, top: int = 10) -> dict:
    """Run ``workload`` through CntrFS with observability on; build the report.

    Mirrors :func:`repro.bench.harness._run_in` phase structure (prepare
    natively, settle, run through the FUSE mount) but samples PSI at every
    phase boundary and keeps the tracer hot throughout.
    """
    env = BenchEnvironment()
    kernel = env.machine.kernel
    tracer = kernel.tracer
    collector = TraceCollector()
    subscription = tracer.attach("*", collector)
    tracer.enabled = True

    timeline = [{"phase": "boot", "virtual_ns": kernel.clock.now_ns,
                 "psi": psi_sample(kernel)}]
    native_sc, native_base = env.native_access()
    run_sc, run_base = env.cntr_access()
    workdir = workload_slug(workload.name)
    native_sc.makedirs(f"{native_base}/{workdir}")
    workload.prepare(native_sc, f"{native_base}/{workdir}")
    env.backing.sync()
    env.drop_fuse_caches()
    timeline.append({"phase": "prepared", "virtual_ns": kernel.clock.now_ns,
                     "psi": psi_sample(kernel)})
    duration_ns = env.measure(
        lambda: workload.run(run_sc, f"{run_base}/{workdir}"))
    timeline.append({"phase": "ran", "virtual_ns": kernel.clock.now_ns,
                     "psi": psi_sample(kernel)})

    tracer.enabled = False
    tracer.detach(subscription)
    now_ns = kernel.clock.now_ns
    report = {
        "workload": workload_slug(workload.name),
        "virtual_ns": duration_ns,
        "tracepoints": {
            key: {"count": tracer.count(key), "cost_ns": tracer.total_cost(key)}
            for key in sorted(tracer.counts_by_key())},
        "subscriber": {
            key: {"count": collector.counts[key],
                  "cost_ns": collector.costs[key]}
            for key in sorted(collector.counts)},
        "dropped": {"total": tracer.dropped,
                    "by_key": dict(sorted(tracer.dropped_by_key.items()))},
        "top": [{"tracepoint": key, "count": count, "cost_ns": cost_ns}
                for key, count, cost_ns in tracer.summary(top)],
        "psi": {
            "timeline": timeline,
            "files": {resource: kernel.psi.system.render(resource, now_ns)
                      for resource in PSI_RESOURCES}},
        "vmstat": parse_vmstat(kernel.vm.vmstat_text()),
    }
    return report


def smoke_workloads() -> list[Workload]:
    """The small write+read pair the CI smoke run traces."""
    return [IoZoneWrite(size_mb=4), IoZoneRead(size_mb=4)]
