"""CLI entry point: ``python -m repro.trace``.

``--workload NAME`` traces one named Phoronix workload; ``--smoke`` traces
the small fixed write+read pair and sanity-checks the report (CI's
``observe`` job).  The report is printed as JSON; ``wall_s`` is the only
non-deterministic field.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.trace import run_traced, smoke_workloads, workload_registry


def _check_smoke(report: dict) -> list[str]:
    """Invariants the smoke report must satisfy; returns violations."""
    problems = []
    if not report["tracepoints"]:
        problems.append("no tracepoints collected")
    if "fuse.dispatch" not in report["tracepoints"]:
        problems.append("fuse.dispatch never fired through the CntrFS mount")
    if report["tracepoints"] != report["subscriber"]:
        problems.append("subscriber counts diverge from tracer counters")
    psi = report["psi"]["timeline"][-1]["psi"]
    for resource, sample in psi.items():
        if sample["full_total_ns"] > sample["some_total_ns"]:
            problems.append(f"psi {resource}: full exceeds some")
    if report["virtual_ns"] <= 0:
        problems.append("workload charged no virtual time")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Run a workload with tracepoints + PSI attached and "
                    "emit a JSON observability report.")
    registry = workload_registry()
    parser.add_argument("--workload", choices=sorted(registry),
                        help="named Phoronix workload to trace")
    parser.add_argument("--smoke", action="store_true",
                        help="trace the small fixed write+read pair and "
                             "verify report invariants (CI)")
    parser.add_argument("--top", type=int, default=10,
                        help="rows in the top-cost summary (default 10)")
    parser.add_argument("--output", help="write the JSON report here "
                                         "instead of stdout")
    args = parser.parse_args(argv)
    if not args.smoke and not args.workload:
        parser.error("one of --workload or --smoke is required")

    start = time.monotonic()
    if args.smoke:
        reports = [run_traced(w, top=args.top) for w in smoke_workloads()]
        problems = [p for r in reports for p in _check_smoke(r)]
        payload: dict = {"mode": "smoke", "reports": reports,
                         "problems": problems}
    else:
        payload = run_traced(registry[args.workload], top=args.top)
    payload["wall_s"] = round(time.monotonic() - start, 3)

    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    if args.smoke and payload["problems"]:
        print("smoke check FAILED:", "; ".join(payload["problems"]),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
