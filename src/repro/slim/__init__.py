"""Docker-Slim analogue and the Top-50 Docker Hub image catalogue.

The paper's effectiveness experiment (§5.3, Figure 5) instruments the Top-50
official Docker Hub images with Docker Slim, exercises each application so it
touches the files it actually needs, and rebuilds a minimal image from the
access trace.  This package reproduces that pipeline:

* :mod:`repro.slim.tracker` — a fanotify-style file-access tracker,
* :mod:`repro.slim.analyzer` — static + dynamic analysis producing a slim
  image and a reduction report,
* :mod:`repro.slim.catalogue` — a synthetic catalogue of the Top-50 images
  (sizes, file inventories, runtime access profiles) modelled on the published
  statistics the paper reports (66.6% mean reduction; 6/50 single-Go-binary
  images below 10%).
"""

from repro.slim.tracker import AccessTracker
from repro.slim.analyzer import DockerSlim, SlimReport
from repro.slim.catalogue import CatalogueEntry, TOP50_CATALOGUE, build_catalogue_image

__all__ = [
    "AccessTracker",
    "DockerSlim",
    "SlimReport",
    "CatalogueEntry",
    "TOP50_CATALOGUE",
    "build_catalogue_image",
]
