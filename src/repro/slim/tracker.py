"""fanotify-style file access tracking.

Docker Slim records every file a containerised application touches during a
representative run (using the fanotify kernel facility).  The simulation's
equivalent wraps a syscall facade and records the paths of files that are
opened, stat-ed, executed or read through it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.errors import FsError
from repro.kernel.syscalls import Syscalls


@dataclass
class AccessRecord:
    """Accounting for one accessed path."""

    path: str
    opens: int = 0
    reads: int = 0
    stats: int = 0
    bytes_read: int = 0


class AccessTracker:
    """Records which paths a workload touches (the fanotify role)."""

    def __init__(self) -> None:
        self._records: dict[str, AccessRecord] = {}

    def _record(self, path: str) -> AccessRecord:
        if path not in self._records:
            self._records[path] = AccessRecord(path=path)
        return self._records[path]

    def note_open(self, path: str) -> None:
        """Record an ``open``/``exec`` access."""
        self._record(path).opens += 1

    def note_stat(self, path: str) -> None:
        """Record a ``stat`` access."""
        self._record(path).stats += 1

    def note_read(self, path: str, nbytes: int) -> None:
        """Record bytes read from a path."""
        record = self._record(path)
        record.reads += 1
        record.bytes_read += nbytes

    def accessed_paths(self) -> set[str]:
        """All paths the workload touched."""
        return set(self._records)

    def records(self) -> list[AccessRecord]:
        """All access records."""
        return list(self._records.values())

    def clear(self) -> None:
        """Drop every record."""
        self._records.clear()


class TrackedSyscalls:
    """A syscall facade wrapper that reports file accesses to a tracker.

    Only the operations Docker Slim cares about are intercepted; everything
    else passes straight through to the underlying facade.
    """

    def __init__(self, sc: Syscalls, tracker: AccessTracker) -> None:
        self._sc = sc
        self._tracker = tracker
        self._fd_paths: dict[int, str] = {}

    def __getattr__(self, name):
        return getattr(self._sc, name)

    def open(self, path: str, *args, **kwargs) -> int:
        fd = self._sc.open(path, *args, **kwargs)
        self._tracker.note_open(path)
        self._fd_paths[fd] = path
        return fd

    def close(self, fd: int) -> None:
        self._fd_paths.pop(fd, None)
        self._sc.close(fd)

    def read(self, fd: int, size: int) -> bytes:
        data = self._sc.read(fd, size)
        path = self._fd_paths.get(fd)
        if path is not None:
            self._tracker.note_read(path, len(data))
        return data

    def stat(self, path: str):
        result = self._sc.stat(path)
        self._tracker.note_stat(path)
        return result

    def lstat(self, path: str):
        result = self._sc.lstat(path)
        self._tracker.note_stat(path)
        return result

    def exists(self, path: str) -> bool:
        found = self._sc.exists(path)
        if found:
            self._tracker.note_stat(path)
        return found

    def touch_all(self, paths, read_bytes: int = 4096) -> int:
        """Convenience: open + read a set of paths, skipping missing ones."""
        touched = 0
        for path in paths:
            try:
                fd = self.open(path)
            except FsError:
                continue
            try:
                self.read(fd, read_bytes)
            finally:
                self.close(fd)
            touched += 1
        return touched
