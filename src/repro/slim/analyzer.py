"""Docker-Slim analogue: build minimal images from file-access analysis.

Two analysis modes are provided, mirroring how the paper's experiment was run:

* **dynamic** — the image is started in a container, the application workload
  is exercised through the (tracked) syscall interface, and the accessed-path
  set comes from the :class:`repro.slim.tracker.AccessTracker`; this is the
  mode the unit tests use on a few images because it runs the whole container
  stack,
* **static** — the accessed-path set is taken from the image's recorded
  runtime profile; the Figure 5 sweep uses it to process all 50 catalogue
  images quickly.

Note the paper's footnote: Docker Slim *identifies* the unnecessary files and
removes them, but it does not give them back at runtime — that is exactly the
gap Cntr fills.  The analyzer therefore also reports which well-known tool
paths were dropped, so examples can demonstrate recovering them via
``cntr attach``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.container.engine import ContainerEngine
from repro.container.image import FileSpec, Image, ImageLayer
from repro.slim.catalogue import hot_paths_of
from repro.slim.tracker import AccessTracker, TrackedSyscalls

#: Paths always kept even when not observed (Docker Slim's include defaults).
ALWAYS_KEEP_PREFIXES = ("/etc/passwd", "/etc/group", "/etc/nsswitch.conf",
                        "/etc/ssl", "/etc/hostname", "/etc/hosts", "/etc/resolv.conf")


@dataclass
class SlimReport:
    """Result of slimming one image."""

    image_name: str
    original_size: int
    slim_size: int
    original_files: int
    slim_files: int
    accessed_paths: set[str] = field(default_factory=set)
    dropped_tools: list[str] = field(default_factory=list)

    @property
    def reduction_percent(self) -> float:
        """Size reduction achieved, in percent."""
        if self.original_size == 0:
            return 0.0
        return (1.0 - self.slim_size / self.original_size) * 100.0

    @property
    def file_reduction_percent(self) -> float:
        """File-count reduction achieved, in percent."""
        if self.original_files == 0:
            return 0.0
        return (1.0 - self.slim_files / self.original_files) * 100.0


class DockerSlim:
    """Builds slim images from access traces."""

    def __init__(self, keep_prefixes: tuple[str, ...] = ALWAYS_KEEP_PREFIXES) -> None:
        self.keep_prefixes = keep_prefixes

    # ------------------------------------------------------------- analyses
    def analyze_static(self, image: Image,
                       accessed_paths: set[str] | None = None) -> SlimReport:
        """Slim an image from a known accessed-path set (or its recorded profile)."""
        if accessed_paths is None:
            accessed_paths = set(hot_paths_of(image))
            accessed_paths.add(image.config.entrypoint[0] if image.config.entrypoint else "")
        return self._build_report(image, accessed_paths)

    def analyze_dynamic(self, engine: ContainerEngine, image: Image,
                        workload=None, container_name: str | None = None) -> SlimReport:
        """Run the image in a container, exercise it, and slim from the trace.

        ``workload(tracked_syscalls, image)`` drives the application; the
        default workload execs the entrypoint and touches the image's recorded
        hot paths, which is what "manually ran the application so it would
        load all required files" (§5.3) amounts to.
        """
        tracker = AccessTracker()
        container = engine.run(image, name=container_name)
        try:
            sc = engine.exec_in_container(container, list(image.config.entrypoint))
            tracked = TrackedSyscalls(sc, tracker)
            if workload is None:
                self._default_workload(tracked, image)
            else:
                workload(tracked, image)
        finally:
            engine.stop(container)
            engine.remove(container)
        return self._build_report(image, tracker.accessed_paths())

    @staticmethod
    def _default_workload(tracked: TrackedSyscalls, image: Image) -> None:
        paths = [image.config.entrypoint[0]] if image.config.entrypoint else []
        paths += hot_paths_of(image)
        tracked.touch_all(paths)

    # ------------------------------------------------------------- slimming
    def _keep(self, path: str, accessed: set[str]) -> bool:
        if path in accessed:
            return True
        return any(path == prefix or path.startswith(prefix.rstrip("/") + "/")
                   for prefix in self.keep_prefixes)

    def build_slim_image(self, image: Image, accessed_paths: set[str]) -> Image:
        """Produce the minimal image containing only the accessed files."""
        flattened = image.flatten()
        keep_layer = ImageLayer(name=f"{image.name}-slim")
        kept_dirs: set[str] = set()
        for path, spec in sorted(flattened.items()):
            if spec.is_dir:
                continue
            if not self._keep(path, accessed_paths):
                continue
            parent = path.rsplit("/", 1)[0]
            parts = [p for p in parent.split("/") if p]
            built = ""
            for part in parts:
                built = f"{built}/{part}"
                if built not in kept_dirs:
                    keep_layer.files.append(FileSpec(path=built, is_dir=True))
                    kept_dirs.add(built)
            keep_layer.files.append(spec)
        return Image(name=image.name, tag=f"{image.tag}-slim",
                     layers=[keep_layer], config=image.config)

    def _build_report(self, image: Image, accessed_paths: set[str]) -> SlimReport:
        slim = self.build_slim_image(image, accessed_paths)
        flattened = image.flatten()
        original_files = sum(1 for spec in flattened.values()
                             if not spec.is_dir and not spec.whiteout)
        slim_files = sum(1 for layer in slim.layers for spec in layer.files
                         if not spec.is_dir and not spec.whiteout)
        dropped_tools = [path for path in flattened
                         if path.startswith(("/usr/bin/", "/bin/", "/usr/sbin/"))
                         and path not in accessed_paths]
        return SlimReport(
            image_name=image.reference,
            original_size=image.size_bytes,
            slim_size=slim.size_bytes,
            original_files=original_files,
            slim_files=slim_files,
            accessed_paths=set(accessed_paths),
            dropped_tools=sorted(dropped_tools)[:50],
        )
