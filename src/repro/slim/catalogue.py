"""Synthetic catalogue of the Top-50 official Docker Hub images.

The paper's Figure 5 dataset is the Top-50 *official* images as of early 2018
(web servers, databases, language runtimes packaged as applications, message
queues, and a handful of Go-based infrastructure tools).  The real images are
obviously not redistributable here, so each catalogue entry records the three
properties the experiment depends on:

* the total image size,
* the file inventory (generated deterministically from the entry),
* the fraction of files (by bytes) the application actually touches when it is
  exercised — the quantity Docker Slim's dynamic analysis measures.

The access fractions are modelled on the distribution the paper reports:
average reduction 66.6%, the bulk of images between 60% and 97%, and six
single-Go-binary images whose reduction is below 10% because the image already
contains little besides the statically linked executable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.container.image import Image, ImageBuilder
from repro.sim.rng import DeterministicRandom


@dataclass(frozen=True)
class CatalogueEntry:
    """One Top-50 image: size, composition, and runtime access profile."""

    name: str
    tag: str
    total_size_mb: float
    #: Number of files in the image (excluding directories).
    file_count: int
    #: Fraction of image bytes the application touches at runtime.
    accessed_fraction: float
    #: Category used in the analysis ("app", "db", "web", "lang", "go-binary", ...).
    category: str
    #: Entrypoint binary (always part of the accessed set).
    entrypoint: str = "/usr/local/bin/entrypoint"

    @property
    def total_size_bytes(self) -> int:
        """Image size in bytes."""
        return int(self.total_size_mb * 1_000_000)

    @property
    def expected_reduction_percent(self) -> float:
        """The reduction Docker Slim should achieve for this image."""
        return (1.0 - self.accessed_fraction) * 100.0


def _e(name, size_mb, files, accessed, category, tag="latest", entrypoint=None):
    return CatalogueEntry(name=name, tag=tag, total_size_mb=size_mb,
                          file_count=files, accessed_fraction=accessed,
                          category=category,
                          entrypoint=entrypoint or f"/usr/local/bin/{name.split('/')[-1]}")


#: The Top-50 catalogue.  Sizes are the compressed-ish sizes of the 2018-era
#: default variants; access fractions are calibrated so the aggregate matches
#: the paper's Figure 5 (mean reduction 66.6%, 6 images below 10%).
TOP50_CATALOGUE: tuple[CatalogueEntry, ...] = (
    # Web servers / proxies
    _e("nginx", 109, 1900, 0.12, "web", entrypoint="/usr/sbin/nginx"),
    _e("httpd", 178, 2300, 0.15, "web", entrypoint="/usr/local/apache2/bin/httpd"),
    _e("haproxy", 103, 1100, 0.11, "web", entrypoint="/usr/local/sbin/haproxy"),
    _e("tomcat", 463, 3900, 0.28, "web", entrypoint="/usr/local/tomcat/bin/catalina.sh"),
    _e("php", 368, 3200, 0.27, "lang", entrypoint="/usr/local/bin/php"),
    # Databases / caches
    _e("mysql", 445, 3500, 0.22, "db", entrypoint="/usr/sbin/mysqld"),
    _e("postgres", 287, 2900, 0.20, "db", entrypoint="/usr/lib/postgresql/bin/postgres"),
    _e("mariadb", 397, 3300, 0.22, "db", entrypoint="/usr/sbin/mysqld"),
    _e("mongo", 380, 2400, 0.18, "db", entrypoint="/usr/bin/mongod"),
    _e("redis", 107, 1300, 0.09, "db", entrypoint="/usr/local/bin/redis-server"),
    _e("memcached", 83, 900, 0.08, "db", entrypoint="/usr/local/bin/memcached"),
    _e("cassandra", 385, 3100, 0.25, "db", entrypoint="/usr/sbin/cassandra"),
    _e("elasticsearch", 570, 4200, 0.26, "db", entrypoint="/usr/share/elasticsearch/bin/elasticsearch"),
    _e("couchbase", 610, 4600, 0.28, "db", entrypoint="/opt/couchbase/bin/couchbase-server"),
    _e("rethinkdb", 183, 1700, 0.16, "db", entrypoint="/usr/bin/rethinkdb"),
    _e("percona", 418, 3400, 0.22, "db", entrypoint="/usr/sbin/mysqld"),
    _e("neo4j", 498, 3700, 0.29, "db", entrypoint="/var/lib/neo4j/bin/neo4j"),
    # Message queues / coordination
    _e("rabbitmq", 149, 1800, 0.17, "mq", entrypoint="/usr/lib/rabbitmq/bin/rabbitmq-server"),
    _e("kafka", 520, 3800, 0.23, "mq", entrypoint="/opt/kafka/bin/kafka-server-start.sh"),
    _e("zookeeper", 240, 2100, 0.21, "mq", entrypoint="/apache-zookeeper/bin/zkServer.sh"),
    _e("nats", 9, 18, 0.94, "go-binary", entrypoint="/nats-server"),
    # Language runtimes packaged as applications
    _e("node", 676, 5200, 0.25, "lang", entrypoint="/usr/local/bin/node"),
    _e("python", 692, 5600, 0.26, "lang", entrypoint="/usr/local/bin/python3"),
    _e("ruby", 679, 5400, 0.28, "lang", entrypoint="/usr/local/bin/ruby"),
    _e("openjdk", 488, 3600, 0.25, "lang", entrypoint="/usr/local/openjdk/bin/java"),
    _e("golang", 779, 6100, 0.30, "lang", entrypoint="/usr/local/go/bin/go"),
    _e("perl", 582, 4800, 0.28, "lang", entrypoint="/usr/local/bin/perl"),
    _e("pypy", 568, 4400, 0.28, "lang", entrypoint="/usr/local/bin/pypy3"),
    _e("erlang", 743, 5700, 0.29, "lang", entrypoint="/usr/local/bin/erl"),
    _e("mono", 857, 6400, 0.31, "lang", entrypoint="/usr/bin/mono"),
    # Applications
    _e("wordpress", 407, 3400, 0.25, "app", entrypoint="/usr/local/bin/apache2-foreground"),
    _e("nextcloud", 538, 4300, 0.24, "app", entrypoint="/usr/local/bin/apache2-foreground"),
    _e("ghost", 379, 3000, 0.24, "app", entrypoint="/usr/local/bin/node"),
    _e("drupal", 452, 3700, 0.27, "app", entrypoint="/usr/local/bin/apache2-foreground"),
    _e("joomla", 433, 3500, 0.27, "app", entrypoint="/usr/local/bin/apache2-foreground"),
    _e("redmine", 542, 4400, 0.26, "app", entrypoint="/usr/local/bin/rails"),
    _e("owncloud", 510, 4100, 0.24, "app", entrypoint="/usr/local/bin/apache2-foreground"),
    _e("jenkins", 696, 5300, 0.26, "app", entrypoint="/usr/local/bin/jenkins.sh"),
    _e("sonarqube", 620, 4700, 0.27, "app", entrypoint="/opt/sonarqube/bin/run.sh"),
    _e("gitlab-ce", 1120, 7800, 0.33, "app", entrypoint="/assets/wrapper"),
    _e("odoo", 745, 5600, 0.28, "app", entrypoint="/usr/bin/odoo"),
    _e("piwik", 390, 3200, 0.26, "app", entrypoint="/usr/local/bin/apache2-foreground"),
    _e("solr", 534, 4100, 0.25, "app", entrypoint="/opt/solr/bin/solr"),
    _e("kibana", 404, 3300, 0.26, "app", entrypoint="/usr/share/kibana/bin/kibana"),
    # Go-binary infrastructure images (the 6/50 below-10%-reduction cases,
    # together with nats above: single static executable + a few config files)
    _e("traefik", 46, 12, 0.95, "go-binary", entrypoint="/traefik"),
    _e("registry", 33, 25, 0.93, "go-binary", entrypoint="/bin/registry"),
    _e("consul", 52, 30, 0.92, "go-binary", entrypoint="/bin/consul"),
    _e("vault", 58, 28, 0.93, "go-binary", entrypoint="/bin/vault"),
    _e("influxdb", 68, 85, 0.89, "go-binary", entrypoint="/usr/bin/influxd"),
    _e("telegraf", 62, 70, 0.92, "go-binary", entrypoint="/usr/bin/telegraf"),
)


def build_catalogue_image(entry: CatalogueEntry, max_files: int | None = None) -> Image:
    """Materialise a catalogue entry as an :class:`Image`.

    The file inventory is generated deterministically: the entrypoint binary
    plus shared libraries and application data make up the "hot" set sized to
    ``accessed_fraction`` of the image; the rest is the cold set (package
    manager state, docs, locales, auxiliary tools) that Docker Slim removes.
    ``max_files`` caps the inventory for faster dynamic-analysis tests.
    """
    rng = DeterministicRandom(entry.name)
    total = entry.total_size_bytes
    file_count = entry.file_count if max_files is None else min(entry.file_count, max_files)
    hot_bytes = int(total * entry.accessed_fraction)
    cold_bytes = total - hot_bytes

    builder = ImageBuilder(entry.name, entry.tag)
    builder.entrypoint(entry.entrypoint)
    builder.label("category", entry.category)

    # Hot set: the entrypoint takes the lion's share, then libraries/config.
    hot_files: dict[str, int] = {}
    entry_size = max(int(hot_bytes * 0.6), 1)
    hot_count = max(1, int(file_count * 0.15))
    remaining_hot = hot_bytes - entry_size
    for i in range(hot_count - 1):
        share = max(256, int(remaining_hot / max(1, hot_count - 1) *
                             (0.5 + rng.random())))
        hot_files[f"lib/hot-{i:04d}.so"] = share
    builder.add_file(entry.entrypoint, size=entry_size, mode=0o755)
    builder.add_tree("/usr/lib/app", hot_files, mode=0o755)
    builder.add_file("/etc/app.conf", content=f"# {entry.name} configuration\n")
    builder.label("hot_paths", ";".join(
        [entry.entrypoint, "/etc/app.conf"] +
        [f"/usr/lib/app/{rel}" for rel in hot_files]))

    # Cold set: auxiliary tools, package databases, docs, locales.
    builder.new_layer()
    cold_count = max(1, file_count - hot_count)
    cold_files: dict[str, int] = {}
    cold_dirs = ("usr/bin", "usr/share/doc", "usr/share/locale", "var/lib/apt",
                 "usr/share/man", "usr/lib/python3/dist-packages")
    for i in range(cold_count):
        directory = cold_dirs[i % len(cold_dirs)]
        share = max(128, int(cold_bytes / cold_count * (0.4 + 1.2 * rng.random())))
        cold_files[f"{directory}/cold-{i:05d}"] = share
    builder.add_tree("/", cold_files)
    return builder.build()


def hot_paths_of(image: Image) -> list[str]:
    """The runtime-accessed paths recorded when the image was built."""
    labels = dict(image.config.labels)
    return [p for p in labels.get("hot_paths", "").split(";") if p]


def catalogue_summary() -> dict[str, float]:
    """Aggregate statistics of the catalogue (used by tests)."""
    reductions = [e.expected_reduction_percent for e in TOP50_CATALOGUE]
    return {
        "count": float(len(TOP50_CATALOGUE)),
        "mean_reduction": sum(reductions) / len(reductions),
        "below_10_percent": float(sum(1 for r in reductions if r < 10.0)),
        "between_60_and_97": float(sum(1 for r in reductions if 60.0 <= r <= 97.0)),
    }
