"""Mounts, mount namespaces, bind mounts and mount propagation.

This is the substrate that Cntr's core trick — the *nested mount namespace* —
is built on.  The semantics modelled here follow ``mount_namespaces(7)``:

* a mount namespace is a tree of :class:`Mount` objects,
* ``unshare(CLONE_NEWNS)`` copies the tree,
* each mount has a propagation type (private, shared, slave); mounting below
  a *shared* mount replicates the event to every peer mount, mounting below a
  *private* mount stays local — which is why Cntr marks everything private
  inside its nested namespace so that nothing leaks back to the container,
* bind mounts graft an existing subtree (possibly from another filesystem)
  onto a mountpoint,
* ``MS_MOVE`` relocates a mount to a new mountpoint (Cntr moves the original
  container rootfs to ``/var/lib/cntr``),
* ``pivot-root``-style root replacement is implemented as ``chroot`` at the
  process layer on top of these primitives.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.fs.errors import FsError
from repro.fs.filesystem import Filesystem

_mount_id_counter = itertools.count(1)
_peer_group_counter = itertools.count(1)
_mount_ns_counter = itertools.count(1)


class MountPropagation(enum.Enum):
    """Propagation type of a mount (``MS_PRIVATE`` / ``MS_SHARED`` / ``MS_SLAVE``)."""

    PRIVATE = "private"
    SHARED = "shared"
    SLAVE = "slave"


@dataclass
class Mount:
    """One mounted filesystem instance inside a mount namespace."""

    fs: Filesystem
    root_ino: int
    parent: "Mount | None" = None
    mountpoint_ino: int | None = None
    mountpoint_path: str = "/"
    read_only: bool = False
    propagation: MountPropagation = MountPropagation.PRIVATE
    peer_group: int | None = None
    mount_id: int = field(default_factory=lambda: next(_mount_id_counter))

    @property
    def is_bind(self) -> bool:
        """True for bind mounts (a mount whose root is not the fs root)."""
        return self.root_ino != self.fs.root_ino

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Mount(id={self.mount_id}, fs={self.fs.name!r}, "
                f"at={self.mountpoint_path!r}, prop={self.propagation.value})")


class MountNamespace:
    """A tree of mounts as seen by a set of processes."""

    def __init__(self, root_fs: Filesystem | None = None) -> None:
        self.ns_id = next(_mount_ns_counter)
        self.mounts: list[Mount] = []
        # (parent_mount_id, ino) -> stack of mounts, topmost last
        self._mounts_at: dict[tuple[int, int], list[Mount]] = {}
        self.root_mount: Mount | None = None
        if root_fs is not None:
            self.root_mount = Mount(fs=root_fs, root_ino=root_fs.root_ino,
                                    mountpoint_path="/")
            self.mounts.append(self.root_mount)

    # ------------------------------------------------------------- inspection
    def mount_count(self) -> int:
        """Number of mounts in the namespace."""
        return len(self.mounts)

    def mounts_under(self, mount: Mount) -> list[Mount]:
        """All mounts whose parent chain includes ``mount`` (excluding itself)."""
        out = []
        for m in self.mounts:
            p = m.parent
            while p is not None:
                if p is mount:
                    out.append(m)
                    break
                p = p.parent
        return out

    def mount_at(self, parent: Mount, ino: int) -> Mount | None:
        """The topmost mount stacked on ``(parent, ino)``, if any."""
        stack = self._mounts_at.get((parent.mount_id, ino))
        return stack[-1] if stack else None

    def mount_table(self) -> list[dict]:
        """A ``/proc/self/mounts``-style listing."""
        rows = []
        for m in self.mounts:
            rows.append({
                "mount_id": m.mount_id,
                "fs_type": m.fs.fs_type,
                "source": m.fs.name,
                "mountpoint": m.mountpoint_path,
                "options": "ro" if m.read_only else "rw",
                "propagation": m.propagation.value,
            })
        return rows

    # ------------------------------------------------------------- mutation
    def set_root(self, fs: Filesystem, root_ino: int | None = None) -> Mount:
        """Install the namespace's root mount (only valid when empty)."""
        if self.root_mount is not None:
            raise FsError.ebusy("namespace already has a root mount")
        self.root_mount = Mount(fs=fs, root_ino=root_ino or fs.root_ino,
                                mountpoint_path="/")
        self.mounts.append(self.root_mount)
        return self.root_mount

    def mount(self, fs: Filesystem, at: tuple[Mount, int], path: str,
              root_ino: int | None = None, read_only: bool = False,
              propagate: bool = True) -> Mount:
        """Mount ``fs`` (or a subtree of it) on the mountpoint ``at``.

        When the mountpoint's parent mount is shared and ``propagate`` is
        true, the mount event is replicated to every peer mount.
        """
        parent_mount, ino = at
        if parent_mount not in self.mounts:
            raise FsError.einval("mountpoint is not in this namespace")
        mountpoint_inode = parent_mount.fs.iget(ino)
        source_root = root_ino or fs.root_ino
        source_is_dir = fs.iget(source_root).is_dir
        # Directories mount on directories; single-file bind mounts (what Cntr
        # uses for /etc/passwd and friends) mount on non-directories.
        if source_is_dir and not mountpoint_inode.is_dir:
            raise FsError.enotdir(path)
        if not source_is_dir and mountpoint_inode.is_dir:
            raise FsError.enotdir(path)
        new_mount = Mount(fs=fs, root_ino=root_ino or fs.root_ino,
                          parent=parent_mount, mountpoint_ino=ino,
                          mountpoint_path=path, read_only=read_only,
                          propagation=parent_mount.propagation,
                          peer_group=parent_mount.peer_group)
        self._attach(new_mount)
        if propagate and parent_mount.propagation == MountPropagation.SHARED:
            _propagate_mount(self, parent_mount, new_mount)
        return new_mount

    def bind_mount(self, source: tuple[Mount, int], at: tuple[Mount, int],
                   path: str, read_only: bool = False,
                   recursive: bool = False) -> Mount:
        """Bind the subtree rooted at ``source`` onto the mountpoint ``at``.

        With ``recursive`` (``mount --rbind``) every mount stacked below the
        source subtree is replicated under the new bind mount, which is what
        Cntr relies on so the application's ``/tmp``, ``/proc`` and volume
        mounts stay visible under ``/var/lib/cntr``.
        """
        src_mount, src_ino = source
        # Snapshot the mount list before attaching the new bind so that the
        # replication below can never consider the bind itself (or any of the
        # replicas it creates) as a candidate — otherwise binding "/" into a
        # subtree of "/" would recurse forever.
        candidates = list(self.mounts)
        new_mount = self.mount(src_mount.fs, at, path, root_ino=src_ino,
                               read_only=read_only)
        if recursive:
            self._replicate_submounts(src_mount, src_ino, new_mount, path, candidates)
        return new_mount

    def _replicate_submounts(self, src_mount: Mount, src_root_ino: int,
                             new_parent: Mount, path: str,
                             candidates: list["Mount"]) -> None:
        """Replicate mounts stacked below ``src_mount`` under ``new_parent``."""
        for child in [m for m in candidates
                      if m.parent is src_mount and m.mountpoint_ino is not None]:
            # Only replicate children whose mountpoint is reachable from the
            # bound subtree root; binding from the subtree root itself (the
            # common case) reaches everything.
            replica = Mount(fs=child.fs, root_ino=child.root_ino,
                            parent=new_parent, mountpoint_ino=child.mountpoint_ino,
                            mountpoint_path=f"{path}{child.mountpoint_path}",
                            read_only=child.read_only,
                            propagation=MountPropagation.PRIVATE)
            self._attach(replica)
            self._replicate_submounts(child, child.root_ino, replica,
                                      replica.mountpoint_path, candidates)

    def move_mount(self, mount: Mount, at: tuple[Mount, int], path: str) -> Mount:
        """``mount --move``: detach ``mount`` and re-attach it at a new mountpoint."""
        if mount is self.root_mount:
            raise FsError.einval("cannot move the root mount")
        if mount not in self.mounts:
            raise FsError.einval("mount not in this namespace")
        self._detach(mount, keep=True)
        parent_mount, ino = at
        mount.parent = parent_mount
        mount.mountpoint_ino = ino
        mount.mountpoint_path = path
        self._attach(mount, already_listed=True)
        return mount

    def umount(self, mount: Mount, force: bool = False) -> None:
        """Unmount; fails with EBUSY when child mounts remain unless ``force``."""
        if mount is self.root_mount:
            raise FsError.ebusy("/")
        children = self.mounts_under(mount)
        if children and not force:
            raise FsError.ebusy(mount.mountpoint_path)
        for child in children:
            self._detach(child)
        self._detach(mount)

    def make_private(self, mount: Mount, recursive: bool = True) -> None:
        """``mount --make-(r)private``: stop receiving/sending propagation events."""
        targets = [mount] + (self.mounts_under(mount) if recursive else [])
        for m in targets:
            if m.peer_group is not None:
                _peer_groups.get(m.peer_group, set()).discard((self.ns_id, m.mount_id))
            m.propagation = MountPropagation.PRIVATE
            m.peer_group = None

    def make_shared(self, mount: Mount, recursive: bool = False) -> None:
        """``mount --make-(r)shared``: join (or create) a peer group."""
        targets = [mount] + (self.mounts_under(mount) if recursive else [])
        for m in targets:
            if m.peer_group is None:
                m.peer_group = next(_peer_group_counter)
                _peer_groups[m.peer_group] = set()
            m.propagation = MountPropagation.SHARED
            _peer_groups[m.peer_group].add((self.ns_id, m.mount_id))
            _namespace_registry[self.ns_id] = self

    def make_all_private(self) -> None:
        """Mark every mount in the namespace private (what Cntr does on attach)."""
        for m in list(self.mounts):
            self.make_private(m, recursive=False)

    def clone(self) -> "MountNamespace":
        """Copy the namespace, as ``unshare(CLONE_NEWNS)`` does.

        Shared mounts in the parent remain peers of the copies, private mounts
        become independent.
        """
        new_ns = MountNamespace()
        mapping: dict[int, Mount] = {}
        # Copy mounts in parent-before-child order.
        ordered = _topo_order(self.mounts, self.root_mount)
        for m in ordered:
            copy = Mount(fs=m.fs, root_ino=m.root_ino,
                         parent=mapping.get(m.parent.mount_id) if m.parent else None,
                         mountpoint_ino=m.mountpoint_ino,
                         mountpoint_path=m.mountpoint_path,
                         read_only=m.read_only,
                         propagation=m.propagation,
                         peer_group=m.peer_group)
            mapping[m.mount_id] = copy
            new_ns.mounts.append(copy)
            if m is self.root_mount:
                new_ns.root_mount = copy
            if copy.parent is not None and copy.mountpoint_ino is not None:
                key = (copy.parent.mount_id, copy.mountpoint_ino)
                new_ns._mounts_at.setdefault(key, []).append(copy)
            if copy.propagation == MountPropagation.SHARED and copy.peer_group is not None:
                _peer_groups.setdefault(copy.peer_group, set()).add(
                    (new_ns.ns_id, copy.mount_id))
        _namespace_registry[new_ns.ns_id] = new_ns
        return new_ns

    # ------------------------------------------------------------- internals
    def _attach(self, mount: Mount, already_listed: bool = False) -> None:
        if not already_listed:
            self.mounts.append(mount)
        if mount.parent is not None and mount.mountpoint_ino is not None:
            key = (mount.parent.mount_id, mount.mountpoint_ino)
            self._mounts_at.setdefault(key, []).append(mount)

    def _detach(self, mount: Mount, keep: bool = False) -> None:
        if mount.parent is not None and mount.mountpoint_ino is not None:
            key = (mount.parent.mount_id, mount.mountpoint_ino)
            stack = self._mounts_at.get(key, [])
            if mount in stack:
                stack.remove(mount)
            if not stack:
                self._mounts_at.pop(key, None)
        if not keep and mount in self.mounts:
            self.mounts.remove(mount)
        if mount.peer_group is not None:
            _peer_groups.get(mount.peer_group, set()).discard(
                (self.ns_id, mount.mount_id))

    def find_mount(self, mount_id: int) -> Mount | None:
        """Find a mount in this namespace by id."""
        for m in self.mounts:
            if m.mount_id == mount_id:
                return m
        return None


# --------------------------------------------------------------------------
# Shared-propagation plumbing.  Peer groups are global (they span namespaces),
# keyed by peer-group id, holding (namespace_id, mount_id) members.
# --------------------------------------------------------------------------
_peer_groups: dict[int, set[tuple[int, int]]] = {}
_namespace_registry: dict[int, MountNamespace] = {}


def _propagate_mount(origin_ns: MountNamespace, parent: Mount, new_mount: Mount) -> None:
    """Replicate a mount event to every peer of ``parent`` in other namespaces."""
    if parent.peer_group is None:
        return
    # Sorted copy: the peer set's iteration order is hash/insertion noise,
    # and the propagation sequence must be deterministic for replay.
    for ns_id, mount_id in sorted(_peer_groups.get(parent.peer_group, set())):
        if ns_id == origin_ns.ns_id and mount_id == parent.mount_id:
            continue
        peer_ns = _namespace_registry.get(ns_id)
        if peer_ns is None:
            continue
        peer_parent = peer_ns.find_mount(mount_id)
        if peer_parent is None:
            continue
        replica = Mount(fs=new_mount.fs, root_ino=new_mount.root_ino,
                        parent=peer_parent, mountpoint_ino=new_mount.mountpoint_ino,
                        mountpoint_path=new_mount.mountpoint_path,
                        read_only=new_mount.read_only,
                        propagation=MountPropagation.SHARED,
                        peer_group=new_mount.peer_group)
        peer_ns._attach(replica)


def _topo_order(mounts: list[Mount], root: Mount | None) -> list[Mount]:
    """Order mounts so parents come before children."""
    ordered: list[Mount] = []
    remaining = list(mounts)
    placed: set[int] = set()
    while remaining:
        progressed = False
        for m in list(remaining):
            if m.parent is None or m.parent.mount_id in placed:
                ordered.append(m)
                placed.add(m.mount_id)
                remaining.remove(m)
                progressed = True
        if not progressed:  # orphaned mounts; append as-is to avoid an infinite loop
            ordered.extend(remaining)
            break
    return ordered
