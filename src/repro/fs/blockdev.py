"""Simulated block device with a seek/stream cost model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.writeback import BacklogDeviceInfo
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel


@dataclass
class BlockDeviceStats:
    """I/O accounting for one block device."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seeks: int = 0
    flushes: int = 0


class BlockDevice:
    """A device that charges disk-like virtual-time costs for I/O.

    The device distinguishes sequential from random accesses by remembering
    the offset where the previous transfer ended; random accesses pay the full
    seek cost, sequential ones a small fraction of it.
    """

    def __init__(self, name: str, size_bytes: int, clock: VirtualClock,
                 costs: CostModel) -> None:
        self.name = name
        self.size_bytes = size_bytes
        self._clock = clock
        self._costs = costs
        self._next_sequential_offset: int | None = None
        self.stats = BlockDeviceStats()
        #: Per-device writeback state: the filesystem's writeback engine
        #: flushes through this BDI, which shapes flushes by the device's
        #: modelled write bandwidth (0 = unshaped, the historical behaviour).
        self.bdi = BacklogDeviceInfo(name)

    def _is_sequential(self, offset: int) -> bool:
        seq = self._next_sequential_offset is not None and \
            abs(offset - self._next_sequential_offset) <= self._costs.page_size
        if not seq:
            self.stats.seeks += 1
        return seq

    def read(self, offset: int, nbytes: int) -> None:
        """Charge the cost of reading ``nbytes`` at ``offset``.

        On top of the seek/stream cost model, the device's BDI shapes the
        transfer by its modelled read bandwidth (``bytes / bandwidth`` of
        virtual time; 0 = unshaped, the historical behaviour).
        """
        if nbytes <= 0:
            return
        sequential = self._is_sequential(offset)
        self._clock.advance(int(self._costs.disk_read_cost(nbytes, sequential=sequential)))
        self._next_sequential_offset = offset + nbytes
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        self.bdi.charge_read(self._clock, nbytes)

    def write(self, offset: int, nbytes: int) -> None:
        """Charge the cost of writing ``nbytes`` at ``offset``."""
        if nbytes <= 0:
            return
        sequential = self._is_sequential(offset)
        self._clock.advance(int(self._costs.disk_write_cost(nbytes, sequential=sequential)))
        self._next_sequential_offset = offset + nbytes
        self.stats.writes += 1
        self.stats.bytes_written += nbytes

    def flush(self) -> None:
        """Charge a write-barrier (cache flush) cost."""
        self._clock.advance(self._costs.sync_barrier_ns)
        self.stats.flushes += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockDevice({self.name!r}, {self.size_bytes} bytes)"
