"""Page cache model.

The page cache does not hold file data (data always lives on the inode); it
tracks which pages are *resident* and which are *dirty*, because residency and
dirtiness are what determine the virtual-time cost of an access and the number
of FUSE/disk requests issued.  This is the same modelling choice throughout
the reproduction: correctness state is exact, performance state is a cost
model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

PAGE_SIZE = 4096


def page_span(offset: int, size: int, page_size: int = PAGE_SIZE) -> range:
    """Page indices covered by the byte range ``[offset, offset+size)``."""
    if size <= 0:
        return range(0)
    first = offset // page_size
    last = (offset + size - 1) // page_size
    return range(first, last + 1)


@dataclass
class PageCacheStats:
    """Hit/miss accounting for one page cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of page accesses served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PageCache:
    """LRU page cache tracking residency and dirtiness per ``(ino, page)`` key."""

    def __init__(self, max_bytes: int | None = None, page_size: int = PAGE_SIZE) -> None:
        self.page_size = page_size
        self.max_pages = None if max_bytes is None else max(1, max_bytes // page_size)
        self._resident: OrderedDict[tuple[int, int], bool] = OrderedDict()  # value = dirty
        self.stats = PageCacheStats()

    def __len__(self) -> int:
        return len(self._resident)

    @property
    def resident_bytes(self) -> int:
        """Bytes currently resident."""
        return len(self._resident) * self.page_size

    def is_resident(self, ino: int, page: int) -> bool:
        """True when the page is cached (and refresh its LRU position)."""
        key = (ino, page)
        if key in self._resident:
            self._resident.move_to_end(key)
            return True
        return False

    def access(self, ino: int, offset: int, size: int) -> tuple[int, int]:
        """Record a read access; returns ``(hit_pages, miss_pages)`` and caches misses."""
        hits = misses = 0
        for page in page_span(offset, size, self.page_size):
            if self.is_resident(ino, page):
                hits += 1
            else:
                misses += 1
                self._insert(ino, page, dirty=False)
        self.stats.hits += hits
        self.stats.misses += misses
        return hits, misses

    def write(self, ino: int, offset: int, size: int) -> int:
        """Record a buffered write; returns the number of pages dirtied."""
        dirtied = 0
        for page in page_span(offset, size, self.page_size):
            key = (ino, page)
            if key in self._resident:
                if not self._resident[key]:
                    dirtied += 1
                self._resident[key] = True
                self._resident.move_to_end(key)
            else:
                self._insert(ino, page, dirty=True)
                dirtied += 1
        return dirtied

    def dirty_pages(self, ino: int | None = None) -> list[tuple[int, int]]:
        """All dirty ``(ino, page)`` keys, optionally restricted to one inode."""
        return [k for k, dirty in self._resident.items()
                if dirty and (ino is None or k[0] == ino)]

    def clean(self, ino: int | None = None) -> int:
        """Mark dirty pages clean (after writeback); returns pages cleaned."""
        cleaned = 0
        for key, dirty in list(self._resident.items()):
            if dirty and (ino is None or key[0] == ino):
                self._resident[key] = False
                cleaned += 1
        if cleaned:
            self.stats.writebacks += 1
        return cleaned

    def invalidate(self, ino: int) -> int:
        """Drop every page of ``ino`` from the cache; returns pages dropped."""
        victims = [k for k in self._resident if k[0] == ino]
        for key in victims:
            del self._resident[key]
        return len(victims)

    def invalidate_all(self) -> None:
        """Drop the whole cache (used when a FUSE mount does not keep caches)."""
        self._resident.clear()

    def _insert(self, ino: int, page: int, dirty: bool) -> None:
        key = (ino, page)
        self._resident[key] = dirty
        self._resident.move_to_end(key)
        if self.max_pages is not None:
            while len(self._resident) > self.max_pages:
                old_key, old_dirty = self._resident.popitem(last=False)
                self.stats.evictions += 1
                if old_dirty:
                    # An eviction of a dirty page implies a writeback.
                    self.stats.writebacks += 1
