"""Extent-based page cache model.

The page cache does not hold file data (data always lives on the inode); it
tracks which pages are *resident* and which are *dirty*, because residency and
dirtiness are what determine the virtual-time cost of an access and the number
of FUSE/disk requests issued.  This is the same modelling choice throughout
the reproduction: correctness state is exact, performance state is a cost
model.

Representation
--------------
Residency is stored as **extents** — per-inode sorted lists of disjoint
``[start, end)`` page intervals — instead of one dict entry per page, so every
operation costs O(extents touched), not O(pages touched).  A GB-sized
sequential access touches a handful of intervals where the seed implementation
iterated over 260k dict keys.

LRU semantics are *exactly* equivalent to the historical per-page
``OrderedDict`` implementation: every access/write appends the touched range
at the MRU end (splitting whatever it overlapped), extents carry monotonically
increasing sequence numbers, and eviction trims pages from the start of the
globally oldest extent — which is the same order a per-page LRU dict would
produce, because a batch access always left its pages contiguous at the MRU
end in ascending page order.

Two deliberate semantic choices (see PERFORMANCE.md):

* ``access``/``write`` are *batch* operations: hits and misses for the whole
  range are determined before any insertion or eviction happens.  The seed
  interleaved per-page inserts with evictions, which only diverges when a
  single access spans a significant fraction of the whole cache capacity.
* An eviction charges **one writeback per maximal run of contiguous dirty
  pages** (per inode) evicted in a single eviction pass, modelling the kernel
  coalescing neighbouring dirty pages into one writeback bio.  The seed
  charged one writeback per dirty page evicted.  ``clean()`` still counts one
  writeback per flush, as before.

The per-page double LRU bookkeeping of the seed (``is_resident`` moving a key
to the MRU end and ``_insert`` immediately moving it again on a miss) is gone:
each operation touches the LRU structure once per extent.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

PAGE_SIZE = 4096


def page_span(offset: int, size: int, page_size: int = PAGE_SIZE) -> range:
    """Page indices covered by the byte range ``[offset, offset+size)``."""
    if size <= 0:
        return range(0)
    first = offset // page_size
    last = (offset + size - 1) // page_size
    return range(first, last + 1)


@dataclass
class PageCacheStats:
    """Hit/miss accounting for one page cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of page accesses served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Extent:
    """A run of contiguous resident pages of one inode with one dirty flag.

    Extents are also the nodes of the cache's intrusive LRU list (``prev`` /
    ``nxt``), kept sorted by ``(seq, start)`` ascending — oldest first.
    """

    __slots__ = ("ino", "start", "end", "dirty", "seq", "eid", "prev", "nxt")

    def __init__(self, ino: int, start: int, end: int, dirty: bool,
                 seq: int, eid: int) -> None:
        self.ino = ino
        self.start = start
        self.end = end
        self.dirty = dirty
        self.seq = seq
        self.eid = eid
        self.prev: _Extent | None = None
        self.nxt: _Extent | None = None

    def __len__(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "D" if self.dirty else "c"
        return f"<ext ino={self.ino} [{self.start},{self.end}) {flag} seq={self.seq}>"


def _start(ext: _Extent) -> int:
    return ext.start


def _bisect_start(lst: list[_Extent], x: int) -> int:
    """``bisect_right(lst, x, key=_start)`` without per-probe key-fn calls.

    Extent lists are usually one or two entries long, so the dominant cost of
    the stdlib form is the Python-level ``_start`` callback it makes on every
    probe; the inlined attribute compare removes it.
    """
    lo, hi = 0, len(lst)
    while lo < hi:
        mid = (lo + hi) >> 1
        if lst[mid].start <= x:
            lo = mid + 1
        else:
            hi = mid
    return lo


class SeqCounter:
    """Monotonic extent sequence source.

    Each cache owns one by default; :meth:`PageCache.share_seq_counter` lets
    the kernel hand every registered cache the *same* counter, which makes
    extent sequence numbers a global LRU age — the property the cross-
    filesystem reclaim order relies on.
    """

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def next(self) -> int:
        v = self.value
        self.value += 1
        return v


class PageCache:
    """LRU page cache tracking residency and dirtiness in per-inode extents."""

    def __init__(self, max_bytes: int | None = None, page_size: int = PAGE_SIZE) -> None:
        self.page_size = page_size
        self.max_pages = None if max_bytes is None else max(1, max_bytes // page_size)
        self.stats = PageCacheStats()
        #: ino -> list of disjoint extents sorted by start.
        self._by_ino: dict[int, list[_Extent]] = {}
        #: eid -> live extent (size == live extent count, no stale entries).
        self._live: dict[int, _Extent] = {}
        #: Intrusive doubly-linked LRU list between two sentinels, sorted by
        #: ``(seq, start)`` ascending: ``_lru_head.nxt`` is the globally
        #: oldest extent, ``_lru_tail.prev`` the newest.  The order is
        #: maintained with O(1) splices, no heap and no lazy deletion:
        #: fresh extents take a strictly larger seq than every live one (the
        #: counter is monotonic and ``share_seq_counter`` fast-forwards), so
        #: they append at the tail; a split's right remainder inherits the
        #: original seq and splices in immediately after the trimmed extent
        #: (same-seq entries are disjoint fragments of one original segment,
        #: so any same-seq sibling further right starts beyond the original
        #: end and still sorts after the remainder); partial eviction only
        #: grows ``start`` within the extent's own range, which never
        #: reorders it relative to its disjoint same-seq siblings.
        self._lru_head = _Extent(-1, 0, 0, False, -1, -1)
        self._lru_tail = _Extent(-1, 0, 0, False, -1, -1)
        self._lru_head.nxt = self._lru_tail
        self._lru_tail.prev = self._lru_head
        #: Per-inode dirty index: ino -> {eid: extent} holding only dirty
        #: extents, so ``clean``/``dirty_pages`` never scan clean state.
        self._dirty_exts: dict[int, dict[int, _Extent]] = {}
        #: ino -> dirty page count (kept in lockstep with ``_dirty_exts``).
        self._dirty_count: dict[int, int] = {}
        self._pages = 0
        self._seqs = SeqCounter()
        self._next_eid = 0
        #: Memory-pressure coordinator (``VmSysctl``); assigned at filesystem
        #: registration.  When set, every growth is followed by a balance
        #: pass so the cache stays inside the kernel-wide memory budget.
        self.pressure = None
        #: Memory controller (``MemcgController``); assigned at filesystem
        #: registration.  Residency changes are reported per inode so pages
        #: are charged to (and reclaimed from) the owning cgroup.  ``None``
        #: (the default) keeps the cache outside any cgroup accounting.
        self.memcg = None

    # ------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return self._pages

    @property
    def resident_bytes(self) -> int:
        """Bytes currently resident."""
        return self._pages * self.page_size

    def extent_count(self) -> int:
        """Number of live extents (the quantity hot-path work scales with)."""
        return len(self._live)

    def dirty_extent_count(self, ino: int | None = None) -> int:
        """Number of dirty extents, optionally restricted to one inode."""
        if ino is not None:
            return len(self._dirty_exts.get(ino, ()))
        return sum(len(d) for d in self._dirty_exts.values())

    def dirty_page_count(self, ino: int | None = None) -> int:
        """Dirty pages, in O(1), from the per-inode dirty index."""
        if ino is not None:
            return self._dirty_count.get(ino, 0)
        return sum(self._dirty_count.values())

    def dirty_inodes(self) -> list[int]:
        """Inode numbers that currently have dirty pages, sorted."""
        return sorted(self._dirty_count)

    def is_resident(self, ino: int, page: int) -> bool:
        """True when the page is cached (and refresh its LRU position)."""
        lst = self._by_ino.get(ino)
        if not lst:
            return False
        if len(lst) == 1:
            ext = lst[0]
            if ext.start > page or ext.end <= page:
                return False
        else:
            i = _bisect_start(lst, page) - 1
            if i < 0 or lst[i].end <= page:
                return False
        removed = self._remove_range(ino, page, page + 1)
        self._insert_segments(ino, removed)
        return True

    def resident_pages(self) -> dict[tuple[int, int], bool]:
        """``(ino, page) -> dirty`` snapshot (tests / debugging only)."""
        out: dict[tuple[int, int], bool] = {}
        for ino, lst in self._by_ino.items():
            for ext in lst:
                for page in range(ext.start, ext.end):
                    out[(ino, page)] = ext.dirty
        return out

    def lru_order(self) -> list[tuple[int, int]]:
        """``(ino, page)`` keys from LRU to MRU (tests / debugging only)."""
        out = []
        ext = self._lru_head.nxt
        while ext is not self._lru_tail:
            out.extend((ext.ino, page) for page in range(ext.start, ext.end))
            ext = ext.nxt
        return out

    # ------------------------------------------------------------- operations
    def _refresh_exact(self, ino: int, a: int, b: int) -> _Extent | None:
        """Fast path for ``[a, b)`` covered by exactly one extent.

        Splices the extent to the MRU tail with a fresh sequence number —
        observationally identical to what the general remove/reinsert path
        produces for this geometry (same extent layout, same single
        ``_seqs.next()`` draw, net-zero memcg charge), without the extent
        churn.  Returns the refreshed extent, or None when the geometry
        doesn't match and the caller must take the general path.
        """
        lst = self._by_ino.get(ino)
        if not lst:
            return None
        if len(lst) == 1:           # dominant case: one extent per inode
            ext = lst[0]
        else:
            i = _bisect_start(lst, a) - 1
            if i < 0:
                return None
            ext = lst[i]
        if ext.start != a or ext.end != b:
            return None
        tail = self._lru_tail
        node = tail.prev
        if node is not ext:
            ext.prev.nxt = ext.nxt
            ext.nxt.prev = ext.prev
            ext.prev = node
            ext.nxt = tail
            node.nxt = ext
            tail.prev = ext
        ext.seq = self._seqs.next()
        return ext

    def access(self, ino: int, offset: int, size: int) -> tuple[int, int]:
        """Record a read access; returns ``(hit_pages, miss_pages)`` and caches misses."""
        span = page_span(offset, size, self.page_size)
        if not len(span):
            return 0, 0
        a, b = span.start, span.stop
        ext = self._refresh_exact(ino, a, b)
        if ext is not None:
            hits = b - a
            self.stats.hits += hits
            self._evict_to_capacity()
            self.balance_pressure()
            return hits, 0
        removed = self._remove_range(ino, a, b)
        hits = sum(hi - lo for lo, hi, _ in removed)
        misses = (b - a) - hits
        self._insert_segments(ino, self._fill_gaps(a, b, removed))
        self.stats.hits += hits
        self.stats.misses += misses
        self._evict_to_capacity()
        self.balance_pressure()
        return hits, misses

    def write(self, ino: int, offset: int, size: int) -> int:
        """Record a buffered write; returns the number of pages dirtied."""
        span = page_span(offset, size, self.page_size)
        if not len(span):
            return 0
        a, b = span.start, span.stop
        ext = self._refresh_exact(ino, a, b)
        if ext is not None:
            already_dirty = (b - a) if ext.dirty else 0
            if not ext.dirty:
                ext.dirty = True
                self._note_dirty_pages(ino, b - a)
                self._dirty_exts.setdefault(ino, {})[ext.eid] = ext
            self._evict_to_capacity()
            return (b - a) - already_dirty
        removed = self._remove_range(ino, a, b)
        already_dirty = sum(hi - lo for lo, hi, dirty in removed if dirty)
        self._insert_segments(ino, [(a, b, True)])
        self._evict_to_capacity()
        # No pressure balancing here: the caller runs it via
        # ``balance_pressure()`` *after* accounting the dirty bytes with its
        # writeback engine, so reclaim always finds the pending counters that
        # let it flush-before-drop (see the write paths in ext4/fuse).
        return (b - a) - already_dirty

    def dirty_pages(self, ino: int | None = None) -> list[tuple[int, int]]:
        """All dirty ``(ino, page)`` keys (sorted), optionally for one inode."""
        targets = [ino] if ino is not None else sorted(self._dirty_exts)
        out: list[tuple[int, int]] = []
        for target in targets:
            for ext in sorted(self._dirty_exts.get(target, {}).values(), key=_start):
                out.extend((target, page) for page in range(ext.start, ext.end))
        return out

    def clean(self, ino: int | None = None) -> int:
        """Mark dirty pages clean (after writeback); returns pages cleaned.

        O(dirty extents touched): the per-inode dirty index means neither the
        whole cache nor even one inode's clean extents are scanned.
        """
        targets = [ino] if ino is not None else list(self._dirty_exts)
        cleaned = 0
        for target in targets:
            dirty = self._dirty_exts.pop(target, None)
            if not dirty:
                continue
            for ext in dirty.values():
                ext.dirty = False
                cleaned += len(ext)
            self._dirty_count.pop(target, None)
        if cleaned:
            self.stats.writebacks += 1
        return cleaned

    def invalidate(self, ino: int) -> int:
        """Drop every page of ``ino`` from the cache; returns pages dropped."""
        lst = self._by_ino.pop(ino, None)
        if not lst:
            return 0
        dropped = 0
        for ext in lst:
            dropped += len(ext)
            del self._live[ext.eid]
            self._unlink(ext)
        self._pages -= dropped
        self._memcg_delta(ino, -dropped)
        self._dirty_exts.pop(ino, None)
        self._dirty_count.pop(ino, None)
        return dropped

    def invalidate_range(self, ino: int, start_page: int,
                         end_page: int | None = None) -> int:
        """Drop resident pages of ``ino`` in ``[start_page, end_page)``.

        ``end_page=None`` means "to the end of the address space" (the
        truncate case: Linux only drops pages wholly beyond the new EOF, and
        extending a file drops nothing).  Returns pages dropped.
        """
        if end_page is None:
            end_page = 1 << 62
        if end_page <= start_page:
            return 0
        removed = self._remove_range(ino, start_page, end_page)
        return sum(hi - lo for lo, hi, _ in removed)

    def invalidate_all(self) -> None:
        """Drop the whole cache (used when a FUSE mount does not keep caches)."""
        if self.memcg is not None:
            self.memcg.cache_cleared(self)
        self._by_ino.clear()
        self._live.clear()
        self._lru_head.nxt = self._lru_tail
        self._lru_tail.prev = self._lru_head
        self._dirty_exts.clear()
        self._dirty_count.clear()
        self._pages = 0

    # ------------------------------------------------------------- reclaim
    def share_seq_counter(self, counter: SeqCounter) -> None:
        """Adopt a shared extent sequence counter (global LRU comparability).

        The shared counter is fast-forwarded past this cache's own, so the
        cache-local LRU order (strict per-cache monotonicity) is preserved —
        only cross-cache comparability is added.
        """
        counter.value = max(counter.value, self._seqs.value)
        self._seqs = counter

    def oldest_seq(self, ino_filter=None) -> int | None:
        """Sequence number of the LRU-oldest live extent (None when empty).

        With ``ino_filter`` (a predicate over inode numbers), only extents of
        matching inodes are considered — the per-cgroup reclaim order, found
        by walking the LRU list from the old end (first match wins).
        """
        if ino_filter is not None:
            ext = self._oldest_matching(ino_filter)
            return None if ext is None else ext.seq
        ext = self._lru_head.nxt
        return None if ext is self._lru_tail else ext.seq

    def _oldest_matching(self, ino_filter) -> "_Extent | None":
        """The LRU-oldest live extent whose inode passes ``ino_filter``.

        The LRU list is sorted by ``(seq, start)``, so the first matching
        node from the old end is the minimum — no full scan needed.
        """
        ext = self._lru_head.nxt
        while ext is not self._lru_tail:
            if ino_filter(ext.ino):
                return ext
            ext = ext.nxt
        return None

    def reclaim_oldest(self, max_pages: int, flush_inode,
                       ino_filter=None) -> tuple[int, int]:
        """Evict up to ``max_pages`` from the LRU-oldest extent (reclaim path).

        A dirty victim is written back *first* through ``flush_inode(ino)``
        (the owning filesystem's writeback engine, which pays the flush price
        and cleans the inode's pages), then dropped clean — the kernel's
        shrink_page_list order.  Returns ``(clean_dropped, dirty_flushed)``
        page counts; both zero when the cache is empty.  Unlike capacity
        eviction this path never counts evictions/writebacks in
        :class:`PageCacheStats` — the reclaim coordinator keeps its own
        accounting and the engine charged the flush.

        ``ino_filter`` restricts the victim choice to matching inodes (the
        per-cgroup reclaim path); the global path keeps using the heap top.
        """
        if max_pages <= 0:
            return 0, 0
        if ino_filter is None:
            ext = self._lru_head.nxt
            if ext is self._lru_tail:
                return 0, 0
        else:
            ext = self._oldest_matching(ino_filter)
            if ext is None:
                return 0, 0
        was_dirty = ext.dirty
        if ext.dirty:
            flush_inode(ext.ino)
            if ext.dirty:
                # No engine pending backed these pages (already-discarded
                # obligations): they drop unwritten, like truncated pages.
                self._drop_dirty_ext(ext.ino, ext.eid)
                self._note_dirty_pages(ext.ino, -len(ext))
                ext.dirty = False
        lst = self._by_ino[ext.ino]
        i = _bisect_start(lst, ext.start) - 1
        take = min(len(ext), max_pages)
        self._pages -= take
        self._memcg_delta(ext.ino, -take)
        ext.start += take
        if ext.start >= ext.end:
            del self._live[ext.eid]
            self._unlink(ext)
            lst.pop(i)
            if not lst:
                del self._by_ino[ext.ino]
        return (0, take) if was_dirty else (take, 0)

    def balance_pressure(self) -> None:
        """Let the memory controllers react to growth: the per-cgroup limits
        first (memcg reclaim), then the kernel-wide budget — the same
        layering as memcg reclaim under global reclaim in Linux."""
        if self.memcg is not None:
            self.memcg.balance()
        if self.pressure is not None:
            self.pressure.balance()

    # ------------------------------------------------------------- internals
    def _memcg_delta(self, ino: int, delta_pages: int) -> None:
        """Report a residency change of ``ino`` to the memory controller."""
        if self.memcg is not None and delta_pages:
            self.memcg.cache_delta(self, ino, delta_pages * self.page_size)

    def _remove_range(self, ino: int, a: int, b: int) -> list[tuple[int, int, bool]]:
        """Carve ``[a, b)`` out of the inode's extents.

        Returns the removed pieces as ``(start, end, dirty)`` in page order.
        Partially overlapped extents are trimmed in place (keeping their LRU
        age); an extent straddling both edges is split, the right remainder
        inheriting the original sequence number.
        """
        lst = self._by_ino.get(ino)
        if not lst:
            return []
        removed: list[tuple[int, int, bool]] = []
        i = _bisect_start(lst, a) - 1
        if i < 0 or lst[i].end <= a:
            i += 1
        while i < len(lst):
            ext = lst[i]
            if ext.start >= b:
                break
            lo = max(ext.start, a)
            hi = min(ext.end, b)
            removed.append((lo, hi, ext.dirty))
            self._pages -= hi - lo
            if ext.dirty:
                self._note_dirty_pages(ino, -(hi - lo))
            left = ext.start < lo
            right = ext.end > hi
            if left and right:
                rest = self._new_extent(ino, hi, ext.end, ext.dirty,
                                        seq=ext.seq, after=ext)
                if rest.dirty:
                    # The remainder keeps its pages' dirty-index entry; the
                    # page count was only adjusted for the removed middle.
                    self._dirty_exts.setdefault(ino, {})[rest.eid] = rest
                ext.end = lo
                lst.insert(i + 1, rest)
                break
            if left:
                ext.end = lo
                i += 1
            elif not right:
                del self._live[ext.eid]
                self._unlink(ext)
                if ext.dirty:
                    self._drop_dirty_ext(ino, ext.eid)
                lst.pop(i)
            else:
                ext.start = hi
                break
        if not lst:
            del self._by_ino[ino]
        self._memcg_delta(ino, -sum(hi - lo for lo, hi, _ in removed))
        return removed

    @staticmethod
    def _fill_gaps(a: int, b: int, removed: list[tuple[int, int, bool]]
                   ) -> list[tuple[int, int, bool]]:
        """Cover ``[a, b)`` with the removed pieces plus clean gap segments,
        coalescing neighbours with the same dirty flag."""
        segments: list[tuple[int, int, bool]] = []

        def push(lo: int, hi: int, dirty: bool) -> None:
            if segments and segments[-1][2] == dirty and segments[-1][1] == lo:
                segments[-1] = (segments[-1][0], hi, dirty)
            else:
                segments.append((lo, hi, dirty))

        pos = a
        for lo, hi, dirty in removed:
            if lo > pos:
                push(pos, lo, False)
            push(lo, hi, dirty)
            pos = hi
        if pos < b:
            push(pos, b, False)
        return segments

    def _insert_segments(self, ino: int, segments: list[tuple[int, int, bool]]) -> None:
        """Append segments (disjoint, ascending) at the MRU end."""
        if not segments:
            return
        lst = self._by_ino.setdefault(ino, [])
        pos = _bisect_start(lst, segments[0][0])
        new = []
        dirty_index = None
        for lo, hi, dirty in segments:
            ext = self._new_extent(ino, lo, hi, dirty)
            new.append(ext)
            self._pages += hi - lo
            if dirty:
                self._note_dirty_pages(ino, hi - lo)
                if dirty_index is None:
                    dirty_index = self._dirty_exts.setdefault(ino, {})
                dirty_index[ext.eid] = ext
        lst[pos:pos] = new
        self._memcg_delta(ino, sum(hi - lo for lo, hi, _ in segments))

    def _new_extent(self, ino: int, start: int, end: int, dirty: bool,
                    seq: int | None = None,
                    after: _Extent | None = None) -> _Extent:
        if seq is None:
            seq = self._seqs.next()
        eid = self._next_eid
        self._next_eid += 1
        ext = _Extent(ino, start, end, dirty, seq, eid)
        self._live[eid] = ext
        # Fresh seqs are strictly larger than every live one (MRU append);
        # seq-inheriting splits splice right after their origin (``after``).
        node = self._lru_tail.prev if after is None else after
        ext.prev = node
        ext.nxt = node.nxt
        node.nxt.prev = ext
        node.nxt = ext
        return ext

    @staticmethod
    def _unlink(ext: _Extent) -> None:
        ext.prev.nxt = ext.nxt
        ext.nxt.prev = ext.prev
        ext.prev = ext.nxt = None

    def _note_dirty_pages(self, ino: int, delta: int) -> None:
        count = self._dirty_count.get(ino, 0) + delta
        if count > 0:
            self._dirty_count[ino] = count
        else:
            self._dirty_count.pop(ino, None)

    def _drop_dirty_ext(self, ino: int, eid: int) -> None:
        exts = self._dirty_exts.get(ino)
        if exts is not None:
            exts.pop(eid, None)
            if not exts:
                del self._dirty_exts[ino]

    def _evict_to_capacity(self) -> None:
        """Trim the LRU tail until within capacity.

        Evictions are counted per page (as before); writebacks are charged
        once per maximal contiguous dirty run evicted in this pass.
        """
        if self.max_pages is None or self._pages <= self.max_pages:
            return
        prev_ino: int | None = None
        prev_end = -1
        prev_dirty = False
        while self._pages > self.max_pages:
            ext = self._lru_head.nxt
            lst = self._by_ino[ext.ino]
            i = _bisect_start(lst, ext.start) - 1
            take = min(len(ext), self._pages - self.max_pages)
            self.stats.evictions += take
            if ext.dirty:
                contiguous = (prev_dirty and prev_ino == ext.ino
                              and prev_end == ext.start)
                if not contiguous:
                    self.stats.writebacks += 1
                self._note_dirty_pages(ext.ino, -take)
            prev_ino, prev_end, prev_dirty = ext.ino, ext.start + take, ext.dirty
            self._pages -= take
            self._memcg_delta(ext.ino, -take)
            ext.start += take
            if ext.start >= ext.end:
                del self._live[ext.eid]
                self._unlink(ext)
                if ext.dirty:
                    self._drop_dirty_ext(ext.ino, ext.eid)
                lst.pop(i)
                if not lst:
                    del self._by_ino[ext.ino]
