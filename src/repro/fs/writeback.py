"""Unified writeback subsystem: one engine for every filesystem's dirty data.

Before this module existed the repository carried three divergent ad-hoc
writeback paths — the FUSE client's ``_writeback_pending`` byte counters, the
ext4 model's ``_dirty_bytes`` / ``_background_writeback`` pair and the page
cache's own flush counting — with no shared threshold model and no way to
*tune* flush behaviour.  ``WritebackEngine`` centralises the three things they
all did separately:

* **dirty accounting** — per-inode pending byte counters (what has been
  written but whose writeback cost has not been charged yet),
* **flush thresholds** — the ``vm.dirty_background_bytes`` /
  ``vm.dirty_bytes`` / ``vm.dirty_expire_centisecs`` policy deciding *when*
  the simulated flusher threads run,
* **writeback cost charging** — the engine is the only component that decides
  to flush; the *price* of a flush stays filesystem-specific and is paid in
  the ``flush_fn`` callback each filesystem provides (FUSE protocol costs for
  the client, device writes for ext4, nothing for tmpfs).

Default tunables are chosen per filesystem so that the engine reproduces the
seed's flush points *exactly* (the hot-path benchmark's ``virtual_ms``
invariance depends on it): the FUSE client flushes when total pending crosses
``CostModel.writeback_batch_bytes`` and ext4 when it crosses 256 MiB, exactly
as their hand-rolled counters did.

Tunables are exposed kernel-wide through ``/proc/sys/vm/*`` (see
:class:`VmSysctl` and :mod:`repro.kernel.procfs`): writing a value applies it
to every registered engine, the way Linux's global writeback control applies
to all mounted filesystems.  A value of ``0`` disables that trigger.

Since the memory-pressure model landed, three more pieces live here:

* :class:`MemInfo` — the simulated kernel's modelled memory size, rendered as
  ``/proc/meminfo`` and the base against which the ``vm.dirty_ratio`` /
  ``vm.dirty_background_ratio`` knobs resolve to byte thresholds.  As in
  Linux, the ``*_bytes`` knobs win whenever they are nonzero.
* :class:`BacklogDeviceInfo` (BDI) — per-backing-device writeback state.
  Each engine flushes *through* its device's BDI, which shapes the flush cost
  by the device's modelled write bandwidth instead of leaving the whole price
  to the per-fs ``flush_fn``.  The default bandwidth of ``0`` means
  "unshaped", which reproduces the pre-BDI flush costs exactly.
* ``/proc/sys/vm/drop_caches`` — a writable procfs file (1 = page cache,
  2 = dentries/inodes, 3 = both) applied to every registered filesystem, so
  experiments no longer reach around procfs to call ``fs.drop_caches()``.

The memory-pressure *reclaim* subsystem closes the loop between the memory
model and the caches it governs (see PERFORMANCE.md "Reclaim and read
shaping"):

* **budget** — with ``MemInfo.reclaim_enabled`` the registered page caches
  collectively draw from one budget,
  ``total_bytes − reserved_bytes − Dirty`` (exactly the rendered
  ``MemAvailable``), so ``MemFree`` can never go negative;
* **global LRU reclaim** — growth beyond the budget evicts the globally
  oldest extents across *all* registered filesystems (their caches share one
  :class:`repro.fs.pagecache.SeqCounter`), dropping clean pages and flushing
  dirty ones through the owning :class:`WritebackEngine` first
  (``WB_REASON_RECLAIM``), the kernel's shrink_page_list order;
* **dcache pressure** — each reclaim pass accumulates
  ``vm.vfs_cache_pressure`` points of debt; every 100 points shrinks one
  registered filesystem's dentry cache (round-robin), so ``0`` never
  reclaims dentries and ``200`` shrinks twice per pass;
* **periodic flusher** — ``vm.dirty_writeback_centisecs`` arms a virtual
  clock timer per engine (``kupdate``): every period the engine writes back
  dirty data older than ``dirty_expire_centisecs`` (or the period itself
  when expiry is disabled) with *no write activity required*.  ``0`` (the
  default) disables the wakeup, reproducing the write-driven-only seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, NamedTuple

from repro.fs.errors import FsError
from repro.fs.pagecache import SeqCounter
from repro.sim.clock import VirtualClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fs.filesystem import Filesystem
    from repro.sim.psi import PsiRegistry
    from repro.sim.trace import Tracer

#: Flush reasons, in the order the simulated flusher evaluates them.
WB_REASON_EXPIRED = "expired"          # dirty data older than dirty_expire_centisecs
WB_REASON_DIRTY_LIMIT = "dirty_limit"  # total pending crossed vm.dirty_bytes
WB_REASON_BACKGROUND = "background"    # total pending crossed vm.dirty_background_bytes
WB_REASON_SYNC = "sync"                # explicit flush (sync(2), drop_caches, release)
WB_REASON_FSYNC = "fsync"              # fsync(2)/fdatasync(2) on one inode
WB_REASON_PERIODIC = "periodic"        # vm.dirty_writeback_centisecs timer wakeup
WB_REASON_RECLAIM = "reclaim"          # memory pressure: flush before dropping

#: Centisecond, in virtual nanoseconds.
CENTISEC_NS = 10_000_000

#: ``drop_caches`` mode bits, as in Linux's Documentation/sysctl/vm.txt.
DROP_PAGECACHE = 1
DROP_SLAB = 2          # dentries and inodes


@dataclass
class MemInfo:
    """The simulated kernel's modelled memory size (``/proc/meminfo``).

    ``total_bytes`` is the base against which the ``vm.dirty_ratio`` /
    ``vm.dirty_background_ratio`` knobs resolve; ``reserved_bytes`` stands in
    for the kernel text plus anonymous pages, so ``MemFree`` has a plausible
    shape.  The object is shared by reference between :class:`VmSysctl` and
    every registered engine — mutating ``total_bytes`` retunes ratio-driven
    thresholds and the rendered ``/proc/meminfo`` at once, so the two can
    never disagree.
    """

    #: Defaults chosen to reproduce the MemTotal/MemFree lines the static
    #: /proc/meminfo reported before the model existed (16384000/12000000 kB).
    total_bytes: int = 16_384_000 << 10
    reserved_bytes: int = 4_384_000 << 10
    #: Couple page-cache capacity to this memory model: when True, growth
    #: beyond the cache budget (``total − reserved − Dirty``) triggers LRU
    #: reclaim across every registered filesystem (see
    #: :meth:`VmSysctl.balance`).  Off by default — the unbounded budget is
    #: the historical behaviour every committed benchmark figure pins.
    reclaim_enabled: bool = False


class ResolvedVmLimits(NamedTuple):
    """One coherent snapshot of an engine's effective flush thresholds."""

    dirty_background_bytes: int
    dirty_bytes: int
    dirty_expire_centisecs: int
    dirty_writeback_centisecs: int = 0


@dataclass
class VmTunables:
    """The ``vm.dirty_*`` knobs driving one writeback engine.

    All knobs follow the same convention: ``0`` disables the trigger.  Each
    filesystem picks defaults that reproduce its historical flush points;
    :class:`VmSysctl` overrides them kernel-wide when an experiment writes to
    ``/proc/sys/vm/*``.  The ratio knobs resolve against the modelled memory
    size; the ``*_bytes`` knobs win whenever they are nonzero, as in Linux.
    """

    #: Pending bytes at which the background flusher threads kick in and
    #: write everything back (Linux starts writing *some* data back here; the
    #: simulated flushers always catch up fully, matching the seed).
    dirty_background_bytes: int = 0
    #: Hard limit: a writer crossing it blocks and writes back synchronously.
    dirty_bytes: int = 0
    #: Dirty data older than this (virtual centiseconds) is written back by
    #: the expiry check (piggybacked on write activity) and by the periodic
    #: flusher wakeup.
    dirty_expire_centisecs: int = 0
    #: Period (virtual centiseconds) of the kupdate-style flusher wakeup that
    #: expires aged dirty data *independent of write activity* (a virtual
    #: clock timer; see :meth:`WritebackEngine.retune`).  0 disables it.
    dirty_writeback_centisecs: int = 0
    #: Percentage of modelled memory acting as the hard limit when
    #: ``dirty_bytes`` is 0.
    dirty_ratio: int = 0
    #: Percentage of modelled memory acting as the background threshold when
    #: ``dirty_background_bytes`` is 0.
    dirty_background_ratio: int = 0

    def resolve(self, mem_total_bytes: int) -> ResolvedVmLimits:
        """Resolve ratios to byte thresholds against the modelled memory.

        This is the *single* resolution point for every reader of the knobs
        (the flusher threads, ``/proc/meminfo``, tests): bytes knobs win when
        nonzero, ratios apply against ``mem_total_bytes`` otherwise.
        """
        background = self.dirty_background_bytes
        if background == 0 and self.dirty_background_ratio > 0 and mem_total_bytes > 0:
            background = mem_total_bytes * self.dirty_background_ratio // 100
        dirty = self.dirty_bytes
        if dirty == 0 and self.dirty_ratio > 0 and mem_total_bytes > 0:
            dirty = mem_total_bytes * self.dirty_ratio // 100
        return ResolvedVmLimits(dirty_background_bytes=background,
                                dirty_bytes=dirty,
                                dirty_expire_centisecs=self.dirty_expire_centisecs,
                                dirty_writeback_centisecs=self.dirty_writeback_centisecs)

    def as_dict(self) -> dict[str, int]:
        """The knobs as a plain dict (reports, benchmarks)."""
        return {
            "dirty_background_bytes": self.dirty_background_bytes,
            "dirty_bytes": self.dirty_bytes,
            "dirty_expire_centisecs": self.dirty_expire_centisecs,
            "dirty_writeback_centisecs": self.dirty_writeback_centisecs,
            "dirty_ratio": self.dirty_ratio,
            "dirty_background_ratio": self.dirty_background_ratio,
        }


@dataclass
class BdiStats:
    """Bandwidth-shaping accounting for one backing device."""

    shaped_flushes: int = 0          # flushes that paid a bandwidth cost
    shaped_bytes: int = 0            # bytes pushed through the shaper
    busy_ns: int = 0                 # virtual time spent in the write shaper
    shaped_reads: int = 0            # read fetches that paid a bandwidth cost
    shaped_read_bytes: int = 0       # bytes pulled through the read shaper
    read_busy_ns: int = 0            # virtual time spent in the read shaper


class BacklogDeviceInfo:
    """Per-backing-device writeback state (the kernel's ``struct bdi``).

    Every writeback engine flushes through a BDI; the BDI shapes the flush by
    the device's modelled write bandwidth, charging ``bytes / bandwidth`` of
    virtual time on top of whatever the filesystem's ``flush_fn`` paid.  A
    bandwidth of ``0`` (the default) means "unshaped": the flush costs exactly
    what the per-fs callback charged, which is how the pre-BDI engine behaved
    and what keeps the default benchmarks byte-identical.

    The read side mirrors it: ``read_bandwidth_bytes_s`` shapes cache-miss
    fetches on the ext4/FUSE read paths (0 = unshaped), and ``read_ahead_kb``
    is the per-device readahead window — the ``/sys/class/bdi/<dev>/
    read_ahead_kb`` knob.  ``None`` (the default) means "the filesystem's own
    default window" (``default_read_ahead_bytes``: the FUSE mount's exact
    ``max_readahead``, no readahead for ext4), so untouched devices behave
    byte-identically to the pre-knob code even for windows that are not
    whole KiB.
    """

    def __init__(self, name: str, write_bandwidth_bytes_s: int = 0,
                 read_bandwidth_bytes_s: int = 0,
                 read_ahead_kb: int | None = None,
                 default_read_ahead_bytes: int = 0) -> None:
        self.name = name
        #: Modelled device write bandwidth in bytes/second (0 = unshaped).
        self.write_bandwidth_bytes_s = write_bandwidth_bytes_s
        #: Modelled device read bandwidth in bytes/second (0 = unshaped).
        self.read_bandwidth_bytes_s = read_bandwidth_bytes_s
        #: Per-device readahead window in KiB (None = filesystem default).
        self.read_ahead_kb = read_ahead_kb
        #: The filesystem's own window, in exact bytes, used until the sysfs
        #: knob is written.
        self.default_read_ahead_bytes = default_read_ahead_bytes
        self.stats = BdiStats()
        #: Observability hooks: shaping time reports as I/O pressure through
        #: ``psi`` (installed by :meth:`VmSysctl.register`) and device reads
        #: report to the memory controller's ``io.stat`` accounting
        #: (installed by ``MemcgController.register_fs``).  Both optional.
        self.psi: "PsiRegistry | None" = None
        self.memcg = None

    def write_cost_ns(self, nbytes: int) -> int:
        """Virtual nanoseconds the shaper charges for flushing ``nbytes``."""
        if self.write_bandwidth_bytes_s <= 0 or nbytes <= 0:
            return 0
        return nbytes * 1_000_000_000 // self.write_bandwidth_bytes_s

    def charge(self, clock: VirtualClock | None, nbytes: int) -> int:
        """Apply the bandwidth shaping for one flush of ``nbytes``."""
        cost = self.write_cost_ns(nbytes)
        if cost and clock is not None:
            clock.advance(cost)
            self.stats.shaped_flushes += 1
            self.stats.shaped_bytes += nbytes
            self.stats.busy_ns += cost
            if self.psi is not None:
                # The flusher sat in the shaper for exactly the ``busy_ns``
                # increment: I/O pressure on the current process's chain.
                self.psi.account("io", cost)
        return cost

    def read_cost_ns(self, nbytes: int) -> int:
        """Virtual nanoseconds the shaper charges for fetching ``nbytes``."""
        if self.read_bandwidth_bytes_s <= 0 or nbytes <= 0:
            return 0
        return nbytes * 1_000_000_000 // self.read_bandwidth_bytes_s

    def charge_read(self, clock: VirtualClock | None, nbytes: int) -> int:
        """Apply the read-bandwidth shaping for one cache-miss fetch."""
        if nbytes > 0 and self.memcg is not None:
            # Every device read is real block I/O regardless of shaping:
            # count it in io.stat before the (optional) bandwidth charge.
            self.memcg.io_read(self.name, nbytes)
        cost = self.read_cost_ns(nbytes)
        if cost and clock is not None:
            clock.advance(cost)
            self.stats.shaped_reads += 1
            self.stats.shaped_read_bytes += nbytes
            self.stats.read_busy_ns += cost
            if self.psi is not None:
                self.psi.account("io", cost)
        return cost

    @property
    def read_ahead_bytes(self) -> int:
        """The effective readahead window in bytes: the sysfs knob when
        written, else the filesystem's exact default."""
        if self.read_ahead_kb is None:
            return self.default_read_ahead_bytes
        return self.read_ahead_kb << 10

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BacklogDeviceInfo({self.name!r}, "
                f"{self.write_bandwidth_bytes_s} B/s)")


@dataclass
class WritebackStats:
    """Flush accounting for one engine (benchmarks and tests read this)."""

    flushes: int = 0                 # flush() calls that flushed at least one inode
    flushed_bytes: int = 0           # pending bytes drained by flushes
    discarded_bytes: int = 0         # pending bytes dropped without a flush
    #: Virtual time writers through this engine spent stalled by the memory
    #: controller (balance_dirty_pages-style memory.high throttling).
    throttle_stall_ns: int = 0
    #: Virtual time writers spent blocked in synchronous ``vm.dirty_bytes``
    #: flushes — the ``flush_fn`` portion only; the BDI accounts its own
    #: shaping time separately, so the two never double-count a nanosecond.
    dirty_throttle_ns: int = 0
    flushes_by_reason: dict = field(default_factory=dict)

    @property
    def mean_flush_bytes(self) -> float:
        """Average pending bytes drained per flush."""
        return self.flushed_bytes / self.flushes if self.flushes else 0.0


class WritebackEngine:
    """Per-filesystem dirty accounting plus simulated flusher threads.

    The engine never charges virtual time itself: when a threshold decides a
    flush must happen, it pops the pending counters and hands the
    ``(ino, pending_bytes)`` batch to ``flush_fn(items, reason)``, which
    charges whatever that filesystem's writeback costs are and cleans the
    filesystem's page cache.  Keeping the *decision* here and the *price*
    there is what lets three very different filesystems share one subsystem.
    """

    def __init__(self, name: str, tunables: VmTunables,
                 flush_fn: Callable[[list[tuple[int, int]], str], None],
                 clock: VirtualClock | None = None,
                 sysctl_tunable: bool = True,
                 meminfo: MemInfo | None = None,
                 bdi: BacklogDeviceInfo | None = None) -> None:
        self.name = name
        self.tunables = tunables
        self.flush_fn = flush_fn
        self.clock = clock
        #: tmpfs-style engines keep dirty accounting but have no backing
        #: store; /proc/sys/vm writes do not retune them (as in Linux, where
        #: tmpfs pages are not subject to the writeback control).
        self.sysctl_tunable = sysctl_tunable
        #: Modelled memory the ratio knobs resolve against; assigned by
        #: :meth:`VmSysctl.register` so every engine shares the kernel's one
        #: MemInfo.  Without it ratios read as disabled.
        self.meminfo = meminfo
        #: The backing device's writeback state; flushes are shaped by its
        #: modelled write bandwidth (None or bandwidth 0 = unshaped).
        self.bdi = bdi
        #: Memory controller (``MemcgController``); assigned at filesystem
        #: registration.  Dirty bytes are then charged to the owning cgroup
        #: and writers over ``memory.high`` are stalled.  ``None`` (the
        #: default) keeps the engine outside any cgroup accounting.
        self.memcg = None
        #: Observability hooks (``VmSysctl.register`` installs both on
        #: tunable engines): dirty-limit writer stalls report as I/O
        #: pressure; flushes fire the ``writeback.flush`` tracepoint.
        self.psi: "PsiRegistry | None" = None
        self.tracer: "Tracer | None" = None
        self.stats = WritebackStats()
        #: ino -> unflushed dirty bytes.  Flushed/discarded inodes are popped,
        #: never left behind as zero entries.
        self._pending: dict[int, int] = {}
        self._total = 0
        #: ino -> virtual timestamp of the oldest unflushed dirty byte.
        self._first_dirty_ns: dict[int, int] = {}
        #: Re-entrancy latch: a flush_fn must not trigger nested flushes.
        self._flushing = False
        #: The armed kupdate timer (dirty_writeback_centisecs), if any.
        self._flusher_timer = None
        self._arm_periodic_flusher()

    # ------------------------------------------------------------- inspection
    @property
    def total_pending(self) -> int:
        """Unflushed dirty bytes across all inodes."""
        return self._total

    def pending(self, ino: int | None = None) -> int:
        """Unflushed dirty bytes, optionally for one inode."""
        if ino is None:
            return self._total
        return self._pending.get(ino, 0)

    def pending_inodes(self) -> list[int]:
        """Inodes with unflushed dirty bytes (tests / debugging)."""
        return list(self._pending)

    def effective_limits(self) -> ResolvedVmLimits:
        """One coherent snapshot of the thresholds currently in force.

        Every threshold decision inside the engine reads this snapshot (never
        the raw knobs twice), and it resolves through the same
        :meth:`VmTunables.resolve` that ``/proc/meminfo`` readers use — so a
        knob or memory-size change can never be half-applied mid-operation.
        """
        mem_total = self.meminfo.total_bytes if self.meminfo is not None else 0
        return self.tunables.resolve(mem_total)

    # ------------------------------------------------------------- accounting
    def note_dirty(self, ino: int, nbytes: int) -> None:
        """Account ``nbytes`` of freshly written data, then let the simulated
        flusher threads react to the thresholds."""
        if nbytes <= 0:
            return
        self._pending[ino] = self._pending.get(ino, 0) + nbytes
        self._total += nbytes
        if self.clock is not None and ino not in self._first_dirty_ns:
            self._first_dirty_ns[ino] = self.clock.now_ns
        if self.memcg is not None:
            # Charge the dirty bytes to the writer's cgroup; a writer over
            # its memory.high ceiling is stalled here, before the flusher
            # threads react (the balance_dirty_pages call site in Linux).
            self.memcg.note_dirty(self, ino, nbytes)
        self._run_flushers()

    def discard(self, ino: int, nbytes: int | None = None) -> int:
        """Drop pending accounting without charging a flush.

        Used by invalidation paths: when an inode's dirty pages are dropped
        from the page cache without writeback (truncate, hole punching), the
        corresponding flush obligation disappears with them — otherwise the
        next flush would charge WRITE requests for pages that no longer
        exist.  Returns the bytes discarded.
        """
        pending = self._pending.get(ino, 0)
        if pending <= 0:
            return 0
        dropped = pending if nbytes is None else min(pending, nbytes)
        remaining = pending - dropped
        if remaining > 0:
            self._pending[ino] = remaining
        else:
            del self._pending[ino]
            self._first_dirty_ns.pop(ino, None)
        self._total -= dropped
        self.stats.discarded_bytes += dropped
        if self.memcg is not None:
            self.memcg.dirty_discarded(self, ino, dropped)
        return dropped

    def crash_discard(self) -> int:
        """Power-fail: every unflushed byte is lost without a writeback.

        Drops the pending accounting for all inodes (through :meth:`discard`,
        so cgroup dirty charges are uncharged too) and disarms the kupdate
        timer — a crashed engine must never fire against the shared clock.
        Remounting re-arms it via :meth:`retune`.  Returns the bytes lost.
        """
        dropped = 0
        for ino in list(self._pending):
            dropped += self.discard(ino)
        self.disarm_periodic_flusher()
        return dropped

    # ------------------------------------------------------------- flushing
    def flush(self, ino: int | None = None, reason: str = WB_REASON_SYNC) -> int:
        """Write back pending data (all inodes, or just ``ino``).

        Pops the pending counters first — a flushed inode leaves no zero
        entry behind — then pays the filesystem's writeback price through
        ``flush_fn``.  Returns the pending bytes drained.
        """
        if ino is None:
            items = [(node, pending) for node, pending in self._pending.items()
                     if pending > 0]
        else:
            pending = self._pending.get(ino, 0)
            items = [(ino, pending)] if pending > 0 else []
        if not items:
            return 0
        flushed = 0
        for node, pending in items:
            flushed += pending
            del self._pending[node]
            self._first_dirty_ns.pop(node, None)
        self._total -= flushed
        self.stats.flushes += 1
        self.stats.flushed_bytes += flushed
        self.stats.flushes_by_reason[reason] = \
            self.stats.flushes_by_reason.get(reason, 0) + 1
        if self.memcg is not None:
            if self.bdi is not None:
                # io.stat wbytes go to the *dirtying* cgroup — resolve the
                # owners before dirty_flushed pops them below.
                self.memcg.io_wrote(self, self.bdi.name, items)
            self.memcg.dirty_flushed(self, items)
        clock = self.clock
        t0 = clock.now_ns if clock is not None else 0
        self._flushing = True
        try:
            self.flush_fn(items, reason)
        finally:
            self._flushing = False
        if clock is not None and reason == WB_REASON_DIRTY_LIMIT:
            # A dirty_limit flush runs synchronously in the writer's context
            # (vm.dirty_bytes blocks the writer): what flush_fn charged is
            # the writer's stall.  The BDI shaping below accounts itself.
            stall = clock.now_ns - t0
            if stall > 0:
                self.stats.dirty_throttle_ns += stall
                if self.psi is not None:
                    self.psi.account("io", stall)
        # Bandwidth shaping happens through the backing device's BDI, on top
        # of whatever the filesystem-specific callback charged.
        if self.bdi is not None:
            self.bdi.charge(self.clock, flushed)
        tracer = self.tracer
        if tracer is not None and tracer.active and clock is not None:
            tracer.emit(clock.now_ns, "writeback.flush", reason=reason,
                        bytes=flushed, inodes=len(items))
        return flushed

    # ------------------------------------------------------- periodic flusher
    def retune(self) -> None:
        """Re-apply tunables that need active re-arming (the periodic flusher).

        Called by :meth:`VmSysctl.set`/:meth:`VmSysctl.register` after knob
        writes; cheap enough to call unconditionally.
        """
        self._arm_periodic_flusher()

    def disarm_periodic_flusher(self) -> None:
        """Stop the kupdate timer (unmount): a detached engine must not keep
        firing on — and charging flush costs into — the shared clock.
        Re-registering re-arms via :meth:`retune`."""
        if self._flusher_timer is not None:
            self._flusher_timer.cancel()
            self._flusher_timer = None

    def _arm_periodic_flusher(self) -> None:
        self.disarm_periodic_flusher()
        period = self.tunables.dirty_writeback_centisecs
        if period > 0 and self.clock is not None:
            self._flusher_timer = self.clock.schedule(
                self.clock.now_ns + period * CENTISEC_NS, self._periodic_tick)

    def _periodic_tick(self, now_ns: int) -> None:
        """One kupdate wakeup: write back aged dirty data, then re-arm.

        Dirty data older than ``dirty_expire_centisecs`` is flushed; with
        expiry disabled the wakeup period itself is the age threshold (the
        two are coupled in Linux too — kupdate exists to enforce the expiry
        without write activity).  Runs *on the virtual clock*: whoever
        advances time past the deadline fires the tick, no writes required.
        """
        self._flusher_timer = None
        period = self.tunables.dirty_writeback_centisecs
        if period <= 0:
            return
        if not self._flushing and self._first_dirty_ns:
            expire = self.effective_limits().dirty_expire_centisecs or period
            deadline = now_ns - expire * CENTISEC_NS
            expired = [ino for ino, born in self._first_dirty_ns.items()
                       if born <= deadline]
            for ino in expired:
                self.flush(ino, reason=WB_REASON_PERIODIC)
        self._arm_periodic_flusher()

    def _run_flushers(self) -> None:
        """Evaluate the thresholds, oldest-first: expiry, hard limit, background."""
        if self._flushing:
            return
        limits = self.effective_limits()
        if (limits.dirty_expire_centisecs > 0 and self.clock is not None
                and self._first_dirty_ns):
            deadline = self.clock.now_ns - limits.dirty_expire_centisecs * CENTISEC_NS
            expired = [node for node, born in self._first_dirty_ns.items()
                       if born <= deadline]
            for node in expired:
                self.flush(node, reason=WB_REASON_EXPIRED)
        if limits.dirty_bytes > 0 and self._total >= limits.dirty_bytes:
            self.flush(reason=WB_REASON_DIRTY_LIMIT)
        elif (limits.dirty_background_bytes > 0
                and self._total >= limits.dirty_background_bytes):
            self.flush(reason=WB_REASON_BACKGROUND)


@dataclass
class ReclaimStats:
    """Memory-pressure reclaim accounting (kernel-wide, on :class:`VmSysctl`)."""

    reclaims: int = 0              # balance passes that reclaimed something
    pages_dropped: int = 0         # clean pages dropped without writeback
    pages_flushed: int = 0         # dirty pages flushed via their engine, then dropped
    bytes_reclaimed: int = 0       # total bytes freed by reclaim
    dcache_shrinks: int = 0        # dentry caches shrunk under vfs_cache_pressure

    @property
    def pages_reclaimed(self) -> int:
        """Every reclaimed page was either dropped clean or flushed first."""
        return self.pages_dropped + self.pages_flushed


class VmSysctl:
    """The kernel-wide ``/proc/sys/vm`` knobs and the memory model behind them.

    Mounting a filesystem registers it here (see ``Syscalls.mount``): its
    writeback engine comes under the kernel-wide ``vm.dirty_*`` knobs, its
    page cache joins the shared LRU age space and memory budget, its BDI
    appears under ``/sys/class/bdi`` and the filesystem itself becomes
    reachable from ``/proc/sys/vm/drop_caches``.  Writing a knob applies it
    to every registered tunable engine at once, like Linux's single global
    writeback control.  Until a knob is written it reads as ``0``, meaning
    "each filesystem uses its own default thresholds" (``vfs_cache_pressure``
    defaults to Linux's 100 instead).

    ``VmSysctl`` is also the single source of truth for the memory model:
    ``/proc/meminfo`` is rendered from :meth:`meminfo_text`, the ratio knobs
    resolve against the same shared :class:`MemInfo`, and the reclaim budget
    (:meth:`cache_budget_bytes`) is exactly the rendered ``MemAvailable`` —
    so no reader can observe any two of the surfaces disagreeing.
    """

    KNOBS = ("dirty_background_bytes", "dirty_background_ratio", "dirty_bytes",
             "dirty_expire_centisecs", "dirty_ratio",
             "dirty_writeback_centisecs", "vfs_cache_pressure")
    #: Knobs expressed as a percentage of modelled memory.
    RATIO_KNOBS = ("dirty_background_ratio", "dirty_ratio")
    #: Knobs propagated to every registered engine's VmTunables; the rest
    #: (vfs_cache_pressure) are kernel-global and live only here.
    ENGINE_KNOBS = ("dirty_background_bytes", "dirty_background_ratio",
                    "dirty_bytes", "dirty_expire_centisecs", "dirty_ratio",
                    "dirty_writeback_centisecs")
    #: Unwritten-knob read values where "0" is not the Linux default.
    DEFAULT_KNOBS = {"vfs_cache_pressure": 100}

    def __init__(self, meminfo: MemInfo | None = None) -> None:
        self.meminfo = meminfo or MemInfo()
        #: The cgroup memory controller (``Kernel.memcg``); when set,
        #: filesystem registration also wires each page cache and tunable
        #: engine into the per-cgroup charge accounting.
        self.memcg = None
        #: Observability registries (``Kernel.psi`` / ``Kernel.tracer``);
        #: when set, filesystem registration propagates them to each tunable
        #: engine and its BDI so stall sites report pressure and flushes fire
        #: tracepoints.  Both optional.
        self.psi: "PsiRegistry | None" = None
        self.tracer: "Tracer | None" = None
        self._engines: list[WritebackEngine] = []
        self._filesystems: list["Filesystem"] = []
        self._bdis: dict[str, BacklogDeviceInfo] = {}
        self._overrides: dict[str, int] = {}
        #: Last value written to /proc/sys/vm/drop_caches (Linux shows it back).
        self.drop_caches_last = 0
        #: Shared extent sequence source: every registered page cache adopts
        #: it, making extent ages comparable across filesystems (the global
        #: LRU reclaim order).
        self._page_seq = SeqCounter()
        self.reclaim_stats = ReclaimStats()
        self._balancing = False
        #: vfs_cache_pressure accumulator: 100 points = one dcache shrink.
        self._dcache_debt = 0
        self._dcache_rr = 0

    # ------------------------------------------------------------ registration
    def register(self, engine: WritebackEngine) -> None:
        """Attach an engine to the kernel-wide knobs (idempotent)."""
        if not engine.sysctl_tunable:
            # Outside the /proc/sys/vm control, but its kupdate timer (when
            # its private tunables enable one) still follows the mount
            # lifecycle: re-arm on (re)mount, mirroring the unconditional
            # disarm in :meth:`unregister`.
            engine.retune()
            return
        if engine in self._engines:
            return
        self._engines.append(engine)
        engine.meminfo = self.meminfo
        engine.psi = self.psi
        engine.tracer = self.tracer
        if engine.bdi is not None:
            engine.bdi.psi = self.psi
        for knob, value in self._overrides.items():
            if knob in self.ENGINE_KNOBS:
                setattr(engine.tunables, knob, value)
        engine.retune()
        if engine.bdi is not None and \
                self._bdis.get(engine.bdi.name) is not engine.bdi:
            # Disambiguate colliding device names (two mounts constructed
            # with the same fs name) so every live device stays reachable
            # from /sys/class/bdi; the BDI's own name follows its sysfs key.
            name, n = engine.bdi.name, 1
            while engine.bdi.name in self._bdis:
                engine.bdi.name = f"{name}-{n}"
                n += 1
            self._bdis[engine.bdi.name] = engine.bdi

    def unregister(self, engine: WritebackEngine) -> None:
        """Detach an engine (unmount)."""
        if engine in self._engines:
            self._engines.remove(engine)
        # Disarm unconditionally: an engine outside the sysctl set (tmpfs
        # style, or one registered while a knob snapshot was outstanding)
        # still owns a clock timer when its tunables enable the periodic
        # flusher, and a detached engine must never keep firing on — and
        # charging flush costs into — the shared clock.
        engine.disarm_periodic_flusher()
        if engine.psi is self.psi:
            engine.psi = None
        if engine.tracer is self.tracer:
            engine.tracer = None
        if engine.bdi is not None:
            if engine.bdi.psi is self.psi:
                engine.bdi.psi = None
            if self._bdis.get(engine.bdi.name) is engine.bdi:
                del self._bdis[engine.bdi.name]

    def register_fs(self, fs: "Filesystem") -> None:
        """Register a mounted filesystem: drop_caches reach, engine knobs,
        shared LRU age space and the kernel-wide memory budget."""
        if fs not in self._filesystems:
            self._filesystems.append(fs)
        engine = getattr(fs, "writeback", None)
        if engine is not None:
            self.register(engine)
        cache = getattr(fs, "page_cache", None)
        if cache is not None:
            cache.share_seq_counter(self._page_seq)
            cache.pressure = self
        if self.memcg is not None:
            self.memcg.register_fs(fs)

    def unregister_fs(self, fs: "Filesystem") -> None:
        """Unregister a filesystem whose last mount went away."""
        if fs in self._filesystems:
            self._filesystems.remove(fs)
        engine = getattr(fs, "writeback", None)
        if engine is not None:
            self.unregister(engine)
        cache = getattr(fs, "page_cache", None)
        if cache is not None and cache.pressure is self:
            cache.pressure = None
        if self.memcg is not None:
            self.memcg.unregister_fs(fs)

    def engines(self) -> list[WritebackEngine]:
        """The registered engines (reports / debugging)."""
        return list(self._engines)

    def filesystems(self) -> list["Filesystem"]:
        """The registered filesystems (reports / debugging)."""
        return list(self._filesystems)

    def bdis(self) -> dict[str, BacklogDeviceInfo]:
        """Registered backing devices by name (the /sys/class/bdi surface)."""
        return dict(self._bdis)

    # ------------------------------------------------------------ knob access
    def get(self, knob: str) -> int:
        """Current kernel-wide value (0 = per-filesystem defaults in effect)."""
        if knob not in self.KNOBS:
            raise FsError.enoent(f"vm.{knob}")
        return self._overrides.get(knob, self.DEFAULT_KNOBS.get(knob, 0))

    def set(self, knob: str, value: int) -> None:
        """Write a knob, retuning every registered engine."""
        if knob not in self.KNOBS:
            raise FsError.enoent(f"vm.{knob}")
        if value < 0 or (knob in self.RATIO_KNOBS and value > 100):
            raise FsError.einval(f"vm.{knob} = {value}")
        self._overrides[knob] = value
        if knob not in self.ENGINE_KNOBS:
            return
        for engine in self._engines:
            setattr(engine.tunables, knob, value)
            if knob == "dirty_writeback_centisecs":
                engine.retune()

    def snapshot(self) -> dict:
        """Capture the retunable state (knob overrides + per-engine tunables).

        Conformance tests retune the kernel-wide knobs mid-run and must put
        the shared machine back exactly as found; restoring overrides alone
        is not enough because writing a knob overwrites each engine's per-fs
        default (e.g. the FUSE client's 128 KiB background threshold).
        """
        return {"overrides": dict(self._overrides),
                "engines": [(engine, engine.tunables.as_dict())
                            for engine in self._engines]}

    def restore(self, state: dict) -> None:
        """Undo knob writes made since the matching :meth:`snapshot`."""
        self._overrides = dict(state["overrides"])
        for engine, knobs in state["engines"]:
            for knob, value in knobs.items():
                setattr(engine.tunables, knob, value)
            if engine in self._engines:
                engine.retune()
            else:
                # Unmounted since the snapshot: put its knobs back for a
                # later remount, but leave the kupdate timer down — retuning
                # here would re-arm a timer on an engine no mount owns
                # (orphaned periodic wakeups on the shared clock).
                engine.disarm_periodic_flusher()

    # ------------------------------------------------------------ drop_caches
    def drop_caches(self, mode: int) -> None:
        """``echo mode > /proc/sys/vm/drop_caches`` for every registered fs."""
        if mode not in (DROP_PAGECACHE, DROP_SLAB, DROP_PAGECACHE | DROP_SLAB):
            raise FsError.einval(f"vm.drop_caches = {mode}")
        self.drop_caches_last = mode
        for fs in list(self._filesystems):
            fs.drop_caches(mode)

    # ------------------------------------------------------------ reclaim
    def cache_budget_bytes(self) -> int | None:
        """Bytes the registered page caches may collectively hold.

        ``None`` means reclaim is disabled (unbounded budget, the default).
        The formula is exactly the rendered ``MemAvailable``
        (``total − reserved − Dirty``): keeping ``Cached`` at or under it is
        the same statement as ``MemFree`` never going negative, so the budget
        and ``/proc/meminfo`` cannot disagree.
        """
        if not self.meminfo.reclaim_enabled:
            return None
        return max(0, self.meminfo.total_bytes - self.meminfo.reserved_bytes
                   - self.dirty_bytes_total())

    def balance(self) -> int:
        """Reclaim until the page caches fit the memory budget.

        Called by every registered page cache after growth.  Victims are the
        globally LRU-oldest extents across all registered filesystems (their
        caches share one sequence counter): clean pages are dropped, dirty
        pages are flushed through the owning engine first
        (``WB_REASON_RECLAIM``) — which also shrinks ``Dirty`` and thereby
        *grows* the live budget, so the loop re-reads both every iteration.
        Each pass that reclaimed something accumulates ``vfs_cache_pressure``
        dcache-shrink debt.  Returns the bytes reclaimed.
        """
        if self._balancing:
            return 0
        budget = self.cache_budget_bytes()
        if budget is None or self.cached_bytes_total() <= budget:
            return 0
        self._balancing = True
        try:
            freed = 0
            while True:
                budget = self.cache_budget_bytes()
                excess = self.cached_bytes_total() - budget
                if excess <= 0:
                    break
                victim = None
                best_seq = None
                for fs in self._filesystems:
                    cache = getattr(fs, "page_cache", None)
                    if cache is None:
                        continue
                    seq = cache.oldest_seq()
                    if seq is not None and (best_seq is None or seq < best_seq):
                        best_seq, victim = seq, fs
                if victim is None:
                    break
                cache = victim.page_cache
                engine = getattr(victim, "writeback", None)

                def flush_inode(ino: int, _engine=engine) -> None:
                    if _engine is not None:
                        _engine.flush(ino, reason=WB_REASON_RECLAIM)

                want = -(-excess // cache.page_size)
                clean, flushed = cache.reclaim_oldest(want, flush_inode)
                if clean == 0 and flushed == 0:
                    break
                self.reclaim_stats.pages_dropped += clean
                self.reclaim_stats.pages_flushed += flushed
                freed += (clean + flushed) * cache.page_size
            if freed:
                self.reclaim_stats.reclaims += 1
                self.reclaim_stats.bytes_reclaimed += freed
                self._shrink_dcache()
            return freed
        finally:
            self._balancing = False

    def _shrink_dcache(self) -> None:
        """Apply ``vm.vfs_cache_pressure`` after a reclaim pass.

        Debt accumulates ``pressure`` points per pass; every 100 points
        shrinks one registered filesystem's dentry cache (round-robin), so
        ``0`` never touches dentries, 100 (the Linux default) shrinks one per
        pass and 200 shrinks two.
        """
        pressure = self.get("vfs_cache_pressure")
        if pressure <= 0 or not self._filesystems:
            return
        self._dcache_debt += pressure
        while self._dcache_debt >= 100:
            self._dcache_debt -= 100
            fs = self._filesystems[self._dcache_rr % len(self._filesystems)]
            self._dcache_rr += 1
            fs.drop_caches(DROP_SLAB)
            self.reclaim_stats.dcache_shrinks += 1

    # ------------------------------------------------------------ /proc/meminfo
    def dirty_bytes_total(self) -> int:
        """Unflushed dirty bytes across every tunable engine (``Dirty:``)."""
        return sum(engine.total_pending for engine in self._engines)

    def cached_bytes_total(self) -> int:
        """Resident page-cache bytes across registered filesystems."""
        total = 0
        for fs in self._filesystems:
            cache = getattr(fs, "page_cache", None)
            if cache is not None:
                total += cache.resident_bytes
        return total

    def meminfo_text(self) -> str:
        """Render ``/proc/meminfo`` from the shared memory model.

        Readers of ``/proc/meminfo`` and the ratio-resolving flusher threads
        go through the same object, so ``MemTotal`` here is — by construction,
        not by synchronization — the base the ratios resolve against.
        """
        total = self.meminfo.total_bytes
        dirty = self.dirty_bytes_total()
        cached = self.cached_bytes_total()
        free = max(0, total - self.meminfo.reserved_bytes - dirty - cached)
        rows = [
            ("MemTotal", total),
            ("MemFree", free),
            ("MemAvailable", free + cached),
            ("Cached", cached),
            ("Dirty", dirty),
            ("Writeback", 0),   # flushes complete instantly in virtual time
        ]
        return "".join(f"{label + ':':<16}{value >> 10:>8} kB\n"
                       for label, value in rows)

    def vmstat_text(self) -> str:
        """Render ``/proc/vmstat`` live from the registered caches and engines.

        Pure derived bookkeeping (documented zero-virtual-cost): page-state
        gauges come from the same sources as ``/proc/meminfo`` so the two
        surfaces can never disagree; the event counters map the model onto
        Linux's names — ``pgfault`` is every page-cache access,
        ``pgmajfault`` the misses that reached a device, ``pgsteal_direct``
        the kernel-wide reclaim and ``pgsteal_memcg`` the per-cgroup one.
        Counts are in 4 KiB pages, as in Linux.
        """
        page = 4096
        hits = misses = 0
        for fs in self._filesystems:
            cache = getattr(fs, "page_cache", None)
            if cache is not None:
                hits += cache.stats.hits
                misses += cache.stats.misses
        flushed = sum(e.stats.flushed_bytes for e in self._engines)
        discarded = sum(e.stats.discarded_bytes for e in self._engines)
        dirty = self.dirty_bytes_total()
        cached = self.cached_bytes_total()
        free = max(0, self.meminfo.total_bytes - self.meminfo.reserved_bytes
                   - dirty - cached)
        reclaim = self.reclaim_stats
        memcg_steal = self.memcg.total_pages_reclaimed() \
            if self.memcg is not None else 0
        rows = [
            ("nr_free_pages", free // page),
            ("nr_file_pages", cached // page),
            ("nr_dirty", dirty // page),
            ("nr_writeback", 0),
            # Everything ever dirtied either drained through a flush, was
            # discarded without one, or is still pending — so the three
            # components always sum to the cumulative nr_dirtied.
            ("nr_dirtied", (flushed + discarded + dirty) // page),
            ("nr_written", flushed // page),
            ("pgfault", hits + misses),
            ("pgmajfault", misses),
            ("pgscan_direct", reclaim.pages_reclaimed),
            ("pgsteal_direct", reclaim.pages_reclaimed),
            ("pgsteal_memcg", memcg_steal),
        ]
        return "".join(f"{name} {value}\n" for name, value in rows)
