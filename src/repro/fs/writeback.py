"""Unified writeback subsystem: one engine for every filesystem's dirty data.

Before this module existed the repository carried three divergent ad-hoc
writeback paths — the FUSE client's ``_writeback_pending`` byte counters, the
ext4 model's ``_dirty_bytes`` / ``_background_writeback`` pair and the page
cache's own flush counting — with no shared threshold model and no way to
*tune* flush behaviour.  ``WritebackEngine`` centralises the three things they
all did separately:

* **dirty accounting** — per-inode pending byte counters (what has been
  written but whose writeback cost has not been charged yet),
* **flush thresholds** — the ``vm.dirty_background_bytes`` /
  ``vm.dirty_bytes`` / ``vm.dirty_expire_centisecs`` policy deciding *when*
  the simulated flusher threads run,
* **writeback cost charging** — the engine is the only component that decides
  to flush; the *price* of a flush stays filesystem-specific and is paid in
  the ``flush_fn`` callback each filesystem provides (FUSE protocol costs for
  the client, device writes for ext4, nothing for tmpfs).

Default tunables are chosen per filesystem so that the engine reproduces the
seed's flush points *exactly* (the hot-path benchmark's ``virtual_ms``
invariance depends on it): the FUSE client flushes when total pending crosses
``CostModel.writeback_batch_bytes`` and ext4 when it crosses 256 MiB, exactly
as their hand-rolled counters did.

Tunables are exposed kernel-wide through ``/proc/sys/vm/*`` (see
:class:`VmSysctl` and :mod:`repro.kernel.procfs`): writing a value applies it
to every registered engine, the way Linux's global writeback control applies
to all mounted filesystems.  A value of ``0`` disables that trigger (the
simulation's analogue of Linux's "fall back to the ratio knobs"; ratios are
not modelled).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.fs.errors import FsError
from repro.sim.clock import VirtualClock

#: Flush reasons, in the order the simulated flusher evaluates them.
WB_REASON_EXPIRED = "expired"          # dirty data older than dirty_expire_centisecs
WB_REASON_DIRTY_LIMIT = "dirty_limit"  # total pending crossed vm.dirty_bytes
WB_REASON_BACKGROUND = "background"    # total pending crossed vm.dirty_background_bytes
WB_REASON_SYNC = "sync"                # explicit flush (sync(2), drop_caches, release)
WB_REASON_FSYNC = "fsync"              # fsync(2)/fdatasync(2) on one inode

#: Centisecond, in virtual nanoseconds.
CENTISEC_NS = 10_000_000


@dataclass
class VmTunables:
    """The ``vm.dirty_*`` knobs driving one writeback engine.

    All three follow the same convention: ``0`` disables the trigger.  Each
    filesystem picks defaults that reproduce its historical flush points;
    :class:`VmSysctl` overrides them kernel-wide when an experiment writes to
    ``/proc/sys/vm/*``.
    """

    #: Pending bytes at which the background flusher threads kick in and
    #: write everything back (Linux starts writing *some* data back here; the
    #: simulated flushers always catch up fully, matching the seed).
    dirty_background_bytes: int = 0
    #: Hard limit: a writer crossing it blocks and writes back synchronously.
    dirty_bytes: int = 0
    #: Dirty data older than this (virtual centiseconds) is written back by
    #: the periodic flusher wakeup (piggybacked on write activity).
    dirty_expire_centisecs: int = 0

    def as_dict(self) -> dict[str, int]:
        """The knobs as a plain dict (reports, benchmarks)."""
        return {
            "dirty_background_bytes": self.dirty_background_bytes,
            "dirty_bytes": self.dirty_bytes,
            "dirty_expire_centisecs": self.dirty_expire_centisecs,
        }


@dataclass
class WritebackStats:
    """Flush accounting for one engine (benchmarks and tests read this)."""

    flushes: int = 0                 # flush() calls that flushed at least one inode
    flushed_bytes: int = 0           # pending bytes drained by flushes
    discarded_bytes: int = 0         # pending bytes dropped without a flush
    flushes_by_reason: dict = field(default_factory=dict)

    @property
    def mean_flush_bytes(self) -> float:
        """Average pending bytes drained per flush."""
        return self.flushed_bytes / self.flushes if self.flushes else 0.0


class WritebackEngine:
    """Per-filesystem dirty accounting plus simulated flusher threads.

    The engine never charges virtual time itself: when a threshold decides a
    flush must happen, it pops the pending counters and hands the
    ``(ino, pending_bytes)`` batch to ``flush_fn(items, reason)``, which
    charges whatever that filesystem's writeback costs are and cleans the
    filesystem's page cache.  Keeping the *decision* here and the *price*
    there is what lets three very different filesystems share one subsystem.
    """

    def __init__(self, name: str, tunables: VmTunables,
                 flush_fn: Callable[[list[tuple[int, int]], str], None],
                 clock: VirtualClock | None = None,
                 sysctl_tunable: bool = True) -> None:
        self.name = name
        self.tunables = tunables
        self.flush_fn = flush_fn
        self.clock = clock
        #: tmpfs-style engines keep dirty accounting but have no backing
        #: store; /proc/sys/vm writes do not retune them (as in Linux, where
        #: tmpfs pages are not subject to the writeback control).
        self.sysctl_tunable = sysctl_tunable
        self.stats = WritebackStats()
        #: ino -> unflushed dirty bytes.  Flushed/discarded inodes are popped,
        #: never left behind as zero entries.
        self._pending: dict[int, int] = {}
        self._total = 0
        #: ino -> virtual timestamp of the oldest unflushed dirty byte.
        self._first_dirty_ns: dict[int, int] = {}
        #: Re-entrancy latch: a flush_fn must not trigger nested flushes.
        self._flushing = False

    # ------------------------------------------------------------- inspection
    @property
    def total_pending(self) -> int:
        """Unflushed dirty bytes across all inodes."""
        return self._total

    def pending(self, ino: int | None = None) -> int:
        """Unflushed dirty bytes, optionally for one inode."""
        if ino is None:
            return self._total
        return self._pending.get(ino, 0)

    def pending_inodes(self) -> list[int]:
        """Inodes with unflushed dirty bytes (tests / debugging)."""
        return list(self._pending)

    # ------------------------------------------------------------- accounting
    def note_dirty(self, ino: int, nbytes: int) -> None:
        """Account ``nbytes`` of freshly written data, then let the simulated
        flusher threads react to the thresholds."""
        if nbytes <= 0:
            return
        self._pending[ino] = self._pending.get(ino, 0) + nbytes
        self._total += nbytes
        if self.clock is not None and ino not in self._first_dirty_ns:
            self._first_dirty_ns[ino] = self.clock.now_ns
        self._run_flushers()

    def discard(self, ino: int, nbytes: int | None = None) -> int:
        """Drop pending accounting without charging a flush.

        Used by invalidation paths: when an inode's dirty pages are dropped
        from the page cache without writeback (truncate, hole punching), the
        corresponding flush obligation disappears with them — otherwise the
        next flush would charge WRITE requests for pages that no longer
        exist.  Returns the bytes discarded.
        """
        pending = self._pending.get(ino, 0)
        if pending <= 0:
            return 0
        dropped = pending if nbytes is None else min(pending, nbytes)
        remaining = pending - dropped
        if remaining > 0:
            self._pending[ino] = remaining
        else:
            del self._pending[ino]
            self._first_dirty_ns.pop(ino, None)
        self._total -= dropped
        self.stats.discarded_bytes += dropped
        return dropped

    # ------------------------------------------------------------- flushing
    def flush(self, ino: int | None = None, reason: str = WB_REASON_SYNC) -> int:
        """Write back pending data (all inodes, or just ``ino``).

        Pops the pending counters first — a flushed inode leaves no zero
        entry behind — then pays the filesystem's writeback price through
        ``flush_fn``.  Returns the pending bytes drained.
        """
        if ino is None:
            items = [(node, pending) for node, pending in self._pending.items()
                     if pending > 0]
        else:
            pending = self._pending.get(ino, 0)
            items = [(ino, pending)] if pending > 0 else []
        if not items:
            return 0
        flushed = 0
        for node, pending in items:
            flushed += pending
            del self._pending[node]
            self._first_dirty_ns.pop(node, None)
        self._total -= flushed
        self.stats.flushes += 1
        self.stats.flushed_bytes += flushed
        self.stats.flushes_by_reason[reason] = \
            self.stats.flushes_by_reason.get(reason, 0) + 1
        self._flushing = True
        try:
            self.flush_fn(items, reason)
        finally:
            self._flushing = False
        return flushed

    def _run_flushers(self) -> None:
        """Evaluate the thresholds, oldest-first: expiry, hard limit, background."""
        if self._flushing:
            return
        knobs = self.tunables
        if (knobs.dirty_expire_centisecs > 0 and self.clock is not None
                and self._first_dirty_ns):
            deadline = self.clock.now_ns - knobs.dirty_expire_centisecs * CENTISEC_NS
            expired = [node for node, born in self._first_dirty_ns.items()
                       if born <= deadline]
            for node in expired:
                self.flush(node, reason=WB_REASON_EXPIRED)
        if knobs.dirty_bytes > 0 and self._total >= knobs.dirty_bytes:
            self.flush(reason=WB_REASON_DIRTY_LIMIT)
        elif (knobs.dirty_background_bytes > 0
                and self._total >= knobs.dirty_background_bytes):
            self.flush(reason=WB_REASON_BACKGROUND)


class VmSysctl:
    """The kernel-wide ``/proc/sys/vm`` writeback knobs.

    Mounting a filesystem with a writeback engine registers the engine here
    (see ``Syscalls.mount``); writing a knob applies it to every registered
    tunable engine at once, like Linux's single global writeback control.
    Until a knob is written it reads as ``0``, meaning "each filesystem uses
    its own default thresholds".
    """

    KNOBS = ("dirty_background_bytes", "dirty_bytes", "dirty_expire_centisecs")

    def __init__(self) -> None:
        self._engines: list[WritebackEngine] = []
        self._overrides: dict[str, int] = {}

    def register(self, engine: WritebackEngine) -> None:
        """Attach an engine to the kernel-wide knobs (idempotent)."""
        if not engine.sysctl_tunable or engine in self._engines:
            return
        self._engines.append(engine)
        for knob, value in self._overrides.items():
            setattr(engine.tunables, knob, value)

    def unregister(self, engine: WritebackEngine) -> None:
        """Detach an engine (unmount)."""
        if engine in self._engines:
            self._engines.remove(engine)

    def engines(self) -> list[WritebackEngine]:
        """The registered engines (reports / debugging)."""
        return list(self._engines)

    def get(self, knob: str) -> int:
        """Current kernel-wide value (0 = per-filesystem defaults in effect)."""
        if knob not in self.KNOBS:
            raise FsError.enoent(f"vm.{knob}")
        return self._overrides.get(knob, 0)

    def set(self, knob: str, value: int) -> None:
        """Write a knob, retuning every registered engine."""
        if knob not in self.KNOBS:
            raise FsError.enoent(f"vm.{knob}")
        if value < 0:
            raise FsError.einval(f"vm.{knob} = {value}")
        self._overrides[knob] = value
        for engine in self._engines:
            setattr(engine.tunables, knob, value)
