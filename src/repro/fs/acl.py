"""Minimal POSIX ACL representation.

The paper's xfstests failure #375 concerns SETGID-bit clearing when the file
owner is not a member of the owning group of an ACL.  CntrFS delegates ACL
interpretation to the underlying filesystem, which is exactly the behaviour
this reproduction models: ACLs are stored and returned verbatim but are not
interpreted during ``chmod``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AclTag(enum.IntEnum):
    """ACL entry tags, following the POSIX.1e draft."""

    USER_OBJ = 1
    USER = 2
    GROUP_OBJ = 4
    GROUP = 8
    MASK = 16
    OTHER = 32


@dataclass(frozen=True)
class AclEntry:
    """One ACL entry: a tag, an optional qualifier (uid/gid), and rwx bits."""

    tag: AclTag
    qualifier: int | None
    perms: int  # rwx bits, 0-7

    def permits(self, want: int) -> bool:
        """True when the entry grants all bits in ``want``."""
        return (self.perms & want) == want


@dataclass
class PosixAcl:
    """An access ACL attached to an inode."""

    entries: list[AclEntry] = field(default_factory=list)

    def add(self, tag: AclTag, qualifier: int | None, perms: int) -> None:
        """Append one entry."""
        self.entries.append(AclEntry(tag, qualifier, perms & 0o7))

    def entries_for(self, tag: AclTag) -> list[AclEntry]:
        """All entries with the given tag."""
        return [e for e in self.entries if e.tag == tag]

    def named_group_ids(self) -> set[int]:
        """Group ids of all named-group entries."""
        return {e.qualifier for e in self.entries_for(AclTag.GROUP) if e.qualifier is not None}

    def check(self, uid: int, gids: set[int], owner_uid: int, owner_gid: int, want: int) -> bool | None:
        """Evaluate the ACL for (uid, gids) requesting ``want`` rwx bits.

        Returns True/False when the ACL decides the access, or None when the
        caller matches no entry and the classic mode bits should apply.
        """
        if uid == owner_uid:
            for e in self.entries_for(AclTag.USER_OBJ):
                return e.permits(want)
        for e in self.entries_for(AclTag.USER):
            if e.qualifier == uid:
                return e.permits(want)
        group_entries = self.entries_for(AclTag.GROUP_OBJ) + self.entries_for(AclTag.GROUP)
        matched = False
        for e in group_entries:
            in_group = (e.tag == AclTag.GROUP_OBJ and owner_gid in gids) or (
                e.tag == AclTag.GROUP and e.qualifier in gids
            )
            if in_group:
                matched = True
                if e.permits(want):
                    return True
        if matched:
            return False
        for e in self.entries_for(AclTag.OTHER):
            return e.permits(want)
        return None

    @classmethod
    def from_mode(cls, mode: int) -> "PosixAcl":
        """Build the minimal three-entry ACL equivalent to classic mode bits."""
        acl = cls()
        acl.add(AclTag.USER_OBJ, None, (mode >> 6) & 0o7)
        acl.add(AclTag.GROUP_OBJ, None, (mode >> 3) & 0o7)
        acl.add(AclTag.OTHER, None, mode & 0o7)
        return acl
