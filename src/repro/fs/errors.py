"""Filesystem error type mirroring POSIX errno semantics."""

from __future__ import annotations

import errno as _errno
import os


class FsError(OSError):
    """An error raised by the simulated VFS, carrying a POSIX errno.

    The class subclasses :class:`OSError` so test code can use the familiar
    ``exc.errno == errno.ENOENT`` idiom.
    """

    def __init__(self, err: int, path: str | None = None, msg: str | None = None) -> None:
        text = msg or os.strerror(err)
        if path:
            text = f"{text}: {path!r}"
        super().__init__(err, text)
        self.path = path

    @classmethod
    def enoent(cls, path: str | None = None) -> "FsError":
        """No such file or directory."""
        return cls(_errno.ENOENT, path)

    @classmethod
    def eexist(cls, path: str | None = None) -> "FsError":
        """File exists."""
        return cls(_errno.EEXIST, path)

    @classmethod
    def enotdir(cls, path: str | None = None) -> "FsError":
        """Not a directory."""
        return cls(_errno.ENOTDIR, path)

    @classmethod
    def eisdir(cls, path: str | None = None) -> "FsError":
        """Is a directory."""
        return cls(_errno.EISDIR, path)

    @classmethod
    def enotempty(cls, path: str | None = None) -> "FsError":
        """Directory not empty."""
        return cls(_errno.ENOTEMPTY, path)

    @classmethod
    def eacces(cls, path: str | None = None) -> "FsError":
        """Permission denied."""
        return cls(_errno.EACCES, path)

    @classmethod
    def eperm(cls, path: str | None = None) -> "FsError":
        """Operation not permitted."""
        return cls(_errno.EPERM, path)

    @classmethod
    def einval(cls, msg: str | None = None) -> "FsError":
        """Invalid argument."""
        return cls(_errno.EINVAL, msg=msg)

    @classmethod
    def ebadf(cls, msg: str | None = None) -> "FsError":
        """Bad file descriptor."""
        return cls(_errno.EBADF, msg=msg)

    @classmethod
    def enxio(cls, msg: str | None = None) -> "FsError":
        """No such device or address (SEEK_DATA/SEEK_HOLE past EOF)."""
        return cls(_errno.ENXIO, msg=msg)

    @classmethod
    def enodata(cls, name: str | None = None) -> "FsError":
        """No data available (missing xattr)."""
        return cls(_errno.ENODATA, name)

    @classmethod
    def exdev(cls, path: str | None = None) -> "FsError":
        """Cross-device link."""
        return cls(_errno.EXDEV, path)

    @classmethod
    def enospc(cls, path: str | None = None) -> "FsError":
        """No space left on device."""
        return cls(_errno.ENOSPC, path)

    @classmethod
    def erofs(cls, path: str | None = None) -> "FsError":
        """Read-only filesystem."""
        return cls(_errno.EROFS, path)

    @classmethod
    def eloop(cls, path: str | None = None) -> "FsError":
        """Too many levels of symbolic links."""
        return cls(_errno.ELOOP, path)

    @classmethod
    def enametoolong(cls, path: str | None = None) -> "FsError":
        """File name too long."""
        return cls(_errno.ENAMETOOLONG, path)

    @classmethod
    def ebusy(cls, path: str | None = None) -> "FsError":
        """Device or resource busy."""
        return cls(_errno.EBUSY, path)

    @classmethod
    def efbig(cls, path: str | None = None) -> "FsError":
        """File too large (RLIMIT_FSIZE exceeded)."""
        return cls(_errno.EFBIG, path)

    @classmethod
    def enotsup(cls, msg: str | None = None) -> "FsError":
        """Operation not supported."""
        return cls(_errno.ENOTSUP, msg=msg)

    @classmethod
    def erange(cls, msg: str | None = None) -> "FsError":
        """Result too large for the supplied buffer."""
        return cls(_errno.ERANGE, msg=msg)

    @classmethod
    def estale(cls, msg: str | None = None) -> "FsError":
        """Stale file handle (used by the non-exportable-inode path)."""
        return cls(_errno.ESTALE, msg=msg)

    @classmethod
    def esrch(cls, msg: str | None = None) -> "FsError":
        """No such process."""
        return cls(_errno.ESRCH, msg=msg)

    @classmethod
    def emfile(cls, msg: str | None = None) -> "FsError":
        """Too many open files."""
        return cls(_errno.EMFILE, msg=msg)

    @classmethod
    def espipe(cls, msg: str | None = None) -> "FsError":
        """Illegal seek."""
        return cls(_errno.ESPIPE, msg=msg)

    @classmethod
    def eagain(cls, msg: str | None = None) -> "FsError":
        """Resource temporarily unavailable."""
        return cls(_errno.EAGAIN, msg=msg)

    @classmethod
    def epipe(cls, msg: str | None = None) -> "FsError":
        """Broken pipe."""
        return cls(_errno.EPIPE, msg=msg)

    @classmethod
    def enotconn(cls, msg: str | None = None) -> "FsError":
        """Socket is not connected."""
        return cls(_errno.ENOTCONN, msg=msg)

    @classmethod
    def econnrefused(cls, msg: str | None = None) -> "FsError":
        """Connection refused."""
        return cls(_errno.ECONNREFUSED, msg=msg)
