"""tmpfs: the in-memory filesystem the paper mounts CntrFS on top of for xfstests."""

from __future__ import annotations

from repro.fs.filesystem import Filesystem
from repro.fs.writeback import WB_REASON_FSYNC, VmTunables, WritebackEngine
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.trace import Tracer


class TmpFS(Filesystem):
    """Memory-backed filesystem: metadata and data operations are cheap.

    tmpfs has no backing device, so ``fsync`` is effectively free and the
    copy-on-write ioctls used by some xfstests are unsupported (the paper
    notes that four generic tests were skipped for exactly this reason).
    """

    fs_type = "tmpfs"
    supports_direct_io = False          # like real tmpfs, O_DIRECT is refused
    supports_reflink = False            # no copy-on-write ioctl support

    def __init__(self, name: str, clock: VirtualClock, costs: CostModel,
                 tracer: Tracer | None = None, capacity_bytes: int = 8 << 30) -> None:
        super().__init__(name, clock, costs, tracer, capacity_bytes=capacity_bytes)
        #: Dirty accounting lives on the unified engine like every other
        #: filesystem, but tmpfs pages have no backing store to write to:
        #: all thresholds are disabled, flushing costs nothing, and the
        #: vm.dirty_* sysctls do not retune it (as in Linux, where tmpfs is
        #: outside the writeback control).
        self.writeback = WritebackEngine(name, VmTunables(),
                                         self._writeback_flush, clock=clock,
                                         sysctl_tunable=False)

    def _writeback_flush(self, items, reason: str) -> None:
        # Nothing to write back to: the data already lives in memory.
        pass

    def _charge_write(self, ino: int, offset: int, size: int) -> None:
        super()._charge_write(ino, offset, size)
        self.writeback.note_dirty(ino, size)

    def _charge_fsync(self, ino: int, datasync: bool) -> None:
        # Nothing to persist: charge only the syscall-ish bookkeeping cost.
        self.writeback.flush(ino, reason=WB_REASON_FSYNC)
        self.clock.advance(self.costs.tmpfs_op_ns)
        self.tracer.record(self.clock.now_ns, self.fs_type, "fsync", self.costs.tmpfs_op_ns)

    def sync(self) -> None:
        self.writeback.flush()
        super().sync()

    def _inode_released(self, ino: int) -> None:
        # A dead inode's dirty bytes vanish with it; without this the
        # pending map would grow forever across create/delete churn.
        super()._inode_released(ino)
        self.writeback.discard(ino)

    def drop_caches(self, mode: int = 3) -> None:
        """tmpfs pages cannot be dropped (they *are* the data, as in Linux);
        only the dirty accounting is settled and the dentries invalidated."""
        if mode & 1:
            self.writeback.flush()
        super().drop_caches(mode)

    def crash(self) -> None:
        """Power-fail: tmpfs lives entirely in RAM, so *everything* is lost.

        The tree resets to an empty root — the state a fresh tmpfs mount
        presents after reboot.  ``sync``/``fsync`` never made tmpfs data
        durable (there is no backing store), exactly as in Linux.
        """
        from repro.fs.filesystem import ROOT_INO
        from repro.fs.inode import DirectoryInode

        self.writeback.crash_discard()
        self._inodes = {ROOT_INO: DirectoryInode(
            ino=ROOT_INO, mode=self.root().mode, nlink=2, fs_name=self.name)}
        self.root_ino = ROOT_INO
        # _next_ino stays monotonic: stale references (old FUSE nodeids,
        # cached stats) must never alias a post-crash inode.
        super().crash()

    def remount(self) -> None:
        """Power restored: re-arm the engine; the empty tree *is* the mount."""
        self.writeback.retune()
        super().remount()
