"""tmpfs: the in-memory filesystem the paper mounts CntrFS on top of for xfstests."""

from __future__ import annotations

from repro.fs.filesystem import Filesystem
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.trace import Tracer


class TmpFS(Filesystem):
    """Memory-backed filesystem: metadata and data operations are cheap.

    tmpfs has no backing device, so ``fsync`` is effectively free and the
    copy-on-write ioctls used by some xfstests are unsupported (the paper
    notes that four generic tests were skipped for exactly this reason).
    """

    fs_type = "tmpfs"
    supports_direct_io = False          # like real tmpfs, O_DIRECT is refused
    supports_reflink = False            # no copy-on-write ioctl support

    def __init__(self, name: str, clock: VirtualClock, costs: CostModel,
                 tracer: Tracer | None = None, capacity_bytes: int = 8 << 30) -> None:
        super().__init__(name, clock, costs, tracer, capacity_bytes=capacity_bytes)

    def _charge_fsync(self, ino: int, datasync: bool) -> None:
        # Nothing to persist: charge only the syscall-ish bookkeeping cost.
        self.clock.advance(self.costs.tmpfs_op_ns)
        self.tracer.record(self.clock.now_ns, self.fs_type, "fsync", self.costs.tmpfs_op_ns)
