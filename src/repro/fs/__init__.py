"""Simulated Linux VFS substrate.

This package implements an in-memory model of the Linux virtual filesystem
layer that the paper's system (CntrFS) is built on: inodes, dentries, open
file descriptions, mount namespaces with bind mounts and propagation modes,
a page cache with writeback, extended attributes, POSIX ACLs, advisory locks,
and two concrete filesystems (``tmpfs`` and a journaled, disk-cost-modelled
``ext4``-like filesystem).

The public entry point for path-based operations is :class:`repro.fs.vfs.VFS`;
the kernel layer (:mod:`repro.kernel`) wraps it in a per-process syscall
facade.
"""

from repro.fs.errors import FsError
from repro.fs.constants import OpenFlags, FileMode, SeekWhence, XattrFlags
from repro.fs.stat import FileStat, StatVfs
from repro.fs.inode import (
    Inode,
    RegularInode,
    DirectoryInode,
    SymlinkInode,
    DeviceInode,
    FifoInode,
    SocketInode,
)
from repro.fs.filesystem import Filesystem
from repro.fs.tmpfs import TmpFS
from repro.fs.ext4 import Ext4Fs
from repro.fs.blockdev import BlockDevice
from repro.fs.mount import Mount, MountNamespace, MountPropagation
from repro.fs.vfs import VFS, Credentials, OpenFile

__all__ = [
    "FsError",
    "OpenFlags",
    "FileMode",
    "SeekWhence",
    "XattrFlags",
    "FileStat",
    "StatVfs",
    "Inode",
    "RegularInode",
    "DirectoryInode",
    "SymlinkInode",
    "DeviceInode",
    "FifoInode",
    "SocketInode",
    "Filesystem",
    "TmpFS",
    "Ext4Fs",
    "BlockDevice",
    "Mount",
    "MountNamespace",
    "MountPropagation",
    "VFS",
    "Credentials",
    "OpenFile",
]
