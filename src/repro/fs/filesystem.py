"""Abstract filesystem ("superblock") with inode-level operations.

Concrete filesystems (:class:`repro.fs.tmpfs.TmpFS`,
:class:`repro.fs.ext4.Ext4Fs`, the overlay filesystem used by container
images, and the FUSE client filesystem) subclass this and override the cost
hooks — the *semantics* of the Linux filesystem API live here, once.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.fs.constants import FileMode, FallocateMode, RenameFlags, NAME_MAX
from repro.fs.errors import FsError
from repro.fs.inode import (
    DeviceInode,
    DirectoryInode,
    FifoInode,
    FileData,
    Inode,
    RegularInode,
    SocketInode,
    SymlinkInode,
)
from repro.fs.locks import LockTable
from repro.fs.stat import StatVfs
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.trace import Tracer

_fs_id_counter = itertools.count(1)

ROOT_INO = 1

#: Plain-int copies of the mode bits touched on every create/mkdir; see the
#: matching constants in :mod:`repro.fs.vfs` for why enum arithmetic is
#: avoided on these paths.
_S_IFREG = int(FileMode.S_IFREG)
_S_IFDIR = int(FileMode.S_IFDIR)
_S_ISGID = int(FileMode.S_ISGID)


class Filesystem:
    """Base in-memory filesystem with full Linux API semantics."""

    fs_type = "genericfs"
    #: Whether open(O_DIRECT) is honoured (the FUSE client reports False,
    #: reproducing xfstests failure #391).
    supports_direct_io = True
    #: Whether inodes can be re-opened by handle (``open_by_handle_at``);
    #: the FUSE client reports False, reproducing xfstests failure #426.
    supports_export_handles = True
    #: Whether the filesystem interprets POSIX ACLs during chmod; the FUSE
    #: client delegates ACLs to the backing store, reproducing failure #375.
    interprets_acls_on_chmod = True
    #: Whether VFS path resolution may cache this filesystem's dentries.
    #: Synthetic filesystems whose namespace changes without going through the
    #: name-mutating API (procfs) opt out.
    dcacheable = True

    def __init__(self, name: str, clock: VirtualClock, costs: CostModel,
                 tracer: Tracer | None = None, capacity_bytes: int = 64 << 30,
                 max_inodes: int = 1 << 20) -> None:
        self.name = name
        self.fs_id = next(_fs_id_counter)
        self.clock = clock
        self.costs = costs
        self.tracer = tracer or Tracer(enabled=False)
        self.capacity_bytes = capacity_bytes
        self.max_inodes = max_inodes
        self.read_only = False
        #: When False, regular-file writes track sizes but do not keep bytes
        #: (used by the performance benchmarks to avoid real memory usage).
        self.store_data = True
        self._inodes: dict[int, Inode] = {}
        self._locks: dict[int, LockTable] = {}
        self._pins: dict[int, int] = {}
        self._next_ino = ROOT_INO
        root = DirectoryInode(ino=self._alloc_ino(), mode=FileMode.S_IFDIR | 0o755,
                              nlink=2, fs_name=self.name)
        self._inodes[root.ino] = root
        self.root_ino = root.ino
        #: Bumped whenever an existing name binding is removed or rebound;
        #: the VFS dentry cache treats entries from older generations as
        #: stale.  Adding brand-new names does not bump it (positive entries
        #: cannot go stale from a pure addition, and negatives are not cached).
        self.dentry_gen = 0

    def invalidate_dentries(self) -> None:
        """Invalidate every VFS dentry-cache entry pointing into this filesystem."""
        self.dentry_gen += 1

    # ------------------------------------------------------------ crash model
    def crash(self) -> None:
        """Power-fail this filesystem: discard every piece of volatile state.

        The base implementation models a *kernel-regenerated* filesystem
        (procfs, sysfs, devfs, ...): nothing it shows is backed by caches, so
        only the transient per-boot state — advisory locks, open-file pins
        and cached dentries — is dropped.  Filesystems whose contents live in
        RAM (tmpfs) or behind a page cache and journal (ext4, the FUSE
        client) override this with their own loss semantics.
        """
        self._locks.clear()
        self._pins.clear()
        self.invalidate_dentries()

    def remount(self) -> None:
        """Bring the filesystem back after :meth:`crash` (power restored).

        The base implementation has nothing to replay; durable filesystems
        override this to rebuild their live tree from the journal.
        """
        self.invalidate_dentries()

    def drop_caches(self, mode: int = 3) -> None:
        """Apply ``echo mode > /proc/sys/vm/drop_caches`` to this filesystem.

        Mode bits follow Linux: 1 drops the page cache, 2 drops dentries and
        inode caches, 3 both.  The base filesystem keeps no page cache, so
        only the dentry half applies; filesystems with caches override this
        (and, matching the long-standing behaviour of the experiments' direct
        ``drop_caches()`` calls, flush dirty data before invalidating — the
        ``sync; echo 3 > drop_caches`` idiom in one step).
        """
        if mode & 2:
            self.invalidate_dentries()

    def charge_lookup_hit(self, dir_ino: int, name: str, ino: int) -> None:
        """Charge the virtual cost of a VFS dentry-cache hit on ``name``.

        Deliberately identical to what this filesystem's own warm ``lookup``
        path charges, so resolving through the dcache never shifts simulated
        results — the dcache removes interpreter work (wall-clock), not
        modelled kernel work (virtual time).  Filesystems whose warm path has
        extra preconditions (the FUSE client's attribute freshness) override
        this to revalidate when those do not hold.
        """
        self._charge_metadata("lookup")

    # ------------------------------------------------------------------ hooks
    def _charge_metadata(self, op: str) -> None:
        """Charge the virtual-time cost of one metadata operation."""
        self.clock.advance(self.costs.tmpfs_op_ns)
        self.tracer.record(self.clock.now_ns, self.fs_type, op, self.costs.tmpfs_op_ns)

    def _charge_read(self, ino: int, offset: int, size: int) -> None:
        """Charge the cost of reading ``size`` bytes."""
        cost = int(self.costs.tmpfs_per_byte_ns * size + self.costs.tmpfs_op_ns)
        self.clock.advance(cost)
        self.tracer.record(self.clock.now_ns, self.fs_type, "read", cost)

    def _charge_write(self, ino: int, offset: int, size: int) -> None:
        """Charge the cost of writing ``size`` bytes."""
        cost = int(self.costs.tmpfs_per_byte_ns * size + self.costs.tmpfs_op_ns)
        self.clock.advance(cost)
        self.tracer.record(self.clock.now_ns, self.fs_type, "write", cost)

    def _charge_fsync(self, ino: int, datasync: bool) -> None:
        """Charge the cost of persisting ``ino``."""
        self._charge_metadata("fsync")

    # -------------------------------------------------------------- inode mgmt
    def _alloc_ino(self) -> int:
        if len(self._inodes) >= self.max_inodes:
            raise FsError.enospc(self.name)
        ino = self._next_ino
        self._next_ino += 1
        return ino

    def _now(self) -> int:
        return self.clock.now_ns

    def iget(self, ino: int) -> Inode:
        """Fetch an inode by number."""
        try:
            return self._inodes[ino]
        except KeyError:
            raise FsError.estale(f"ino {ino}") from None

    def root(self) -> DirectoryInode:
        """The root directory inode."""
        root = self.iget(self.root_ino)
        assert isinstance(root, DirectoryInode)
        return root

    def inode_count(self) -> int:
        """Number of live inodes."""
        return len(self._inodes)

    def used_bytes(self) -> int:
        """Approximate bytes of file data stored."""
        return sum(i.size for i in self._inodes.values() if isinstance(i, RegularInode))

    def locks(self, ino: int) -> LockTable:
        """The advisory lock table for ``ino``."""
        return self._locks.setdefault(ino, LockTable())

    def _require_dir(self, ino: int) -> DirectoryInode:
        inode = self.iget(ino)
        if not isinstance(inode, DirectoryInode):
            raise FsError.enotdir(str(ino))
        return inode

    def _require_writable(self) -> None:
        if self.read_only:
            raise FsError.erofs(self.name)

    def _new_inode(self, cls, mode: int, uid: int, gid: int, **kwargs) -> Inode:
        now = self._now()
        inode = cls(ino=self._alloc_ino(), mode=mode, uid=uid, gid=gid,
                    atime_ns=now, mtime_ns=now, ctime_ns=now,
                    fs_name=self.name, **kwargs)
        self._inodes[inode.ino] = inode
        return inode

    # -------------------------------------------------------------- directory ops
    def lookup(self, dir_ino: int, name: str) -> Inode:
        """Look ``name`` up in the directory ``dir_ino``."""
        self._charge_metadata("lookup")
        directory = self._require_dir(dir_ino)
        return self.iget(directory.lookup(name))

    def create(self, dir_ino: int, name: str, mode: int, uid: int = 0,
               gid: int = 0) -> RegularInode:
        """Create a regular file."""
        self._require_writable()
        self._charge_metadata("create")
        directory = self._require_dir(dir_ino)
        inode = self._new_inode(RegularInode, _S_IFREG | (int(mode) & 0o7777), uid, gid,
                                data=FileData(store=self.store_data))
        # Inherit setgid group semantics from the parent directory.
        if directory.mode & _S_ISGID:
            inode.gid = directory.gid
        directory.add(name, inode.ino)
        directory.touch(self._now(), mtime=True, ctime=True)
        return inode

    def mkdir(self, dir_ino: int, name: str, mode: int, uid: int = 0,
              gid: int = 0) -> DirectoryInode:
        """Create a directory."""
        self._require_writable()
        self._charge_metadata("mkdir")
        directory = self._require_dir(dir_ino)
        inode = self._new_inode(DirectoryInode, _S_IFDIR | (int(mode) & 0o7777), uid, gid)
        inode.nlink = 2
        inode.parent_ino = directory.ino
        if directory.mode & _S_ISGID:
            inode.gid = directory.gid
            inode.mode |= _S_ISGID
        directory.add(name, inode.ino)
        directory.nlink += 1
        directory.touch(self._now(), mtime=True, ctime=True)
        return inode

    def symlink(self, dir_ino: int, name: str, target: str, uid: int = 0,
                gid: int = 0) -> SymlinkInode:
        """Create a symbolic link to ``target``."""
        self._require_writable()
        self._charge_metadata("symlink")
        directory = self._require_dir(dir_ino)
        inode = self._new_inode(SymlinkInode, FileMode.S_IFLNK | 0o777, uid, gid,
                                target=target)
        directory.add(name, inode.ino)
        directory.touch(self._now(), mtime=True, ctime=True)
        return inode

    def mknod(self, dir_ino: int, name: str, mode: int, rdev: int = 0,
              uid: int = 0, gid: int = 0) -> Inode:
        """Create a device node, FIFO or socket inode."""
        self._require_writable()
        self._charge_metadata("mknod")
        directory = self._require_dir(dir_ino)
        ftype = mode & FileMode.S_IFMT
        if ftype in (FileMode.S_IFBLK, FileMode.S_IFCHR):
            inode = self._new_inode(DeviceInode, mode, uid, gid)
            inode.rdev = rdev
        elif ftype == FileMode.S_IFIFO:
            inode = self._new_inode(FifoInode, mode, uid, gid)
        elif ftype == FileMode.S_IFSOCK:
            inode = self._new_inode(SocketInode, mode, uid, gid)
        elif ftype == FileMode.S_IFREG or ftype == 0:
            inode = self._new_inode(RegularInode, FileMode.S_IFREG | (mode & 0o7777),
                                    uid, gid, data=FileData(store=self.store_data))
        else:
            raise FsError.einval(f"unsupported mknod type {oct(ftype)}")
        directory.add(name, inode.ino)
        directory.touch(self._now(), mtime=True, ctime=True)
        return inode

    def link(self, dir_ino: int, name: str, target_ino: int) -> Inode:
        """Create a hard link to ``target_ino``."""
        self._require_writable()
        self._charge_metadata("link")
        directory = self._require_dir(dir_ino)
        target = self.iget(target_ino)
        if target.is_dir:
            raise FsError.eperm(name)
        directory.add(name, target.ino)
        target.nlink += 1
        target.ctime_ns = self._now()
        directory.touch(self._now(), mtime=True, ctime=True)
        return target

    def unlink(self, dir_ino: int, name: str) -> None:
        """Remove a non-directory entry."""
        self._require_writable()
        self._charge_metadata("unlink")
        directory = self._require_dir(dir_ino)
        ino = directory.lookup(name)
        inode = self.iget(ino)
        if inode.is_dir:
            raise FsError.eisdir(name)
        directory.remove(name)
        self.invalidate_dentries()
        inode.nlink -= 1
        inode.ctime_ns = self._now()
        directory.touch(self._now(), mtime=True, ctime=True)
        if inode.nlink <= 0:
            self._drop_inode(inode)

    def rmdir(self, dir_ino: int, name: str) -> None:
        """Remove an empty directory."""
        self._require_writable()
        self._charge_metadata("rmdir")
        directory = self._require_dir(dir_ino)
        ino = directory.lookup(name)
        inode = self.iget(ino)
        if not inode.is_dir:
            raise FsError.enotdir(name)
        assert isinstance(inode, DirectoryInode)
        if not inode.is_empty():
            raise FsError.enotempty(name)
        directory.remove(name)
        self.invalidate_dentries()
        directory.nlink -= 1
        directory.touch(self._now(), mtime=True, ctime=True)
        inode.nlink = 0
        self._drop_inode(inode)

    def rename(self, old_dir: int, old_name: str, new_dir: int, new_name: str,
               flags: int = 0) -> None:
        """Rename/move an entry, honouring ``RENAME_NOREPLACE``/``RENAME_EXCHANGE``.

        The dentry invalidation happens after the name rebinding succeeds
        (every failure path raises before the first mutation), so failed
        renames do not wipe the dentry cache.
        """
        self._require_writable()
        self._charge_metadata("rename")
        src_dir = self._require_dir(old_dir)
        dst_dir = self._require_dir(new_dir)
        src_ino = src_dir.lookup(old_name)
        src_inode = self.iget(src_ino)
        dst_exists = new_name in dst_dir.entries
        if flags & RenameFlags.RENAME_NOREPLACE and dst_exists:
            raise FsError.eexist(new_name)
        if flags & RenameFlags.RENAME_EXCHANGE:
            if not dst_exists:
                raise FsError.enoent(new_name)
            dst_ino = dst_dir.entries[new_name]
            src_dir.replace(old_name, dst_ino)
            dst_dir.replace(new_name, src_ino)
            self.invalidate_dentries()
            now = self._now()
            src_dir.touch(now, mtime=True, ctime=True)
            dst_dir.touch(now, mtime=True, ctime=True)
            return
        if dst_exists:
            dst_ino = dst_dir.entries[new_name]
            dst_inode = self.iget(dst_ino)
            if dst_inode.is_dir:
                assert isinstance(dst_inode, DirectoryInode)
                if not src_inode.is_dir:
                    raise FsError.eisdir(new_name)
                if not dst_inode.is_empty():
                    raise FsError.enotempty(new_name)
                dst_dir.remove(new_name)
                dst_dir.nlink -= 1
                dst_inode.nlink = 0
                self._drop_inode(dst_inode)
            else:
                if src_inode.is_dir:
                    raise FsError.enotdir(new_name)
                dst_dir.remove(new_name)
                dst_inode.nlink -= 1
                if dst_inode.nlink <= 0:
                    self._drop_inode(dst_inode)
        src_dir.remove(old_name)
        dst_dir.replace(new_name, src_ino)
        self.invalidate_dentries()
        if src_inode.is_dir and src_dir is not dst_dir:
            src_dir.nlink -= 1
            dst_dir.nlink += 1
            assert isinstance(src_inode, DirectoryInode)
            src_inode.parent_ino = dst_dir.ino
        now = self._now()
        src_inode.ctime_ns = now
        src_dir.touch(now, mtime=True, ctime=True)
        dst_dir.touch(now, mtime=True, ctime=True)

    def readdir(self, dir_ino: int) -> list[tuple[str, int, int]]:
        """List a directory: ``(name, ino, file_type_bits)`` tuples including dot entries."""
        self._charge_metadata("readdir")
        directory = self._require_dir(dir_ino)
        out = [(".", directory.ino, int(FileMode.S_IFDIR)),
               ("..", directory.ino, int(FileMode.S_IFDIR))]
        for name, ino in directory.entries.items():
            inode = self.iget(ino)
            out.append((name, ino, inode.file_type))
        directory.touch(self._now(), atime=True)
        return out

    def readlink(self, ino: int) -> str:
        """Read a symlink target."""
        self._charge_metadata("readlink")
        inode = self.iget(ino)
        if not isinstance(inode, SymlinkInode):
            raise FsError.einval(f"ino {ino} is not a symlink")
        return inode.target

    # -------------------------------------------------------------- data ops
    def read(self, ino: int, offset: int, size: int) -> bytes:
        """Read file data."""
        inode = self.iget(ino)
        if isinstance(inode, DirectoryInode):
            raise FsError.eisdir(str(ino))
        if not isinstance(inode, RegularInode):
            raise FsError.einval(f"ino {ino} has no data")
        data = inode.data.read(offset, size)
        self._charge_read(ino, offset, len(data))
        inode.touch(self._now(), atime=True)
        return data

    def write(self, ino: int, offset: int, data: bytes) -> int:
        """Write file data."""
        self._require_writable()
        inode = self.iget(ino)
        if not isinstance(inode, RegularInode):
            raise FsError.einval(f"ino {ino} has no data")
        if offset + len(data) > self.capacity_bytes:
            raise FsError.enospc(self.name)
        written = inode.data.write(offset, data)
        self._charge_write(ino, offset, written)
        now = self._now()
        inode.touch(now, mtime=True, ctime=True)
        # POSIX: writing by a non-owner clears setuid/setgid; the VFS decides
        # *whether* to clear, the fs records the resulting mode via setattr.
        return written

    def truncate(self, ino: int, size: int) -> None:
        """Truncate or extend a file."""
        self._require_writable()
        self._charge_metadata("truncate")
        inode = self.iget(ino)
        if isinstance(inode, DirectoryInode):
            raise FsError.eisdir(str(ino))
        if not isinstance(inode, RegularInode):
            raise FsError.einval(f"ino {ino} has no data")
        inode.data.truncate(size)
        inode.touch(self._now(), mtime=True, ctime=True)

    def fallocate(self, ino: int, mode: int, offset: int, length: int) -> None:
        """Preallocate or punch a hole in a file."""
        self._require_writable()
        self._charge_metadata("fallocate")
        inode = self.iget(ino)
        if not isinstance(inode, RegularInode):
            raise FsError.einval(f"ino {ino} has no data")
        if mode & FallocateMode.PUNCH_HOLE or mode & FallocateMode.ZERO_RANGE:
            inode.data.punch_hole(offset, length)
        else:
            end = offset + length
            if end > len(inode.data) and not (mode & FallocateMode.KEEP_SIZE):
                inode.data.truncate(end)
        inode.touch(self._now(), mtime=True, ctime=True)

    def fsync(self, ino: int, datasync: bool = False) -> None:
        """Flush a file's data (and metadata unless ``datasync``) to stable storage."""
        self.iget(ino)
        self._charge_fsync(ino, datasync)

    def sync(self) -> None:
        """Flush the whole filesystem."""
        self._charge_metadata("sync")

    # -------------------------------------------------------------- attr ops
    def getattr(self, ino: int):
        """Return a :class:`repro.fs.stat.FileStat` for ``ino``."""
        self._charge_metadata("getattr")
        inode = self.iget(ino)
        return inode.stat(st_dev=self.fs_id)

    def setattr(self, ino: int, *, mode: int | None = None, uid: int | None = None,
                gid: int | None = None, size: int | None = None,
                atime_ns: int | None = None, mtime_ns: int | None = None) -> None:
        """Apply a combination of chmod/chown/truncate/utimens changes."""
        self._require_writable()
        self._charge_metadata("setattr")
        inode = self.iget(ino)
        now = self._now()
        if mode is not None:
            inode.chmod(mode, now)
        if uid is not None or gid is not None:
            inode.chown(uid if uid is not None else -1,
                        gid if gid is not None else -1, now)
        if size is not None:
            if not isinstance(inode, RegularInode):
                raise FsError.einval(f"ino {ino} has no data")
            inode.data.truncate(size)
            inode.touch(now, mtime=True, ctime=True)
        if atime_ns is not None:
            inode.atime_ns = atime_ns
        if mtime_ns is not None:
            inode.mtime_ns = mtime_ns

    # -------------------------------------------------------------- xattr ops
    def setxattr(self, ino: int, name: str, value: bytes, flags: int = 0) -> None:
        """Set an extended attribute."""
        self._require_writable()
        self._charge_metadata("setxattr")
        self.iget(ino).set_xattr(name, value, flags)

    def getxattr(self, ino: int, name: str) -> bytes:
        """Get an extended attribute."""
        self._charge_metadata("getxattr")
        return self.iget(ino).get_xattr(name)

    def listxattr(self, ino: int) -> list[str]:
        """List extended attribute names."""
        self._charge_metadata("listxattr")
        return self.iget(ino).list_xattrs()

    def removexattr(self, ino: int, name: str) -> None:
        """Remove an extended attribute."""
        self._require_writable()
        self._charge_metadata("removexattr")
        self.iget(ino).remove_xattr(name)

    # -------------------------------------------------------------- misc
    def statfs(self) -> StatVfs:
        """Filesystem statistics."""
        bsize = self.costs.page_size
        blocks = self.capacity_bytes // bsize
        used = self.used_bytes() // bsize
        return StatVfs(
            f_bsize=bsize,
            f_blocks=blocks,
            f_bfree=max(0, blocks - used),
            f_bavail=max(0, blocks - used),
            f_files=self.max_inodes,
            f_ffree=max(0, self.max_inodes - len(self._inodes)),
            f_namemax=NAME_MAX,
        )

    def pin(self, ino: int) -> None:
        """Keep an inode alive while it is open, even if it becomes unlinked."""
        self._pins[ino] = self._pins.get(ino, 0) + 1

    def unpin(self, ino: int) -> None:
        """Drop one pin; the inode is released once unpinned and unlinked."""
        count = self._pins.get(ino, 0) - 1
        if count <= 0:
            self._pins.pop(ino, None)
            inode = self._inodes.get(ino)
            if inode is not None and inode.nlink <= 0:
                self._inodes.pop(ino, None)
                self._locks.pop(ino, None)
                self._inode_released(ino)
        else:
            self._pins[ino] = count

    def _drop_inode(self, inode: Inode) -> None:
        """Release a dead inode unless an open file description still pins it."""
        if self._pins.get(inode.ino, 0) > 0:
            return
        self._inodes.pop(inode.ino, None)
        self._locks.pop(inode.ino, None)
        self._inode_released(inode.ino)

    def _inode_released(self, ino: int) -> None:
        """Hook: the inode is gone (unlinked and unpinned).  Filesystems with
        caches or writeback state drop the dead inode's entries here, as the
        kernel's inode eviction discards an unlinked file's dirty pages
        instead of writing them back."""

    # -------------------------------------------------------------- helpers
    def walk_tree(self, dir_ino: int | None = None) -> Iterable[tuple[str, Inode]]:
        """Depth-first walk yielding ``(path, inode)`` pairs, for debugging/tests."""
        start = dir_ino if dir_ino is not None else self.root_ino

        def _walk(ino: int, prefix: str):
            inode = self.iget(ino)
            yield prefix or "/", inode
            if isinstance(inode, DirectoryInode):
                for name, child_ino in list(inode.entries.items()):
                    yield from _walk(child_ino, f"{prefix}/{name}")

        yield from _walk(start, "")
