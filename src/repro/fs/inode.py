"""Inode object model.

Inodes are plain in-memory objects owned by a :class:`repro.fs.filesystem.Filesystem`.
Data for regular files is stored in a page-granular :class:`FileData` container so
that the page cache and the FUSE driver can reason about page boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fs.acl import PosixAcl
from repro.fs.constants import FileMode, NAME_MAX
from repro.fs.errors import FsError
from repro.fs.stat import FileStat

PAGE_SIZE = 4096

#: Plain-int copies of the file-type mode bits.  ``mode`` arithmetic runs on
#: every path-resolution step; going through ``IntFlag.__and__`` there costs
#: more than the rest of the check combined (it re-enters the enum machinery
#: per operation), so the hot properties below use these ints directly.
_S_IFMT = int(FileMode.S_IFMT)
_S_IFDIR = int(FileMode.S_IFDIR)
_S_IFREG = int(FileMode.S_IFREG)
_S_IFLNK = int(FileMode.S_IFLNK)


class FileData:
    """Byte contents of a regular file, stored sparsely as 4 KiB pages.

    Only pages that have actually been written are materialised; holes read
    back as zeros.  With ``store=False`` the container tracks sizes without
    keeping any bytes at all — the performance benchmarks use this mode so
    that multi-gigabyte simulated workloads do not consume real memory (the
    cost model never looks at the bytes, only at the sizes).
    """

    def __init__(self, initial: bytes = b"", store: bool = True) -> None:
        self.store = store
        self._pages: dict[int, bytearray] = {}
        self._size = 0
        if initial:
            self.write(0, initial)

    def __len__(self) -> int:
        return self._size

    def read(self, offset: int, size: int) -> bytes:
        """Read up to ``size`` bytes starting at ``offset``."""
        if offset >= self._size or size <= 0:
            return b""
        size = min(size, self._size - offset)
        if not self.store:
            return b"\x00" * size
        out = bytearray()
        pos = offset
        remaining = size
        while remaining > 0:
            page_idx, page_off = divmod(pos, PAGE_SIZE)
            chunk = min(remaining, PAGE_SIZE - page_off)
            page = self._pages.get(page_idx)
            if page is None:
                out.extend(b"\x00" * chunk)
            else:
                out.extend(page[page_off:page_off + chunk])
            pos += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, offset: int, data: bytes) -> int:
        """Write ``data`` at ``offset``; holes before ``offset`` read as zeros."""
        end = offset + len(data)
        if self.store and data:
            pos = offset
            remaining = memoryview(data)
            while remaining:
                page_idx, page_off = divmod(pos, PAGE_SIZE)
                chunk = min(len(remaining), PAGE_SIZE - page_off)
                page = self._pages.get(page_idx)
                if page is None:
                    page = bytearray(PAGE_SIZE)
                    self._pages[page_idx] = page
                page[page_off:page_off + chunk] = remaining[:chunk]
                remaining = remaining[chunk:]
                pos += chunk
        self._size = max(self._size, end)
        return len(data)

    def truncate(self, size: int) -> None:
        """Resize the file to exactly ``size`` bytes (growth creates a hole)."""
        if size < self._size and self.store:
            last_page = size // PAGE_SIZE
            for idx in [i for i in self._pages if i > last_page]:
                del self._pages[idx]
            if size % PAGE_SIZE and last_page in self._pages:
                keep = size % PAGE_SIZE
                page = self._pages[last_page]
                page[keep:] = b"\x00" * (PAGE_SIZE - keep)
        self._size = size

    def punch_hole(self, offset: int, length: int) -> None:
        """Zero a byte range without changing the file size.

        Fully covered pages are dropped from the sparse store (restoring the
        hole) instead of being overwritten with zeros.
        """
        if not self.store:
            return
        end = min(offset + length, self._size)
        pos = offset
        while pos < end:
            page_idx, page_off = divmod(pos, PAGE_SIZE)
            chunk = min(end - pos, PAGE_SIZE - page_off)
            if chunk == PAGE_SIZE:
                self._pages.pop(page_idx, None)
            else:
                page = self._pages.get(page_idx)
                if page is not None:
                    page[page_off:page_off + chunk] = b"\x00" * chunk
            pos += chunk
        return

    def clone(self) -> "FileData":
        """An independent copy sharing nothing with the original.

        Cost is proportional to the number of materialised pages, so the
        ``store=False`` benchmark mode clones in O(1) regardless of size.
        The crash-consistency journal uses clones as its durable data images.
        """
        copy = FileData(store=self.store)
        copy._size = self._size
        copy._pages = {idx: bytearray(page) for idx, page in self._pages.items()}
        return copy

    def to_bytes(self) -> bytes:
        """Full file contents."""
        return self.read(0, self._size)

    def stored_bytes(self) -> int:
        """Bytes of real memory used for page storage."""
        return len(self._pages) * PAGE_SIZE


@dataclass
class Inode:
    """Common inode state shared by every file type."""

    ino: int
    mode: int
    uid: int = 0
    gid: int = 0
    nlink: int = 1
    rdev: int = 0
    atime_ns: int = 0
    mtime_ns: int = 0
    ctime_ns: int = 0
    xattrs: dict[str, bytes] = field(default_factory=dict)
    acl: PosixAcl | None = None
    generation: int = 0
    fs_name: str = ""

    def __post_init__(self) -> None:
        # Normalise IntFlag-typed modes to plain ints once at construction so
        # every later mode check is integer arithmetic, not enum dispatch.
        self.mode = int(self.mode)

    @property
    def file_type(self) -> int:
        """File-type bits of the mode."""
        return self.mode & _S_IFMT

    @property
    def is_dir(self) -> bool:
        """True for directory inodes."""
        return self.mode & _S_IFMT == _S_IFDIR

    @property
    def is_regular(self) -> bool:
        """True for regular-file inodes."""
        return self.mode & _S_IFMT == _S_IFREG

    @property
    def is_symlink(self) -> bool:
        """True for symbolic-link inodes."""
        return self.mode & _S_IFMT == _S_IFLNK

    @property
    def size(self) -> int:
        """Logical size in bytes; overridden by concrete inode types."""
        return 0

    def touch(self, now_ns: int, *, atime: bool = False, mtime: bool = False,
              ctime: bool = False) -> None:
        """Update the requested timestamps to ``now_ns``."""
        if atime:
            self.atime_ns = now_ns
        if mtime:
            self.mtime_ns = now_ns
        if ctime:
            self.ctime_ns = now_ns

    def chmod(self, mode: int, now_ns: int) -> None:
        """Change permission bits, preserving the file-type bits."""
        self.mode = self.file_type | (mode & 0o7777)
        self.ctime_ns = now_ns

    def chown(self, uid: int, gid: int, now_ns: int) -> None:
        """Change ownership; ``-1`` leaves the corresponding id unchanged.

        Following POSIX, a chown by a non-owner clears the setuid/setgid bits;
        the VFS layer handles that policy, this method only records state.
        """
        if uid >= 0:
            self.uid = uid
        if gid >= 0:
            self.gid = gid
        self.ctime_ns = now_ns

    # --- extended attributes -------------------------------------------------
    def set_xattr(self, name: str, value: bytes, flags: int = 0) -> None:
        """Set one extended attribute, honouring XATTR_CREATE/REPLACE flags."""
        from repro.fs.constants import XattrFlags

        if flags & XattrFlags.XATTR_CREATE and name in self.xattrs:
            raise FsError.eexist(name)
        if flags & XattrFlags.XATTR_REPLACE and name not in self.xattrs:
            raise FsError.enodata(name)
        if len(name) > NAME_MAX:
            raise FsError.erange(name)
        self.xattrs[name] = bytes(value)

    def get_xattr(self, name: str) -> bytes:
        """Read one extended attribute."""
        if name not in self.xattrs:
            raise FsError.enodata(name)
        return self.xattrs[name]

    def remove_xattr(self, name: str) -> None:
        """Delete one extended attribute."""
        if name not in self.xattrs:
            raise FsError.enodata(name)
        del self.xattrs[name]

    def list_xattrs(self) -> list[str]:
        """Names of all extended attributes, sorted."""
        return sorted(self.xattrs)

    def stat(self, st_dev: int, block_size: int = PAGE_SIZE) -> FileStat:
        """Produce a :class:`FileStat` snapshot."""
        size = self.size
        blocks = (size + 511) // 512
        return FileStat(
            st_dev=st_dev,
            st_ino=self.ino,
            st_mode=self.mode,
            st_nlink=self.nlink,
            st_uid=self.uid,
            st_gid=self.gid,
            st_rdev=self.rdev,
            st_size=size,
            st_blksize=block_size,
            st_blocks=blocks,
            st_atime_ns=self.atime_ns,
            st_mtime_ns=self.mtime_ns,
            st_ctime_ns=self.ctime_ns,
        )


@dataclass
class RegularInode(Inode):
    """A regular file backed by :class:`FileData`."""

    data: FileData = field(default_factory=FileData)

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class DirectoryInode(Inode):
    """A directory: an ordered mapping of names to child inode numbers."""

    entries: dict[str, int] = field(default_factory=dict)
    #: Inode number of the parent directory (``None`` for a filesystem root,
    #: which is its own parent).  Used by the VFS to resolve ``..``.
    parent_ino: int | None = None

    @property
    def size(self) -> int:
        # Model directory size the way ext4 reports it: one block minimum.
        return max(PAGE_SIZE, len(self.entries) * 32)

    def lookup(self, name: str) -> int:
        """Return the inode number bound to ``name``."""
        if name not in self.entries:
            raise FsError.enoent(name)
        return self.entries[name]

    def add(self, name: str, ino: int) -> None:
        """Bind ``name`` to ``ino``; fails if the name already exists."""
        if len(name) > NAME_MAX:
            raise FsError.enametoolong(name)
        if name in self.entries:
            raise FsError.eexist(name)
        self.entries[name] = ino

    def replace(self, name: str, ino: int) -> None:
        """Bind ``name`` to ``ino``, overwriting any previous binding."""
        if len(name) > NAME_MAX:
            raise FsError.enametoolong(name)
        self.entries[name] = ino

    def remove(self, name: str) -> int:
        """Unbind ``name`` and return the inode number it pointed to."""
        if name not in self.entries:
            raise FsError.enoent(name)
        return self.entries.pop(name)

    def is_empty(self) -> bool:
        """True when the directory has no entries (besides the implicit dots)."""
        return not self.entries

    def names(self) -> list[str]:
        """Entry names in insertion order."""
        return list(self.entries)


@dataclass
class SymlinkInode(Inode):
    """A symbolic link holding its target path."""

    target: str = ""

    @property
    def size(self) -> int:
        return len(self.target)


@dataclass
class DeviceInode(Inode):
    """A character or block device node."""

    @property
    def size(self) -> int:
        return 0


@dataclass
class FifoInode(Inode):
    """A named pipe; the pipe buffer itself lives in the kernel layer."""

    pipe_id: int | None = None

    @property
    def size(self) -> int:
        return 0


@dataclass
class SocketInode(Inode):
    """A Unix-domain socket bound into the filesystem namespace."""

    socket_id: int | None = None

    @property
    def size(self) -> int:
        return 0
