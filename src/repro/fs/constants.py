"""Flag and mode constants mirroring the Linux filesystem API."""

from __future__ import annotations

import enum


class FileMode(enum.IntFlag):
    """File type and permission bits, matching ``stat.S_IF*`` and mode bits."""

    # file type bits
    S_IFMT = 0o170000
    S_IFSOCK = 0o140000
    S_IFLNK = 0o120000
    S_IFREG = 0o100000
    S_IFBLK = 0o060000
    S_IFDIR = 0o040000
    S_IFCHR = 0o020000
    S_IFIFO = 0o010000

    # special permission bits
    S_ISUID = 0o4000
    S_ISGID = 0o2000
    S_ISVTX = 0o1000

    # owner / group / other permission bits
    S_IRWXU = 0o700
    S_IRUSR = 0o400
    S_IWUSR = 0o200
    S_IXUSR = 0o100
    S_IRWXG = 0o070
    S_IRGRP = 0o040
    S_IWGRP = 0o020
    S_IXGRP = 0o010
    S_IRWXO = 0o007
    S_IROTH = 0o004
    S_IWOTH = 0o002
    S_IXOTH = 0o001


def file_type(mode: int) -> int:
    """Return only the file-type bits of ``mode``."""
    return mode & FileMode.S_IFMT


def is_dir(mode: int) -> bool:
    """True when ``mode`` describes a directory."""
    return file_type(mode) == FileMode.S_IFDIR


def is_regular(mode: int) -> bool:
    """True when ``mode`` describes a regular file."""
    return file_type(mode) == FileMode.S_IFREG


def is_symlink(mode: int) -> bool:
    """True when ``mode`` describes a symbolic link."""
    return file_type(mode) == FileMode.S_IFLNK


def is_device(mode: int) -> bool:
    """True when ``mode`` describes a block or character device."""
    return file_type(mode) in (FileMode.S_IFBLK, FileMode.S_IFCHR)


def is_socket(mode: int) -> bool:
    """True when ``mode`` describes a Unix socket."""
    return file_type(mode) == FileMode.S_IFSOCK


def is_fifo(mode: int) -> bool:
    """True when ``mode`` describes a FIFO."""
    return file_type(mode) == FileMode.S_IFIFO


class OpenFlags(enum.IntFlag):
    """``open(2)`` flags."""

    O_RDONLY = 0o0
    O_WRONLY = 0o1
    O_RDWR = 0o2
    O_ACCMODE = 0o3
    O_CREAT = 0o100
    O_EXCL = 0o200
    O_NOCTTY = 0o400
    O_TRUNC = 0o1000
    O_APPEND = 0o2000
    O_NONBLOCK = 0o4000
    O_DSYNC = 0o10000
    O_DIRECT = 0o40000
    O_DIRECTORY = 0o200000
    O_NOFOLLOW = 0o400000
    O_CLOEXEC = 0o2000000
    O_SYNC = 0o4010000
    O_PATH = 0o10000000
    O_TMPFILE = 0o20200000


class SeekWhence(enum.IntEnum):
    """``lseek(2)`` whence values."""

    SEEK_SET = 0
    SEEK_CUR = 1
    SEEK_END = 2
    SEEK_DATA = 3
    SEEK_HOLE = 4


class XattrFlags(enum.IntFlag):
    """``setxattr(2)`` flags."""

    NONE = 0
    XATTR_CREATE = 1
    XATTR_REPLACE = 2


class RenameFlags(enum.IntFlag):
    """``renameat2(2)`` flags."""

    NONE = 0
    RENAME_NOREPLACE = 1
    RENAME_EXCHANGE = 2
    RENAME_WHITEOUT = 4


class LockType(enum.IntEnum):
    """Advisory lock types (``fcntl(2)`` style)."""

    F_RDLCK = 0
    F_WRLCK = 1
    F_UNLCK = 2


class AccessMode(enum.IntFlag):
    """``access(2)`` probe modes."""

    F_OK = 0
    X_OK = 1
    W_OK = 2
    R_OK = 4


class FallocateMode(enum.IntFlag):
    """``fallocate(2)`` modes (subset)."""

    DEFAULT = 0
    KEEP_SIZE = 1
    PUNCH_HOLE = 2
    ZERO_RANGE = 16


#: Maximum length of one path component.
NAME_MAX = 255
#: Maximum total path length.
PATH_MAX = 4096
#: Maximum number of symlink traversals in a single path walk.
SYMLOOP_MAX = 40
#: Default permission mask applied to new files when the caller does not care.
DEFAULT_FILE_MODE = 0o644
#: Default permission mask applied to new directories.
DEFAULT_DIR_MODE = 0o755
