"""Advisory byte-range locks (``fcntl``-style) and whole-file locks (``flock``)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.constants import LockType
from repro.fs.errors import FsError


@dataclass(frozen=True)
class LockRange:
    """A byte range; ``length == 0`` means "to end of file"."""

    start: int
    length: int

    @property
    def end(self) -> float:
        """Exclusive end offset, ``inf`` for to-end-of-file locks."""
        return float("inf") if self.length == 0 else self.start + self.length

    def overlaps(self, other: "LockRange") -> bool:
        """True when the two ranges share at least one byte."""
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class FileLock:
    """One advisory lock held by a lock owner (pid)."""

    owner: int
    lock_type: LockType
    range: LockRange

    def conflicts_with(self, other: "FileLock") -> bool:
        """True when this lock prevents ``other`` from being granted."""
        if self.owner == other.owner:
            return False
        if not self.range.overlaps(other.range):
            return False
        return LockType.F_WRLCK in (self.lock_type, other.lock_type)


class LockTable:
    """Per-inode advisory lock state."""

    def __init__(self) -> None:
        self._locks: list[FileLock] = []

    def held_locks(self) -> list[FileLock]:
        """All currently granted locks."""
        return list(self._locks)

    def test(self, candidate: FileLock) -> FileLock | None:
        """Return the first conflicting lock, or None when the lock could be granted."""
        for lock in self._locks:
            if lock.conflicts_with(candidate):
                return lock
        return None

    def acquire(self, owner: int, lock_type: LockType, start: int = 0, length: int = 0) -> None:
        """Grant, upgrade or release a lock (F_UNLCK releases)."""
        rng = LockRange(start, length)
        if lock_type == LockType.F_UNLCK:
            self.release(owner, start, length)
            return
        candidate = FileLock(owner, lock_type, rng)
        conflict = self.test(candidate)
        if conflict is not None:
            raise FsError.eagain(f"lock held by pid {conflict.owner}")
        # Drop any of our own overlapping locks before inserting the new one.
        self._locks = [l for l in self._locks
                       if not (l.owner == owner and l.range.overlaps(rng))]
        self._locks.append(candidate)

    def release(self, owner: int, start: int = 0, length: int = 0) -> None:
        """Release all of ``owner``'s locks overlapping the given range."""
        rng = LockRange(start, length)
        self._locks = [l for l in self._locks
                       if not (l.owner == owner and l.range.overlaps(rng))]

    def release_owner(self, owner: int) -> None:
        """Release every lock held by ``owner`` (called on close/exit)."""
        self._locks = [l for l in self._locks if l.owner != owner]
