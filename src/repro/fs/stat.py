"""``stat``/``statvfs`` result structures."""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.constants import FileMode, file_type


@dataclass(frozen=True)
class FileStat:
    """Snapshot of an inode's metadata, the result of ``stat(2)``."""

    st_dev: int
    st_ino: int
    st_mode: int
    st_nlink: int
    st_uid: int
    st_gid: int
    st_rdev: int
    st_size: int
    st_blksize: int
    st_blocks: int
    st_atime_ns: int
    st_mtime_ns: int
    st_ctime_ns: int

    @property
    def is_dir(self) -> bool:
        """True if the inode is a directory."""
        return file_type(self.st_mode) == FileMode.S_IFDIR

    @property
    def is_regular(self) -> bool:
        """True if the inode is a regular file."""
        return file_type(self.st_mode) == FileMode.S_IFREG

    @property
    def is_symlink(self) -> bool:
        """True if the inode is a symbolic link."""
        return file_type(self.st_mode) == FileMode.S_IFLNK

    @property
    def permissions(self) -> int:
        """Permission bits only (mode with the type bits masked off)."""
        return self.st_mode & 0o7777


@dataclass(frozen=True)
class StatVfs:
    """Filesystem-level statistics, the result of ``statfs(2)``."""

    f_bsize: int
    f_blocks: int
    f_bfree: int
    f_bavail: int
    f_files: int
    f_ffree: int
    f_namemax: int

    @property
    def bytes_total(self) -> int:
        """Total capacity in bytes."""
        return self.f_bsize * self.f_blocks

    @property
    def bytes_free(self) -> int:
        """Free capacity in bytes."""
        return self.f_bsize * self.f_bfree
