"""Ordered-mode journal model for the ext4 filesystem (crash consistency).

``Ext4Fs`` has always *charged* ``journal_commit_ns`` for journal commits;
this module gives that cost model real state to protect.  The journal keeps
three things:

* a **running transaction** — logical records of every metadata mutation
  (create/link/unlink/rmdir/rename/setattr/xattr) since the last commit, plus
  a coalesced map of in-flight i_size updates (last write wins, like the
  single in-core inode the kernel logs);
* a **durable image** — the metadata tree as of the last committed
  transaction: for every inode its type, attributes, link count, directory
  entries and *committed size*;
* **durable data** — per-inode :class:`repro.fs.inode.FileData` clones
  captured whenever the writeback engine flushes that inode's pages (ordered
  mode: data reaches the platter through writeback, independently of the
  metadata commit).

Commit points are ``fsync``/``fdatasync``/``sync`` — as in ext4, any commit
publishes the *whole* compound running transaction, not just the syncing
file's records.  A power failure (:meth:`Ext4Fs.crash`) discards the running
transaction; :meth:`Ext4Fs.remount` replays the durable image back into live
inodes.  Post-crash file content is the durable data clipped (or zero-
extended) to the committed size: a committed size beyond what writeback
flushed reads as zeros, which is delayed allocation's crash behaviour —
never another file's stale bytes.

Content-changing metadata operations (``truncate``, ``punch_hole``) are
logged as **ordered per-inode data ops**: at commit they are replayed onto
the inode's durable clone, so a committed truncate-down-then-up reads back
zeros (never the stale pre-truncate bytes) and a committed hole stays
punched.  A writeback capture clears the inode's pending data ops — the
fresh clone already reflects them — which keeps stale records from clipping
newer flushed content.

Everything in this module is pure bookkeeping: no method advances the
virtual clock, so clean-path workloads (and the pinned benchmark figures)
are byte-identical with the journal present.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.inode import (
    DeviceInode,
    DirectoryInode,
    FifoInode,
    FileData,
    Inode,
    RegularInode,
    SocketInode,
    SymlinkInode,
)

#: Inode-kind tags used by journal records and the durable image.
_KIND_BY_CLASS = {
    RegularInode: "file",
    DirectoryInode: "dir",
    SymlinkInode: "symlink",
    DeviceInode: "device",
    FifoInode: "fifo",
    SocketInode: "socket",
}

_CLASS_BY_KIND = {kind: cls for cls, kind in _KIND_BY_CLASS.items()}


def inode_kind(inode: Inode) -> str:
    """The journal's kind tag for a live inode."""
    return _KIND_BY_CLASS[type(inode)]


@dataclass(slots=True)
class JournalRecord:
    """One logical metadata mutation in the running transaction."""

    op: str
    fields: dict


@dataclass
class JournalStats:
    """Commit/replay accounting (tests and reports read this)."""

    commits: int = 0
    records_committed: int = 0
    records_discarded: int = 0     # records lost to a crash
    checkpoints: int = 0
    replays: int = 0
    data_captures: int = 0


class DurableInode:
    """One inode of the durable (committed) metadata image."""

    __slots__ = ("kind", "mode", "uid", "gid", "nlink", "rdev", "atime_ns",
                 "mtime_ns", "ctime_ns", "xattrs", "size", "entries",
                 "parent_ino", "target")

    def __init__(self, kind: str, mode: int, uid: int, gid: int, nlink: int,
                 rdev: int = 0, atime_ns: int = 0, mtime_ns: int = 0,
                 ctime_ns: int = 0, xattrs: dict | None = None, size: int = 0,
                 entries: dict | None = None, parent_ino: int | None = None,
                 target: str = "") -> None:
        self.kind = kind
        self.mode = mode
        self.uid = uid
        self.gid = gid
        self.nlink = nlink
        self.rdev = rdev
        self.atime_ns = atime_ns
        self.mtime_ns = mtime_ns
        self.ctime_ns = ctime_ns
        self.xattrs = dict(xattrs or {})
        self.size = size
        self.entries = dict(entries) if entries is not None else None
        self.parent_ino = parent_ino
        self.target = target

    @classmethod
    def from_live(cls, inode: Inode) -> "DurableInode":
        """Snapshot a live inode's metadata (checkpoint path)."""
        return cls(kind=inode_kind(inode), mode=inode.mode, uid=inode.uid,
                   gid=inode.gid, nlink=inode.nlink, rdev=inode.rdev,
                   atime_ns=inode.atime_ns, mtime_ns=inode.mtime_ns,
                   ctime_ns=inode.ctime_ns, xattrs=inode.xattrs,
                   size=inode.size if isinstance(inode, RegularInode) else 0,
                   entries=getattr(inode, "entries", None),
                   parent_ino=getattr(inode, "parent_ino", None),
                   target=getattr(inode, "target", ""))


class Ext4Journal:
    """The transaction log plus the durable image it maintains."""

    def __init__(self) -> None:
        self.stats = JournalStats()
        #: ino -> DurableInode: the committed metadata tree.
        self._image: dict[int, DurableInode] = {}
        #: ino -> FileData clone: data that reached the device via writeback.
        self._data: dict[int, FileData] = {}
        #: Namespace/attr records of the running transaction, in order.
        self._running: list[JournalRecord] = []
        #: Coalesced in-flight i_size updates (last wins), applied at commit
        #: after the namespace records.  Kept as a dict so a fsync-free
        #: streaming workload does not grow the log per write.
        self._running_sizes: dict[int, int] = {}
        #: ino -> ordered content-changing ops (truncate/punch) logged since
        #: that inode's last data capture; replayed onto the durable clone at
        #: commit.  A capture clears them: the fresh clone already has them.
        self._running_dataops: dict[int, list[tuple[str, int, int]]] = {}
        #: Committed transactions since the last checkpoint (replay work).
        self.uncheckpointed_txns = 0

    # ------------------------------------------------------------- inspection
    def running_record_count(self) -> int:
        """Records in the running (uncommitted) transaction."""
        return (len(self._running) + len(self._running_sizes) +
                sum(len(ops) for ops in self._running_dataops.values()))

    def durable_inode_count(self) -> int:
        """Inodes in the committed image."""
        return len(self._image)

    def durable_size(self, ino: int) -> int | None:
        """Committed i_size of ``ino`` (None when not in the image)."""
        durable = self._image.get(ino)
        return None if durable is None else durable.size

    # ------------------------------------------------------------- recording
    def record(self, op: str, **fields) -> None:
        """Append one metadata record to the running transaction."""
        self._running.append(JournalRecord(op, fields))

    def record_size(self, ino: int, size: int) -> None:
        """Record an i_size update (coalesced: the last update wins)."""
        self._running_sizes[ino] = size

    def record_truncate(self, ino: int, size: int) -> None:
        """Record a truncate: the committed clone must clip *and* zero-fill.

        Ordered with respect to other data ops on the inode, so a committed
        down-then-up sequence reads back zeros in the middle instead of
        resurrecting stale pre-truncate bytes.
        """
        self._running_dataops.setdefault(ino, []).append(("truncate", size, 0))
        self._running_sizes[ino] = size

    def record_punch(self, ino: int, offset: int, length: int) -> None:
        """Record a hole punch: the committed clone loses the extent."""
        self._running_dataops.setdefault(ino, []).append(("punch", offset, length))

    def capture_data(self, ino: int, data: FileData) -> None:
        """Adopt a data clone as the durable content of ``ino`` (writeback)."""
        self._data[ino] = data
        # The live content this clone was taken from already reflects every
        # logged truncate/punch; replaying them at commit would clip newer
        # flushed bytes, so the inode's pending data ops are absorbed here.
        self._running_dataops.pop(ino, None)
        self.stats.data_captures += 1

    # ------------------------------------------------------------- txn control
    def commit(self) -> int:
        """Publish the running transaction into the durable image.

        Returns the number of records committed.  Pure bookkeeping — the
        caller (``Ext4Fs``) charges ``journal_commit_ns`` exactly where it
        always has.
        """
        committed = self.running_record_count()
        for rec in self._running:
            self._apply(rec)
        self._running.clear()
        for ino, ops in self._running_dataops.items():
            clone = self._data.get(ino)
            if clone is None:
                continue
            for op, a, b in ops:
                if op == "truncate":
                    clone.truncate(a)
                else:
                    clone.punch_hole(a, b)
        self._running_dataops.clear()
        for ino, size in self._running_sizes.items():
            durable = self._image.get(ino)
            if durable is not None:
                durable.size = size
        self._running_sizes.clear()
        self.stats.commits += 1
        self.stats.records_committed += committed
        if committed:
            self.uncheckpointed_txns += 1
        return committed

    def discard_running(self) -> int:
        """Power failure: the uncommitted transaction never happened."""
        discarded = self.running_record_count()
        self._running.clear()
        self._running_sizes.clear()
        self._running_dataops.clear()
        self.stats.records_discarded += discarded
        return discarded

    def checkpoint(self, inodes: dict[int, Inode]) -> None:
        """Declare the whole live tree durable (mkfs / clean mount).

        Snapshots every live inode's metadata and data; the running
        transaction is absorbed.  Zero virtual-time cost.
        """
        self._image = {ino: DurableInode.from_live(inode)
                       for ino, inode in inodes.items()}
        self._data = {ino: inode.data.clone() for ino, inode in inodes.items()
                      if isinstance(inode, RegularInode)}
        self._running.clear()
        self._running_sizes.clear()
        self._running_dataops.clear()
        self.uncheckpointed_txns = 0
        self.stats.checkpoints += 1

    # ------------------------------------------------------------- replay
    def replay(self, fs_name: str, store_data: bool) -> dict[int, Inode]:
        """Rebuild live inodes from the durable image (mount-time replay).

        File content is the durable data clone clipped or zero-extended to
        the committed size; an inode without a captured clone reads as all
        zeros (delayed allocation: the metadata commit landed, the data
        writeback did not).
        """
        self.stats.replays += 1
        self.uncheckpointed_txns = 0
        live: dict[int, Inode] = {}
        for ino, durable in self._image.items():
            cls = _CLASS_BY_KIND[durable.kind]
            inode = cls(ino=ino, mode=durable.mode, uid=durable.uid,
                        gid=durable.gid, nlink=durable.nlink,
                        rdev=durable.rdev, atime_ns=durable.atime_ns,
                        mtime_ns=durable.mtime_ns, ctime_ns=durable.ctime_ns,
                        xattrs=dict(durable.xattrs), fs_name=fs_name)
            if isinstance(inode, DirectoryInode):
                inode.entries = dict(durable.entries or {})
                inode.parent_ino = durable.parent_ino
            elif isinstance(inode, RegularInode):
                clone = self._data.get(ino)
                data = clone.clone() if clone is not None \
                    else FileData(store=store_data)
                data.truncate(durable.size)
                inode.data = data
            elif isinstance(inode, SymlinkInode):
                inode.target = durable.target
            live[ino] = inode
        return live

    # ------------------------------------------------------------- apply ops
    def _apply(self, rec: JournalRecord) -> None:
        apply_fn = getattr(self, f"_apply_{rec.op}")
        apply_fn(**rec.fields)

    def _dir(self, ino: int) -> DurableInode | None:
        durable = self._image.get(ino)
        return durable if durable is not None and durable.kind == "dir" else None

    def _apply_create(self, parent: int, name: str, ino: int, kind: str,
                      mode: int, uid: int, gid: int, rdev: int, target: str,
                      now_ns: int) -> None:
        nlink = 2 if kind == "dir" else 1
        self._image[ino] = DurableInode(
            kind=kind, mode=mode, uid=uid, gid=gid, nlink=nlink, rdev=rdev,
            atime_ns=now_ns, mtime_ns=now_ns, ctime_ns=now_ns,
            entries={} if kind == "dir" else None,
            parent_ino=parent if kind == "dir" else None, target=target)
        directory = self._dir(parent)
        if directory is not None:
            directory.entries[name] = ino
            if kind == "dir":
                directory.nlink += 1

    def _apply_link(self, parent: int, name: str, ino: int) -> None:
        directory = self._dir(parent)
        target = self._image.get(ino)
        if directory is None or target is None:
            return
        directory.entries[name] = ino
        target.nlink += 1

    def _drop_if_dead(self, ino: int) -> None:
        durable = self._image.get(ino)
        if durable is not None and durable.nlink <= 0:
            del self._image[ino]
            self._data.pop(ino, None)

    def _apply_unlink(self, parent: int, name: str, ino: int) -> None:
        directory = self._dir(parent)
        if directory is not None:
            directory.entries.pop(name, None)
        durable = self._image.get(ino)
        if durable is not None:
            durable.nlink -= 1
            # Pins are volatile: after a power failure no process holds an
            # open descriptor, so a committed unlink of the last link
            # reclaims the inode at replay (the orphan list's job in ext4).
            self._drop_if_dead(ino)

    def _apply_rmdir(self, parent: int, name: str, ino: int) -> None:
        directory = self._dir(parent)
        if directory is not None:
            directory.entries.pop(name, None)
            directory.nlink -= 1
        self._image.pop(ino, None)

    def _apply_rename(self, old_dir: int, old_name: str, new_dir: int,
                      new_name: str, ino: int, exchange: bool,
                      replaced_ino: int | None, is_dir: bool) -> None:
        src_dir = self._dir(old_dir)
        dst_dir = self._dir(new_dir)
        if src_dir is None or dst_dir is None:
            return
        if exchange:
            # Mirrors the live semantics exactly: bindings swap, link counts
            # and parent pointers stay (see Filesystem.rename).
            src_dir.entries[old_name] = replaced_ino
            dst_dir.entries[new_name] = ino
            return
        if replaced_ino is not None:
            replaced = self._image.get(replaced_ino)
            if replaced is not None:
                if replaced.kind == "dir":
                    dst_dir.nlink -= 1
                    self._image.pop(replaced_ino, None)
                else:
                    replaced.nlink -= 1
                    self._drop_if_dead(replaced_ino)
        src_dir.entries.pop(old_name, None)
        dst_dir.entries[new_name] = ino
        if is_dir and old_dir != new_dir:
            src_dir.nlink -= 1
            dst_dir.nlink += 1
            moved = self._image.get(ino)
            if moved is not None:
                moved.parent_ino = new_dir

    def _apply_attr(self, ino: int, mode: int, uid: int, gid: int,
                    atime_ns: int, mtime_ns: int, ctime_ns: int) -> None:
        durable = self._image.get(ino)
        if durable is None:
            return
        durable.mode = mode
        durable.uid = uid
        durable.gid = gid
        durable.atime_ns = atime_ns
        durable.mtime_ns = mtime_ns
        durable.ctime_ns = ctime_ns

    def _apply_xattr_set(self, ino: int, name: str, value: bytes) -> None:
        durable = self._image.get(ino)
        if durable is not None:
            durable.xattrs[name] = value

    def _apply_xattr_remove(self, ino: int, name: str) -> None:
        durable = self._image.get(ino)
        if durable is not None:
            durable.xattrs.pop(name, None)
