"""A journaled, disk-cost-modelled filesystem standing in for ext4 on EBS GP2.

The paper's performance baseline is ext4 on an SSD-backed EBS volume.  What
matters for reproducing the *relative* overhead of CntrFS is that the native
filesystem (a) serves cached reads from the page cache essentially for free,
(b) absorbs buffered writes into dirty pages and flushes them in batches, and
(c) pays real latency for cache misses, fsync and journal commits.  ``Ext4Fs``
models exactly those three behaviours on top of the generic in-memory
filesystem semantics.
"""

from __future__ import annotations

import errno

from repro.fs.blockdev import BlockDevice
from repro.fs.constants import FallocateMode
from repro.fs.errors import FsError
from repro.fs.filesystem import ROOT_INO, Filesystem
from repro.fs.inode import DirectoryInode, RegularInode
from repro.fs.journal import Ext4Journal, inode_kind
from repro.fs.pagecache import PageCache
from repro.fs.writeback import (
    WB_REASON_FSYNC,
    WB_REASON_RECLAIM,
    VmTunables,
    WritebackEngine,
)
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.trace import Tracer

#: Dirty bytes at which the background flusher threads historically kicked
#: in; now the default ``vm.dirty_background_bytes`` of an ext4 instance.
EXT4_DIRTY_BACKGROUND_BYTES = 256 << 20


class Ext4Fs(Filesystem):
    """ext4-like filesystem backed by a :class:`BlockDevice` with a page cache."""

    fs_type = "ext4"
    supports_direct_io = True
    supports_export_handles = True
    supports_reflink = False

    def __init__(self, name: str, clock: VirtualClock, costs: CostModel,
                 tracer: Tracer | None = None, capacity_bytes: int = 100 << 30,
                 page_cache_bytes: int = 12 << 30,
                 device: BlockDevice | None = None,
                 writeback_tunables: VmTunables | None = None) -> None:
        super().__init__(name, clock, costs, tracer, capacity_bytes=capacity_bytes)
        self.device = device or BlockDevice(f"{name}-dev", capacity_bytes, clock, costs)
        self.page_cache = PageCache(max_bytes=page_cache_bytes, page_size=costs.page_size)
        self._dirty_metadata = 0
        #: The unified writeback engine (vm.dirty_*-driven flusher threads),
        #: flushing through the block device's BDI for bandwidth shaping.
        self.writeback = WritebackEngine(
            name,
            writeback_tunables or VmTunables(
                dirty_background_bytes=EXT4_DIRTY_BACKGROUND_BYTES),
            self._writeback_flush, clock=clock, bdi=self.device.bdi)
        #: The ordered-mode transaction log behind ``journal_commit_ns``:
        #: metadata mutations accumulate in a running transaction committed
        #: at fsync/fdatasync/sync; data durability rides on writeback (see
        #: ``repro.fs.journal``).  A fresh filesystem starts checkpointed —
        #: mkfs wrote the empty tree to the platter.
        self.journal = Ext4Journal()
        self.journal.checkpoint(self._inodes)

    def _inode_released(self, ino: int) -> None:
        # Inode eviction, as in the kernel: an unlinked file's pages —
        # including dirty ones — are discarded, never written back.
        super()._inode_released(ino)
        self.page_cache.invalidate(ino)
        self.writeback.discard(ino)

    # --------------------------------------------------------- journal records
    # Every metadata mutation appends a logical record to the running
    # transaction *after* the base operation succeeds (a failed op journals
    # nothing).  Pre-state needed by a record is gathered with uncharged
    # dict lookups guarded by try/except, so failure paths charge exactly
    # what they always did — recording is pure bookkeeping, no clock time.
    def create(self, dir_ino, name, mode, uid=0, gid=0):
        inode = super().create(dir_ino, name, mode, uid, gid)
        self._record_birth(dir_ino, name, inode)
        return inode

    def mkdir(self, dir_ino, name, mode, uid=0, gid=0):
        inode = super().mkdir(dir_ino, name, mode, uid, gid)
        self._record_birth(dir_ino, name, inode)
        return inode

    def symlink(self, dir_ino, name, target, uid=0, gid=0):
        inode = super().symlink(dir_ino, name, target, uid, gid)
        self._record_birth(dir_ino, name, inode)
        return inode

    def mknod(self, dir_ino, name, mode, rdev=0, uid=0, gid=0):
        inode = super().mknod(dir_ino, name, mode, rdev, uid, gid)
        self._record_birth(dir_ino, name, inode)
        return inode

    def _record_birth(self, parent: int, name: str, inode) -> None:
        self.journal.record(
            "create", parent=parent, name=name, ino=inode.ino,
            kind=inode_kind(inode), mode=inode.mode, uid=inode.uid,
            gid=inode.gid, rdev=inode.rdev,
            target=getattr(inode, "target", ""), now_ns=inode.ctime_ns)

    def link(self, dir_ino, name, target_ino):
        target = super().link(dir_ino, name, target_ino)
        self.journal.record("link", parent=dir_ino, name=name, ino=target.ino)
        return target

    def unlink(self, dir_ino, name):
        ino = self._peek_child(dir_ino, name)
        super().unlink(dir_ino, name)
        if ino is not None:
            self.journal.record("unlink", parent=dir_ino, name=name, ino=ino)

    def rmdir(self, dir_ino, name):
        ino = self._peek_child(dir_ino, name)
        super().rmdir(dir_ino, name)
        if ino is not None:
            self.journal.record("rmdir", parent=dir_ino, name=name, ino=ino)

    def _peek_child(self, dir_ino: int, name: str) -> int | None:
        """The child's ino, or None when the base op will raise anyway."""
        directory = self._inodes.get(dir_ino)
        if isinstance(directory, DirectoryInode):
            return directory.entries.get(name)
        return None

    def rename(self, old_dir, old_name, new_dir, new_name, flags=0):
        from repro.fs.constants import RenameFlags

        ino = self._peek_child(old_dir, old_name)
        replaced = self._peek_child(new_dir, new_name)
        moved = self._inodes.get(ino) if ino is not None else None
        super().rename(old_dir, old_name, new_dir, new_name, flags)
        if ino is not None:
            self.journal.record(
                "rename", old_dir=old_dir, old_name=old_name, new_dir=new_dir,
                new_name=new_name, ino=ino,
                exchange=bool(flags & RenameFlags.RENAME_EXCHANGE),
                replaced_ino=replaced, is_dir=isinstance(moved, DirectoryInode))

    def write(self, ino, offset, data):
        inode = self._inodes.get(ino)
        old_size = inode.size if isinstance(inode, RegularInode) else None
        written = super().write(ino, offset, data)
        if old_size is not None and offset + written > old_size:
            # Ordered mode journals the i_size extension; the data itself
            # becomes durable through writeback, not through the journal.
            self.journal.record_size(ino, offset + written)
        return written

    def truncate(self, ino, size):
        super().truncate(ino, size)
        # An ordered data op, not a bare size record: the committed clone
        # must clip and zero-fill so a down-then-up sequence never reads
        # back stale pre-truncate bytes after replay.
        self.journal.record_truncate(ino, size)

    def fallocate(self, ino, mode, offset, length):
        inode = self._inodes.get(ino)
        old_size = inode.size if isinstance(inode, RegularInode) else None
        super().fallocate(ino, mode, offset, length)
        if mode & FallocateMode.PUNCH_HOLE or mode & FallocateMode.ZERO_RANGE:
            # The extent-map change is journaled: a committed punch stays
            # punched even when no writeback flush follows it.
            self.journal.record_punch(ino, offset, length)
            return
        extends = (not mode & FallocateMode.KEEP_SIZE)
        if old_size is not None and extends and offset + length > old_size:
            self.journal.record_size(ino, offset + length)

    def setattr(self, ino, *, mode=None, uid=None, gid=None, size=None,
                atime_ns=None, mtime_ns=None):
        super().setattr(ino, mode=mode, uid=uid, gid=gid, size=size,
                        atime_ns=atime_ns, mtime_ns=mtime_ns)
        inode = self._inodes.get(ino)
        if inode is None:
            return
        self.journal.record("attr", ino=ino, mode=inode.mode, uid=inode.uid,
                            gid=inode.gid, atime_ns=inode.atime_ns,
                            mtime_ns=inode.mtime_ns, ctime_ns=inode.ctime_ns)
        if size is not None:
            self.journal.record_truncate(ino, size)

    def setxattr(self, ino, name, value, flags=0):
        super().setxattr(ino, name, value, flags)
        self.journal.record("xattr_set", ino=ino, name=name, value=bytes(value))

    def removexattr(self, ino, name):
        super().removexattr(ino, name)
        self.journal.record("xattr_remove", ino=ino, name=name)

    # --------------------------------------------------------- crash model
    def checkpoint(self) -> None:
        """Declare the current live tree fully durable (clean-mount baseline).

        Zero virtual-time cost: this models state that was *already* written
        out (mkfs, or an image populated before the experiment starts), not
        an act of writing it now.
        """
        self.journal.checkpoint(self._inodes)

    def crash(self) -> None:
        """Power-fail: dirty pages, pending writeback and the running
        (uncommitted) journal transaction are gone; committed metadata and
        written-back data survive in the journal's durable image."""
        self.journal.discard_running()
        self.page_cache.invalidate_all()
        self.writeback.crash_discard()
        self._dirty_metadata = 0
        super().crash()

    def remount(self) -> None:
        """Mount-time journal replay: rebuild the live tree from the durable
        image.  Charges one ``journal_commit_ns`` when there are committed
        transactions to replay — the e2fsck/jbd2 recovery pass — and nothing
        on a checkpointed (clean) filesystem."""
        if self.journal.uncheckpointed_txns:
            self.clock.advance(self.costs.journal_commit_ns)
            self.tracer.record(self.clock.now_ns, self.fs_type, "replay",
                               self.costs.journal_commit_ns)
        self._inodes = self.journal.replay(fs_name=self.name,
                                           store_data=self.store_data)
        if ROOT_INO not in self._inodes:
            raise FsError(errno.EIO, self.name, "durable image lost the root")
        self.root_ino = ROOT_INO
        self._next_ino = max(self._inodes) + 1
        self.journal.checkpoint(self._inodes)
        self.writeback.retune()
        super().remount()

    # ------------------------------------------------------------------ costs
    def _charge_metadata(self, op: str) -> None:
        cost = self.costs.metadata_op_ns
        self.clock.advance(cost)
        tracer = self.tracer
        if tracer.active:
            tracer.record(self.clock.now_ns, self.fs_type, op, cost)
        self._dirty_metadata += 1

    def _charge_read(self, ino: int, offset: int, size: int) -> None:
        if size <= 0:
            self.clock.advance(self.costs.syscall_ns)
            return
        hits, misses = self.page_cache.access(ino, offset, size)
        page = self.costs.page_size
        hit_cost = int(self.costs.page_cache_hit_per_byte_ns * hits * page)
        self.clock.advance(hit_cost)
        if misses:
            fetch_pages = misses
            # Per-device readahead (/sys/class/bdi/<dev>/read_ahead_kb): a
            # miss extends the fetch window so subsequent sequential reads
            # hit the page cache.  The historical default is 0 — no
            # readahead — which keeps untouched devices byte-identical.
            # Window pages are pulled through page_cache.access, so they
            # count as accesses in PageCacheStats, matching how the FUSE
            # read path has always accounted its readahead window.
            ra = self.device.bdi.read_ahead_bytes
            if ra > 0:
                inode = self._inodes.get(ino)
                file_size = inode.size if isinstance(inode, RegularInode) else 0
                window_end = min(offset + max(size, ra), file_size)
                if window_end > offset + size:
                    _ra_hits, ra_misses = self.page_cache.access(
                        ino, offset + size, window_end - (offset + size))
                    fetch_pages += ra_misses
            # The device pays the seek/stream cost and its BDI's read-
            # bandwidth shaping (0 = unshaped, the default).
            self.device.read(offset, fetch_pages * page)
        self.tracer.record(self.clock.now_ns, self.fs_type, "read", int(hit_cost),
                           detail=f"hits={hits} misses={misses}")

    def _charge_write(self, ino: int, offset: int, size: int) -> None:
        if size <= 0:
            self.clock.advance(self.costs.syscall_ns)
            return
        dirtied = self.page_cache.write(ino, offset, size)
        cost = int(self.costs.page_cache_hit_per_byte_ns * size
                   + self.costs.metadata_op_ns * 0.1)
        self.clock.advance(cost)
        self.tracer.record(self.clock.now_ns, self.fs_type, "write", int(cost),
                           detail=f"dirtied={dirtied}")
        # The engine accounts newly dirtied bytes and runs the flusher
        # threads against the vm.dirty_* thresholds; only then may memory
        # pressure react, so reclaim always sees the pending counters.
        self.writeback.note_dirty(ino, dirtied * self.costs.page_size)
        self.page_cache.balance_pressure()

    def _charge_fsync(self, ino: int, datasync: bool) -> None:
        nbytes = self.page_cache.dirty_page_count(ino) * self.costs.page_size
        self.writeback.flush(ino, reason=WB_REASON_FSYNC)
        if not datasync or self._dirty_metadata:
            self.clock.advance(self.costs.journal_commit_ns)
            self._dirty_metadata = 0
        # The running transaction commits on *every* fsync/fdatasync, exactly
        # like jbd2's compound transaction.  The time charged above is
        # unchanged from the pre-journal model: a datasync with clean charged
        # metadata still publishes any coalesced i_size records for free —
        # real fdatasync forces a commit for size changes too, and keeping
        # the cost identical is what preserves the pinned benchmark figures.
        self.journal.commit()
        self.device.flush()
        tracer = self.tracer
        if tracer.active:
            tracer.emit(self.clock.now_ns, "journal.commit",
                        fs=self.name, reason="fsync")
        tracer.record(self.clock.now_ns, self.fs_type, "fsync", nbytes)

    def _writeback_flush(self, items, reason: str) -> None:
        """Writeback price of this filesystem, paid when the engine flushes.

        fsync — and reclaim, which targets one inode's pages at a time —
        writes back one inode's dirty pages; every other reason models the
        flusher threads catching up in one sequential device write (the
        bytes charged come from the page cache — the authoritative count of
        what is actually dirty — not from the pending counters).
        """
        self._capture_durable_data(items)
        if reason in (WB_REASON_FSYNC, WB_REASON_RECLAIM):
            for ino, _pending in items:
                nbytes = self.page_cache.dirty_page_count(ino) * self.costs.page_size
                if nbytes:
                    self.device.write(0, nbytes)
                    self.page_cache.clean(ino)
            return
        nbytes = self.page_cache.dirty_page_count() * self.costs.page_size
        if nbytes:
            self.device.write(0, nbytes)
            self.page_cache.clean()
        self.tracer.record(self.clock.now_ns, self.fs_type, "writeback", nbytes)

    def _capture_durable_data(self, items) -> None:
        """Ordered mode: data that was written back is durable.  Snapshot each
        flushed inode's content as the journal's durable data image (pure
        bookkeeping; clones are O(materialised pages) and O(1) for the
        ``store=False`` benchmark mode)."""
        for ino, _pending in items:
            inode = self._inodes.get(ino)
            if isinstance(inode, RegularInode):
                self.journal.capture_data(ino, inode.data.clone())

    def _flush_all(self, reason: str) -> None:
        """Flush everything, recording a writeback trace line even when idle."""
        if self.writeback.flush(reason=reason) == 0:
            self.tracer.record(self.clock.now_ns, self.fs_type, "writeback", 0)

    def sync(self) -> None:
        """``sync(2)``: flush dirty pages and commit the journal."""
        self._flush_all("sync")
        self.clock.advance(self.costs.journal_commit_ns)
        self.journal.commit()
        self.device.flush()
        self._dirty_metadata = 0
        tracer = self.tracer
        if tracer.active:
            tracer.emit(self.clock.now_ns, "journal.commit",
                        fs=self.name, reason="sync")

    def drop_caches(self, mode: int = 3) -> None:
        """``echo mode > /proc/sys/vm/drop_caches`` for this filesystem:
        1 drops the page cache (flushing dirty data first), 2 the dentries."""
        if mode & 1:
            self._flush_all("drop_caches")
            self.page_cache.invalidate_all()
        if mode & 2:
            self.invalidate_dentries()
