"""A journaled, disk-cost-modelled filesystem standing in for ext4 on EBS GP2.

The paper's performance baseline is ext4 on an SSD-backed EBS volume.  What
matters for reproducing the *relative* overhead of CntrFS is that the native
filesystem (a) serves cached reads from the page cache essentially for free,
(b) absorbs buffered writes into dirty pages and flushes them in batches, and
(c) pays real latency for cache misses, fsync and journal commits.  ``Ext4Fs``
models exactly those three behaviours on top of the generic in-memory
filesystem semantics.
"""

from __future__ import annotations

from repro.fs.blockdev import BlockDevice
from repro.fs.filesystem import Filesystem
from repro.fs.inode import RegularInode
from repro.fs.pagecache import PageCache
from repro.fs.writeback import (
    WB_REASON_FSYNC,
    WB_REASON_RECLAIM,
    VmTunables,
    WritebackEngine,
)
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.trace import Tracer

#: Dirty bytes at which the background flusher threads historically kicked
#: in; now the default ``vm.dirty_background_bytes`` of an ext4 instance.
EXT4_DIRTY_BACKGROUND_BYTES = 256 << 20


class Ext4Fs(Filesystem):
    """ext4-like filesystem backed by a :class:`BlockDevice` with a page cache."""

    fs_type = "ext4"
    supports_direct_io = True
    supports_export_handles = True
    supports_reflink = False

    def __init__(self, name: str, clock: VirtualClock, costs: CostModel,
                 tracer: Tracer | None = None, capacity_bytes: int = 100 << 30,
                 page_cache_bytes: int = 12 << 30,
                 device: BlockDevice | None = None,
                 writeback_tunables: VmTunables | None = None) -> None:
        super().__init__(name, clock, costs, tracer, capacity_bytes=capacity_bytes)
        self.device = device or BlockDevice(f"{name}-dev", capacity_bytes, clock, costs)
        self.page_cache = PageCache(max_bytes=page_cache_bytes, page_size=costs.page_size)
        self._dirty_metadata = 0
        #: The unified writeback engine (vm.dirty_*-driven flusher threads),
        #: flushing through the block device's BDI for bandwidth shaping.
        self.writeback = WritebackEngine(
            name,
            writeback_tunables or VmTunables(
                dirty_background_bytes=EXT4_DIRTY_BACKGROUND_BYTES),
            self._writeback_flush, clock=clock, bdi=self.device.bdi)

    def _inode_released(self, ino: int) -> None:
        # Inode eviction, as in the kernel: an unlinked file's pages —
        # including dirty ones — are discarded, never written back.
        self.page_cache.invalidate(ino)
        self.writeback.discard(ino)

    # ------------------------------------------------------------------ costs
    def _charge_metadata(self, op: str) -> None:
        cost = self.costs.metadata_op_ns
        self.clock.advance(cost)
        self.tracer.record(self.clock.now_ns, self.fs_type, op, cost)
        self._dirty_metadata += 1

    def _charge_read(self, ino: int, offset: int, size: int) -> None:
        if size <= 0:
            self.clock.advance(self.costs.syscall_ns)
            return
        hits, misses = self.page_cache.access(ino, offset, size)
        page = self.costs.page_size
        hit_cost = self.costs.page_cache_hit_per_byte_ns * hits * page
        self.clock.advance(hit_cost)
        if misses:
            fetch_pages = misses
            # Per-device readahead (/sys/class/bdi/<dev>/read_ahead_kb): a
            # miss extends the fetch window so subsequent sequential reads
            # hit the page cache.  The historical default is 0 — no
            # readahead — which keeps untouched devices byte-identical.
            # Window pages are pulled through page_cache.access, so they
            # count as accesses in PageCacheStats, matching how the FUSE
            # read path has always accounted its readahead window.
            ra = self.device.bdi.read_ahead_bytes
            if ra > 0:
                inode = self._inodes.get(ino)
                file_size = inode.size if isinstance(inode, RegularInode) else 0
                window_end = min(offset + max(size, ra), file_size)
                if window_end > offset + size:
                    _ra_hits, ra_misses = self.page_cache.access(
                        ino, offset + size, window_end - (offset + size))
                    fetch_pages += ra_misses
            # The device pays the seek/stream cost and its BDI's read-
            # bandwidth shaping (0 = unshaped, the default).
            self.device.read(offset, fetch_pages * page)
        self.tracer.record(self.clock.now_ns, self.fs_type, "read", int(hit_cost),
                           detail=f"hits={hits} misses={misses}")

    def _charge_write(self, ino: int, offset: int, size: int) -> None:
        if size <= 0:
            self.clock.advance(self.costs.syscall_ns)
            return
        dirtied = self.page_cache.write(ino, offset, size)
        cost = self.costs.page_cache_hit_per_byte_ns * size + self.costs.metadata_op_ns * 0.1
        self.clock.advance(cost)
        self.tracer.record(self.clock.now_ns, self.fs_type, "write", int(cost),
                           detail=f"dirtied={dirtied}")
        # The engine accounts newly dirtied bytes and runs the flusher
        # threads against the vm.dirty_* thresholds; only then may memory
        # pressure react, so reclaim always sees the pending counters.
        self.writeback.note_dirty(ino, dirtied * self.costs.page_size)
        self.page_cache.balance_pressure()

    def _charge_fsync(self, ino: int, datasync: bool) -> None:
        nbytes = self.page_cache.dirty_page_count(ino) * self.costs.page_size
        self.writeback.flush(ino, reason=WB_REASON_FSYNC)
        if not datasync or self._dirty_metadata:
            self.clock.advance(self.costs.journal_commit_ns)
            self._dirty_metadata = 0
        self.device.flush()
        self.tracer.record(self.clock.now_ns, self.fs_type, "fsync", nbytes)

    def _writeback_flush(self, items, reason: str) -> None:
        """Writeback price of this filesystem, paid when the engine flushes.

        fsync — and reclaim, which targets one inode's pages at a time —
        writes back one inode's dirty pages; every other reason models the
        flusher threads catching up in one sequential device write (the
        bytes charged come from the page cache — the authoritative count of
        what is actually dirty — not from the pending counters).
        """
        if reason in (WB_REASON_FSYNC, WB_REASON_RECLAIM):
            for ino, _pending in items:
                nbytes = self.page_cache.dirty_page_count(ino) * self.costs.page_size
                if nbytes:
                    self.device.write(0, nbytes)
                    self.page_cache.clean(ino)
            return
        nbytes = self.page_cache.dirty_page_count() * self.costs.page_size
        if nbytes:
            self.device.write(0, nbytes)
            self.page_cache.clean()
        self.tracer.record(self.clock.now_ns, self.fs_type, "writeback", nbytes)

    def _flush_all(self, reason: str) -> None:
        """Flush everything, recording a writeback trace line even when idle."""
        if self.writeback.flush(reason=reason) == 0:
            self.tracer.record(self.clock.now_ns, self.fs_type, "writeback", 0)

    def sync(self) -> None:
        """``sync(2)``: flush dirty pages and commit the journal."""
        self._flush_all("sync")
        self.clock.advance(self.costs.journal_commit_ns)
        self.device.flush()
        self._dirty_metadata = 0

    def drop_caches(self, mode: int = 3) -> None:
        """``echo mode > /proc/sys/vm/drop_caches`` for this filesystem:
        1 drops the page cache (flushing dirty data first), 2 the dentries."""
        if mode & 1:
            self._flush_all("drop_caches")
            self.page_cache.invalidate_all()
        if mode & 2:
            self.invalidate_dentries()
