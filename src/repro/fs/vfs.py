"""Path-level VFS: path resolution, permissions, open file descriptions.

The VFS sits between the per-process syscall facade (:mod:`repro.kernel.syscalls`)
and the concrete filesystems.  It implements everything that in Linux lives in
``fs/namei.c`` and ``fs/open.c``: walking paths across mounts and symlinks,
permission checks (including capability overrides), the open-flag semantics,
sticky-bit deletion rules, setuid/setgid clearing and the ``RLIMIT_FSIZE``
check whose absence in CntrFS reproduces xfstests failure #228.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from sys import intern as _intern

from repro.fs.constants import (
    AccessMode,
    FileMode,
    OpenFlags,
    SeekWhence,
    SYMLOOP_MAX,
    PATH_MAX,
)
from repro.fs.errors import FsError
from repro.fs.filesystem import Filesystem
from repro.fs.inode import DirectoryInode, Inode, RegularInode, SymlinkInode
from repro.fs.mount import Mount, MountNamespace
from repro.fs.stat import FileStat, StatVfs

#: Capabilities relevant to filesystem access control.
CAP_DAC_OVERRIDE = "CAP_DAC_OVERRIDE"
CAP_DAC_READ_SEARCH = "CAP_DAC_READ_SEARCH"
CAP_FOWNER = "CAP_FOWNER"
CAP_FSETID = "CAP_FSETID"
CAP_CHOWN = "CAP_CHOWN"
CAP_MKNOD = "CAP_MKNOD"
CAP_SYS_ADMIN = "CAP_SYS_ADMIN"
CAP_SYS_CHROOT = "CAP_SYS_CHROOT"
CAP_SETUID = "CAP_SETUID"
CAP_SETGID = "CAP_SETGID"
CAP_NET_ADMIN = "CAP_NET_ADMIN"
CAP_SYS_PTRACE = "CAP_SYS_PTRACE"
CAP_KILL = "CAP_KILL"
CAP_AUDIT_WRITE = "CAP_AUDIT_WRITE"

#: The default capability bounding set Docker grants to containers.
DEFAULT_CONTAINER_CAPS = frozenset({
    CAP_CHOWN, CAP_DAC_OVERRIDE, CAP_FOWNER, CAP_FSETID, CAP_KILL,
    CAP_MKNOD, CAP_SETGID, CAP_SETUID, CAP_SYS_CHROOT, CAP_AUDIT_WRITE,
})

#: Everything (what a root process on the host holds).
ALL_CAPS = DEFAULT_CONTAINER_CAPS | frozenset({
    CAP_DAC_READ_SEARCH, CAP_SYS_ADMIN, CAP_NET_ADMIN, CAP_SYS_PTRACE,
})

#: Plain-int copies of the open-flag bits checked on every read/write; going
#: through ``IntFlag.__and__`` per I/O syscall dominates the actual check.
_O_ACCMODE = int(OpenFlags.O_ACCMODE)
_O_RDONLY = int(OpenFlags.O_RDONLY)
_O_WRONLY = int(OpenFlags.O_WRONLY)
_O_RDWR = int(OpenFlags.O_RDWR)
_O_APPEND = int(OpenFlags.O_APPEND)
_O_SYNC = int(OpenFlags.O_SYNC)
_O_DSYNC = int(OpenFlags.O_DSYNC)
_O_NOFOLLOW = int(OpenFlags.O_NOFOLLOW)
_O_CREAT = int(OpenFlags.O_CREAT)
_O_EXCL = int(OpenFlags.O_EXCL)
_O_DIRECTORY = int(OpenFlags.O_DIRECTORY)
_O_DIRECT = int(OpenFlags.O_DIRECT)
_O_TRUNC = int(OpenFlags.O_TRUNC)

#: Same treatment for the rwx access bits and the sticky bit: the permission
#: check runs on every path component of every syscall.
_R_OK = int(AccessMode.R_OK)
_W_OK = int(AccessMode.W_OK)
_X_OK = int(AccessMode.X_OK)
_S_ISVTX = int(FileMode.S_ISVTX)

#: Memoised ``path -> components`` splits with interned component strings.
#: Path resolution re-splits the same handful of paths on every syscall, and
#: interning makes the dcache's ``(mount, ino, name)`` key hashing/equality a
#: pointer comparison.  The table is a pure function of the path string, so
#: sharing it process-wide is safe; wholesale clearing bounds its size.
_SPLIT_CACHE_MAX = 16384
_split_cache: dict[str, tuple[str, ...]] = {}


def _split_components(path: str) -> tuple[str, ...]:
    comps = _split_cache.get(path)
    if comps is None:
        if len(_split_cache) >= _SPLIT_CACHE_MAX:
            _split_cache.clear()
        comps = tuple(_intern(c) for c in path.split("/") if c)
        _split_cache[path] = comps
    return comps


@dataclass(frozen=True)
class Credentials:
    """Identity and privilege of the caller of a VFS operation."""

    uid: int = 0
    gid: int = 0
    groups: frozenset[int] = frozenset()
    capabilities: frozenset[str] = ALL_CAPS
    umask: int = 0o022
    #: ``RLIMIT_FSIZE`` in bytes, or None for unlimited.
    fsize_limit: int | None = None

    def has_cap(self, cap: str) -> bool:
        """True when the caller holds ``cap``."""
        return cap in self.capabilities

    def all_gids(self) -> frozenset[int]:
        """Primary plus supplementary group ids."""
        return self.groups | {self.gid}

    def with_caps(self, caps: frozenset[str]) -> "Credentials":
        """Copy of the credentials with a replaced capability set."""
        return replace(self, capabilities=frozenset(caps))


class VNode:
    """A resolved position in the mount tree: (mount, inode number).

    A hand-rolled value class rather than a frozen dataclass: path
    resolution creates one per component, and ``object.__setattr__`` in the
    generated frozen ``__init__`` is measurable at that volume.  Equality
    and hashing keep the (mount, ino) value semantics.
    """

    __slots__ = ("mount", "ino")

    def __init__(self, mount: Mount, ino: int) -> None:
        self.mount = mount
        self.ino = ino

    def __eq__(self, other: object) -> bool:
        if other.__class__ is VNode:
            return self.mount == other.mount and self.ino == other.ino
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.mount, self.ino))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VNode(mount={self.mount!r}, ino={self.ino!r})"

    @property
    def fs(self) -> Filesystem:
        """Filesystem the inode lives on."""
        return self.mount.fs

    def inode(self) -> Inode:
        """The inode object."""
        return self.mount.fs.iget(self.ino)


@dataclass(slots=True)
class PathContext:
    """Everything path resolution needs from the calling process."""

    ns: MountNamespace
    root: VNode
    cwd: VNode
    creds: Credentials


class OpenFile:
    """An open file description (the thing a file descriptor points at)."""

    def __init__(self, vnode: VNode, flags: int, path: str, owner_pid: int = 0) -> None:
        self.vnode = vnode
        self.flags = int(flags)
        self.path = path
        self.owner_pid = owner_pid
        self.offset = 0
        self.closed = False
        vnode.fs.pin(vnode.ino)

    @property
    def fs(self) -> Filesystem:
        """Filesystem of the open inode."""
        return self.vnode.fs

    @property
    def ino(self) -> int:
        """Inode number of the open file."""
        return self.vnode.ino

    def inode(self) -> Inode:
        """The open inode."""
        return self.vnode.inode()

    @property
    def readable(self) -> bool:
        """True when the description permits reads."""
        acc = self.flags & _O_ACCMODE
        return acc == _O_RDONLY or acc == _O_RDWR

    @property
    def writable(self) -> bool:
        """True when the description permits writes."""
        acc = self.flags & _O_ACCMODE
        return acc == _O_WRONLY or acc == _O_RDWR

    @property
    def append(self) -> bool:
        """True for O_APPEND descriptions."""
        return bool(self.flags & _O_APPEND)

    def close(self) -> None:
        """Release the description (idempotent)."""
        if not self.closed:
            self.closed = True
            self.fs.locks(self.ino).release_owner(self.owner_pid)
            release_hook = getattr(self.fs, "on_release", None)
            if callable(release_hook):
                release_hook(self.ino)
            self.fs.unpin(self.ino)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpenFile({self.path!r}, ino={self.ino}, flags={self.flags:#o})"


class DentryCache:
    """The VFS dentry cache (dcache): ``(mount, parent_ino, name) -> ino``.

    Path resolution used to re-walk every component through the concrete
    filesystem's ``lookup`` on every syscall; the dcache makes repeated walks
    O(components) dict probes, like ``fs/dcache.c``.  Correctness relies on
    per-filesystem dentry generations (:attr:`Filesystem.dentry_gen`): any
    operation that removes or rebinds an existing name — unlink, rmdir,
    rename, ``drop_caches`` — bumps the generation, instantly invalidating
    every cached entry of that filesystem.  Only positive entries are cached,
    so pure name additions need no invalidation, and filesystems with
    synthetic namespaces (procfs) opt out via ``dcacheable = False``.

    Mount and unmount need no invalidation at all: entries are keyed by the
    mount the walk is in and store the child inode *before* mount crossing,
    which resolution applies afterwards against the live mount table.
    """

    def __init__(self, max_entries: int = 1 << 20) -> None:
        self.max_entries = max_entries
        self._entries: dict[tuple[int, int, str], tuple[int, int]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, mount: Mount, parent_ino: int, name: str) -> int | None:
        """Cached child ino, or None on a miss or a stale generation."""
        fs = mount.fs
        if not fs.dcacheable:
            return None
        key = (mount.mount_id, parent_ino, name)
        entry = self._entries.get(key)
        if entry is not None:
            ino, gen = entry
            if gen == fs.dentry_gen:
                self.hits += 1
                return ino
            del self._entries[key]
        self.misses += 1
        return None

    def insert(self, mount: Mount, parent_ino: int, name: str, ino: int) -> None:
        """Remember a positive lookup result."""
        fs = mount.fs
        if not fs.dcacheable:
            return
        if len(self._entries) >= self.max_entries:
            # Wholesale shrink: crude, O(1) amortized, and safe — the cache
            # refills from resolution traffic.
            self._entries.clear()
        self._entries[(mount.mount_id, parent_ino, name)] = (ino, fs.dentry_gen)

    def clear(self) -> None:
        """Drop every cached entry."""
        self._entries.clear()


class VFS:
    """Path-level filesystem operations over a mount namespace."""

    def __init__(self) -> None:
        self.dcache = DentryCache()

    # --------------------------------------------------------------- resolution
    def resolve(self, ctx: PathContext, path: str, *, follow: bool = True,
                want_parent: bool = False) -> VNode | tuple[VNode, str]:
        """Resolve ``path`` to a :class:`VNode`.

        With ``want_parent`` the final component is *not* resolved; the return
        value is ``(parent_vnode, final_name)`` which create-style operations
        use.
        """
        if not path:
            raise FsError.enoent(path)
        if len(path) > PATH_MAX:
            raise FsError.enametoolong(path)
        start = ctx.root if path.startswith("/") else ctx.cwd
        components = _split_components(path)
        if want_parent and not components:
            raise FsError.einval(path)
        return self._walk(ctx, start, components, follow=follow,
                          want_parent=want_parent, depth=0, orig_path=path)

    def _walk(self, ctx: PathContext, start: VNode, components: tuple[str, ...], *,
              follow: bool, want_parent: bool, depth: int,
              orig_path: str) -> VNode | tuple[VNode, str]:
        if depth > SYMLOOP_MAX:
            raise FsError.eloop(orig_path)
        current = self._cross_mounts(ctx.ns, start)
        creds = ctx.creds
        n = len(components)
        i = 0
        while i < n:
            name = components[i]
            is_last = i == n - 1
            # One iget per component: the is_dir test and the search-permission
            # check share the same inode object (observably identical to the
            # former separate _require_search fetch).
            inode = current.inode()
            if want_parent and is_last:
                self._check_access(inode, creds, _X_OK)
                return current, name
            if not inode.is_dir:
                raise FsError.enotdir("/".join(components[:i + 1]))
            self._check_access(inode, creds, _X_OK)
            child = self._lookup_component(ctx, current, name)
            child = self._cross_mounts(ctx.ns, child)
            child_inode = child.inode()
            if isinstance(child_inode, SymlinkInode) and (follow or not is_last):
                target = child.fs.readlink(child.ino)
                rest = components[i + 1:]
                new_components = _split_components(target) + rest
                new_start = ctx.root if target.startswith("/") else current
                return self._walk(ctx, new_start, new_components, follow=follow,
                                  want_parent=want_parent, depth=depth + 1,
                                  orig_path=orig_path)
            current = child
            i += 1
        return current

    def _lookup_component(self, ctx: PathContext, current: VNode, name: str) -> VNode:
        if name == ".":
            return current
        if name == "..":
            return self._lookup_dotdot(ctx, current)
        fs = current.fs
        cached = self.dcache.lookup(current.mount, current.ino, name)
        if cached is not None:
            # Dentry-cache hit: skip the filesystem lookup but charge the same
            # virtual cost its warm path would have, keeping figures invariant.
            fs.charge_lookup_hit(current.ino, name, cached)
            return VNode(current.mount, cached)
        inode = fs.lookup(current.ino, name)
        self.dcache.insert(current.mount, current.ino, name, inode.ino)
        return VNode(current.mount, inode.ino)

    def _lookup_dotdot(self, ctx: PathContext, current: VNode) -> VNode:
        # Never escape the process root (chroot jail).
        if current.mount is ctx.root.mount and current.ino == ctx.root.ino:
            return current
        mount = current.mount
        ino = current.ino
        # At a mount root: step up to the mountpoint in the parent mount first.
        while ino == mount.root_ino and mount.parent is not None:
            parent_mount = mount.parent
            ino = mount.mountpoint_ino if mount.mountpoint_ino is not None else parent_mount.root_ino
            mount = parent_mount
            if mount is ctx.root.mount and ino == ctx.root.ino:
                return VNode(mount, ino)
        inode = mount.fs.iget(ino)
        if isinstance(inode, DirectoryInode) and inode.parent_ino is not None:
            return VNode(mount, inode.parent_ino)
        return VNode(mount, ino)

    @staticmethod
    def _cross_mounts(ns: MountNamespace, vnode: VNode) -> VNode:
        stacked = ns.mount_at(vnode.mount, vnode.ino)
        if stacked is None:
            # Nothing mounted here (the overwhelmingly common case): hand the
            # caller's vnode back without allocating a copy.
            return vnode
        mount, ino = stacked, stacked.root_ino
        while True:
            stacked = ns.mount_at(mount, ino)
            if stacked is None:
                return VNode(mount, ino)
            mount, ino = stacked, stacked.root_ino

    # --------------------------------------------------------------- permissions
    def _check_access(self, inode: Inode, creds: Credentials, want: int) -> None:
        """Check rwx ``want`` bits (4/2/1) against mode, ACL and capabilities."""
        if want == 0:
            return
        acl_verdict = None
        if inode.acl is not None:
            acl_verdict = inode.acl.check(creds.uid, set(creds.all_gids()),
                                          inode.uid, inode.gid, want)
        if acl_verdict is None:
            if creds.uid == inode.uid:
                granted = (inode.mode >> 6) & 0o7
            elif inode.gid in creds.all_gids():
                granted = (inode.mode >> 3) & 0o7
            else:
                granted = inode.mode & 0o7
            allowed = (granted & want) == want
        else:
            allowed = acl_verdict
        if allowed:
            return
        # Capability overrides.
        if creds.has_cap(CAP_DAC_OVERRIDE):
            if want & _X_OK and inode.is_regular:
                # Exec requires at least one execute bit even for CAP_DAC_OVERRIDE.
                if not (inode.mode & 0o111):
                    raise FsError.eacces()
            return
        if creds.has_cap(CAP_DAC_READ_SEARCH) and not (want & _W_OK):
            if want & _X_OK and not inode.is_dir:
                raise FsError.eacces()
            return
        raise FsError.eacces()

    def _require_search(self, ctx: PathContext, dir_vnode: VNode) -> None:
        self._check_access(dir_vnode.inode(), ctx.creds, _X_OK)

    def _require_write_dir(self, ctx: PathContext, dir_vnode: VNode) -> None:
        if dir_vnode.mount.read_only:
            raise FsError.erofs(dir_vnode.mount.mountpoint_path)
        self._check_access(dir_vnode.inode(), ctx.creds, _W_OK | _X_OK)

    def _check_sticky_delete(self, ctx: PathContext, dir_inode: Inode,
                             victim: Inode) -> None:
        if not (dir_inode.mode & _S_ISVTX):
            return
        creds = ctx.creds
        if creds.uid in (victim.uid, dir_inode.uid) or creds.has_cap(CAP_FOWNER):
            return
        raise FsError.eperm()

    # --------------------------------------------------------------- open/close
    def open(self, ctx: PathContext, path: str, flags: int, mode: int = 0o644,
             owner_pid: int = 0) -> OpenFile:
        """``open(2)``."""
        flags = int(flags)
        want_write = (flags & _O_ACCMODE) in (_O_WRONLY, _O_RDWR)
        follow = not (flags & _O_NOFOLLOW)
        creds = ctx.creds

        if flags & _O_CREAT:
            parent, name = self.resolve(ctx, path, want_parent=True)
            try:
                existing = parent.fs.lookup(parent.ino, name)
                exists = True
            except FsError:
                existing = None
                exists = False
            if exists and flags & _O_EXCL:
                raise FsError.eexist(path)
            if not exists:
                self._require_write_dir(ctx, parent)
                effective_mode = mode & ~creds.umask & 0o7777
                inode = parent.fs.create(parent.ino, name, effective_mode,
                                         uid=creds.uid, gid=creds.gid)
                vnode = VNode(parent.mount, inode.ino)
                return self._finish_open(ctx, vnode, flags, path, owner_pid,
                                         just_created=True)
            vnode = self._cross_mounts(ctx.ns, VNode(parent.mount, existing.ino))
            if isinstance(vnode.inode(), SymlinkInode) and follow:
                vnode = self.resolve(ctx, path, follow=True)
        else:
            vnode = self.resolve(ctx, path, follow=follow)

        inode = vnode.inode()
        if isinstance(inode, SymlinkInode):
            raise FsError.eloop(path)
        if flags & _O_DIRECTORY and not inode.is_dir:
            raise FsError.enotdir(path)
        if inode.is_dir and want_write:
            raise FsError.eisdir(path)
        return self._finish_open(ctx, vnode, flags, path, owner_pid)

    def _finish_open(self, ctx: PathContext, vnode: VNode, flags: int, path: str,
                     owner_pid: int, just_created: bool = False) -> OpenFile:
        inode = vnode.inode()
        accmode = flags & _O_ACCMODE
        want_write = accmode in (_O_WRONLY, _O_RDWR)
        want_read = accmode in (_O_RDONLY, _O_RDWR)
        if not just_created:
            want = 0
            if want_read:
                want |= _R_OK
            if want_write:
                want |= _W_OK
            self._check_access(inode, ctx.creds, want)
        if want_write and vnode.mount.read_only:
            raise FsError.erofs(path)
        if flags & _O_DIRECT and not vnode.fs.supports_direct_io:
            raise FsError.einval("O_DIRECT not supported by this filesystem")
        if flags & _O_TRUNC and want_write and isinstance(inode, RegularInode):
            vnode.fs.truncate(vnode.ino, 0)
        open_hook = getattr(vnode.fs, "on_open", None)
        if callable(open_hook):
            open_hook(vnode.ino, flags)
        return OpenFile(vnode, flags, path, owner_pid=owner_pid)

    # --------------------------------------------------------------- data I/O
    def read(self, handle: OpenFile, size: int) -> bytes:
        """Read from the current offset."""
        data = self.pread(handle, size, handle.offset)
        handle.offset += len(data)
        return data

    def pread(self, handle: OpenFile, size: int, offset: int) -> bytes:
        """Positional read."""
        if handle.closed:
            raise FsError.ebadf(handle.path)
        if not handle.readable:
            raise FsError.ebadf(f"{handle.path} not open for reading")
        return handle.fs.read(handle.ino, offset, size)

    def write(self, handle: OpenFile, data: bytes, creds: Credentials | None = None) -> int:
        """Write at the current offset (or at EOF for O_APPEND)."""
        if handle.append:
            handle.offset = handle.inode().size
        written = self.pwrite(handle, data, handle.offset, creds=creds)
        handle.offset += written
        return written

    def pwrite(self, handle: OpenFile, data: bytes, offset: int,
               creds: Credentials | None = None) -> int:
        """Positional write, enforcing RLIMIT_FSIZE when the filesystem layer does."""
        if handle.closed:
            raise FsError.ebadf(handle.path)
        if not handle.writable:
            raise FsError.ebadf(f"{handle.path} not open for writing")
        if creds is not None and creds.fsize_limit is not None:
            enforced = getattr(handle.fs, "enforces_fsize_limit", True)
            if enforced and offset + len(data) > creds.fsize_limit:
                raise FsError.efbig(handle.path)
        written = handle.fs.write(handle.ino, offset, data)
        # O_SYNC / O_DSYNC: every write is followed by the equivalent of
        # fsync(2) / fdatasync(2) before it "returns" to the caller.
        flags = handle.flags
        if flags & _O_SYNC == _O_SYNC:
            handle.fs.fsync(handle.ino, datasync=False)
        elif flags & _O_DSYNC:
            handle.fs.fsync(handle.ino, datasync=True)
        return written

    def lseek(self, handle: OpenFile, offset: int, whence: SeekWhence) -> int:
        """Reposition the file offset (``SEEK_DATA``/``SEEK_HOLE`` included).

        The simulated filesystems expose the minimal conformant hole
        geometry (the one Linux guarantees for filesystems without extent
        enumeration): the whole file is one data extent with the implicit
        hole at EOF.
        """
        if whence == SeekWhence.SEEK_SET:
            new = offset
        elif whence == SeekWhence.SEEK_CUR:
            new = handle.offset + offset
        elif whence == SeekWhence.SEEK_END:
            new = handle.inode().size + offset
        elif whence in (SeekWhence.SEEK_DATA, SeekWhence.SEEK_HOLE):
            size = handle.inode().size
            if offset < 0:
                raise FsError.einval("negative seek")
            if offset >= size:
                raise FsError.enxio(f"offset {offset} beyond EOF {size}")
            new = offset if whence == SeekWhence.SEEK_DATA else size
        else:
            raise FsError.einval(f"bad whence {whence}")
        if new < 0:
            raise FsError.einval("negative seek")
        handle.offset = new
        return new

    def ftruncate(self, handle: OpenFile, size: int) -> None:
        """Truncate via an open description."""
        if not handle.writable:
            raise FsError.ebadf(handle.path)
        handle.fs.truncate(handle.ino, size)

    def fsync(self, handle: OpenFile, datasync: bool = False) -> None:
        """Flush an open file to stable storage."""
        handle.fs.fsync(handle.ino, datasync)

    def fallocate(self, handle: OpenFile, mode: int, offset: int, length: int) -> None:
        """Preallocate space in an open file."""
        if not handle.writable:
            raise FsError.ebadf(handle.path)
        handle.fs.fallocate(handle.ino, mode, offset, length)

    # --------------------------------------------------------------- metadata ops
    def stat(self, ctx: PathContext, path: str, follow: bool = True) -> FileStat:
        """``stat(2)`` / ``lstat(2)``."""
        vnode = self.resolve(ctx, path, follow=follow)
        return vnode.fs.getattr(vnode.ino)

    def fstat(self, handle: OpenFile) -> FileStat:
        """``fstat(2)``."""
        return handle.fs.getattr(handle.ino)

    def exists(self, ctx: PathContext, path: str, follow: bool = True) -> bool:
        """True when the path resolves."""
        try:
            self.resolve(ctx, path, follow=follow)
            return True
        except FsError:
            return False

    def access(self, ctx: PathContext, path: str, mode: int) -> None:
        """``access(2)``; raises on failure."""
        vnode = self.resolve(ctx, path)
        if mode == AccessMode.F_OK:
            return
        self._check_access(vnode.inode(), ctx.creds, mode)

    def mkdir(self, ctx: PathContext, path: str, mode: int = 0o755) -> VNode:
        """``mkdir(2)``."""
        parent, name = self.resolve(ctx, path, want_parent=True)
        self._require_write_dir(ctx, parent)
        inode = parent.fs.mkdir(parent.ino, name, mode & ~ctx.creds.umask,
                                uid=ctx.creds.uid, gid=ctx.creds.gid)
        return VNode(parent.mount, inode.ino)

    def makedirs(self, ctx: PathContext, path: str, mode: int = 0o755,
                 exist_ok: bool = True) -> VNode:
        """Create a directory and all missing parents."""
        parts = [c for c in path.split("/") if c]
        prefix = "" if path.startswith("/") else "."
        vnode = ctx.root if path.startswith("/") else ctx.cwd
        built = prefix
        for part in parts:
            built = f"{built}/{part}"
            try:
                vnode = self.mkdir(ctx, built, mode)
            except FsError as exc:
                if exc.errno == 17 and exist_ok:  # EEXIST
                    vnode = self.resolve(ctx, built)
                else:
                    raise
        return vnode

    def rmdir(self, ctx: PathContext, path: str) -> None:
        """``rmdir(2)``."""
        parent, name = self.resolve(ctx, path, want_parent=True)
        self._require_write_dir(ctx, parent)
        child_inode = parent.fs.lookup(parent.ino, name)
        if ctx.ns.mount_at(parent.mount, child_inode.ino) is not None:
            raise FsError.ebusy(path)
        self._check_sticky_delete(ctx, parent.inode(), child_inode)
        parent.fs.rmdir(parent.ino, name)

    def unlink(self, ctx: PathContext, path: str) -> None:
        """``unlink(2)``."""
        parent, name = self.resolve(ctx, path, want_parent=True)
        self._require_write_dir(ctx, parent)
        child_inode = parent.fs.lookup(parent.ino, name)
        if ctx.ns.mount_at(parent.mount, child_inode.ino) is not None:
            raise FsError.ebusy(path)
        self._check_sticky_delete(ctx, parent.inode(), child_inode)
        parent.fs.unlink(parent.ino, name)

    def symlink(self, ctx: PathContext, target: str, path: str) -> VNode:
        """``symlink(2)``."""
        parent, name = self.resolve(ctx, path, want_parent=True)
        self._require_write_dir(ctx, parent)
        inode = parent.fs.symlink(parent.ino, name, target,
                                  uid=ctx.creds.uid, gid=ctx.creds.gid)
        return VNode(parent.mount, inode.ino)

    def readlink(self, ctx: PathContext, path: str) -> str:
        """``readlink(2)``."""
        vnode = self.resolve(ctx, path, follow=False)
        return vnode.fs.readlink(vnode.ino)

    def link(self, ctx: PathContext, existing: str, new: str) -> None:
        """``link(2)``; cross-filesystem links fail with EXDEV."""
        src = self.resolve(ctx, existing, follow=False)
        parent, name = self.resolve(ctx, new, want_parent=True)
        if src.fs is not parent.fs:
            raise FsError.exdev(new)
        self._require_write_dir(ctx, parent)
        parent.fs.link(parent.ino, name, src.ino)

    def rename(self, ctx: PathContext, old: str, new: str, flags: int = 0) -> None:
        """``rename(2)`` / ``renameat2(2)``."""
        old_parent, old_name = self.resolve(ctx, old, want_parent=True)
        new_parent, new_name = self.resolve(ctx, new, want_parent=True)
        if old_parent.fs is not new_parent.fs or old_parent.mount is not new_parent.mount:
            raise FsError.exdev(new)
        self._require_write_dir(ctx, old_parent)
        self._require_write_dir(ctx, new_parent)
        victim = old_parent.fs.lookup(old_parent.ino, old_name)
        self._check_sticky_delete(ctx, old_parent.inode(), victim)
        old_parent.fs.rename(old_parent.ino, old_name, new_parent.ino, new_name, flags)

    def mknod(self, ctx: PathContext, path: str, mode: int, rdev: int = 0) -> VNode:
        """``mknod(2)``; device nodes require CAP_MKNOD."""
        ftype = mode & FileMode.S_IFMT
        if ftype in (FileMode.S_IFBLK, FileMode.S_IFCHR) and not ctx.creds.has_cap(CAP_MKNOD):
            raise FsError.eperm(path)
        parent, name = self.resolve(ctx, path, want_parent=True)
        self._require_write_dir(ctx, parent)
        inode = parent.fs.mknod(parent.ino, name, mode, rdev,
                                uid=ctx.creds.uid, gid=ctx.creds.gid)
        return VNode(parent.mount, inode.ino)

    def readdir(self, ctx: PathContext, path: str) -> list[tuple[str, int, int]]:
        """List a directory by path."""
        vnode = self.resolve(ctx, path)
        self._check_access(vnode.inode(), ctx.creds, _R_OK)
        return vnode.fs.readdir(vnode.ino)

    def listdir(self, ctx: PathContext, path: str) -> list[str]:
        """Names in a directory, excluding the dot entries."""
        return [name for name, _ino, _type in self.readdir(ctx, path)
                if name not in (".", "..")]

    def chmod(self, ctx: PathContext, path: str, mode: int) -> None:
        """``chmod(2)`` with POSIX setgid-clearing semantics.

        When the caller is not in the file's owning group (and lacks
        CAP_FSETID) the setgid bit is cleared.  Filesystems that do not
        interpret ACLs themselves (the FUSE client) skip the ACL-aware part
        of this check, which is what makes the xfstests #375 analogue fail.
        """
        vnode = self.resolve(ctx, path)
        inode = vnode.inode()
        creds = ctx.creds
        if creds.uid != inode.uid and not creds.has_cap(CAP_FOWNER):
            raise FsError.eperm(path)
        if mode & FileMode.S_ISGID and not creds.has_cap(CAP_FSETID) \
                and vnode.fs.interprets_acls_on_chmod:
            # Filesystems that delegate ACL handling to their backing store
            # (the FUSE client) skip this policy entirely, which is what makes
            # the xfstests #375 analogue fail on CntrFS.
            owning_groups = {inode.gid}
            if inode.acl is not None:
                owning_groups |= inode.acl.named_group_ids()
            if not (owning_groups & set(creds.all_gids())):
                mode &= ~FileMode.S_ISGID
        vnode.fs.setattr(vnode.ino, mode=mode)

    def chown(self, ctx: PathContext, path: str, uid: int, gid: int,
              follow: bool = True) -> None:
        """``chown(2)``; changing the owner requires CAP_CHOWN."""
        vnode = self.resolve(ctx, path, follow=follow)
        inode = vnode.inode()
        creds = ctx.creds
        if uid >= 0 and uid != inode.uid and not creds.has_cap(CAP_CHOWN):
            raise FsError.eperm(path)
        if gid >= 0 and creds.uid != inode.uid and not creds.has_cap(CAP_CHOWN):
            raise FsError.eperm(path)
        new_mode = None
        if not creds.has_cap(CAP_FSETID) and inode.mode & (FileMode.S_ISUID | FileMode.S_ISGID):
            new_mode = inode.mode & ~(FileMode.S_ISUID | FileMode.S_ISGID) & 0o7777
        vnode.fs.setattr(vnode.ino, uid=uid if uid >= 0 else None,
                         gid=gid if gid >= 0 else None, mode=new_mode)

    def truncate(self, ctx: PathContext, path: str, size: int) -> None:
        """``truncate(2)``."""
        vnode = self.resolve(ctx, path)
        self._check_access(vnode.inode(), ctx.creds, _W_OK)
        if vnode.mount.read_only:
            raise FsError.erofs(path)
        vnode.fs.truncate(vnode.ino, size)

    def utimens(self, ctx: PathContext, path: str, atime_ns: int | None,
                mtime_ns: int | None, follow: bool = True) -> None:
        """``utimensat(2)``."""
        vnode = self.resolve(ctx, path, follow=follow)
        inode = vnode.inode()
        creds = ctx.creds
        if creds.uid != inode.uid and not creds.has_cap(CAP_FOWNER):
            self._check_access(inode, creds, _W_OK)
        vnode.fs.setattr(vnode.ino, atime_ns=atime_ns, mtime_ns=mtime_ns)

    def statfs(self, ctx: PathContext, path: str) -> StatVfs:
        """``statfs(2)``."""
        vnode = self.resolve(ctx, path)
        return vnode.fs.statfs()

    # --------------------------------------------------------------- ACLs / handles
    def set_acl(self, ctx: PathContext, path: str, acl) -> None:
        """Attach a POSIX access ACL to a file (``setfacl``)."""
        vnode = self.resolve(ctx, path)
        inode = vnode.inode()
        if ctx.creds.uid != inode.uid and not ctx.creds.has_cap(CAP_FOWNER):
            raise FsError.eperm(path)
        inode.acl = acl

    def get_acl(self, ctx: PathContext, path: str):
        """Read the POSIX access ACL of a file (``getfacl``), or None."""
        vnode = self.resolve(ctx, path)
        return vnode.inode().acl

    def name_to_handle(self, ctx: PathContext, path: str) -> tuple[int, int, int]:
        """``name_to_handle_at(2)``: an opaque, re-openable file handle.

        Filesystems whose inodes are not exportable (the FUSE client: inodes
        are created and destroyed on demand by the kernel) refuse with
        EOPNOTSUPP, reproducing xfstests failure #426.
        """
        vnode = self.resolve(ctx, path)
        if not vnode.fs.supports_export_handles:
            raise FsError.enotsup("filesystem does not export file handles")
        inode = vnode.inode()
        return (vnode.fs.fs_id, vnode.ino, inode.generation)

    def open_by_handle(self, ctx: PathContext, handle: tuple[int, int, int],
                       owner_pid: int = 0) -> OpenFile:
        """``open_by_handle_at(2)``."""
        fs_id, ino, generation = handle
        for mount in ctx.ns.mounts:
            if mount.fs.fs_id == fs_id:
                if not mount.fs.supports_export_handles:
                    raise FsError.enotsup("filesystem does not export file handles")
                inode = mount.fs.iget(ino)
                if inode.generation != generation:
                    raise FsError.estale("handle generation mismatch")
                return OpenFile(VNode(mount, ino), OpenFlags.O_RDONLY,
                                path=f"<handle:{ino}>", owner_pid=owner_pid)
        raise FsError.estale("no mounted filesystem matches the handle")

    # --------------------------------------------------------------- xattrs
    def setxattr(self, ctx: PathContext, path: str, name: str, value: bytes,
                 flags: int = 0, follow: bool = True) -> None:
        """``setxattr(2)``."""
        vnode = self.resolve(ctx, path, follow=follow)
        self._check_access(vnode.inode(), ctx.creds, _W_OK)
        vnode.fs.setxattr(vnode.ino, name, value, flags)

    def getxattr(self, ctx: PathContext, path: str, name: str,
                 follow: bool = True) -> bytes:
        """``getxattr(2)``."""
        vnode = self.resolve(ctx, path, follow=follow)
        return vnode.fs.getxattr(vnode.ino, name)

    def listxattr(self, ctx: PathContext, path: str, follow: bool = True) -> list[str]:
        """``listxattr(2)``."""
        vnode = self.resolve(ctx, path, follow=follow)
        return vnode.fs.listxattr(vnode.ino)

    def removexattr(self, ctx: PathContext, path: str, name: str,
                    follow: bool = True) -> None:
        """``removexattr(2)``."""
        vnode = self.resolve(ctx, path, follow=follow)
        self._check_access(vnode.inode(), ctx.creds, _W_OK)
        vnode.fs.removexattr(vnode.ino, name)
