"""Seeded fsstress-style fuzzing for the crash-consistency engine."""

from repro.stress.fsstress import FsStress, StressReport

__all__ = ["FsStress", "StressReport"]
