"""CLI: ``python -m repro.stress --seeds 20 --ops 300``.

Runs the seeded differential crash fuzzer over a range of seeds and exits
nonzero on the first recorded divergence, printing every failing seed so a
run can be replayed exactly with ``--base-seed``.
"""

from __future__ import annotations

import argparse
import sys

from repro.stress.fsstress import FsStress


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stress",
        description="seeded differential crash-consistency fuzzer")
    parser.add_argument("--seeds", type=int, default=20,
                        help="number of consecutive seeds to run (default 20)")
    parser.add_argument("--base-seed", type=int, default=1,
                        help="first seed of the range (default 1)")
    parser.add_argument("--ops", type=int, default=300,
                        help="operations per seed, split over rounds (default 300)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="crash rounds per seed (default 3)")
    args = parser.parse_args(argv)

    ops_per_round = max(1, args.ops // args.rounds)
    failures = 0
    for seed in range(args.base_seed, args.base_seed + args.seeds):
        report = FsStress(seed, ops_per_round=ops_per_round,
                          rounds=args.rounds).run()
        print(report.format_line())
        if not report.passed:
            failures += 1
            for divergence in report.divergences:
                print(f"  {divergence}")
    if failures:
        print(f"{failures}/{args.seeds} seeds diverged", file=sys.stderr)
        return 1
    print(f"{args.seeds} seeds, no divergence")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
