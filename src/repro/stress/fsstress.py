"""Seeded differential fsstress: crash fuzzing across both xfstests rigs.

The fuzzer drives the *same* pseudo-random operation soup — writes, truncates,
renames, hole punches, fsyncs — through two independently booted machines, one
mounting the native ext4 model and one mounting CntrFS over tmpfs, with a
power failure injected at a seeded point in every round.  Two oracles watch:

* **Differential equivalence** — before the crash the two rigs saw identical
  syscall sequences, so every per-operation result (bytes written, errno) and
  the full content tree must match bit for bit.  Post-crash the rigs are
  *allowed* to differ (ext4 loses uncommitted metadata, CntrFS keeps it — the
  server applied it synchronously), which is exactly the consistency trade-off
  the paper's delayed-sync optimization makes.

* **The durability ledger** — whenever an fsync/fdatasync/sync succeeds, the
  affected files' exact content is recorded; any later mutation of a path
  voids its entry.  After the crash every still-valid entry must resolve to a
  file with byte-identical content on *both* rigs: fsync is a promise each
  environment keeps under its own journal/writeback semantics.

Determinism is absolute: the op stream, payloads and crash points all derive
from :class:`repro.sim.rng.DeterministicRandom` substreams of one seed, and
nothing reads wall-clock time, so one seed reproduces one run bit for bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.fs.constants import FallocateMode, OpenFlags
from repro.fs.errors import FsError
from repro.fs.inode import DirectoryInode, RegularInode, SymlinkInode
from repro.sim.rng import DeterministicRandom
from repro.xfstests.harness import (
    EnvironmentSnapshot,
    TestEnvironment,
    cntrfs_environment,
    native_environment,
)

#: Pre-booted rig images, built lazily once per builder and forked per seed.
_RIG_SNAPSHOTS: dict[str, EnvironmentSnapshot] = {}

#: Maximum file size the op soup will produce (offsets + extents stay inside).
MAX_FILE_BYTES = 64 << 10
#: Largest single write extent.
MAX_WRITE_BYTES = 16 << 10

#: Operation mix, roughly fsstress-shaped: data ops dominate, sync points and
#: namespace churn are common enough that every round exercises the journal.
OP_WEIGHTS = (
    ("write", 30),
    ("truncate", 8),
    ("punch", 6),
    ("rename", 8),
    ("unlink", 6),
    ("open", 10),
    ("close", 6),
    ("fsync", 10),
    ("fdatasync", 6),
    ("sync", 4),
)


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class StressRig:
    """One environment under fuzz: fd table, content peeking, the ledger."""

    def __init__(self, env: TestEnvironment, workdir: str) -> None:
        self.env = env
        self.workdir = workdir
        self.fds: dict[str, int] = {}
        #: name -> content digest recorded at the last successful sync point.
        self.ledger: dict[str, str] = {}
        self._peek_fs, self._peek_prefix = self._peek_target()

    # --------------------------------------------------------------- plumbing
    def _peek_target(self):
        """Filesystem + relative path used for zero-cost content inspection.

        The native rig peeks the ext4 model directly.  The CntrFS rig peeks
        the *backing* tmpfs through the server's export root: the client's
        proxy inodes store no bytes, but every write is forwarded eagerly, so
        pre-crash the backing content equals the client's view and post-crash
        it *is* the surviving truth.
        """
        fs = self.env.fs_under_test
        server = getattr(getattr(fs, "connection", None), "server", None)
        # /mnt/cntr/... and /mnt/backing/... share the path tail after /mnt/X.
        rel = "/".join(self.workdir.split("/")[3:])
        if server is not None:
            export = server._nodes[1]  # noqa: SLF001 - fuzzer-internal peek
            return export.fs, rel
        return fs, rel

    def _peek_dir_ino(self) -> int | None:
        fs = self._peek_fs
        inode = fs._inodes.get(fs.root_ino)  # noqa: SLF001
        for part in self._peek_prefix.split("/"):
            if not part:
                continue
            if not isinstance(inode, DirectoryInode):
                return None
            child = inode.entries.get(part)
            if child is None:
                return None
            inode = fs._inodes.get(child)  # noqa: SLF001
        return inode.ino if inode is not None else None

    def peek_tree(self) -> dict[str, tuple[str, object]]:
        """Zero-cost map of the workdir: name -> (kind, size/digest/target)."""
        fs = self._peek_fs
        dir_ino = self._peek_dir_ino()
        if dir_ino is None:
            return {}
        root = fs._inodes.get(dir_ino)  # noqa: SLF001
        out: dict[str, tuple[str, object]] = {}
        if not isinstance(root, DirectoryInode):
            return out
        for name, ino in sorted(root.entries.items()):
            if name in (".", ".."):
                continue
            inode = fs._inodes.get(ino)  # noqa: SLF001
            if isinstance(inode, RegularInode):
                out[name] = ("file", _digest(inode.data.to_bytes()))
            elif isinstance(inode, DirectoryInode):
                out[name] = ("dir", len(inode.entries))
            elif isinstance(inode, SymlinkInode):
                out[name] = ("symlink", inode.target)
            elif inode is not None:
                out[name] = ("special", inode.mode)
        return out

    def peek_file_digest(self, name: str) -> str | None:
        tree = self.peek_tree()
        entry = tree.get(name)
        if entry is None or entry[0] != "file":
            return None
        return str(entry[1])

    def state_hash(self) -> str:
        """Deterministic digest of the workdir tree (no timestamps)."""
        acc = hashlib.sha256()
        for name, (kind, detail) in sorted(self.peek_tree().items()):
            acc.update(f"{name}|{kind}|{detail}\n".encode())
        return acc.hexdigest()

    # ------------------------------------------------------------ crash/reset
    def power_fail(self) -> None:
        """Cut power: open descriptors vanish without a close, then the
        filesystem crashes and remounts per its own loss semantics."""
        process = self.env.sc.process
        for fd in self.fds.values():
            process.fds.pop(fd, None)
        self.fds.clear()
        self.env.power_fail()

    def reset(self) -> None:
        """Remove every surviving file and sync, leaving an empty durable dir."""
        sc = self.env.sc
        for fd in list(self.fds.values()):
            try:
                sc.close(fd)
            except FsError:
                pass
        self.fds.clear()
        for name in sorted(self.peek_tree()):
            try:
                sc.unlink(f"{self.workdir}/{name}")
            except FsError:
                pass
        self.env.make_durable()
        self.ledger.clear()


@dataclass
class StressReport:
    """Outcome of one seeded fuzzing run."""

    seed: int
    rounds: int = 0
    ops_applied: int = 0
    crashes: int = 0
    divergences: list[str] = field(default_factory=list)
    #: Per-round (pre-crash state hash, crash index) — the determinism trace.
    state_trace: list[tuple[str, int]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no oracle flagged a divergence."""
        return not self.divergences

    def format_line(self) -> str:
        """One status line for the CLI."""
        status = "ok" if self.passed else f"FAIL ({len(self.divergences)})"
        return (f"seed={self.seed} rounds={self.rounds} ops={self.ops_applied} "
                f"crashes={self.crashes} {status}")


class FsStress:
    """The seeded differential fuzzer."""

    def __init__(self, seed: int | str, ops_per_round: int = 100,
                 rounds: int = 3, file_pool: int = 8) -> None:
        rng = DeterministicRandom(seed)
        self._op_rng = rng.substream("ops")
        self._data_rng = rng.substream("data")
        self._crash_rng = rng.substream("crash")
        self.ops_per_round = ops_per_round
        self.rounds = rounds
        self.names = [f"f{i}" for i in range(file_pool)]
        self.report = StressReport(seed=rng.initial_seed)
        self._ops = [name for name, weight in OP_WEIGHTS for _ in range(weight)]
        self.rigs: list[StressRig] = []

    # ---------------------------------------------------------------- setup
    def _build_rigs(self) -> None:
        # Every seed starts from the identical deterministic post-boot state,
        # so the two rigs are booted once per process and every fuzzer
        # instance forks pristine clones from the cached snapshots instead of
        # re-booting two machines per seed.
        for build in (native_environment, cntrfs_environment):
            snap = _RIG_SNAPSHOTS.get(build.__name__)
            if snap is None:
                env = build()
                env.sc.makedirs(f"{env.test_dir}/stress")
                env.make_durable()
                snap = EnvironmentSnapshot(env)
                _RIG_SNAPSHOTS[build.__name__] = snap
            env = snap.fork()
            self.rigs.append(StressRig(env, f"{env.test_dir}/stress"))

    # ------------------------------------------------------------- op engine
    def _apply(self, rig: StressRig, op: str, name: str, other: str,
               offset: int, size: int, fill: int):
        """Run one op on one rig; returns ("ok", result) or ("err", errno)."""
        sc = rig.env.sc
        path = f"{rig.workdir}/{name}"
        try:
            if op == "open":
                if name not in rig.fds:
                    rig.fds[name] = sc.open(
                        path, OpenFlags.O_CREAT | OpenFlags.O_RDWR, 0o644)
                return "ok", None
            if op == "close":
                fd = rig.fds.pop(name, None)
                if fd is not None:
                    sc.close(fd)
                return "ok", None
            if op == "write":
                fd = rig.fds.get(name)
                if fd is None:
                    return "ok", "noop"
                written = sc.pwrite(fd, bytes([fill]) * size, offset)
                rig.ledger.pop(name, None)
                return "ok", written
            if op == "truncate":
                fd = rig.fds.get(name)
                if fd is None:
                    return "ok", "noop"
                sc.ftruncate(fd, size)
                rig.ledger.pop(name, None)
                return "ok", None
            if op == "punch":
                fd = rig.fds.get(name)
                if fd is None:
                    return "ok", "noop"
                sc.fallocate(fd, FallocateMode.PUNCH_HOLE |
                             FallocateMode.KEEP_SIZE, offset, max(1, size))
                rig.ledger.pop(name, None)
                return "ok", None
            if op == "rename":
                sc.rename(path, f"{rig.workdir}/{other}")
                if name != other:
                    # The fd table is keyed by name: the moved inode's fd
                    # follows it to its new name, and a descriptor for the
                    # replaced file would otherwise keep fsyncing an orphan
                    # the ledger can no longer observe through the path.
                    replaced = rig.fds.pop(other, None)
                    if replaced is not None:
                        sc.close(replaced)
                    if name in rig.fds:
                        rig.fds[other] = rig.fds.pop(name)
                rig.ledger.pop(name, None)
                rig.ledger.pop(other, None)
                return "ok", None
            if op == "unlink":
                if name in rig.fds:
                    # Keep the soup simple: no unlink-while-open churn here
                    # (generic/166+ covers it); drop the descriptor first.
                    sc.close(rig.fds.pop(name))
                sc.unlink(path)
                rig.ledger.pop(name, None)
                return "ok", None
            if op in ("fsync", "fdatasync"):
                fd = rig.fds.get(name)
                if fd is None:
                    return "ok", "noop"
                (sc.fsync if op == "fsync" else sc.fdatasync)(fd)
                digest = rig.peek_file_digest(name)
                if digest is not None:
                    rig.ledger[name] = digest
                return "ok", None
            if op == "sync":
                rig.env.make_durable()
                for fname, (kind, detail) in rig.peek_tree().items():
                    if kind == "file":
                        rig.ledger[fname] = str(detail)
                return "ok", None
        except FsError as exc:
            return "err", exc.errno
        raise AssertionError(f"unknown op {op}")

    def _one_op(self, index: int) -> None:
        rng = self._op_rng
        op = rng.choice(self._ops)
        name = rng.choice(self.names)
        other = rng.choice(self.names)
        offset = rng.randrange(0, MAX_FILE_BYTES - MAX_WRITE_BYTES)
        size = rng.randrange(1, MAX_WRITE_BYTES) if op != "truncate" \
            else rng.randrange(0, MAX_FILE_BYTES)
        fill = self._data_rng.randrange(256)
        outcomes = [self._apply(rig, op, name, other, offset, size, fill)
                    for rig in self.rigs]
        self.report.ops_applied += 1
        if outcomes[0] != outcomes[1]:
            self.report.divergences.append(
                f"op {index} {op}({name}): native={outcomes[0]} "
                f"cntrfs={outcomes[1]}")

    # ------------------------------------------------------------- round loop
    def _check_ledgers(self) -> None:
        for rig, label in zip(self.rigs, ("native", "cntrfs"), strict=True):
            for name, digest in sorted(rig.ledger.items()):
                survived = rig.peek_file_digest(name)
                if survived != digest:
                    self.report.divergences.append(
                        f"{label}: fsynced {name} broke its durability "
                        f"promise: expected {digest[:12]}, "
                        f"found {survived and survived[:12]}")

    def run(self) -> StressReport:
        """Execute the fuzzing run and return its report."""
        self._build_rigs()
        for _round in range(self.rounds):
            crash_at = self._crash_rng.randrange(1, self.ops_per_round + 1)
            for index in range(crash_at):
                self._one_op(index)
                if self.report.divergences:
                    return self.report
            hashes = [rig.state_hash() for rig in self.rigs]
            if hashes[0] != hashes[1]:
                self.report.divergences.append(
                    f"round {_round}: pre-crash trees differ: "
                    f"{hashes[0][:12]} vs {hashes[1][:12]}")
                return self.report
            self.report.state_trace.append((hashes[0], crash_at))
            for rig in self.rigs:
                rig.power_fail()
            self.report.crashes += 1
            self._check_ledgers()
            if self.report.divergences:
                return self.report
            for rig in self.rigs:
                rig.reset()
            empties = [rig.state_hash() for rig in self.rigs]
            if empties[0] != empties[1]:
                self.report.divergences.append(
                    f"round {_round}: post-reset trees differ")
                return self.report
            self.report.rounds += 1
        return self.report
