"""rkt engine front-end."""

from __future__ import annotations

import uuid

from repro.container.engine import Container, ContainerEngine, ContainerError
from repro.container.image import Image


class RktEngine(ContainerEngine):
    """rkt: pod-addressed containers identified by UUIDs.

    Cntr's rkt adapter resolves a pod UUID via ``rkt status <uuid>`` and reads
    the ``pid=`` field; ``rkt_status`` reproduces that output format, including
    UUID-prefix matching.
    """

    engine_name = "rkt"
    cgroup_parent = "/machine.slice/rkt"
    default_hostname_prefix = "rkt"

    def __init__(self, machine) -> None:
        super().__init__(machine)
        self._pod_uuids: dict[str, str] = {}

    def container_name_for(self, requested: str | None, image: Image) -> str:
        return requested or f"rkt-{image.name}"

    def create(self, image: Image, name: str | None = None, **kwargs) -> Container:
        container = super().create(image, name=name, **kwargs)
        pod_uuid = str(uuid.uuid5(uuid.NAMESPACE_URL, container.container_id))
        self._pod_uuids[pod_uuid] = container.container_id
        container.labels["pod_uuid"] = pod_uuid
        return container

    def pod_uuid(self, container: Container) -> str:
        """The pod UUID assigned at creation."""
        return container.labels["pod_uuid"]

    def find_by_uuid(self, uuid_or_prefix: str) -> Container:
        """Resolve a pod by UUID or unique UUID prefix."""
        matches = [cid for pod, cid in self._pod_uuids.items()
                   if pod.startswith(uuid_or_prefix)]
        if not matches:
            raise ContainerError(f"no such pod: {uuid_or_prefix}")
        if len(matches) > 1:
            raise ContainerError(f"ambiguous pod prefix: {uuid_or_prefix}")
        return self.containers[matches[0]]

    def rkt_status(self, uuid_or_prefix: str) -> dict[str, str]:
        """Equivalent of ``rkt status <uuid>``."""
        container = self.find_by_uuid(uuid_or_prefix)
        status = {"state": container.status, "name": container.name}
        if container.init_pid is not None:
            status["pid"] = str(container.init_pid)
        return status

    def resolve_name_to_pid(self, name_or_id: str) -> int:
        try:
            status = self.rkt_status(name_or_id)
        except ContainerError:
            return super().resolve_name_to_pid(name_or_id)
        if "pid" not in status:
            raise ContainerError(f"pod not running: {name_or_id}")
        return int(status["pid"])
