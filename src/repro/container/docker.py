"""Docker engine front-end."""

from __future__ import annotations

import itertools

from repro.container.engine import Container, ContainerEngine, ContainerError
from repro.container.image import Image
from repro.container.registry import Registry, PullResult

_name_counter = itertools.count(1)

#: Adjective/name pairs docker uses for auto-generated container names.
_ADJECTIVES = ("admiring", "brave", "clever", "dazzling", "eager", "festive",
               "gallant", "hopeful", "jolly", "keen")
_SURNAMES = ("turing", "hopper", "lovelace", "ritchie", "thompson", "hamilton",
             "liskov", "knuth", "dijkstra", "lamport")


class DockerEngine(ContainerEngine):
    """The Docker container runtime front-end.

    Adds the pieces Cntr's docker adapter interacts with: auto-generated
    container names, ``docker pull`` against a registry with a local layer
    cache, the ``docker-default`` AppArmor profile and the ``/docker/<id>``
    cgroup layout.
    """

    engine_name = "docker"
    cgroup_parent = "/docker"
    default_hostname_prefix = "docker"

    def __init__(self, machine, registry: Registry | None = None) -> None:
        super().__init__(machine)
        self.registry = registry
        self._local_images: dict[str, Image] = {}

    def container_name_for(self, requested: str | None, image: Image) -> str:
        if requested:
            return requested
        seq = next(_name_counter)
        adjective = _ADJECTIVES[seq % len(_ADJECTIVES)]
        surname = _SURNAMES[(seq // len(_ADJECTIVES)) % len(_SURNAMES)]
        return f"{adjective}_{surname}"

    def default_lsm_profile(self) -> str:
        return "docker-default"

    # ------------------------------------------------------------- images
    def pull(self, reference: str) -> PullResult:
        """``docker pull``: fetch an image from the configured registry."""
        if self.registry is None:
            raise ContainerError("no registry configured")
        result = self.registry.pull(reference, self._pulled_layers)
        self._local_images[reference] = result.image
        return result

    def images(self) -> list[str]:
        """``docker images``: references available locally."""
        return sorted(self._local_images)

    def image(self, reference: str) -> Image:
        """Fetch a locally available image."""
        if reference not in self._local_images:
            raise ContainerError(f"image not found locally: {reference}")
        return self._local_images[reference]

    def load_image(self, image: Image) -> None:
        """``docker load``: register an image without going through a registry."""
        self._local_images[image.reference] = image

    def run_reference(self, reference: str, name: str | None = None, **kwargs) -> Container:
        """``docker run <reference>``: pull if needed, then create and start."""
        if reference not in self._local_images:
            self.pull(reference)
        return self.run(self._local_images[reference], name=name, **kwargs)
