"""Container engine base: create/start/stop containers from images.

The engine is a *userspace* program composed from kernel primitives: it
materialises the image into a rootfs, creates new namespaces, a cgroup, a
capability bounding set and an LSM profile for the init process, and mounts
the container's ``/proc``, ``/dev`` and ``/tmp``.  Engine subclasses only
differ in naming conventions and in how a container name is resolved to the
init process id — matching the paper's observation that ~70 lines per engine
were enough for Cntr's engine adapters.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
from dataclasses import dataclass, field

from repro.container.image import FileSpec, Image
from repro.fs.constants import FileMode, OpenFlags
from repro.fs.mount import MountNamespace
from repro.fs.tmpfs import TmpFS
from repro.fs.vfs import VNode
from repro.kernel.capabilities import CapabilitySet
from repro.kernel.cgroups import CgroupLimits
from repro.kernel.machine import Machine
from repro.kernel.namespaces import (
    CgroupNamespace,
    IpcNamespace,
    MntNamespace,
    NamespaceKind,
    NetNamespace,
    PidNamespace,
    UtsNamespace,
)
from repro.kernel.procfs import ProcFS
from repro.kernel.process import Process
from repro.kernel.syscalls import Syscalls

_container_counter = itertools.count(1)


class ContainerError(Exception):
    """Raised for engine-level failures (unknown names, bad state transitions)."""


@dataclass
class Container:
    """A created (possibly running) container."""

    container_id: str
    name: str
    image: Image
    engine_name: str
    rootfs: TmpFS
    mounts: MountNamespace
    init_process: Process | None = None
    cgroup_path: str = ""
    status: str = "created"          # created | running | exited
    labels: dict[str, str] = field(default_factory=dict)
    procfs: ProcFS | None = None
    #: Resource limits applied to the container's cgroup at start; the memory
    #: knobs are enforced by the kernel's memory controller (page-cache
    #: budget, memcg reclaim and memory.high write throttling).
    limits: CgroupLimits | None = None

    @property
    def init_pid(self) -> int | None:
        """Global pid of the container's init process (None when not running)."""
        return self.init_process.pid if self.init_process else None

    @property
    def short_id(self) -> str:
        """Abbreviated container id (docker-style)."""
        return self.container_id[:12]


class ContainerEngine:
    """Base container runtime."""

    engine_name = "generic"
    cgroup_parent = "/containers"
    default_hostname_prefix = "ctr"

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.kernel = machine.kernel
        self.containers: dict[str, Container] = {}
        self._pulled_layers: set[str] = set()

    # ------------------------------------------------------------- naming
    def _new_container_id(self, name: str) -> str:
        seq = next(_container_counter)
        return hashlib.sha256(f"{self.engine_name}:{name}:{seq}".encode()).hexdigest()

    def container_name_for(self, requested: str | None, image: Image) -> str:
        """Engine-specific default naming; subclasses override."""
        return requested or f"{image.name}-{next(_container_counter)}"

    # ------------------------------------------------------------- lifecycle
    def create(self, image: Image, name: str | None = None,
               env: dict[str, str] | None = None,
               command: list[str] | None = None,
               hostname: str | None = None,
               extra_capabilities: set[str] = frozenset(),
               dropped_capabilities: set[str] = frozenset(),
               limits: CgroupLimits | None = None) -> Container:
        """Create (but do not start) a container from an image.

        ``limits`` is the ``docker run --memory`` / ``--cpus`` /
        ``--cpu-shares`` surface: the limits object becomes the container
        cgroup's at start, so the memory controller budgets the container's
        page cache and the CPU controller enforces ``cpu.max`` bandwidth and
        ``cpu.weight`` fairness — and, because injected debugging tools join
        the same cgroup (the paper's §3.2.3 semantics), they are budgeted and
        scheduled with the container they debug.
        """
        container_name = self.container_name_for(name, image)
        if any(c.name == container_name for c in self.containers.values()):
            raise ContainerError(f"container name already in use: {container_name}")
        container_id = self._new_container_id(container_name)

        rootfs = TmpFS(f"{self.engine_name}-{container_name}-rootfs",
                       self.kernel.clock, self.kernel.costs, self.kernel.tracer)
        rootfs.store_data = self.machine.rootfs.store_data
        mounts = MountNamespace(rootfs)
        self._materialize_image(rootfs, mounts, image)

        container = Container(container_id=container_id, name=container_name,
                              image=image, engine_name=self.engine_name,
                              rootfs=rootfs, mounts=mounts)
        container.labels.update(dict(image.config.labels))
        container.labels["hostname"] = hostname or \
            f"{self.default_hostname_prefix}-{container_id[:8]}"
        if env:
            container.labels["extra_env"] = ";".join(f"{k}={v}" for k, v in env.items())
        container.labels["command"] = " ".join(command or [])
        container.labels["cap_add"] = ",".join(sorted(extra_capabilities))
        container.labels["cap_drop"] = ",".join(sorted(dropped_capabilities))
        container.limits = limits
        self.containers[container_id] = container
        return container

    def start(self, container: Container) -> Process:
        """Start the container: namespaces, cgroup, capabilities, init process."""
        if container.status == "running":
            raise ContainerError(f"container already running: {container.name}")
        image = container.image

        # 1. Fork the init process from the host init.
        argv = image.config.argv()
        if container.labels.get("command"):
            argv = container.labels["command"].split()
        env = image.config.env_dict()
        for item in container.labels.get("extra_env", "").split(";"):
            if "=" in item:
                key, value = item.split("=", 1)
                env[key] = value
        init = self.kernel.fork(self.machine.init, argv=argv, env=env)

        # 2. Fresh namespaces.  The mount namespace is a brand-new tree rooted
        #    at the container rootfs (the pivot_root outcome), not a copy of
        #    the host tree; everything is private so host mounts do not leak in.
        pid_ns = PidNamespace(kind=NamespaceKind.PID,
                              parent=self.machine.init.pid_ns)
        uts_ns = UtsNamespace(kind=NamespaceKind.UTS,
                              hostname=container.labels["hostname"])
        init.namespaces = dict(init.namespaces)
        init.namespaces[NamespaceKind.MNT] = MntNamespace(kind=NamespaceKind.MNT,
                                                          mounts=container.mounts)
        init.namespaces[NamespaceKind.PID] = pid_ns
        init.namespaces[NamespaceKind.NET] = NetNamespace(kind=NamespaceKind.NET)
        init.namespaces[NamespaceKind.UTS] = uts_ns
        init.namespaces[NamespaceKind.IPC] = IpcNamespace(kind=NamespaceKind.IPC)
        init.namespaces[NamespaceKind.CGROUP] = CgroupNamespace(
            kind=NamespaceKind.CGROUP, root_path=self._cgroup_path(container))
        pid_ns.register(init.pid)
        init.pid_ns.init_pid = init.pid

        root_mount = container.mounts.root_mount
        assert root_mount is not None
        root = VNode(root_mount, root_mount.root_ino)
        init.root = root
        init.cwd = root
        init.cwd_path = image.config.working_dir or "/"
        container.mounts.make_all_private()

        # 3. Container /proc (bound to the container PID namespace), /dev, /tmp.
        #    This happens while the init process still holds full capabilities;
        #    the runtime drops privileges afterwards, as real runtimes do.
        sc = Syscalls(self.kernel, init)
        procfs = ProcFS(f"proc-{container.short_id}", self.kernel, pid_ns)
        container.procfs = procfs
        for directory in ("/proc", "/dev", "/tmp", "/run", "/sys"):
            if not sc.exists(directory):
                sc.makedirs(directory)
        sc.mount(procfs, "/proc")
        devfs = TmpFS(f"dev-{container.short_id}", self.kernel.clock,
                      self.kernel.costs, self.kernel.tracer)
        sc.mount(devfs, "/dev")
        from repro.kernel.kernel import DEV_NULL_RDEV, DEV_URANDOM_RDEV, DEV_ZERO_RDEV
        sc.mknod("/dev/null", FileMode.S_IFCHR | 0o666, rdev=DEV_NULL_RDEV)
        sc.mknod("/dev/zero", FileMode.S_IFCHR | 0o666, rdev=DEV_ZERO_RDEV)
        sc.mknod("/dev/urandom", FileMode.S_IFCHR | 0o666, rdev=DEV_URANDOM_RDEV)
        tmpfs = TmpFS(f"tmp-{container.short_id}", self.kernel.clock,
                      self.kernel.costs, self.kernel.tracer)
        tmpfs.store_data = self.machine.rootfs.store_data
        sc.mount(tmpfs, "/tmp")

        # 4. cgroup, capabilities, LSM profile, user — privileges drop last.
        container.cgroup_path = self._cgroup_path(container)
        cgroup = self.kernel.cgroups.attach(init.pid, container.cgroup_path)
        if container.limits is not None:
            # Wire the engine-level limits into the cgroup the memory
            # controller enforces; everything attached here (the workload and
            # any injected tools) is budgeted by them from now on.  A copy,
            # so cgroupfs writes to one container never mutate the caller's
            # object or a sibling created from the same limits.
            cgroup.limits = dataclasses.replace(container.limits)
        cap_add = set(filter(None, container.labels.get("cap_add", "").split(",")))
        cap_drop = set(filter(None, container.labels.get("cap_drop", "").split(",")))
        init.caps = CapabilitySet.for_container(extra=cap_add, dropped=cap_drop)
        init.lsm_profile = self.kernel.lsm.get(self.default_lsm_profile())
        if image.config.user != "root":
            init.uid = 1000
            init.gid = 1000

        container.init_process = init
        container.status = "running"
        return init

    def run(self, image: Image, name: str | None = None, **kwargs) -> Container:
        """``docker run`` convenience: create and start."""
        container = self.create(image, name=name, **kwargs)
        self.start(container)
        return container

    def stop(self, container: Container) -> None:
        """Stop a running container."""
        if container.status != "running" or container.init_process is None:
            raise ContainerError(f"container not running: {container.name}")
        for proc in self.kernel.processes_in_pid_ns(container.init_process.pid_ns):
            if proc.pid != container.init_process.pid:
                self.kernel.exit_process(proc, code=137)
        self.kernel.exit_process(container.init_process, code=0)
        container.status = "exited"
        container.init_process = None

    def remove(self, container: Container) -> None:
        """Remove a stopped container."""
        if container.status == "running":
            raise ContainerError(f"container still running: {container.name}")
        self.containers.pop(container.container_id, None)

    # ------------------------------------------------------------- queries
    def list_containers(self, all_states: bool = False) -> list[Container]:
        """Running containers (or all, with ``all_states``)."""
        return [c for c in self.containers.values()
                if all_states or c.status == "running"]

    def find(self, name_or_id: str) -> Container:
        """Resolve a container by name, id or id prefix."""
        for container in self.containers.values():
            if name_or_id in (container.name, container.container_id) or \
                    container.container_id.startswith(name_or_id):
                return container
        raise ContainerError(f"no such container: {name_or_id}")

    def inspect(self, name_or_id: str) -> dict:
        """Engine-agnostic inspect output (subset of ``docker inspect``)."""
        container = self.find(name_or_id)
        return {
            "Id": container.container_id,
            "Name": container.name,
            "Image": container.image.reference,
            "State": {
                "Status": container.status,
                "Running": container.status == "running",
                "Pid": container.init_pid or 0,
            },
            "HostnamePath": container.labels.get("hostname", ""),
            "CgroupPath": container.cgroup_path,
        }

    def resolve_name_to_pid(self, name_or_id: str) -> int:
        """The single engine-specific operation Cntr needs (paper §3.2.1)."""
        container = self.find(name_or_id)
        if container.status != "running" or container.init_pid is None:
            raise ContainerError(f"container not running: {name_or_id}")
        return container.init_pid

    def exec_in_container(self, container: Container, argv: list[str]) -> Syscalls:
        """``docker exec``-style helper: a new process inside the container."""
        if container.status != "running" or container.init_process is None:
            raise ContainerError(f"container not running: {container.name}")
        child = self.kernel.fork(container.init_process, argv=argv)
        return Syscalls(self.kernel, child)

    # ------------------------------------------------------------- internals
    def default_lsm_profile(self) -> str:
        """Name of the LSM profile applied to containers of this engine."""
        return "unconfined"

    def _cgroup_path(self, container: Container) -> str:
        return f"{self.cgroup_parent}/{container.container_id[:16]}"

    def _materialize_image(self, rootfs: TmpFS, mounts: MountNamespace,
                           image: Image) -> None:
        """Write the flattened image content into the container rootfs."""
        from repro.fs.vfs import Credentials, PathContext

        root_mount = mounts.root_mount
        assert root_mount is not None
        ctx = PathContext(ns=mounts, root=VNode(root_mount, rootfs.root_ino),
                          cwd=VNode(root_mount, rootfs.root_ino),
                          creds=Credentials())
        vfs = self.kernel.vfs
        for directory in ("/bin", "/usr", "/usr/bin", "/usr/lib", "/etc", "/var",
                          "/var/lib", "/var/log", "/opt", "/home", "/root", "/srv",
                          "/proc", "/dev", "/tmp", "/run", "/sys"):
            vfs.makedirs(ctx, directory)
        for path, spec in sorted(image.flatten().items()):
            self._materialize_spec(vfs, ctx, path, spec)

    @staticmethod
    def _materialize_spec(vfs, ctx, path: str, spec: FileSpec) -> None:
        parent = path.rsplit("/", 1)[0] or "/"
        if parent != "/":
            vfs.makedirs(ctx, parent)
        if spec.is_dir:
            vfs.makedirs(ctx, path, mode=spec.mode)
            return
        if spec.symlink_target is not None:
            if not vfs.exists(ctx, path, follow=False):
                vfs.symlink(ctx, spec.symlink_target, path)
            return
        handle = vfs.open(ctx, path, OpenFlags.O_CREAT | OpenFlags.O_WRONLY |
                          OpenFlags.O_TRUNC, spec.mode)
        try:
            if spec.content is not None:
                vfs.write(handle, spec.content)
            if spec.size and spec.size > (len(spec.content) if spec.content else 0):
                vfs.ftruncate(handle, spec.size)
        finally:
            handle.close()
