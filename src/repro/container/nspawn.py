"""systemd-nspawn engine front-end."""

from __future__ import annotations

from repro.container.engine import ContainerEngine, ContainerError
from repro.container.image import Image


class NspawnEngine(ContainerEngine):
    """systemd-nspawn: machine-addressed containers.

    Cntr's nspawn adapter uses ``machinectl show <machine> -p Leader`` to find
    the init pid; ``machinectl_show`` reproduces that property interface.
    nspawn machines live under the ``machine.slice`` cgroup.
    """

    engine_name = "systemd-nspawn"
    cgroup_parent = "/machine.slice"
    default_hostname_prefix = "nspawn"

    def container_name_for(self, requested: str | None, image: Image) -> str:
        # machinectl names default to the image (directory) name.
        return requested or image.name.replace("/", "-")

    def machinectl_list(self) -> list[dict[str, str]]:
        """Equivalent of ``machinectl list``."""
        rows = []
        for container in self.list_containers():
            rows.append({"MACHINE": container.name, "CLASS": "container",
                         "SERVICE": "systemd-nspawn"})
        return rows

    def machinectl_show(self, machine: str) -> dict[str, str]:
        """Equivalent of ``machinectl show <machine>``."""
        container = self.find(machine)
        props = {"Name": container.name,
                 "Class": "container",
                 "State": "running" if container.status == "running" else "closing"}
        if container.init_pid is not None:
            props["Leader"] = str(container.init_pid)
        return props

    def resolve_name_to_pid(self, name_or_id: str) -> int:
        props = self.machinectl_show(name_or_id)
        if "Leader" not in props:
            raise ContainerError(f"machine not running: {name_or_id}")
        return int(props["Leader"])
