"""LXC engine front-end."""

from __future__ import annotations

from repro.container.engine import ContainerEngine, ContainerError
from repro.container.image import Image


class LxcEngine(ContainerEngine):
    """LXC: name-addressed system containers.

    LXC containers are always explicitly named and are looked up with
    ``lxc-info -n <name> -p`` — the engine adapter Cntr ships simply parses
    that output.  ``lxc_info`` reproduces the same interface.
    """

    engine_name = "lxc"
    cgroup_parent = "/lxc"
    default_hostname_prefix = "lxc"

    def container_name_for(self, requested: str | None, image: Image) -> str:
        if not requested:
            raise ContainerError("lxc containers must be created with an explicit name")
        return requested

    def lxc_info(self, name: str) -> dict[str, str]:
        """Equivalent of ``lxc-info -n <name>`` output fields."""
        container = self.find(name)
        state = "RUNNING" if container.status == "running" else "STOPPED"
        info = {"Name": container.name, "State": state}
        if container.init_pid is not None:
            info["PID"] = str(container.init_pid)
        return info

    def resolve_name_to_pid(self, name_or_id: str) -> int:
        info = self.lxc_info(name_or_id)
        if "PID" not in info:
            raise ContainerError(f"container not running: {name_or_id}")
        return int(info["PID"])
