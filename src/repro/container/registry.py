"""Image registry with deployment-cost modelling.

The paper's motivation rests on the observation (from prior work it cites)
that image download dominates container deployment time, so the registry
models pull time as a function of transferred bytes and link bandwidth; the
layer cache makes repeated pulls of shared base layers free, mirroring the
union-filesystem argument of §2.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.container.image import Image
from repro.fs.errors import FsError
from repro.sim.clock import VirtualClock

#: Default registry link bandwidth (bytes/second): 1 Gbit/s effective.
DEFAULT_BANDWIDTH_BPS = 125_000_000
#: Per-layer request latency (registry round trip), nanoseconds.
LAYER_REQUEST_LATENCY_NS = 40_000_000


@dataclass(frozen=True)
class PullResult:
    """Outcome of one image pull."""

    image: Image
    bytes_transferred: int
    bytes_cached: int
    duration_ns: int

    @property
    def duration_s(self) -> float:
        """Pull duration in seconds of virtual time."""
        return self.duration_ns / 1e9


@dataclass
class RegistryStats:
    """Registry-wide accounting."""

    pushes: int = 0
    pulls: int = 0
    bytes_served: int = 0


class Registry:
    """A content-addressed image registry."""

    def __init__(self, clock: VirtualClock, bandwidth_bps: int = DEFAULT_BANDWIDTH_BPS) -> None:
        self.clock = clock
        self.bandwidth_bps = bandwidth_bps
        self._images: dict[str, Image] = {}
        self._layer_store: dict[str, int] = {}
        self.stats = RegistryStats()

    def push(self, image: Image) -> str:
        """Push an image; returns the manifest digest."""
        self._images[image.reference] = image
        for layer in image.layers:
            self._layer_store[layer.digest()] = layer.size_bytes
        self.stats.pushes += 1
        return image.digest()

    def has(self, reference: str) -> bool:
        """True when the registry holds ``reference``."""
        return reference in self._images

    def catalog(self) -> list[str]:
        """All image references in the registry."""
        return sorted(self._images)

    def get(self, reference: str) -> Image:
        """Fetch image metadata without transferring layers."""
        if reference not in self._images:
            raise FsError.enoent(reference)
        return self._images[reference]

    def pull(self, reference: str, local_layer_cache: set[str] | None = None) -> PullResult:
        """Pull an image, charging transfer time for layers not cached locally."""
        image = self.get(reference)
        cache = local_layer_cache if local_layer_cache is not None else set()
        transferred = 0
        cached = 0
        duration = 0
        for layer in image.layers:
            digest = layer.digest()
            duration += LAYER_REQUEST_LATENCY_NS
            if digest in cache:
                cached += layer.size_bytes
                continue
            transferred += layer.size_bytes
            duration += int(layer.size_bytes / self.bandwidth_bps * 1e9)
            cache.add(digest)
        self.clock.advance(duration)
        self.stats.pulls += 1
        self.stats.bytes_served += transferred
        return PullResult(image=image, bytes_transferred=transferred,
                          bytes_cached=cached, duration_ns=duration)

    def estimate_deploy_time_s(self, reference: str,
                               cached_layers: set[str] | None = None) -> float:
        """Estimate deployment time without advancing the clock."""
        image = self.get(reference)
        cache = set(cached_layers or ())
        duration = 0
        for layer in image.layers:
            duration += LAYER_REQUEST_LATENCY_NS
            if layer.digest() not in cache:
                duration += int(layer.size_bytes / self.bandwidth_bps * 1e9)
        return duration / 1e9
