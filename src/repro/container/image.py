"""Container images: file specs, layers, configuration and a builder."""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field, replace

_layer_counter = itertools.count(1)


@dataclass(frozen=True)
class FileSpec:
    """One file inside an image layer.

    Contents are optional: most files in the synthetic Top-50 catalogue only
    carry a size (the slim analysis and deployment-time modelling need sizes,
    not bytes).
    """

    path: str
    size: int = 0
    mode: int = 0o644
    content: bytes | None = None
    symlink_target: str | None = None
    is_dir: bool = False
    uid: int = 0
    gid: int = 0
    #: Marks a whiteout entry (deletion of a lower-layer file in overlayfs terms).
    whiteout: bool = False

    @property
    def effective_size(self) -> int:
        """Size counted towards the layer size."""
        if self.is_dir or self.whiteout or self.symlink_target is not None:
            return 0
        return len(self.content) if self.content is not None else self.size


@dataclass
class ImageLayer:
    """One image layer: an ordered list of file specs."""

    name: str
    files: list[FileSpec] = field(default_factory=list)
    layer_id: int = field(default_factory=lambda: next(_layer_counter))

    @property
    def size_bytes(self) -> int:
        """Total bytes of file content in the layer."""
        return sum(f.effective_size for f in self.files)

    @property
    def file_count(self) -> int:
        """Number of non-directory, non-whiteout entries."""
        return sum(1 for f in self.files if not f.is_dir and not f.whiteout)

    def digest(self) -> str:
        """Content-addressed digest of the layer (over paths and sizes)."""
        h = hashlib.sha256()
        for f in self.files:
            h.update(f"{f.path}:{f.size}:{f.mode}:{f.whiteout}".encode())
        return f"sha256:{h.hexdigest()}"

    def add_file(self, path: str, size: int = 0, mode: int = 0o644,
                 content: bytes | None = None) -> None:
        """Append a regular file."""
        self.files.append(FileSpec(path=path, size=size, mode=mode, content=content))

    def add_dir(self, path: str, mode: int = 0o755) -> None:
        """Append a directory."""
        self.files.append(FileSpec(path=path, mode=mode, is_dir=True))

    def add_symlink(self, path: str, target: str) -> None:
        """Append a symlink."""
        self.files.append(FileSpec(path=path, symlink_target=target))

    def add_whiteout(self, path: str) -> None:
        """Append a whiteout marker removing a lower-layer path."""
        self.files.append(FileSpec(path=path, whiteout=True))


@dataclass(frozen=True)
class ImageConfig:
    """Runtime configuration carried by an image (a subset of the OCI config)."""

    entrypoint: tuple[str, ...] = ("/bin/sh",)
    cmd: tuple[str, ...] = ()
    env: tuple[tuple[str, str], ...] = (("PATH", "/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin:/sbin:/bin"),)
    working_dir: str = "/"
    user: str = "root"
    exposed_ports: tuple[int, ...] = ()
    volumes: tuple[str, ...] = ()
    labels: tuple[tuple[str, str], ...] = ()

    def env_dict(self) -> dict[str, str]:
        """Environment as a dictionary."""
        return dict(self.env)

    def argv(self) -> list[str]:
        """The process argv the container starts with."""
        return list(self.entrypoint) + list(self.cmd)


@dataclass
class Image:
    """A container image: layers + config + identity."""

    name: str
    tag: str = "latest"
    layers: list[ImageLayer] = field(default_factory=list)
    config: ImageConfig = field(default_factory=ImageConfig)

    @property
    def reference(self) -> str:
        """``name:tag`` reference."""
        return f"{self.name}:{self.tag}"

    @property
    def size_bytes(self) -> int:
        """Total image size (sum of layer sizes)."""
        return sum(layer.size_bytes for layer in self.layers)

    @property
    def file_count(self) -> int:
        """Total number of files across layers (before whiteout resolution)."""
        return sum(layer.file_count for layer in self.layers)

    def digest(self) -> str:
        """Manifest digest."""
        h = hashlib.sha256()
        for layer in self.layers:
            h.update(layer.digest().encode())
        h.update(self.reference.encode())
        return f"sha256:{h.hexdigest()}"

    def flatten(self) -> dict[str, FileSpec]:
        """Resolve layers (including whiteouts) into a single path -> spec view."""
        merged: dict[str, FileSpec] = {}
        for layer in self.layers:
            for spec in layer.files:
                if spec.whiteout:
                    merged.pop(spec.path, None)
                    # A whiteout also removes everything below a directory.
                    prefix = spec.path.rstrip("/") + "/"
                    for existing in [p for p in merged if p.startswith(prefix)]:
                        del merged[existing]
                else:
                    merged[spec.path] = spec
        return merged

    def with_tag(self, tag: str) -> "Image":
        """Copy of the image under a different tag (shared layers)."""
        return Image(name=self.name, tag=tag, layers=list(self.layers), config=self.config)


class ImageBuilder:
    """Incremental image builder, loosely mirroring a Dockerfile evaluation."""

    def __init__(self, name: str, tag: str = "latest",
                 base: Image | None = None) -> None:
        self._image = Image(name=name, tag=tag)
        if base is not None:
            self._image.layers.extend(base.layers)
            self._image.config = base.config
        self._current_layer: ImageLayer | None = None

    def _layer(self) -> ImageLayer:
        if self._current_layer is None:
            index = len(self._image.layers) + 1
            self._current_layer = ImageLayer(name=f"{self._image.name}-layer{index}")
            self._image.layers.append(self._current_layer)
        return self._current_layer

    def new_layer(self) -> "ImageBuilder":
        """Start a new layer (like each Dockerfile instruction)."""
        self._current_layer = None
        return self

    def add_file(self, path: str, size: int = 0, mode: int = 0o644,
                 content: bytes | str | None = None) -> "ImageBuilder":
        """COPY/ADD one file."""
        if isinstance(content, str):
            content = content.encode()
        self._layer().add_file(path, size=size, mode=mode, content=content)
        return self

    def add_dir(self, path: str, mode: int = 0o755) -> "ImageBuilder":
        """Create a directory."""
        self._layer().add_dir(path, mode)
        return self

    def add_symlink(self, path: str, target: str) -> "ImageBuilder":
        """Create a symlink."""
        self._layer().add_symlink(path, target)
        return self

    def remove(self, path: str) -> "ImageBuilder":
        """RUN rm -rf path (becomes a whiteout in the current layer)."""
        self._layer().add_whiteout(path)
        return self

    def add_tree(self, prefix: str, files: dict[str, int],
                 mode: int = 0o644) -> "ImageBuilder":
        """Add a whole tree of ``relative path -> size`` entries under ``prefix``."""
        seen_dirs: set[str] = set()
        layer = self._layer()
        for rel, size in files.items():
            full = f"{prefix.rstrip('/')}/{rel.lstrip('/')}"
            parent = full.rsplit("/", 1)[0]
            parts = [p for p in parent.split("/") if p]
            built = ""
            for part in parts:
                built = f"{built}/{part}"
                if built not in seen_dirs:
                    layer.add_dir(built)
                    seen_dirs.add(built)
            layer.add_file(full, size=size, mode=mode)
        return self

    def entrypoint(self, *argv: str) -> "ImageBuilder":
        """Set the ENTRYPOINT."""
        self._image.config = replace(self._image.config, entrypoint=tuple(argv))
        return self

    def cmd(self, *argv: str) -> "ImageBuilder":
        """Set the CMD."""
        self._image.config = replace(self._image.config, cmd=tuple(argv))
        return self

    def env(self, key: str, value: str) -> "ImageBuilder":
        """Set an ENV entry."""
        env = dict(self._image.config.env)
        env[key] = value
        self._image.config = replace(self._image.config, env=tuple(env.items()))
        return self

    def workdir(self, path: str) -> "ImageBuilder":
        """Set the WORKDIR."""
        self._image.config = replace(self._image.config, working_dir=path)
        return self

    def expose(self, port: int) -> "ImageBuilder":
        """EXPOSE a port."""
        ports = tuple(self._image.config.exposed_ports) + (port,)
        self._image.config = replace(self._image.config, exposed_ports=ports)
        return self

    def label(self, key: str, value: str) -> "ImageBuilder":
        """Add a LABEL."""
        labels = tuple(self._image.config.labels) + ((key, value),)
        self._image.config = replace(self._image.config, labels=labels)
        return self

    def build(self) -> Image:
        """Finish and return the image."""
        return self._image
