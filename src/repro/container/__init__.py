"""Container substrate: images, registry, layers and four container engines.

The paper's design goal is to work with *every* container implementation by
relying only on stable kernel interfaces; the implementation ships ~70-line
adapters for Docker, LXC, rkt and systemd-nspawn whose only job is resolving a
container name to the init process id.  This package provides the equivalent
substrate: an image format with layers, a registry with deployment-cost
modelling, and the four engine front-ends, all built exclusively on the
namespace/cgroup/capability primitives of :mod:`repro.kernel`.
"""

from repro.container.image import FileSpec, ImageLayer, ImageConfig, Image, ImageBuilder
from repro.container.registry import Registry, PullResult
from repro.container.engine import Container, ContainerEngine, ContainerError
from repro.container.docker import DockerEngine
from repro.container.lxc import LxcEngine
from repro.container.rkt import RktEngine
from repro.container.nspawn import NspawnEngine

__all__ = [
    "FileSpec",
    "ImageLayer",
    "ImageConfig",
    "Image",
    "ImageBuilder",
    "Registry",
    "PullResult",
    "Container",
    "ContainerEngine",
    "ContainerError",
    "DockerEngine",
    "LxcEngine",
    "RktEngine",
    "NspawnEngine",
]
