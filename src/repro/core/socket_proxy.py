"""Unix-socket forwarding between the nested namespace and the tools side.

Unix sockets exported through CntrFS are visible as files but their inode
numbers differ from the underlying filesystem, so the kernel cannot associate
them with live sockets (paper §3.2.4).  Cntr therefore runs a small proxy: an
epoll event loop that accepts connections on a socket inside the application
container and splices the byte stream to the real server socket on the host or
in the fat container (X11, D-Bus).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.errors import FsError
from repro.kernel.kernel import Kernel
from repro.kernel.syscalls import Syscalls

_PUMP_CHUNK = 64 * 1024


@dataclass
class _ProxyPair:
    """One proxied connection: the container-side and tools-side endpoints."""

    inside_fd: int
    outside_fd: int
    bytes_forwarded: int = 0


class SocketProxy:
    """Forward connections from ``listen_path`` (container) to ``target_path``."""

    def __init__(self, kernel: Kernel, listen_sc: Syscalls, listen_path: str,
                 connect_sc: Syscalls, target_path: str) -> None:
        self.kernel = kernel
        self.listen_sc = listen_sc
        self.connect_sc = connect_sc
        self.listen_path = listen_path
        self.target_path = target_path
        self.pairs: list[_ProxyPair] = []
        self.closed = False
        self.bytes_total = 0
        parent = listen_path.rsplit("/", 1)[0] or "/"
        if not listen_sc.exists(parent):
            listen_sc.makedirs(parent)
        if listen_sc.exists(listen_path):
            listen_sc.unlink(listen_path)
        self.listener_fd = listen_sc.unix_listen(listen_path)
        self.epoll_fd = listen_sc.epoll_create()
        listen_sc.epoll_ctl_add(self.epoll_fd, self.listener_fd, {"in"})

    # ------------------------------------------------------------- event loop
    def pump(self) -> int:
        """One event-loop round: accept new connections, splice pending bytes."""
        if self.closed:
            return 0
        moved = 0
        moved += self._accept_pending()
        for pair in list(self.pairs):
            moved += self._shuttle(pair)
        self.bytes_total += moved
        return moved

    def _accept_pending(self) -> int:
        accepted = 0
        events = self.listen_sc.epoll_wait(self.epoll_fd)
        for fd, fired in events:
            if fd != self.listener_fd or "in" not in fired:
                continue
            while True:
                try:
                    inside_fd = self.listen_sc.unix_accept(self.listener_fd)
                except FsError as exc:
                    if exc.errno == 11:  # EAGAIN: backlog drained
                        break
                    raise
                outside_fd = self.connect_sc.unix_connect(self.target_path)
                self.pairs.append(_ProxyPair(inside_fd=inside_fd, outside_fd=outside_fd))
                accepted += 1
        return accepted

    def _shuttle(self, pair: _ProxyPair) -> int:
        """Splice bytes in both directions for one connection."""
        moved = 0
        for src_sc, src_fd, dst_sc, dst_fd in (
                (self.listen_sc, pair.inside_fd, self.connect_sc, pair.outside_fd),
                (self.connect_sc, pair.outside_fd, self.listen_sc, pair.inside_fd)):
            while True:
                try:
                    # The real implementation splices the two descriptors in a
                    # single process; the proxy here drives each end through
                    # its own process and charges the equivalent splice cost
                    # instead of the two userspace copies.
                    data = src_sc.read(src_fd, _PUMP_CHUNK)
                except FsError as exc:
                    if exc.errno in (11, 32, 107):  # EAGAIN / EPIPE / ENOTCONN
                        break
                    raise
                if not data:
                    break
                count = dst_sc.write(dst_fd, data)
                self.kernel.clock.advance(int(self.kernel.costs.splice_cost(count)))
                moved += count
                pair.bytes_forwarded += count
        return moved

    # ------------------------------------------------------------- lifecycle
    def connection_count(self) -> int:
        """Number of proxied connections accepted so far."""
        return len(self.pairs)

    def close(self) -> None:
        """Close the listener and every proxied connection."""
        if self.closed:
            return
        self.closed = True
        for pair in self.pairs:
            for sc, fd in ((self.listen_sc, pair.inside_fd),
                           (self.connect_sc, pair.outside_fd)):
                try:
                    sc.close(fd)
                except FsError:
                    pass
        try:
            self.listen_sc.close(self.listener_fd)
            self.listen_sc.close(self.epoll_fd)
        except FsError:
            pass
