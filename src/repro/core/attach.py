"""Steps #2-#4: launch CntrFS, build the nested namespace, start the shell.

:func:`attach` reproduces the complete workflow of Figure 1:

1. the container name is resolved and its context gathered
   (:mod:`repro.core.context`),
2. the CntrFS server is launched either on the host or inside the "fat"
   container (by ``setns``-ing a forked server process into it), and a
   ``/dev/fuse`` connection is opened *before* entering the container,
3. a forked Cntr process joins the application container's namespaces, creates
   a nested mount namespace, marks every mount private, mounts CntrFS on a
   temporary directory, moves the application's view to
   ``<tmp>/var/lib/cntr``, bind-mounts ``/proc``, ``/dev`` and selected
   ``/etc`` files from the application container, and finally chroots into the
   temporary directory,
4. an interactive shell is started on a pseudo-TTY inside the nested
   namespace, with the container's environment applied (except ``PATH``,
   which comes from the tools side), its capabilities dropped to the
   container's set, its cgroup joined and its LSM profile applied.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.container.engine import Container
from repro.core.cntrfs import CntrFS
from repro.core.context import (
    ContainerContext,
    gather_context,
    open_namespace_handles,
    resolve_container,
)
from repro.core.pty_forward import PtyForwarder
from repro.core.socket_proxy import SocketProxy
from repro.fs.constants import OpenFlags
from repro.fs.errors import FsError
from repro.fuse.client import FuseClientFs
from repro.fuse.device import FuseDeviceHandle
from repro.fuse.options import FuseMountOptions
from repro.kernel.capabilities import CapabilitySet
from repro.kernel.machine import Machine
from repro.kernel.namespaces import NamespaceKind
from repro.kernel.process import Process
from repro.kernel.syscalls import Syscalls

_session_counter = itertools.count(1)

#: Where the application container's original root appears inside the session.
APPLICATION_MOUNTPOINT = "/var/lib/cntr"
#: Configuration files bind-mounted from the application container (paper §3.2.3).
BIND_CONFIG_FILES = ("/etc/passwd", "/etc/group", "/etc/hostname", "/etc/hosts",
                     "/etc/resolv.conf")


class CntrAttachError(Exception):
    """Raised when the attach workflow cannot be completed."""


@dataclass
class AttachOptions:
    """User-facing options of ``cntr attach``."""

    #: Name/id of the fat container holding the tools; None means "use the host".
    fat_container: str | None = None
    #: Shell executable looked up on the tools side.
    shell: str = "/bin/bash"
    #: FUSE mount options (the paper's defaults enable every optimization
    #: except splice-write).
    fuse_options: FuseMountOptions = field(default_factory=FuseMountOptions.paper_defaults)
    #: Number of CntrFS worker threads.
    threads: int = 4
    #: Forward these Unix socket paths from the tools side into the container
    #: (e.g. the X11 socket), as described for graphical applications.
    forward_sockets: tuple[str, ...] = ()


@dataclass
class CntrSession:
    """A live attach session."""

    machine: Machine
    container: Container | None
    context: ContainerContext
    options: AttachOptions
    cntr_process: Process
    nested_process: Process
    shell_process: Process
    server: CntrFS
    client_fs: FuseClientFs
    pty_master_fd: int
    pty_forwarder: PtyForwarder
    socket_proxies: list[SocketProxy]
    session_id: int = field(default_factory=lambda: next(_session_counter))
    closed: bool = False

    @property
    def shell_syscalls(self) -> Syscalls:
        """Syscall facade of the interactive shell (inside the nested namespace)."""
        return Syscalls(self.machine.kernel, self.shell_process)

    @property
    def nested_syscalls(self) -> Syscalls:
        """Syscall facade of the nested-namespace setup process."""
        return Syscalls(self.machine.kernel, self.nested_process)

    def exec_tool(self, path: str, argv: list[str] | None = None) -> Syscalls:
        """Run a tool from the fat image/host inside the nested namespace.

        The binary is resolved against the tools-side ``PATH``, loaded through
        CntrFS (charging the FUSE read costs an exec would), and a new process
        is forked inside the nested namespace.
        """
        sc = self.shell_syscalls
        resolved = self._resolve_binary(sc, path)
        fd = sc.open(resolved, OpenFlags.O_RDONLY)
        try:
            # Demand-load the binary through the FUSE mount (text + data pages).
            while sc.read(fd, 1 << 20):
                pass
        finally:
            sc.close(fd)
        child = self.machine.kernel.fork(self.shell_process,
                                         argv=[resolved] + list(argv or []))
        return Syscalls(self.machine.kernel, child)

    def _resolve_binary(self, sc: Syscalls, path: str) -> str:
        if path.startswith("/"):
            if not sc.exists(path):
                raise CntrAttachError(f"no such tool: {path}")
            return path
        path_var = sc.getenv("PATH") or "/usr/bin:/bin"
        for prefix in path_var.split(":"):
            candidate = f"{prefix.rstrip('/')}/{path}"
            if sc.exists(candidate):
                return candidate
        raise CntrAttachError(f"tool {path!r} not found in PATH")

    def application_path(self, path: str) -> str:
        """Translate an application-container path to its nested-namespace location."""
        return f"{APPLICATION_MOUNTPOINT}{path}" if path.startswith("/") else path

    def pump_io(self, rounds: int = 4) -> None:
        """Drive the PTY forwarder and socket proxies for a few event-loop rounds."""
        for _ in range(rounds):
            self.pty_forwarder.pump()
            for proxy in self.socket_proxies:
                proxy.pump()

    def detach(self) -> None:
        """Tear the session down: shell, proxies, nested process, FUSE server."""
        if self.closed:
            return
        self.closed = True
        kernel = self.machine.kernel
        for proxy in self.socket_proxies:
            proxy.close()
        self.pty_forwarder.close()
        self.client_fs.flush_writeback()
        self.client_fs.flush_forgets()
        for proc in (self.shell_process, self.nested_process, self.cntr_process):
            if proc.pid in kernel.processes:
                kernel.exit_process(proc)


def attach(machine: Machine, engines, name_or_id: str | None = None,
           pid: int | None = None, options: AttachOptions | None = None) -> CntrSession:
    """Attach to a container (by name/id across engines, or directly by pid)."""
    options = options or AttachOptions()
    engines = engines if isinstance(engines, (list, tuple)) else [engines]

    # --- Step 1: resolve the container and gather its context ---------------
    if pid is None:
        if name_or_id is None:
            raise CntrAttachError("either a container name or a pid is required")
        pid = resolve_container(engines, name_or_id)
    context = gather_context(machine, pid)
    open_namespace_handles(machine, pid)
    container = _find_container(engines, name_or_id) if name_or_id else None

    # The Cntr process itself: a host process holding the /dev/fuse fd and the
    # user-facing terminal.
    cntr_sc = machine.spawn_host_process(["/usr/bin/cntr", "attach", name_or_id or str(pid)])
    cntr_proc = cntr_sc.process

    # Open /dev/fuse *before* attaching to the container (paper §3.2.1: the fd
    # must exist already because /dev inside the container has no fuse node).
    fuse_fd = cntr_sc.open("/dev/fuse", OpenFlags.O_RDWR)
    fuse_handle = cntr_proc.get_fd(fuse_fd)
    if not isinstance(fuse_handle, FuseDeviceHandle):
        raise CntrAttachError("/dev/fuse did not provide a FUSE connection")
    connection = fuse_handle.connection

    # --- Step 2: launch the CntrFS server ------------------------------------
    server_sc = cntr_sc.spawn(["/usr/bin/cntr", "cntrfs-server"])
    server_proc = server_sc.process
    if options.fat_container is not None:
        fat_pid = resolve_container(engines, options.fat_container)
        server_sc.setns_to_process(fat_pid, kinds={NamespaceKind.MNT, NamespaceKind.USER})
        tools_env = gather_context(machine, fat_pid).environment
    else:
        tools_env = dict(machine.init.env)
    server = CntrFS(machine.kernel, server_proc, threads=options.threads)
    connection.attach_server(server)

    # --- Step 3: initialise the tools (nested) namespace ---------------------
    nested_sc = cntr_sc.spawn(["/usr/bin/cntr", "nested"])
    nested_proc = nested_sc.process
    # Join the application container's namespaces and cgroup.
    machine.kernel.setns_all_of(nested_proc, machine.kernel.find_process(pid))
    machine.kernel.cgroups.attach(nested_proc.pid, context.cgroup_path)
    # Create the nested mount namespace and make everything private so that
    # nothing we mount propagates back into the application container.
    nested_sc.unshare(NamespaceKind.MNT)
    nested_proc.mnt_ns.make_all_private()

    tmp_dir = f"/tmp/.cntr-attach-{next(_session_counter)}"
    nested_sc.makedirs(tmp_dir)

    fuse_options = options.fuse_options.with_overrides(threads=options.threads)
    client_fs = FuseClientFs(f"cntrfs-{pid}", machine.kernel.clock,
                             machine.kernel.costs, connection,
                             options=fuse_options, tracer=machine.kernel.tracer)
    client_fs.store_data = machine.rootfs.store_data
    nested_sc.mount(client_fs, tmp_dir)

    # Make the application's old root visible under <tmp>/var/lib/cntr,
    # including every pre-existing mountpoint (/tmp, /proc, volumes), which is
    # why the bind is recursive.
    app_mountpoint = f"{tmp_dir}{APPLICATION_MOUNTPOINT}"
    nested_sc.makedirs(app_mountpoint)
    nested_sc.bind_mount("/", app_mountpoint, recursive=True)
    # The application's /proc and /dev must stay visible to the tools so that
    # debuggers can inspect the application processes and devices.
    for special in ("/proc", "/dev"):
        if nested_sc.exists(special) and nested_sc.exists(f"{tmp_dir}{special}"):
            nested_sc.bind_mount(special, f"{tmp_dir}{special}")
    for config_file in BIND_CONFIG_FILES:
        if nested_sc.exists(config_file) and nested_sc.exists(f"{tmp_dir}{config_file}"):
            nested_sc.bind_mount(config_file, f"{tmp_dir}{config_file}")

    # Atomically swap the root: the temporary directory becomes /.
    nested_sc.chroot(tmp_dir)

    # Apply the container's execution context to the nested process: the
    # environment (except PATH, inherited from the tools side), uid/gid,
    # capabilities and LSM profile.
    nested_proc.env = dict(context.environment_without_path())
    nested_proc.env["PATH"] = tools_env.get(
        "PATH", "/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin:/sbin:/bin")
    nested_proc.uid = context.uid
    nested_proc.gid = context.gid
    nested_proc.groups = context.groups
    nested_proc.caps = CapabilitySet(
        effective=context.effective_capabilities,
        permitted=context.effective_capabilities,
        inheritable=frozenset(),
        bounding=context.effective_capabilities)
    nested_proc.lsm_profile = machine.kernel.lsm.get(context.lsm_profile)

    # --- Step 4: interactive shell on a pseudo-TTY ----------------------------
    master_fd, slave_fd = cntr_sc.openpty()
    shell_path = _resolve_shell(nested_sc, options.shell)
    shell_proc = machine.kernel.fork(nested_proc, argv=[shell_path, "-i"])
    shell_sc = Syscalls(machine.kernel, shell_proc)
    slave_obj = cntr_proc.get_fd(slave_fd)
    for fd in (0, 1, 2):
        shell_proc.fds[fd] = slave_obj
    forwarder = PtyForwarder(machine.kernel, cntr_proc, master_fd)

    proxies: list[SocketProxy] = []
    for socket_path in options.forward_sockets:
        # The listener lives inside the *application's* filesystem (reachable
        # for the application at `socket_path`, for us under /var/lib/cntr);
        # the target is the real server socket on the tools side.
        proxies.append(SocketProxy(machine.kernel, listen_sc=shell_sc,
                                   listen_path=f"{APPLICATION_MOUNTPOINT}{socket_path}",
                                   connect_sc=server_sc, target_path=socket_path))

    return CntrSession(machine=machine, container=container, context=context,
                       options=options, cntr_process=cntr_proc,
                       nested_process=nested_proc, shell_process=shell_proc,
                       server=server, client_fs=client_fs,
                       pty_master_fd=master_fd, pty_forwarder=forwarder,
                       socket_proxies=proxies)


def _resolve_shell(sc: Syscalls, shell: str) -> str:
    """Find a usable shell on the tools side, falling back to /bin/sh."""
    candidates = [shell, "/bin/bash", "/usr/bin/bash", "/bin/sh", "/usr/bin/sh"]
    for candidate in candidates:
        try:
            if sc.exists(candidate):
                return candidate
        except FsError:
            continue
    raise CntrAttachError(f"no shell found (tried {', '.join(candidates)})")


def _find_container(engines, name_or_id: str) -> Container | None:
    for engine in engines:
        try:
            return engine.find(name_or_id)
        except Exception:  # noqa: BLE001 - engine-specific not-found errors
            continue
    return None
