"""The ``cntr`` command line.

Because the whole OS is simulated, the CLI operates on a self-contained demo
scenario: it boots a host, starts a slim application container (and optionally
a fat tools container), attaches to it exactly as the library API would, and
prints what the attached shell can see.  The subcommands mirror the real
tool's interface:

* ``cntr attach <container> [--fat-container NAME]`` — run the attach
  workflow and report the nested-namespace view,
* ``cntr exec <container> -- <tool> [args...]`` — attach and run one tool,
* ``cntr inventory`` — print the component inventory (paper §4).
"""

from __future__ import annotations

import argparse
import sys

from repro.container.docker import DockerEngine
from repro.container.image import ImageBuilder
from repro.core.attach import AttachOptions, attach
from repro.core.inventory import format_inventory
from repro.kernel.machine import boot


def _demo_environment():
    """Boot a host with one slim application container and one fat tools container."""
    machine = boot()
    docker = DockerEngine(machine)

    slim = (ImageBuilder("demo-app", "slim")
            .add_dir("/usr/sbin")
            .add_file("/usr/sbin/demo-server", size=12_000_000, mode=0o755)
            .add_file("/etc/passwd", content="root:x:0:0:root:/root:/bin/sh\n")
            .add_file("/etc/hostname", content="demo-app\n")
            .add_file("/etc/demo.conf", content="listen = 0.0.0.0:8080\n")
            .entrypoint("/usr/sbin/demo-server")
            .env("DEMO_MODE", "production")
            .build())
    fat = (ImageBuilder("debug-tools", "fat")
           .add_dir("/usr/bin")
           .add_file("/usr/bin/gdb", size=8_500_000, mode=0o755)
           .add_file("/usr/bin/strace", size=1_600_000, mode=0o755)
           .add_file("/usr/bin/vim", size=3_200_000, mode=0o755)
           .add_file("/bin/bash", size=1_100_000, mode=0o755)
           .entrypoint("/bin/bash")
           .build())
    docker.load_image(slim)
    docker.load_image(fat)
    app = docker.run(slim, name="demo-app")
    tools = docker.run(fat, name="debug-tools")
    return machine, docker, app, tools


def _cmd_attach(args: argparse.Namespace) -> int:
    machine, docker, app, tools = _demo_environment()
    name = args.container or "demo-app"
    options = AttachOptions(fat_container=args.fat_container)
    session = attach(machine, docker, name, options=options)
    sc = session.shell_syscalls
    print(f"attached to container {name!r} (pid {session.context.pid})")
    print(f"tools PATH: {sc.getenv('PATH')}")
    print(f"tools visible in /usr/bin: {', '.join(sorted(sc.listdir('/usr/bin'))[:10])} ...")
    app_root = session.application_path("/")
    print(f"application filesystem mounted at {app_root}:")
    for entry in sorted(sc.listdir(app_root)):
        print(f"  {app_root.rstrip('/')}/{entry}")
    print(f"FUSE requests so far: {session.client_fs.connection.stats.requests_total}")
    session.detach()
    return 0


def _cmd_exec(args: argparse.Namespace) -> int:
    machine, docker, app, tools = _demo_environment()
    name = args.container or "demo-app"
    options = AttachOptions(fat_container=args.fat_container)
    session = attach(machine, docker, name, options=options)
    tool = args.tool or "gdb"
    tool_sc = session.exec_tool(tool, args.tool_args)
    print(f"executed {tool!r} inside container {name!r} "
          f"(pid {tool_sc.process.pid}, cwd {tool_sc.getcwd()})")
    print(f"the tool sees the application config at "
          f"{session.application_path('/etc/demo.conf')}: "
          f"{tool_sc.exists(session.application_path('/etc/demo.conf'))}")
    session.detach()
    return 0


def _cmd_inventory(_args: argparse.Namespace) -> int:
    print(format_inventory())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``cntr`` entry point."""
    parser = argparse.ArgumentParser(
        prog="cntr",
        description="Cntr reproduction: attach fat tool containers to slim "
                    "application containers (simulated demo environment).")
    sub = parser.add_subparsers(dest="command", required=True)

    p_attach = sub.add_parser("attach", help="attach to a container")
    p_attach.add_argument("container", nargs="?", default="demo-app",
                          help="container name (default: demo-app)")
    p_attach.add_argument("--fat-container", default=None,
                          help="serve tools from this container instead of the host")
    p_attach.set_defaults(func=_cmd_attach)

    p_exec = sub.add_parser("exec", help="attach and run one tool")
    p_exec.add_argument("container", nargs="?", default="demo-app")
    p_exec.add_argument("--fat-container", default=None)
    p_exec.add_argument("--tool", default="gdb", help="tool to run (default: gdb)")
    p_exec.add_argument("tool_args", nargs="*", help="arguments passed to the tool")
    p_exec.set_defaults(func=_cmd_exec)

    p_inv = sub.add_parser("inventory", help="print the component inventory")
    p_inv.set_defaults(func=_cmd_inventory)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
