"""Step #1: resolve the container and gather its execution context from /proc.

The kernel has no concept of a container, so Cntr reads everything it needs to
faithfully impersonate "a process inside the container" from the ``/proc``
entries of the container's init process: namespaces, cgroup membership,
capability sets, uid/gid maps, the LSM profile and the environment variables
(heavily used by containerised applications for configuration and service
discovery).  This module performs those reads through the simulated ``/proc``
filesystem — the same code path a real implementation would use — and returns
a :class:`ContainerContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fs.errors import FsError
from repro.kernel.capabilities import KNOWN_CAPABILITIES
from repro.kernel.machine import Machine
from repro.kernel.namespaces import Namespace, NamespaceKind
from repro.kernel.syscalls import Syscalls


@dataclass
class ContainerContext:
    """Everything Cntr needs to know about a container before attaching."""

    pid: int
    namespaces: dict[NamespaceKind, str] = field(default_factory=dict)
    environment: dict[str, str] = field(default_factory=dict)
    cgroup_path: str = "/"
    capabilities_hex: dict[str, str] = field(default_factory=dict)
    effective_capabilities: frozenset[str] = frozenset()
    uid: int = 0
    gid: int = 0
    groups: frozenset[int] = frozenset()
    uid_map: list[tuple[int, int, int]] = field(default_factory=list)
    gid_map: list[tuple[int, int, int]] = field(default_factory=list)
    lsm_profile: str = "unconfined"
    mounts: list[str] = field(default_factory=list)

    @property
    def path_variable(self) -> str | None:
        """The container's PATH (which Cntr deliberately does *not* inherit)."""
        return self.environment.get("PATH")

    def environment_without_path(self) -> dict[str, str]:
        """Environment to apply inside the nested namespace (PATH excluded)."""
        return {k: v for k, v in self.environment.items() if k != "PATH"}


def _read_proc_file(sc: Syscalls, path: str, max_bytes: int = 1 << 20) -> bytes:
    fd = sc.open(path)
    try:
        return sc.read(fd, max_bytes)
    finally:
        sc.close(fd)


def _parse_environ(blob: bytes) -> dict[str, str]:
    env: dict[str, str] = {}
    for chunk in blob.split(b"\x00"):
        if not chunk:
            continue
        text = chunk.decode(errors="replace")
        if "=" in text:
            key, value = text.split("=", 1)
            env[key] = value
    return env


def _parse_status(blob: bytes) -> dict[str, str]:
    fields: dict[str, str] = {}
    for line in blob.decode(errors="replace").splitlines():
        if ":" in line:
            key, value = line.split(":", 1)
            fields[key.strip()] = value.strip()
    return fields


def _parse_id_map(blob: bytes) -> list[tuple[int, int, int]]:
    rows = []
    for line in blob.decode(errors="replace").splitlines():
        parts = line.split()
        if len(parts) == 3:
            rows.append((int(parts[0]), int(parts[1]), int(parts[2])))
    return rows


def _decode_cap_mask(mask_hex: str) -> frozenset[str]:
    """Invert the bitmask encoding used by the simulated /proc status."""
    try:
        bits = int(mask_hex, 16)
    except ValueError:
        return frozenset()
    names = sorted(KNOWN_CAPABILITIES)
    return frozenset(name for i, name in enumerate(names) if bits & (1 << i))


def gather_context(machine: Machine, pid: int,
                   sc: Syscalls | None = None) -> ContainerContext:
    """Gather the execution context of ``pid`` by reading the host ``/proc``."""
    sc = sc or machine.syscalls
    base = f"/proc/{pid}"
    if not sc.exists(base):
        raise FsError.esrch(f"pid {pid}")

    environ = _parse_environ(_read_proc_file(sc, f"{base}/environ"))
    status = _parse_status(_read_proc_file(sc, f"{base}/status"))
    cgroup_line = _read_proc_file(sc, f"{base}/cgroup").decode().strip()
    cgroup_path = cgroup_line.split("::", 1)[1] if "::" in cgroup_line else "/"
    lsm = _read_proc_file(sc, f"{base}/attr/current").decode().strip()
    mounts = _read_proc_file(sc, f"{base}/mounts").decode().splitlines()

    namespaces: dict[NamespaceKind, str] = {}
    for kind in NamespaceKind:
        try:
            namespaces[kind] = sc.readlink(f"{base}/ns/{kind.value}")
        except FsError:
            continue

    uid = int(status.get("Uid", "0").split()[0])
    gid = int(status.get("Gid", "0").split()[0])
    groups = frozenset(int(g) for g in status.get("Groups", "").split() if g.isdigit())
    caps_hex = {key: status[key] for key in ("CapInh", "CapPrm", "CapEff", "CapBnd")
                if key in status}
    effective = _decode_cap_mask(caps_hex.get("CapEff", "0"))

    return ContainerContext(
        pid=pid,
        namespaces=namespaces,
        environment=environ,
        cgroup_path=cgroup_path,
        capabilities_hex=caps_hex,
        effective_capabilities=effective,
        uid=uid,
        gid=gid,
        groups=groups,
        uid_map=_parse_id_map(_read_proc_file(sc, f"{base}/uid_map")),
        gid_map=_parse_id_map(_read_proc_file(sc, f"{base}/gid_map")),
        lsm_profile=lsm.split()[0] if lsm else "unconfined",
        mounts=mounts,
    )


def open_namespace_handles(machine: Machine, pid: int) -> dict[NamespaceKind, Namespace]:
    """Obtain joinable namespace handles for ``pid``.

    This models opening ``/proc/<pid>/ns/*`` file descriptors: the handles
    returned here are the objects :meth:`repro.kernel.kernel.Kernel.setns`
    accepts, and they stay valid even if the target process later exits.
    """
    process = machine.kernel.find_process(pid)
    return dict(process.namespaces)


def resolve_container(engines, name_or_id: str) -> int:
    """Resolve a container name across one or more engines to an init pid.

    ``engines`` may be a single engine or an iterable; the first engine that
    recognises the name wins, mirroring Cntr's engine auto-detection.
    """
    if not isinstance(engines, (list, tuple)):
        engines = [engines]
    errors = []
    for engine in engines:
        try:
            return engine.resolve_name_to_pid(name_or_id)
        except Exception as exc:  # noqa: BLE001 - collect and re-raise below
            errors.append(f"{engine.engine_name}: {exc}")
    raise FsError.enoent(f"container {name_or_id!r} not found by any engine "
                         f"({'; '.join(errors)})")
