"""Cntr core: attach a "fat" tool container (or the host) to a "slim" container.

This package reproduces the paper's contribution on top of the simulated OS
substrate:

* :mod:`repro.core.context` — step #1: resolve a container name to its init
  process and gather the full execution context from ``/proc``,
* :mod:`repro.core.cntrfs` — step #2: the CntrFS FUSE server that exports the
  fat container's (or the host's) filesystem,
* :mod:`repro.core.attach` — step #3: the nested mount namespace that makes
  CntrFS the new root while keeping the application visible under
  ``/var/lib/cntr``, plus step #4: the interactive shell on a pseudo-TTY,
* :mod:`repro.core.pty_forward` / :mod:`repro.core.socket_proxy` — shell I/O
  forwarding and Unix-socket forwarding (X11/D-Bus),
* :mod:`repro.core.cli` — the ``cntr attach`` / ``cntr exec`` command line,
* :mod:`repro.core.inventory` — the component inventory mirroring §4.
"""

from repro.core.context import ContainerContext, gather_context, open_namespace_handles
from repro.core.cntrfs import CntrFS
from repro.core.attach import AttachOptions, CntrSession, CntrAttachError, attach
from repro.core.pty_forward import PtyForwarder
from repro.core.socket_proxy import SocketProxy

__all__ = [
    "ContainerContext",
    "gather_context",
    "open_namespace_handles",
    "CntrFS",
    "AttachOptions",
    "CntrSession",
    "CntrAttachError",
    "attach",
    "PtyForwarder",
    "SocketProxy",
]
