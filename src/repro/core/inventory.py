"""Component inventory, mirroring the implementation statistics of paper §4.

The paper reports the size of the four Rust components (container engine,
CntrFS, pseudo-TTY, socket proxy).  This module computes the same breakdown
for the reproduction by counting lines of the corresponding Python modules,
so the ratio between components can be compared even though the languages and
the substrate differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

#: Paper-reported lines of code per component (Rust).
PAPER_COMPONENT_LOC = {
    "container engine": 1549,
    "cntrfs": 1481,
    "pseudo tty": 221,
    "socket proxy": 400,
}
PAPER_TOTAL_LOC = 3651

#: Mapping from paper component to the modules of this reproduction.
COMPONENT_MODULES = {
    "container engine": ("core/context.py", "core/attach.py", "container/engine.py",
                         "container/docker.py", "container/lxc.py", "container/rkt.py",
                         "container/nspawn.py"),
    "cntrfs": ("core/cntrfs.py", "fuse/client.py", "fuse/server.py",
               "fuse/protocol.py", "fuse/device.py", "fuse/options.py"),
    "pseudo tty": ("core/pty_forward.py",),
    "socket proxy": ("core/socket_proxy.py",),
}


@dataclass(frozen=True)
class ComponentSize:
    """Line counts for one component."""

    name: str
    paper_loc: int
    repro_loc: int

    @property
    def paper_fraction(self) -> float:
        """Fraction of the paper's total this component represents."""
        return self.paper_loc / PAPER_TOTAL_LOC


def _count_loc(path: Path) -> int:
    """Count non-blank, non-comment lines of one Python file."""
    if not path.exists():
        return 0
    count = 0
    in_docstring = False
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_docstring:
            if line.endswith('"""') or line.endswith("'''"):
                in_docstring = False
            continue
        if line.startswith('"""') or line.startswith("'''"):
            if not (line.endswith('"""') and len(line) > 3) and \
                    not (line.endswith("'''") and len(line) > 3):
                in_docstring = True
            continue
        if line.startswith("#"):
            continue
        count += 1
    return count


def component_inventory(package_root: Path | None = None) -> list[ComponentSize]:
    """Compute the per-component line counts of this reproduction."""
    root = package_root or Path(__file__).resolve().parent.parent
    rows = []
    for component, modules in COMPONENT_MODULES.items():
        total = sum(_count_loc(root / module) for module in modules)
        rows.append(ComponentSize(name=component,
                                  paper_loc=PAPER_COMPONENT_LOC[component],
                                  repro_loc=total))
    return rows


def format_inventory(rows: list[ComponentSize] | None = None) -> str:
    """Render the component inventory as a table."""
    rows = rows or component_inventory()
    lines = [f"{'component':<20} {'paper (Rust LoC)':>18} {'repro (Python LoC)':>20}"]
    for row in rows:
        lines.append(f"{row.name:<20} {row.paper_loc:>18} {row.repro_loc:>20}")
    lines.append(f"{'total':<20} {PAPER_TOTAL_LOC:>18} "
                 f"{sum(r.repro_loc for r in rows):>20}")
    return "\n".join(lines)
