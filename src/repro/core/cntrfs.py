"""CntrFS: the FUSE server that exports the fat container's (or host's) files.

The server runs as a process in the *serving* mount namespace (the host or the
fat container, depending on where the tools live) and handles FUSE requests
coming from the nested namespace inside the application container.  Nodeids
map to resolved positions (:class:`repro.fs.vfs.VNode`) in the serving
namespace, so the exported tree spans every mount the serving namespace can
see — exactly the property that lets a single debug container serve many
application containers.

Per the paper (§5.2.2), the expensive operation is LOOKUP: for every lookup
the server needs an ``open()`` + ``stat()`` pair on the backing filesystem to
detect hard links, which is what makes cold-cache, lookup-heavy workloads
(compilebench read-tree, postmark) the worst cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.errors import FsError
from repro.fs.inode import RegularInode, SymlinkInode
from repro.fs.vfs import VNode, VFS
from repro.fuse.protocol import FuseReply, FuseRequest
from repro.fuse.server import FuseServer
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process

#: The FUSE root nodeid.
ROOT_NODEID = 1


@dataclass
class CntrFsStats:
    """Server-side statistics specific to CntrFS."""

    lookups: int = 0
    hardlink_checks: int = 0
    bytes_read: int = 0
    bytes_written: int = 0


class CntrFS(FuseServer):
    """The CntrFS server."""

    def __init__(self, kernel: Kernel, server_process: Process,
                 export_root: VNode | None = None, threads: int = 4,
                 delay_sync: bool = True) -> None:
        super().__init__(threads=threads)
        self.kernel = kernel
        self.server_process = server_process
        #: The writeback-cache consistency trade-off (§3.3): fsync is
        #: acknowledged once the data reaches the server's page cache and the
        #: expensive device barrier is deferred to background writeback.  Set
        #: to False to restore strictly synchronous semantics (ablation).
        self.delay_sync = delay_sync
        self.vfs: VFS = kernel.vfs
        root = export_root or server_process.root
        self._nodes: dict[int, VNode] = {ROOT_NODEID: root}
        self._by_key: dict[tuple[int, int], int] = {(root.fs.fs_id, root.ino): ROOT_NODEID}
        self._next_nodeid = 2
        self._open_counts: dict[int, int] = {}
        self.cntr_stats = CntrFsStats()

    # ------------------------------------------------------------- node table
    def _vnode(self, nodeid: int) -> VNode:
        vnode = self._nodes.get(nodeid)
        if vnode is None:
            raise FsError.estale(f"nodeid {nodeid}")
        return vnode

    def _register(self, vnode: VNode) -> int:
        key = (vnode.fs.fs_id, vnode.ino)
        nodeid = self._by_key.get(key)
        if nodeid is not None:
            self._nodes[nodeid] = vnode
            return nodeid
        nodeid = self._next_nodeid
        self._next_nodeid += 1
        self._nodes[nodeid] = vnode
        self._by_key[key] = nodeid
        return nodeid

    def node_count(self) -> int:
        """Number of live nodeids."""
        return len(self._nodes)

    def _attr_of(self, vnode: VNode):
        return self.attr_from_stat(vnode.fs.getattr(vnode.ino))

    def _creds(self):
        return self.server_process.credentials()

    # ------------------------------------------------------------- handlers
    def op_lookup(self, request: FuseRequest) -> FuseReply:
        parent = self._vnode(request.nodeid)
        name = request.args["name"]
        self.cntr_stats.lookups += 1
        # The open()+stat() pair CntrFS performs to detect whether the inode
        # was already seen under a different path (hard links).
        self.cntr_stats.hardlink_checks += 1
        self.kernel.clock.advance(self.kernel.costs.fuse_lookup_userspace_ns)
        child_inode = parent.fs.lookup(parent.ino, name)
        child = VNode(parent.mount, child_inode.ino)
        child = VFS._cross_mounts(self.server_process.mnt_ns, child)
        nodeid = self._register(child)
        target = ""
        resolved = child.inode()
        if isinstance(resolved, SymlinkInode):
            target = resolved.target
        return FuseReply(unique=request.unique, nodeid=nodeid,
                         attr=self._attr_of(child), target=target)

    def op_getattr(self, request: FuseRequest) -> FuseReply:
        vnode = self._vnode(request.nodeid)
        return FuseReply(unique=request.unique, attr=self._attr_of(vnode))

    def op_setattr(self, request: FuseRequest) -> FuseReply:
        vnode = self._vnode(request.nodeid)
        args = request.args
        vnode.fs.setattr(vnode.ino,
                         mode=args.get("mode"), uid=args.get("uid"),
                         gid=args.get("gid"), size=args.get("size"),
                         atime_ns=args.get("atime_ns"), mtime_ns=args.get("mtime_ns"))
        return FuseReply(unique=request.unique, attr=self._attr_of(vnode))

    def op_readlink(self, request: FuseRequest) -> FuseReply:
        vnode = self._vnode(request.nodeid)
        return FuseReply(unique=request.unique, target=vnode.fs.readlink(vnode.ino))

    def op_symlink(self, request: FuseRequest) -> FuseReply:
        parent = self._vnode(request.nodeid)
        args = request.args
        inode = parent.fs.symlink(parent.ino, args["name"], args["target"],
                                  uid=args.get("uid", 0), gid=args.get("gid", 0))
        child = VNode(parent.mount, inode.ino)
        return FuseReply(unique=request.unique, nodeid=self._register(child),
                         attr=self._attr_of(child), target=args["target"])

    def op_mknod(self, request: FuseRequest) -> FuseReply:
        parent = self._vnode(request.nodeid)
        args = request.args
        inode = parent.fs.mknod(parent.ino, args["name"], args["mode"],
                                args.get("rdev", 0), uid=args.get("uid", 0),
                                gid=args.get("gid", 0))
        child = VNode(parent.mount, inode.ino)
        return FuseReply(unique=request.unique, nodeid=self._register(child),
                         attr=self._attr_of(child))

    def op_mkdir(self, request: FuseRequest) -> FuseReply:
        parent = self._vnode(request.nodeid)
        args = request.args
        inode = parent.fs.mkdir(parent.ino, args["name"], args["mode"],
                                uid=args.get("uid", 0), gid=args.get("gid", 0))
        child = VNode(parent.mount, inode.ino)
        return FuseReply(unique=request.unique, nodeid=self._register(child),
                         attr=self._attr_of(child))

    def op_create(self, request: FuseRequest) -> FuseReply:
        parent = self._vnode(request.nodeid)
        args = request.args
        inode = parent.fs.create(parent.ino, args["name"], args["mode"],
                                 uid=args.get("uid", 0), gid=args.get("gid", 0))
        child = VNode(parent.mount, inode.ino)
        nodeid = self._register(child)
        self._open_counts[nodeid] = self._open_counts.get(nodeid, 0) + 1
        child.fs.pin(child.ino)
        return FuseReply(unique=request.unique, nodeid=nodeid,
                         attr=self._attr_of(child))

    def op_unlink(self, request: FuseRequest) -> FuseReply:
        parent = self._vnode(request.nodeid)
        parent.fs.unlink(parent.ino, request.args["name"])
        return FuseReply(unique=request.unique)

    def op_rmdir(self, request: FuseRequest) -> FuseReply:
        parent = self._vnode(request.nodeid)
        parent.fs.rmdir(parent.ino, request.args["name"])
        return FuseReply(unique=request.unique)

    def op_rename(self, request: FuseRequest) -> FuseReply:
        parent = self._vnode(request.nodeid)
        args = request.args
        new_parent = self._vnode(args["new_dir"])
        if new_parent.fs is not parent.fs:
            raise FsError.exdev(args["new_name"])
        parent.fs.rename(parent.ino, args["old_name"], new_parent.ino,
                         args["new_name"], args.get("flags", 0))
        return FuseReply(unique=request.unique)

    def op_link(self, request: FuseRequest) -> FuseReply:
        parent = self._vnode(request.nodeid)
        args = request.args
        target = self._vnode(args["target"])
        if target.fs is not parent.fs:
            raise FsError.exdev(args["name"])
        inode = parent.fs.link(parent.ino, args["name"], target.ino)
        child = VNode(parent.mount, inode.ino)
        return FuseReply(unique=request.unique, nodeid=self._register(child),
                         attr=self._attr_of(child))

    def op_open(self, request: FuseRequest) -> FuseReply:
        nodeid = request.nodeid
        vnode = self._vnode(nodeid)
        self._open_counts[nodeid] = self._open_counts.get(nodeid, 0) + 1
        # Hold the backing inode open for as long as the client does, so that
        # unlink-while-open keeps working through the FUSE boundary.
        vnode.fs.pin(vnode.ino)
        return FuseReply(unique=request.unique)

    def op_release(self, request: FuseRequest) -> FuseReply:
        nodeid = request.nodeid
        if nodeid in self._open_counts:
            self._open_counts[nodeid] -= 1
            if self._open_counts[nodeid] <= 0:
                del self._open_counts[nodeid]
            vnode = self._nodes.get(nodeid)
            if vnode is not None:
                vnode.fs.unpin(vnode.ino)
        return FuseReply(unique=request.unique)

    def op_read(self, request: FuseRequest) -> FuseReply:
        vnode = self._vnode(request.nodeid)
        args = request.args
        if args.get("cache_fill"):
            # The client's page cache already holds these bytes; the transfer
            # exists only to keep the simulated data consistent, so it must
            # not charge backing-filesystem costs.
            inode = vnode.inode()
            data = inode.data.read(args["offset"], args["size"]) \
                if isinstance(inode, RegularInode) else b""
            return FuseReply(unique=request.unique, data=data)
        offset, size = args["offset"], args["size"]
        granule = args.get("granule") or size
        if granule >= size:
            data = vnode.fs.read(vnode.ino, offset, size)
        else:
            # Coalesced dispatch: replay the backing reads at wire-request
            # granularity so per-call fixed costs (device seeks, metadata
            # charges) match a chunked request loop exactly.
            parts = []
            pos, remaining = offset, size
            while remaining > 0:
                chunk = min(granule, remaining)
                parts.append(vnode.fs.read(vnode.ino, pos, chunk))
                pos += chunk
                remaining -= chunk
            data = b"".join(parts)
        self.cntr_stats.bytes_read += len(data)
        return FuseReply(unique=request.unique, data=data)

    def op_write(self, request: FuseRequest) -> FuseReply:
        vnode = self._vnode(request.nodeid)
        args = request.args
        payload = request.payload
        granule = args.get("granule") or len(payload)
        written = 0
        try:
            if granule >= len(payload):
                written = vnode.fs.write(vnode.ino, args["offset"], payload)
            else:
                # Coalesced dispatch: charge the backing store per wire request.
                view = memoryview(payload)
                pos = 0
                while pos < len(payload):
                    chunk = view[pos:pos + granule]
                    written += vnode.fs.write(vnode.ino, args["offset"] + pos,
                                              bytes(chunk))
                    pos += len(chunk)
        finally:
            # Chunks that landed before a mid-extent failure (ENOSPC) were
            # written and must be accounted, as a chunked loop would have.
            self.cntr_stats.bytes_written += written
        return FuseReply(unique=request.unique, size=written)

    def op_readdir(self, request: FuseRequest) -> FuseReply:
        vnode = self._vnode(request.nodeid)
        entries = [(name, ino, ftype)
                   for name, ino, ftype in vnode.fs.readdir(vnode.ino)
                   if name not in (".", "..")]
        return FuseReply(unique=request.unique, entries=entries)

    def op_statfs(self, request: FuseRequest) -> FuseReply:
        vnode = self._vnode(request.nodeid)
        return FuseReply(unique=request.unique, statfs=vnode.fs.statfs())

    def op_fsync(self, request: FuseRequest) -> FuseReply:
        vnode = self._vnode(request.nodeid)
        if self.delay_sync:
            # Delayed-sync semantics: data already sits in the backing page
            # cache (the WRITE requests put it there); the device flush is
            # deferred, trading write consistency for performance exactly as
            # the paper's writeback optimization describes.
            return FuseReply(unique=request.unique)
        vnode.fs.fsync(vnode.ino, request.args.get("datasync", False))
        return FuseReply(unique=request.unique)

    def op_fallocate(self, request: FuseRequest) -> FuseReply:
        vnode = self._vnode(request.nodeid)
        args = request.args
        vnode.fs.fallocate(vnode.ino, args["mode"], args["offset"], args["length"])
        return FuseReply(unique=request.unique)

    def op_setxattr(self, request: FuseRequest) -> FuseReply:
        vnode = self._vnode(request.nodeid)
        vnode.fs.setxattr(vnode.ino, request.args["name"], request.payload,
                          request.args.get("flags", 0))
        return FuseReply(unique=request.unique)

    def op_getxattr(self, request: FuseRequest) -> FuseReply:
        vnode = self._vnode(request.nodeid)
        value = vnode.fs.getxattr(vnode.ino, request.args["name"])
        return FuseReply(unique=request.unique, data=value)

    def op_listxattr(self, request: FuseRequest) -> FuseReply:
        vnode = self._vnode(request.nodeid)
        return FuseReply(unique=request.unique, names=vnode.fs.listxattr(vnode.ino))

    def op_removexattr(self, request: FuseRequest) -> FuseReply:
        vnode = self._vnode(request.nodeid)
        vnode.fs.removexattr(vnode.ino, request.args["name"])
        return FuseReply(unique=request.unique)

    def op_access(self, request: FuseRequest) -> FuseReply:
        # Permission checking is performed by the client VFS against the proxy
        # attributes with the caller's credentials (default_permissions mode).
        return FuseReply(unique=request.unique)

    def op_getlk(self, request: FuseRequest) -> FuseReply:
        return FuseReply(unique=request.unique)

    def op_setlk(self, request: FuseRequest) -> FuseReply:
        return FuseReply(unique=request.unique)

    def op_lseek(self, request: FuseRequest) -> FuseReply:
        vnode = self._vnode(request.nodeid)
        size = vnode.inode().size
        return FuseReply(unique=request.unique, size=size)

    # ------------------------------------------------------ crash bookkeeping
    def crash_snapshot(self, nodeid: int):
        """Pre-image of a backing file's content, for the client crash model.

        The client's writeback cache forwards WRITEs to the server eagerly so
        the simulated data stays consistent, but those bytes are *not* durable
        until the client flushes its dirty pages.  Before the first unflushed
        write dirties a file, the client captures this pre-image; if the
        client power-fails it hands the image back via :meth:`crash_restore`.
        Pure bookkeeping — no costs, no stats, no page-cache traffic.
        """
        vnode = self._nodes.get(nodeid)
        if vnode is None:
            return None
        try:
            inode = vnode.inode()
        except FsError:
            return None
        if not isinstance(inode, RegularInode):
            return None
        return inode.data.clone()

    def crash_restore(self, nodeid: int, snapshot) -> None:
        """Rewind a backing file to a :meth:`crash_snapshot` pre-image."""
        vnode = self._nodes.get(nodeid)
        if vnode is None or snapshot is None:
            return
        try:
            inode = vnode.inode()
        except FsError:
            return
        if isinstance(inode, RegularInode):
            inode.data = snapshot
