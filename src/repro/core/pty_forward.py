"""Pseudo-TTY forwarding between the user's terminal and the attached shell.

The paper isolates the host terminal from the container by interposing a
pseudo-TTY: the shell inside the nested namespace gets the PTY slave as its
controlling terminal, and Cntr shuttles bytes between the PTY master and the
user's real terminal.  The simulation represents the "user terminal" as an
in-memory byte stream so tests can type into it and read the shell's output.
"""

from __future__ import annotations

from repro.fs.errors import FsError
from repro.kernel.kernel import Kernel
from repro.kernel.objects import PtyMaster
from repro.kernel.process import Process


class UserTerminal:
    """The user's terminal as seen by the test/driver code."""

    def __init__(self) -> None:
        self._input = bytearray()    # what the user typed, not yet forwarded
        self._output = bytearray()   # what the shell printed, ready to display

    def type(self, text: str | bytes) -> None:
        """Simulate the user typing ``text``."""
        if isinstance(text, str):
            text = text.encode()
        self._input.extend(text)

    def take_input(self, size: int) -> bytes:
        """Consume up to ``size`` bytes of pending user input (forwarder side)."""
        data = bytes(self._input[:size])
        del self._input[:size]
        return data

    def deliver_output(self, data: bytes) -> None:
        """Append shell output for the user to read (forwarder side)."""
        self._output.extend(data)

    def read_output(self, size: int | None = None) -> bytes:
        """Read what the shell printed."""
        if size is None:
            size = len(self._output)
        data = bytes(self._output[:size])
        del self._output[:size]
        return data

    @property
    def pending_output(self) -> int:
        """Bytes of shell output waiting to be read."""
        return len(self._output)


class PtyForwarder:
    """Copies bytes between the user terminal and the PTY master."""

    def __init__(self, kernel: Kernel, cntr_process: Process, master_fd: int,
                 chunk_size: int = 4096) -> None:
        self.kernel = kernel
        self.cntr_process = cntr_process
        self.master_fd = master_fd
        self.chunk_size = chunk_size
        self.terminal = UserTerminal()
        self.bytes_to_shell = 0
        self.bytes_from_shell = 0
        self.closed = False

    def _master(self) -> PtyMaster:
        obj = self.cntr_process.get_fd(self.master_fd)
        if not isinstance(obj, PtyMaster):
            raise FsError.ebadf("pty master fd")
        return obj

    def pump(self) -> int:
        """One event-loop round: forward pending bytes in both directions."""
        if self.closed:
            return 0
        moved = 0
        master = self._master()
        self.kernel.clock.advance(self.kernel.costs.epoll_wait_ns)

        # User -> shell (stdin).
        pending = self.terminal.take_input(self.chunk_size)
        if pending:
            written = master.write(pending)
            self.kernel.clock.advance(int(self.kernel.costs.copy_cost(written)))
            self.bytes_to_shell += written
            moved += written

        # Shell -> user (stdout/stderr).
        while True:
            try:
                data = master.read(self.chunk_size)
            except FsError as exc:
                if exc.errno == 11:  # EAGAIN
                    break
                raise
            if not data:
                break
            self.kernel.clock.advance(int(self.kernel.costs.copy_cost(len(data))))
            self.terminal.deliver_output(data)
            self.bytes_from_shell += len(data)
            moved += len(data)
        return moved

    def close(self) -> None:
        """Stop forwarding."""
        self.closed = True
