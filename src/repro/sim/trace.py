"""Tracepoint registry: named, typed kernel tracepoints with subscribers.

Grown from the original flat event log in three steps that each preserve the
hot-path contract established by the raw-speed work (PR 9):

* **Gating.**  ``tracer.active`` is a plain attribute — true iff full
  tracing is enabled, a per-event filter entry exists, or a subscriber is
  attached.  Hot call sites read it (or rely on :meth:`Tracer.record`'s
  first line) and pay one attribute load + branch when observability is
  off; nothing else runs.  ``enabled`` is now a property whose setter keeps
  ``active`` in sync, so historical ``tracer.enabled = True`` call sites
  keep working.
* **Tracepoints.**  :data:`CORE_TRACEPOINTS` declares the stable, typed
  probe points (sched switch/throttle, memcg reclaim, writeback flush,
  journal commit, FUSE dispatch); :meth:`Tracer.emit` formats their fields
  deterministically and rejects undeclared fields on declared points.
  Undeclared names may still be emitted — they register dynamically, like
  ftrace's ``trace_marker``.
* **Subscribers.**  :meth:`Tracer.attach` registers a callback on one
  tracepoint (or ``"*"`` for all); subscribers see every matching event
  even when collection is off, and never alter the virtual clock.

The in-memory ring stays bounded by ``capacity`` with explicit global and
per-tracepoint drop counters, surfaced by the synthetic
``/sys/kernel/debug/tracing`` filesystem (``repro.kernel.sysfs``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterator

#: The declared tracepoint catalogue: name -> ordered field tuple.  These are
#: the probes wired into the kernel at fixed sites; dynamically emitted names
#: (the historical ``fs_type.op`` records) join ``available_events`` as they
#: are first seen.
CORE_TRACEPOINTS: dict[str, tuple[str, ...]] = {
    "sched.switch": ("prev", "next"),
    "sched.throttle": ("group", "until_ns"),
    "memcg.reclaim": ("cgroup", "bytes"),
    "writeback.flush": ("reason", "bytes", "inodes"),
    "journal.commit": ("fs", "reason"),
    "fuse.dispatch": ("opcode", "coalesced"),
}


@dataclass(frozen=True)
class TraceEvent:
    """A single traced operation."""

    timestamp_ns: int
    category: str
    name: str
    cost_ns: int = 0
    detail: str = ""

    @property
    def key(self) -> str:
        """The tracepoint name, ``category.name``."""
        return f"{self.category}.{self.name}"


@dataclass(frozen=True)
class TraceSubscription:
    """Handle returned by :meth:`Tracer.attach`; pass to :meth:`Tracer.detach`."""

    name: str
    callback: Callable[[TraceEvent], None]
    token: int


class Tracer:
    """The tracepoint registry: collects events, dispatches to subscribers.

    Collection (counters + the bounded ring) runs when tracing is enabled
    globally or the event's tracepoint is in the ``set_event`` filter;
    subscriber dispatch runs whenever a matching subscriber is attached.
    With none of the three, ``record``/``emit`` return after one branch.
    """

    def __init__(self, enabled: bool = False, capacity: int | None = 200_000) -> None:
        self._enabled = enabled
        #: Fast-path gate: collection or dispatch has work to do.  Plain
        #: attribute so hot call sites skip property descriptor overhead.
        self.active = enabled
        self.capacity = capacity
        self._events: list[TraceEvent] = []
        self._counts: Counter[str] = Counter()
        self._costs: Counter[str] = Counter()
        self.dropped = 0
        self.dropped_by_key: Counter[str] = Counter()
        self._event_filter: set[str] = set()
        self._subscribers: dict[str, list[TraceSubscription]] = {}
        self._next_token = 0
        self._declared: dict[str, tuple[str, ...]] = dict(CORE_TRACEPOINTS)

    # ------------------------------------------------------------- gating
    @property
    def enabled(self) -> bool:
        """Global collection switch (``tracing_on`` in the synthetic tracefs)."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        self._sync_active()

    def _sync_active(self) -> None:
        self.active = bool(self._enabled or self._event_filter
                           or self._subscribers)

    # -------------------------------------------------------- tracepoints
    def declare(self, name: str, fields: tuple[str, ...]) -> None:
        """Declare a typed tracepoint (idempotent for identical fields)."""
        known = self._declared.get(name)
        if known is not None and known != fields:
            raise ValueError(f"tracepoint {name} already declared with fields "
                             f"{known}, not {fields}")
        self._declared[name] = fields

    def available_events(self) -> list[str]:
        """Every declared or observed tracepoint name, sorted."""
        names = set(self._declared)
        names.update(self._counts)
        names.update(self._event_filter)
        names.update(k for k in self._subscribers if k != "*")
        return sorted(names)

    def set_event(self, name: str, enable: bool = True) -> None:
        """Enable (or disable) per-tracepoint collection for ``name``."""
        if "." not in name:
            raise ValueError(f"tracepoint names are category.name: {name!r}")
        if enable:
            self._event_filter.add(name)
        else:
            self._event_filter.discard(name)
        self._sync_active()

    def clear_events(self) -> None:
        """Empty the per-tracepoint filter (``echo > set_event``)."""
        self._event_filter.clear()
        self._sync_active()

    @property
    def event_filter(self) -> frozenset[str]:
        """The per-tracepoint collection filter, read-only."""
        return frozenset(self._event_filter)

    # -------------------------------------------------------- subscribers
    def attach(self, name: str,
               callback: Callable[[TraceEvent], None]) -> TraceSubscription:
        """Subscribe ``callback`` to tracepoint ``name`` (``"*"`` = all).

        Callbacks observe; they must not charge the virtual clock.  When the
        tracer lives inside a kernel that will be snapshotted, callbacks
        must be picklable (a small class, not a lambda).
        """
        if name != "*" and "." not in name:
            raise ValueError(f"tracepoint names are category.name: {name!r}")
        sub = TraceSubscription(name, callback, self._next_token)
        self._next_token += 1
        self._subscribers.setdefault(name, []).append(sub)
        self._sync_active()
        return sub

    def detach(self, subscription: TraceSubscription) -> None:
        """Remove a subscription (idempotent)."""
        subs = self._subscribers.get(subscription.name)
        if not subs:
            return
        remaining = [s for s in subs if s.token != subscription.token]
        if remaining:
            self._subscribers[subscription.name] = remaining
        else:
            del self._subscribers[subscription.name]
        self._sync_active()

    # ---------------------------------------------------------- recording
    def record(self, timestamp_ns: int, category: str, name: str,
               cost_ns: int = 0, detail: str = "") -> None:
        """Record one event (one branch and out when nothing is attached)."""
        if not self.active:
            return
        key = f"{category}.{name}"
        event = None
        if self._enabled or key in self._event_filter:
            self._counts[key] += 1
            self._costs[key] += int(cost_ns)
            if self.capacity is not None and len(self._events) >= self.capacity:
                self.dropped += 1
                self.dropped_by_key[key] += 1
            else:
                event = TraceEvent(timestamp_ns, category, name,
                                   int(cost_ns), detail)
                self._events.append(event)
        subscribers = self._subscribers
        if subscribers:
            direct = subscribers.get(key)
            wildcard = subscribers.get("*")
            if direct or wildcard:
                if event is None:
                    event = TraceEvent(timestamp_ns, category, name,
                                       int(cost_ns), detail)
                for sub in direct or ():
                    sub.callback(event)
                for sub in wildcard or ():
                    sub.callback(event)

    def emit(self, timestamp_ns: int, name: str, cost_ns: int = 0,
             **fields) -> None:
        """Fire a named tracepoint with keyword fields.

        Declared tracepoints render their fields in declaration order and
        reject unknown ones; undeclared names render fields sorted and
        register the name dynamically.
        """
        if not self.active:
            return
        declared = self._declared.get(name)
        if declared is not None:
            unknown = [f for f in fields if f not in declared]
            if unknown:
                raise ValueError(f"tracepoint {name} has no field(s) "
                                 f"{sorted(unknown)}; declared: {declared}")
            order = [f for f in declared if f in fields]
        else:
            order = sorted(fields)
        detail = " ".join(f"{f}={fields[f]}" for f in order)
        category, _, event_name = name.partition(".")
        self.record(timestamp_ns, category, event_name, cost_ns, detail)

    # ------------------------------------------------------------ reading
    def events(self, category: str | None = None) -> Iterator[TraceEvent]:
        """Iterate events, optionally filtered by category."""
        for ev in self._events:
            if category is None or ev.category == category:
                yield ev

    def count(self, key: str) -> int:
        """Number of events recorded under ``category.name``."""
        return self._counts.get(key, 0)

    def total_cost(self, key: str) -> int:
        """Total virtual nanoseconds recorded under ``category.name``."""
        return self._costs.get(key, 0)

    def counts_by_key(self) -> dict[str, int]:
        """All counts as a plain dictionary."""
        return dict(self._counts)

    def clear(self) -> None:
        """Drop recorded events and counters; keep filters and subscribers."""
        self._events.clear()
        self._counts.clear()
        self._costs.clear()
        self.dropped = 0
        self.dropped_by_key.clear()

    def summary(self, top: int = 20) -> list[tuple[str, int, int]]:
        """``(key, count, total_cost_ns)`` rows, highest cost first.

        Equal-cost rows tie-break on the key so reports are byte-stable
        across runs regardless of dict insertion order.
        """
        rows = [(k, self._counts[k], self._costs[k]) for k in self._counts]
        rows.sort(key=lambda r: (-r[2], r[0]))
        return rows[:top]
