"""Lightweight event tracing for debugging and for the benchmark reports."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class TraceEvent:
    """A single traced operation."""

    timestamp_ns: int
    category: str
    name: str
    cost_ns: int = 0
    detail: str = ""


class Tracer:
    """Collects :class:`TraceEvent` records.

    Tracing is disabled by default; benchmarks that want per-operation counts
    (e.g. "how many FUSE LOOKUP requests did compilebench issue?") enable it.
    """

    def __init__(self, enabled: bool = False, capacity: int | None = 200_000) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self._events: list[TraceEvent] = []
        self._counts: Counter[str] = Counter()
        self._costs: Counter[str] = Counter()
        self.dropped = 0

    def record(self, timestamp_ns: int, category: str, name: str,
               cost_ns: int = 0, detail: str = "") -> None:
        """Record one event (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        key = f"{category}.{name}"
        self._counts[key] += 1
        self._costs[key] += int(cost_ns)
        if self.capacity is not None and len(self._events) >= self.capacity:
            self.dropped += 1
            return
        self._events.append(TraceEvent(timestamp_ns, category, name, int(cost_ns), detail))

    def events(self, category: str | None = None) -> Iterator[TraceEvent]:
        """Iterate events, optionally filtered by category."""
        for ev in self._events:
            if category is None or ev.category == category:
                yield ev

    def count(self, key: str) -> int:
        """Number of events recorded under ``category.name``."""
        return self._counts.get(key, 0)

    def total_cost(self, key: str) -> int:
        """Total virtual nanoseconds recorded under ``category.name``."""
        return self._costs.get(key, 0)

    def counts_by_key(self) -> dict[str, int]:
        """All counts as a plain dictionary."""
        return dict(self._counts)

    def clear(self) -> None:
        """Drop all recorded events and counters."""
        self._events.clear()
        self._counts.clear()
        self._costs.clear()
        self.dropped = 0

    def summary(self, top: int = 20) -> list[tuple[str, int, int]]:
        """Return ``(key, count, total_cost_ns)`` tuples sorted by total cost."""
        rows = [(k, self._counts[k], self._costs[k]) for k in self._counts]
        rows.sort(key=lambda r: r[2], reverse=True)
        return rows[:top]
