"""A deterministic virtual clock measured in nanoseconds."""

from __future__ import annotations

import heapq
from typing import Callable

_NEVER = 1 << 62


class ClockTimer:
    """A scheduled virtual-time callback (see :meth:`VirtualClock.schedule`)."""

    __slots__ = ("deadline_ns", "callback", "cancelled")

    def __init__(self, deadline_ns: int, callback: Callable[[int], None]) -> None:
        self.deadline_ns = deadline_ns
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the timer from firing (lazy: the heap entry is skipped)."""
        self.cancelled = True


class VirtualClock:
    """Monotonic virtual clock.

    The clock only moves when some component explicitly charges time against
    it, which keeps every experiment fully deterministic and independent of
    the speed of the machine running the reproduction.

    Components may also :meth:`schedule` callbacks at virtual deadlines — the
    mechanism behind the periodic writeback flusher (``kupdate``): a timer
    fires during the first ``advance`` that reaches its deadline, modelling a
    kernel thread waking concurrently with whatever charged that time.  A
    callback may itself charge time; timers coming due from such nested
    advances are fired after the running callback returns, never reentrantly,
    so dispatch order stays deterministic (deadline, then creation order).
    """

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ValueError("clock cannot start in the past of epoch 0")
        self._now_ns = int(start_ns)
        #: (deadline, seq, timer) min-heap; seq breaks deadline ties in
        #: creation order, keeping dispatch deterministic.
        self._timers: list[tuple[int, int, ClockTimer]] = []
        self._timer_seq = 0
        self._next_deadline = _NEVER
        self._dispatching = False

    @property
    def now_ns(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now_ns

    @property
    def now_s(self) -> float:
        """Current virtual time in seconds."""
        return self._now_ns / 1e9

    def advance(self, delta_ns: int | float) -> int:
        """Advance the clock by ``delta_ns`` nanoseconds and return the new time.

        ``delta_ns`` must be a whole number of nanoseconds.  Integral floats
        (``200.0``, the natural result of cost-model arithmetic) are accepted;
        a fractional float raises ``ValueError`` instead of being silently
        truncated — callers that compute fractional costs floor them
        explicitly at the charge site, so sub-nanosecond remainders are
        dropped visibly there and repeated small charges (the scheduler's
        per-timeslice accounting) cannot drift against an implicit cast.
        """
        if isinstance(delta_ns, float):
            if not delta_ns.is_integer():  # also rejects nan/inf
                raise ValueError(
                    f"cannot advance clock by a fractional nanosecond delta: "
                    f"{delta_ns!r} (floor the cost at the charge site)")
            delta_ns = int(delta_ns)
        if delta_ns < 0:
            raise ValueError(f"cannot advance clock by negative time: {delta_ns}")
        self._now_ns += delta_ns
        if self._now_ns >= self._next_deadline:
            self._fire_due()
        return self._now_ns

    # ------------------------------------------------------------------ timers
    def schedule(self, deadline_ns: int, callback: Callable[[int], None]) -> ClockTimer:
        """Run ``callback(now_ns)`` at the first advance reaching ``deadline_ns``.

        Timers are one-shot; a periodic caller re-schedules from its callback.
        A deadline already in the past fires on the next advance (never
        synchronously inside ``schedule``), so scheduling is side-effect-free.
        """
        timer = ClockTimer(int(deadline_ns), callback)
        heapq.heappush(self._timers, (timer.deadline_ns, self._timer_seq, timer))
        self._timer_seq += 1
        if timer.deadline_ns < self._next_deadline:
            self._next_deadline = timer.deadline_ns
        return timer

    @property
    def next_timer_deadline_ns(self) -> int | None:
        """Deadline of the earliest pending (uncancelled) timer, or ``None``.

        The scheduler uses this to chunk idle jumps so periodic timers
        (kupdate) fire exactly at their deadlines rather than late at the end
        of one big advance.  Non-mutating: cancelled heap entries are skipped,
        not popped, so calling this never perturbs dispatch state.
        """
        deadlines = [deadline for deadline, _seq, timer in self._timers
                     if not timer.cancelled]
        return min(deadlines) if deadlines else None

    def _fire_due(self) -> None:
        # Reentrancy contract (audited for the scheduler): a callback may
        # schedule an *earlier* timer and then advance the clock again.  The
        # nested advance sees ``_dispatching`` and returns without firing;
        # correctness then rests on two invariants that the regression tests
        # in tests/test_sim.py lock down:
        #   * the while loop re-reads the heap top and ``_now_ns`` every
        #     iteration, so timers made due mid-dispatch (by a nested advance
        #     or a deadline-in-the-past schedule) still fire in this dispatch,
        #     in deterministic (deadline, creation) order;
        #   * the ``finally`` recomputes ``_next_deadline`` from the heap even
        #     when a callback raises, so it can never end up *above* the
        #     earliest pending deadline (stale-high would skip a fire; the
        #     harmless direction — stale-low after a cancel — only costs a
        #     spurious no-op dispatch).
        if self._dispatching:
            return              # a running callback advanced the clock
        self._dispatching = True
        try:
            while self._timers and self._timers[0][0] <= self._now_ns:
                _, _, timer = heapq.heappop(self._timers)
                if timer.cancelled:
                    continue
                timer.callback(self._now_ns)
        finally:
            self._dispatching = False
            self._next_deadline = self._timers[0][0] if self._timers else _NEVER

    def elapsed_since(self, t0_ns: int) -> int:
        """Nanoseconds elapsed since ``t0_ns``."""
        return self._now_ns - t0_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now_ns={self._now_ns})"


class StopwatchRegion:
    """Context manager measuring virtual time spent inside a region."""

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self.start_ns = 0
        self.elapsed_ns = 0

    def __enter__(self) -> "StopwatchRegion":
        self.start_ns = self._clock.now_ns
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed_ns = self._clock.now_ns - self.start_ns
