"""A deterministic virtual clock measured in nanoseconds."""

from __future__ import annotations


class VirtualClock:
    """Monotonic virtual clock.

    The clock only moves when some component explicitly charges time against
    it, which keeps every experiment fully deterministic and independent of
    the speed of the machine running the reproduction.
    """

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ValueError("clock cannot start in the past of epoch 0")
        self._now_ns = int(start_ns)

    @property
    def now_ns(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now_ns

    @property
    def now_s(self) -> float:
        """Current virtual time in seconds."""
        return self._now_ns / 1e9

    def advance(self, delta_ns: int | float) -> int:
        """Advance the clock by ``delta_ns`` nanoseconds and return the new time."""
        if delta_ns < 0:
            raise ValueError(f"cannot advance clock by negative time: {delta_ns}")
        self._now_ns += int(delta_ns)
        return self._now_ns

    def elapsed_since(self, t0_ns: int) -> int:
        """Nanoseconds elapsed since ``t0_ns``."""
        return self._now_ns - t0_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now_ns={self._now_ns})"


class StopwatchRegion:
    """Context manager measuring virtual time spent inside a region."""

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self.start_ns = 0
        self.elapsed_ns = 0

    def __enter__(self) -> "StopwatchRegion":
        self.start_ns = self._clock.now_ns
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed_ns = self._clock.now_ns - self.start_ns
