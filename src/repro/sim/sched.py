"""Deterministic discrete-event process scheduler on the virtual clock.

The simulator historically ran one process at a time: a bench drove one
``Syscalls`` facade to completion, then the next.  This module adds the
multi-tenant axis (the paper's §4 scalability story): many runnable tasks
interleave on the virtual CPU in weighted-fair timeslices, with cgroup-style
CPU bandwidth control (``cpu.weight`` / ``cpu.max``) and deterministic,
seed-reproducible interleavings.

Layering: this is ``repro.sim`` — it may not know about filesystems, kernels
or FUSE.  A task is just an iterator; each ``next()`` runs one slice of work
(typically a few syscalls that charge the shared clock inline) and yields a
scheduling directive.  The kernel-side glue that maps real processes and
cgroups onto :class:`SchedTask`/:class:`CpuGroup` lives in
:mod:`repro.kernel.cpu`.

Execution model (single virtual CPU):

* The clock is the CPU.  All work — including blocking stalls charged inline
  by lower layers (FUSE round trips, writeback stalls, ``memory.high``
  throttling) — consumes the running task's timeslice, so a stalled task is
  preempted at its next yield point and its vruntime reflects the stall.
* ``yield`` (``None``) marks a preemption point; ``yield n`` (``n`` > 0 ns)
  blocks the task for ``n`` virtual nanoseconds (an explicitly modelled wait).
* When nothing is runnable the scheduler advances the clock to the next wake
  event, chunked at pending timer deadlines so periodic flushers fire exactly
  on time during idle.

Determinism: task pick order is a pure function of integer vruntimes with
creation-order tie-breaks; the only randomness is optional timeslice jitter
drawn from a :meth:`~repro.sim.rng.DeterministicRandom.substream`, so a seed
pins the complete interleaving byte-for-byte across runs and interpreters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

from repro.sim.clock import VirtualClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.psi import PsiRegistry
    from repro.sim.rng import DeterministicRandom
    from repro.sim.trace import Tracer

#: Default timeslice, 1ms of virtual time (CFS-like granularity).
DEFAULT_TIMESLICE_NS = 1_000_000
#: Default bandwidth-enforcement period: 100ms, cgroup v2's ``cpu.max`` default.
DEFAULT_PERIOD_NS = 100_000_000
#: ``cpu.weight`` neutral value (cgroup v2 default).
NICE0_WEIGHT = 100
#: ``cpu.weight`` bounds (cgroup v2).
CPU_WEIGHT_MIN = 1
CPU_WEIGHT_MAX = 10_000


@dataclass
class CpuGroupStats:
    """CPU-controller accounting for one group (rendered as ``cpu.stat``).

    The kernel layer hands each cgroup's instance to its :class:`CpuGroup`,
    so cgroupfs reads observe scheduler charges live.
    """

    usage_ns: int = 0          # CPU time consumed by the group's tasks
    nr_periods: int = 0        # elapsed enforcement periods (quota set only)
    nr_throttled: int = 0      # periods in which the group hit its quota
    throttled_ns: int = 0      # total time spent throttled


class CpuGroup:
    """A scheduling group: the sim-layer face of one cgroup's cpu controller."""

    def __init__(self, name: str, weight: int = NICE0_WEIGHT,
                 quota_ns: int | None = None,
                 period_ns: int = DEFAULT_PERIOD_NS,
                 parent: "CpuGroup | None" = None,
                 stats: CpuGroupStats | None = None) -> None:
        if not CPU_WEIGHT_MIN <= weight <= CPU_WEIGHT_MAX:
            raise ValueError(f"cpu.weight out of range [1, 10000]: {weight}")
        if quota_ns is not None and quota_ns <= 0:
            raise ValueError(f"cpu.max quota must be positive: {quota_ns}")
        if period_ns <= 0:
            raise ValueError(f"cpu.max period must be positive: {period_ns}")
        self.name = name
        self.weight = weight
        self.quota_ns = quota_ns
        self.period_ns = period_ns
        self.parent = parent
        self.stats = stats if stats is not None else CpuGroupStats()
        #: Creation-order tie-break (assigned by :meth:`Scheduler.new_group`).
        self.seq = 0
        #: Weighted virtual runtime; lower runs first.  Integer-scaled by
        #: ``NICE0_WEIGHT / weight`` so determinism never rests on floats.
        self.vruntime_ns = 0
        #: Observability hooks, installed by the kernel glue
        #: (:mod:`repro.kernel.cpu`): the PSI registry, the cgroup chain's
        #: :class:`~repro.sim.psi.PsiGroup` tuple this group's stalls are
        #: attributed to, and the tracepoint registry.  All default to off.
        self.psi: "PsiRegistry | None" = None
        self.psi_groups = ()
        self.tracer: "Tracer | None" = None
        #: When the group last left a throttle window (clamps runnable-wait
        #: accounting so throttled time is never double-counted as wait).
        self.last_unthrottle_ns = 0
        # --- bandwidth-enforcement state (lazy period rolling) ---
        self._period_start_ns = 0
        self._period_usage_ns = 0
        self._throttled_until_ns: int | None = None
        self._throttle_start_ns = 0

    @property
    def throttled(self) -> bool:
        """True while the group is parked waiting for its next period."""
        return self._throttled_until_ns is not None

    def _chain(self) -> "list[CpuGroup]":
        """This group and its ancestors, leaf first."""
        chain, node = [], self
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    def _refresh(self, now_ns: int) -> None:
        """Roll enforcement periods forward to ``now_ns`` and unthrottle."""
        if self.quota_ns is None:
            return
        if self._throttled_until_ns is not None \
                and now_ns >= self._throttled_until_ns:
            delta = self._throttled_until_ns - self._throttle_start_ns
            self.stats.throttled_ns += delta
            self.last_unthrottle_ns = self._throttled_until_ns
            self._throttled_until_ns = None
            if self.psi is not None and delta > 0:
                # CPU pressure: the whole window the group sat parked.  The
                # delta equals the ``throttled_ns`` increment above, so the
                # PSI total decomposes exactly against cpu.stat.
                self.psi.account("cpu", delta, groups=self.psi_groups)
        if now_ns >= self._period_start_ns + self.period_ns:
            elapsed = (now_ns - self._period_start_ns) // self.period_ns
            self._period_start_ns += elapsed * self.period_ns
            self._period_usage_ns = 0
            self.stats.nr_periods += elapsed

    def _charge(self, now_ns: int, delta_ns: int) -> None:
        """Account ``delta_ns`` of CPU use and throttle if the quota is hit."""
        self.stats.usage_ns += delta_ns
        self.vruntime_ns += delta_ns * NICE0_WEIGHT // self.weight
        if self.quota_ns is None:
            return
        self._refresh(now_ns)
        self._period_usage_ns += delta_ns
        if self._period_usage_ns >= self.quota_ns \
                and self._throttled_until_ns is None:
            self.stats.nr_throttled += 1
            self._throttle_start_ns = now_ns
            self._throttled_until_ns = self._period_start_ns + self.period_ns
            tracer = self.tracer
            if tracer is not None and tracer.active:
                tracer.emit(now_ns, "sched.throttle", group=self.name,
                            until_ns=self._throttled_until_ns)

    def throttled_until(self, now_ns: int) -> int | None:
        """Earliest unthrottle deadline along the ancestor chain, if any."""
        self._refresh(now_ns)
        deadlines = []
        for node in self._chain():
            node._refresh(now_ns)
            if node._throttled_until_ns is not None:
                deadlines.append(node._throttled_until_ns)
        return max(deadlines) if deadlines else None


#: Task lifecycle states.
RUNNABLE, BLOCKED, DONE = "runnable", "blocked", "done"


class SchedTask:
    """One runnable entity: an iterator advanced one operation per step."""

    __slots__ = ("name", "body", "group", "seq", "state", "wake_at_ns",
                 "vruntime_ns", "cpu_ns", "wait_start_ns", "charge_hook")

    def __init__(self, name: str, body: Iterator, group: CpuGroup,
                 seq: int) -> None:
        self.name = name
        self.body = body
        self.group = group
        self.seq = seq
        self.state = RUNNABLE
        self.wake_at_ns = 0
        self.vruntime_ns = 0
        self.cpu_ns = 0
        #: When the task last became runnable-but-not-running; the dispatch
        #: path turns ``now - wait_start_ns`` into runnable-wait CPU pressure.
        self.wait_start_ns = 0
        #: Optional per-charge callback (the kernel glue accumulates process
        #: CPU time through it); receives the slice's consumed nanoseconds.
        self.charge_hook: Callable[[int], None] | None = None


@dataclass
class SchedulerStats:
    """Aggregate counters for one :meth:`Scheduler.run`."""

    picks: int = 0               # dispatch decisions
    context_switches: int = 0    # picks that changed the running task
    preemptions: int = 0         # slices ended by timeslice expiry
    sleeps: int = 0              # explicit blocking yields
    completions: int = 0         # tasks that ran to StopIteration
    idle_ns: int = 0             # virtual time with nothing runnable
    wait_ns: int = 0             # task-time spent runnable but not running
    switch_cost_ns: int = 0      # virtual time charged as switch overhead
    pick_trace: list = field(default_factory=list)  # task names, in pick order


class Scheduler:
    """Weighted-fair, quota-enforcing scheduler over a :class:`VirtualClock`.

    Every public method either charges the clock itself or drives task bodies
    that charge it inline (the clock-accounting gate registers this class as
    an entry surface — see ANALYSIS.md).
    """

    def __init__(self, clock: VirtualClock,
                 rng: "DeterministicRandom | None" = None,
                 timeslice_ns: int = DEFAULT_TIMESLICE_NS,
                 context_switch_ns: int = 0,
                 psi: "PsiRegistry | None" = None,
                 tracer: "Tracer | None" = None) -> None:
        if timeslice_ns <= 0:
            raise ValueError(f"timeslice must be positive: {timeslice_ns}")
        self.clock = clock
        self.timeslice_ns = timeslice_ns
        self.context_switch_ns = context_switch_ns
        #: Observability (both optional and off by default): runnable-wait
        #: stalls feed ``psi`` as CPU pressure; context switches and group
        #: throttling fire ``sched.*`` tracepoints on ``tracer``.
        self.psi = psi
        self.tracer = tracer
        self.root_group = CpuGroup("/")
        self._groups: list[CpuGroup] = [self.root_group]
        self._tasks: list[SchedTask] = []
        self._task_seq = 0
        self._last_task: SchedTask | None = None
        self.stats = SchedulerStats()
        #: Timeslice jitter stream: position-independent substream of the
        #: caller's seed, so interleavings replay byte-identically no matter
        #: what else consumed the parent RNG.
        self._jitter = rng.substream("sched/timeslice") if rng is not None \
            else None

    # ------------------------------------------------------------- topology
    def new_group(self, name: str, weight: int = NICE0_WEIGHT,
                  quota_ns: int | None = None,
                  period_ns: int = DEFAULT_PERIOD_NS,
                  parent: CpuGroup | None = None,
                  stats: CpuGroupStats | None = None) -> CpuGroup:
        """Create a scheduling group (one per cgroup in the kernel glue)."""
        group = CpuGroup(name, weight=weight, quota_ns=quota_ns,
                         period_ns=period_ns,
                         parent=parent if parent is not None else self.root_group,
                         stats=stats)
        group.seq = len(self._groups)
        self._groups.append(group)
        return group

    def spawn(self, name: str, body, group: CpuGroup | None = None) -> SchedTask:
        """Register a runnable task.

        ``body`` is an iterator (or a zero-argument callable returning one).
        Each ``next()`` runs one operation; yield ``None`` at preemption
        points and a positive integer to block for that many nanoseconds.
        """
        if callable(body):
            body = body()
        task = SchedTask(name, iter(body), group or self.root_group,
                         self._task_seq)
        task.wait_start_ns = self.clock.now_ns
        self._task_seq += 1
        self._tasks.append(task)
        return task

    # ------------------------------------------------------------- dispatch
    def _slice_ns(self) -> int:
        """Next timeslice length; jittered in [T/2, 3T/2) when seeded."""
        if self._jitter is None:
            return self.timeslice_ns
        return self.timeslice_ns // 2 + self._jitter.randrange(self.timeslice_ns)

    def _wake_due(self, now_ns: int) -> None:
        for task in self._tasks:
            if task.state == BLOCKED and task.wake_at_ns <= now_ns:
                task.state = RUNNABLE
                # Runnable-wait starts at the wake deadline, not at whatever
                # later instant the loop observed it.
                task.wait_start_ns = task.wake_at_ns
                # A waking task resumes at the floor of current vruntimes so
                # sleepers cannot hoard credit and starve everyone on wake.
                floor = min((t.vruntime_ns for t in self._tasks
                             if t.state == RUNNABLE and t is not task),
                            default=task.vruntime_ns)
                task.vruntime_ns = max(task.vruntime_ns, floor)

    def _runnable(self, now_ns: int) -> list[SchedTask]:
        return [t for t in self._tasks
                if t.state == RUNNABLE
                and t.group.throttled_until(now_ns) is None]

    def _pick(self, runnable: list[SchedTask]) -> SchedTask:
        groups: list[CpuGroup] = []
        for task in runnable:
            if task.group not in groups:
                groups.append(task.group)
        best_group = min(groups, key=lambda g: (g.vruntime_ns, g.seq, g.name))
        return min((t for t in runnable if t.group is best_group),
                   key=lambda t: (t.vruntime_ns, t.seq))

    def _next_event_ns(self, now_ns: int) -> int | None:
        """Earliest instant at which a blocked/throttled task can run again."""
        events = [t.wake_at_ns for t in self._tasks if t.state == BLOCKED]
        for task in self._tasks:
            if task.state == RUNNABLE:
                until = task.group.throttled_until(now_ns)
                if until is not None:
                    events.append(until)
        return min(events) if events else None

    def _idle_until(self, target_ns: int) -> None:
        """Advance the clock to ``target_ns``, stopping at timer deadlines.

        Chunking makes periodic timers (kupdate flushers) fire exactly at
        their deadlines during idle; their callbacks may charge further time,
        which the loop re-checks, so the clock can legitimately overshoot.
        """
        start = self.clock.now_ns
        while self.clock.now_ns < target_ns:
            deadline = self.clock.next_timer_deadline_ns
            step_to = min(target_ns, deadline) if deadline is not None \
                else target_ns
            step_to = max(step_to, self.clock.now_ns)
            self.clock.advance(step_to - self.clock.now_ns)
            if step_to == target_ns and self.clock.now_ns >= target_ns:
                break
        self.stats.idle_ns += self.clock.now_ns - start

    def run(self, until_ns: int | None = None,
            max_picks: int | None = None) -> SchedulerStats:
        """Dispatch until every task completes (or a bound is hit)."""
        while True:
            if until_ns is not None and self.clock.now_ns >= until_ns:
                return self.stats
            if max_picks is not None and self.stats.picks >= max_picks:
                return self.stats
            now = self.clock.now_ns
            self._wake_due(now)
            live = [t for t in self._tasks if t.state != DONE]
            if not live:
                return self.stats
            runnable = self._runnable(now)
            if not runnable:
                event = self._next_event_ns(now)
                if event is None:
                    raise RuntimeError(
                        "scheduler deadlock: live tasks but no wake event")
                self._idle_until(max(event, now))
                continue
            self._dispatch(self._pick(runnable))

    def _dispatch(self, task: SchedTask) -> None:
        self.stats.picks += 1
        self.stats.pick_trace.append(task.name)
        self._account_wait(task)
        prev = self._last_task
        if prev is not None and prev is not task:
            if self.context_switch_ns:
                # Switch overhead is charged to the clock (it is real elapsed
                # time) but not to the incoming group's usage — matching how
                # cpu.stat excludes scheduler overhead.
                self.clock.advance(self.context_switch_ns)
                self.stats.switch_cost_ns += self.context_switch_ns
            self.stats.context_switches += 1
            tracer = self.tracer
            if tracer is not None and tracer.active:
                tracer.emit(self.clock.now_ns, "sched.switch",
                            prev=prev.name, next=task.name)
        self._last_task = task
        slice_ns = self._slice_ns()
        t0 = self.clock.now_ns
        while self.clock.now_ns - t0 < slice_ns:
            try:
                directive = next(task.body)
            except StopIteration:
                task.state = DONE
                self.stats.completions += 1
                break
            if directive is not None and directive > 0:
                task.state = BLOCKED
                task.wake_at_ns = self.clock.now_ns + int(directive)
                self.stats.sleeps += 1
                break
        else:
            self.stats.preemptions += 1
        delta = self.clock.now_ns - t0
        if delta:
            task.cpu_ns += delta
            task.vruntime_ns += delta * NICE0_WEIGHT // task.group.weight
            if task.charge_hook is not None:
                task.charge_hook(delta)
            now = self.clock.now_ns
            for group in task.group._chain():
                group._charge(now, delta)
        # If the task stays runnable it starts waiting again the instant its
        # slice ends; blocked tasks get this re-stamped on wake.
        task.wait_start_ns = self.clock.now_ns

    def _account_wait(self, task: SchedTask) -> None:
        """Turn the interval since the task became runnable into CPU pressure.

        Throttled windows along the group chain are clamped out (they are
        accounted separately when the group unthrottles), which keeps the
        decomposition exact: system cpu ``total`` ==
        ``stats.wait_ns`` + Σ per-group ``throttled_ns``.
        """
        start = task.wait_start_ns
        for group in task.group._chain():
            if group.last_unthrottle_ns > start:
                start = group.last_unthrottle_ns
        wait = self.clock.now_ns - start
        if wait > 0:
            self.stats.wait_ns += wait
            if self.psi is not None:
                self.psi.account("cpu", wait, groups=task.group.psi_groups)
