"""Cost model: the virtual-time price list charged by the simulated kernel.

The constants are calibrated so that the *ratios* between a native filesystem
access and the same access routed through the simulated FUSE driver land in
the ranges the paper reports (Figure 2-4).  Absolute values are loosely based
on published micro-benchmarks of syscall, context-switch and FUSE round-trip
latencies on commodity x86 hardware circa 2018; they are not meant to match
the paper's EC2 testbed in absolute terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class CostModel:
    """Per-operation virtual-time costs, in nanoseconds unless stated."""

    # --- generic kernel costs -------------------------------------------------
    syscall_ns: int = 300                  # user->kernel->user trap
    context_switch_ns: int = 2_000         # full process context switch
    wakeup_ns: int = 800                   # waking a blocked thread
    lock_contention_ns: int = 150          # per contended queue operation

    # --- memory / copy costs --------------------------------------------------
    copy_per_byte_ns: float = 0.06         # memcpy through userspace buffers
    splice_per_byte_ns: float = 0.015      # page remapping, no copy
    page_cache_hit_per_byte_ns: float = 0.25   # copy_to_user + accounting
    page_fault_ns: int = 1_500

    # --- in-memory filesystem (tmpfs) costs -----------------------------------
    tmpfs_op_ns: int = 400                 # metadata operation on tmpfs
    tmpfs_per_byte_ns: float = 0.02

    # --- disk-backed filesystem (ext4-like) costs ------------------------------
    disk_seek_ns: int = 110_000            # SSD-backed EBS GP2 random access
    disk_per_byte_ns: float = 0.9          # ~1.1 GB/s effective streaming
    journal_commit_ns: int = 180_000       # jbd2 commit
    metadata_op_ns: int = 1_000            # dcache-warm dentry/inode operation
    sync_barrier_ns: int = 250_000         # fsync/flush barrier latency

    # --- FUSE protocol costs ----------------------------------------------------
    fuse_request_ns: int = 6_000           # queue + 2 context switches + dispatch
    fuse_small_reply_ns: int = 1_200       # serializing a metadata reply
    fuse_forget_batch_ns: int = 900        # single batched FORGET round trip
    fuse_lookup_userspace_ns: int = 20_000  # open()+stat() pair done by CntrFS
    fuse_thread_contention_ns: int = 350   # per-request loss with many threads
    fuse_splice_setup_ns: int = 1_800      # pipe setup for splice read/write
    fuse_writeback_flush_ns: int = 20_000  # flushing an aggregated writeback batch

    # --- network-ish costs used by socket proxy / apache workload ---------------
    unix_socket_rtt_ns: int = 8_000
    epoll_wait_ns: int = 1_200

    # --- page / block geometry ---------------------------------------------------
    page_size: int = 4096
    writeback_batch_bytes: int = 128 * 1024   # max aggregation by the writeback cache
    readahead_bytes: int = 128 * 1024

    extra: dict = field(default_factory=dict)

    def copy_cost(self, nbytes: int) -> float:
        """Cost of copying ``nbytes`` through a userspace buffer."""
        return self.copy_per_byte_ns * nbytes

    def splice_cost(self, nbytes: int) -> float:
        """Cost of moving ``nbytes`` with splice (page remapping)."""
        return self.fuse_splice_setup_ns + self.splice_per_byte_ns * nbytes

    def disk_read_cost(self, nbytes: int, sequential: bool = True) -> float:
        """Cost of reading ``nbytes`` from the simulated disk."""
        seek = self.disk_seek_ns if not sequential else self.disk_seek_ns * 0.08
        return seek + self.disk_per_byte_ns * nbytes

    def disk_write_cost(self, nbytes: int, sequential: bool = True) -> float:
        """Cost of writing ``nbytes`` to the simulated disk."""
        seek = self.disk_seek_ns if not sequential else self.disk_seek_ns * 0.1
        return seek + self.disk_per_byte_ns * nbytes

    def with_overrides(self, **kwargs) -> "CostModel":
        """Return a copy with selected parameters replaced."""
        return replace(self, **kwargs)


#: Cost model used by default throughout the reproduction.
DEFAULT_COST_MODEL = CostModel()
