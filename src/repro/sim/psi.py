"""Deterministic PSI (pressure-stall information) accounting.

Every stall the simulator models — scheduler throttling and runnable wait,
``memory.high`` write throttling and per-cgroup reclaim, writeback dirty
throttling, BDI device busy time, FUSE queue congestion waits — already
charges the virtual clock somewhere.  This module gives those charges a
second, observational home: per-resource ``some``/``full`` stall totals and
windowed averages rendered in the Linux ``/proc/pressure`` file format.

Two deliberate departures from Linux, both in the name of determinism:

* **Totals are task-stall time, not wall time.**  Linux's ``some`` counts
  wall-clock seconds during which *at least one* task stalled; merging
  overlapping stalls needs a global timeline.  We sum each stall interval
  as reported, so ``total=`` decomposes *exactly* (to the nanosecond)
  against the per-subsystem counters that fed it — the invariant the
  benchmarks assert — at the price of totals that can exceed wall time
  when stalls overlap.
* **Averages are rectangular, not exponential.**  Linux computes avg10/60/300
  with a periodic EMA kernel thread; we bucket stall time into one-virtual-
  second bins and report the windowed fraction, so the same virtual history
  always renders the same bytes.  Averages are capped at 100.00.

Accounting mutates plain integers and never touches
:meth:`~repro.sim.clock.VirtualClock.advance`: reading or accumulating
pressure is documented zero-virtual-cost (see ANALYSIS.md).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.clock import VirtualClock

#: The three pressure resources, in the order Linux documents them.
PSI_RESOURCES = ("cpu", "memory", "io")

#: Averaging windows in seconds (the avg10/avg60/avg300 columns).
PSI_WINDOWS_S = (10, 60, 300)

#: Stall history granularity: one bucket per virtual second.
BUCKET_NS = 1_000_000_000

#: History kept per tracker: the largest window plus the current bucket.
_HISTORY_BUCKETS = max(PSI_WINDOWS_S) + 1


class PsiStallTracker:
    """Stall accounting for one resource in one scope (system or cgroup).

    ``total_some_ns`` accumulates every reported stall; ``total_full_ns``
    only those flagged ``full`` (productivity completely lost, e.g. direct
    reclaim), mirroring Linux where full time is a subset of some time.
    """

    __slots__ = ("total_some_ns", "total_full_ns", "_some", "_full")

    def __init__(self) -> None:
        self.total_some_ns = 0
        self.total_full_ns = 0
        # Bucket index -> stalled ns inside that virtual second.  Insertion
        # order is ascending (the clock is monotonic), which makes pruning
        # the oldest entries a pop-from-front walk.
        self._some: dict[int, int] = {}
        self._full: dict[int, int] = {}

    def account(self, now_ns: int, delta_ns: int, full: bool = False) -> None:
        """Record a stall of ``delta_ns`` that *ended* at ``now_ns``."""
        if delta_ns <= 0:
            return
        self.total_some_ns += delta_ns
        if full:
            self.total_full_ns += delta_ns
        self._spread(self._some, now_ns, delta_ns)
        if full:
            self._spread(self._full, now_ns, delta_ns)

    @staticmethod
    def _spread(buckets: dict[int, int], now_ns: int, delta_ns: int) -> None:
        """Distribute a stall interval across the 1s buckets it spans."""
        start_ns = max(0, now_ns - delta_ns)
        first = start_ns // BUCKET_NS
        last = now_ns // BUCKET_NS
        if first == last:
            buckets[first] = buckets.get(first, 0) + delta_ns
        else:
            for idx in range(first, last + 1):
                lo = max(start_ns, idx * BUCKET_NS)
                hi = min(now_ns, (idx + 1) * BUCKET_NS)
                if hi > lo:
                    buckets[idx] = buckets.get(idx, 0) + hi - lo
        cutoff = last - _HISTORY_BUCKETS
        while buckets:
            oldest = next(iter(buckets))
            if oldest >= cutoff:
                break
            del buckets[oldest]

    @staticmethod
    def _window_pct100(buckets: dict[int, int], now_ns: int,
                       window_s: int) -> int:
        """Stalled share of the trailing window, in hundredths of a percent.

        The window is the last ``window_s`` whole buckets ending at the
        bucket containing ``now_ns`` — a deterministic rectangular
        approximation of Linux's EMA.
        """
        cur = now_ns // BUCKET_NS
        stalled = sum(val for idx, val in buckets.items()
                      if cur - window_s < idx <= cur)
        pct100 = stalled * 10_000 // (window_s * BUCKET_NS)
        return min(pct100, 10_000)

    def _line(self, kind: str, total_ns: int, buckets: dict[int, int],
              now_ns: int) -> str:
        cols = []
        for window_s in PSI_WINDOWS_S:
            pct100 = self._window_pct100(buckets, now_ns, window_s)
            cols.append(f"avg{window_s}={pct100 // 100}.{pct100 % 100:02d}")
        return f"{kind} {' '.join(cols)} total={total_ns // 1_000}\n"

    def render(self, now_ns: int) -> str:
        """The two-line ``some``/``full`` body of a pressure file."""
        return (self._line("some", self.total_some_ns, self._some, now_ns)
                + self._line("full", self.total_full_ns, self._full, now_ns))


class PsiGroup:
    """One scope's trackers for all three resources (a cgroup, or the system)."""

    __slots__ = ("_trackers",)

    def __init__(self) -> None:
        self._trackers = {resource: PsiStallTracker()
                          for resource in PSI_RESOURCES}

    def tracker(self, resource: str) -> PsiStallTracker:
        """The tracker for ``resource`` (KeyError on an unknown resource)."""
        return self._trackers[resource]

    def account(self, resource: str, now_ns: int, delta_ns: int,
                full: bool = False) -> None:
        """Record one stall against this scope."""
        self._trackers[resource].account(now_ns, delta_ns, full)

    def render(self, resource: str, now_ns: int) -> str:
        """Render one resource's pressure file body."""
        return self._trackers[resource].render(now_ns)


class PsiRegistry:
    """The kernel-wide fan-out point every stall site reports through.

    Holds the system-level :class:`PsiGroup` (``/proc/pressure``) and
    optionally resolves the *current* cgroup chain via ``current_groups`` —
    a picklable zero-argument callable installed by the kernel (never a
    lambda: the registry lives inside the kernel snapshot graph).  Stall
    sites that know their victim better than "whoever is current" (the
    scheduler, memcg) pass an explicit ``groups`` chain instead.
    """

    def __init__(self, clock: "VirtualClock") -> None:
        self.clock = clock
        self.system = PsiGroup()
        self.current_groups = None

    def account(self, resource: str, delta_ns: int, full: bool = False,
                groups: "Iterable[PsiGroup] | None" = None) -> None:
        """Record a stall ending now against the system and a cgroup chain.

        ``groups=None`` resolves the current process's cgroup chain through
        ``current_groups``; pass an explicit (possibly empty) iterable to
        override attribution.
        """
        if delta_ns <= 0:
            return
        now_ns = self.clock.now_ns
        self.system.account(resource, now_ns, delta_ns, full)
        if groups is None:
            resolve = self.current_groups
            groups = resolve() if resolve is not None else ()
        for group in groups:
            group.account(resource, now_ns, delta_ns, full)
