"""Virtual-time simulation substrate.

Everything in the reproduction that the paper measures in wall-clock time is
accounted for in *virtual nanoseconds* on a :class:`VirtualClock`.  The
:class:`CostModel` holds the per-operation price list (context switches,
per-byte copies, disk seeks, journal commits, ...) that the filesystem, FUSE
driver and kernel layers charge against the clock.  Benchmarks then report
ratios of virtual time (native vs. CntrFS), which is exactly the quantity the
paper's Figure 2-4 report as "relative overhead".
"""

from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.trace import TraceEvent, Tracer
from repro.sim.rng import DeterministicRandom

__all__ = [
    "VirtualClock",
    "CostModel",
    "Tracer",
    "TraceEvent",
    "DeterministicRandom",
]
