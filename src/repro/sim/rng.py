"""Deterministic random number generation for workload generators."""

from __future__ import annotations

import random


class DeterministicRandom(random.Random):
    """A :class:`random.Random` that refuses to be seeded from the OS.

    Workload generators (FIO, PostMark, Dbench, ...) need randomness for their
    access patterns but the reproduction must stay bit-for-bit deterministic,
    so every generator receives one of these seeded from the experiment name.
    """

    def __init__(self, seed: int | str = 0) -> None:
        if isinstance(seed, str):
            seed = sum((i + 1) * b for i, b in enumerate(seed.encode("utf-8")))
        super().__init__(seed)
        self._initial_seed = seed

    @property
    def initial_seed(self) -> int:
        """Seed the generator was created with."""
        return int(self._initial_seed)

    def reseed(self) -> None:
        """Reset the stream back to its initial seed."""
        super().seed(self._initial_seed)

    def __reduce__(self):
        # random.Random's own __reduce__ rebuilds with the default seed and
        # only restores the stream position, silently dropping
        # ``_initial_seed`` — after a copy/deepcopy (kernel snapshot/fork),
        # ``substream`` would then derive from the wrong root.  Rebuild with
        # the real seed, then restore the exact stream position.
        return (_rebuild_rng, (self._initial_seed, self.getstate()))

    def substream(self, name: str) -> "DeterministicRandom":
        """An independent deterministic stream derived from this one's seed.

        Derivation uses only the *initial* seed, never the current stream
        position, so ``rng.substream("ops")`` yields the same stream no
        matter how much of ``rng`` was already consumed — the property the
        fsstress fuzzer relies on to keep its op, crash-point and payload
        streams independent yet reproducible from one seed.
        """
        return DeterministicRandom(f"{self._initial_seed}/{name}")

    def zipf_index(self, n: int, skew: float = 1.1) -> int:
        """Pick an index in ``[0, n)`` with a Zipf-like popularity skew."""
        if n <= 0:
            raise ValueError("population must be positive")
        # Inverse-CDF sampling over a truncated zeta distribution.
        u = self.random()
        total = sum(1.0 / (i + 1) ** skew for i in range(n))
        acc = 0.0
        for i in range(n):
            acc += (1.0 / (i + 1) ** skew) / total
            if u <= acc:
                return i
        return n - 1


def _rebuild_rng(seed: int, state) -> DeterministicRandom:
    """Reconstruct a copied/pickled :class:`DeterministicRandom`."""
    rng = DeterministicRandom(seed)
    rng.setstate(state)
    return rng
