"""CLI for the invariant checker suite.

Usage::

    python -m repro.analyze                 # analyze src/repro, text output
    python -m repro.analyze --json          # machine-readable findings
    python -m repro.analyze --rule layering # run one rule
    python -m repro.analyze --list-rules
    python -m repro.analyze --check-suppression-registry ANALYSIS.md

Exit status: 0 clean, 1 findings (or registry mismatch), 2 usage errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

from repro.analyze.core import (
    RULES, _load_rules, collect_files, DEFAULT_CONFIG, render_findings,
    run_analysis,
)


def _default_root() -> Path:
    """The ``repro`` package directory this module was loaded from."""
    return Path(__file__).resolve().parent.parent


def _registry_entries(text: str) -> set[str]:
    """Extract ```file.py:rule`` bullets from the "Suppression registry"
    section, ignoring fenced code blocks (format examples don't register)."""
    entries: set[str] = set()
    in_section = in_fence = False
    for line in text.splitlines():
        if line.startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        if line.startswith("#"):
            in_section = "suppression registry" in line.lower()
            continue
        if in_section and line.lstrip().startswith("-"):
            entries.update(re.findall(r"`([^`\s]+\.py:[a-z\-]+)`", line))
    return entries


def _check_suppression_registry(roots: list[Path], registry: Path) -> int:
    """Verify suppressions and the ANALYSIS.md registry agree, both ways.

    The registry section lists one bullet per suppression as
    ``- `path:rule` — reason``.  CI fails when a suppression lands in the
    tree without its entry (the count of silences can never grow silently)
    and when an entry outlives its suppression (the registry can never
    overstate how silenced the tree is).
    """
    files = collect_files(roots, DEFAULT_CONFIG)
    in_tree: list[str] = []
    for sf in files:
        for _line, rules in sorted(sf.suppressions.items()):
            rel = sf.path
            for r in sorted(rules):
                in_tree.append(f"{rel.name}:{r}")
    text = registry.read_text() if registry.exists() else ""
    registered = _registry_entries(text)
    missing = [s for s in in_tree if s not in registered]
    stale = sorted(registered - set(in_tree))
    if missing:
        print("suppressions without an ANALYSIS.md registry entry:", file=sys.stderr)
        for s in missing:
            print(f"  {s}", file=sys.stderr)
        print(f"add a `- `file.py:rule` — reason` bullet to {registry} "
              f"for each, or remove the suppression", file=sys.stderr)
    if stale:
        print("registry entries with no matching suppression in the tree:",
              file=sys.stderr)
        for s in stale:
            print(f"  {s}", file=sys.stderr)
        print(f"remove the stale bullet(s) from {registry}", file=sys.stderr)
    if missing or stale:
        return 1
    print(f"suppression registry ok: {len(in_tree)} suppression(s), "
          f"{len(registered)} registered")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="AST-based invariant checkers for the simulator")
    parser.add_argument("roots", nargs="*", type=Path,
                        help="package roots to analyze (default: the "
                             "installed repro package)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON")
    parser.add_argument("--rule", action="append", dest="rules", metavar="NAME",
                        help="run only this rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("--check-suppression-registry", type=Path, metavar="MD",
                        help="verify every in-tree suppression is documented "
                             "in the given ANALYSIS.md and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        _load_rules()
        for name in sorted(RULES):
            print(f"{name:18} {RULES[name].doc}")
        return 0

    roots = args.roots or [_default_root()]
    for root in roots:
        if not root.is_dir():
            print(f"not a directory: {root}", file=sys.stderr)
            return 2

    if args.check_suppression_registry is not None:
        return _check_suppression_registry(roots, args.check_suppression_registry)

    try:
        findings = run_analysis(roots, rules=args.rules)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_findings(findings, as_json=args.as_json))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
