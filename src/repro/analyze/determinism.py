"""``determinism`` — ban nondeterminism sources from the simulated world.

The simulator's central invariant is that a seeded run replays
byte-identically: virtual time moves only by explicit charges and every
random choice flows from a seeded stream.  Three ingredient classes break
that silently:

* **wall clocks** — ``time.time``/``monotonic``/``perf_counter``,
  ``datetime.now`` — smuggle host speed into results.  Only the bench
  harnesses (which *measure* interpreter speed on purpose) may read them;
  they are allowlisted by module name in :class:`AnalysisConfig`.
* **OS entropy** — ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets``, the
  module-level ``random.*`` functions (one process-global unseeded stream).
* **hash-order dependence** — iterating a ``set`` (or ``frozenset``) feeds
  ``PYTHONHASHSEED``-dependent order into whatever consumes the loop, and
  ``id()`` used as a sort key orders by allocation address.  Sets remain
  fine for membership; iteration must go through ``sorted`` or a
  deterministically ordered container.
"""

from __future__ import annotations

import ast

from repro.analyze.callgraph import _dotted
from repro.analyze.core import Project, Reporter, SourceFile, rule

#: Fully qualified callables that read the host wall clock.
WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today", "datetime.now",
    "datetime.utcnow", "datetime.today", "date.today",
}

#: Fully qualified callables drawing OS entropy or global unseeded RNG state.
ENTROPY = {
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.choice", "random.SystemRandom",
}

#: ``random.<fn>`` module-level calls share one process-global stream whose
#: seeding this package cannot vouch for.
_RANDOM_MODULE_FUNCS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "lognormvariate", "getrandbits", "randbytes", "seed",
}

#: Iteration-order-insensitive consumers: iterating a set inside these is
#: deterministic (or reduces to a scalar).
_ORDER_SAFE_CALLS = {"sorted", "len", "sum", "min", "max", "any", "all",
                     "set", "frozenset"}


def _call_dotted(sf: SourceFile, node: ast.Call) -> str | None:
    """The call target as a dotted name, resolved through plain imports."""
    return _dotted(node.func)


class _SetTracker(ast.NodeVisitor):
    """Tracks which local names / self-attributes are set-typed."""

    def __init__(self) -> None:
        self.names: set[str] = set()
        self.self_attrs: set[str] = set()

    @staticmethod
    def is_set_expr(node: ast.AST, known_names: set[str],
                    known_attrs: set[str]) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node, ast.Name) and node.id in known_names:
            return True
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
                and node.value.id == "self" and node.attr in known_attrs:
            return True
        if isinstance(node, ast.BoolOp):
            return any(_SetTracker.is_set_expr(v, known_names, known_attrs)
                       for v in node.values)
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd,
                                                                ast.Sub, ast.BitXor)):
            # set algebra (a | b, a - b, ...) stays a set when a side is one.
            return (_SetTracker.is_set_expr(node.left, known_names, known_attrs)
                    or _SetTracker.is_set_expr(node.right, known_names, known_attrs))
        return False


def _annotation_is_set(node: ast.AST | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return False
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "AbstractSet")
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_is_set(node.left) or _annotation_is_set(node.right)
    return False


def _collect_set_names(sf: SourceFile) -> tuple[set[str], set[str]]:
    """Names (locals/params, self-attrs) with set-typed bindings in a module."""
    names: set[str] = set()
    attrs: set[str] = set()
    for node in sf.walk():
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                if _annotation_is_set(a.annotation):
                    names.add(a.arg)
        elif isinstance(node, ast.AnnAssign):
            if _annotation_is_set(node.annotation):
                t = node.target
                if isinstance(t, ast.Name):
                    names.add(t.id)
                elif isinstance(t, ast.Attribute) and isinstance(t.value, ast.Name) \
                        and t.value.id == "self":
                    attrs.add(t.attr)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            if _SetTracker.is_set_expr(node.value, names, attrs):
                t = node.targets[0]
                if isinstance(t, ast.Name):
                    names.add(t.id)
                elif isinstance(t, ast.Attribute) and isinstance(t.value, ast.Name) \
                        and t.value.id == "self":
                    attrs.add(t.attr)
    return names, attrs


def _check_banned_calls(sf: SourceFile, reporter: Reporter, allow_wallclock: bool) -> None:
    imported = {n for n in sf.walk() if isinstance(n, ast.Import)}
    # Names under which nondeterminism modules are reachable in this module.
    module_aliases: dict[str, str] = {}
    from_imports: dict[str, str] = {}
    for node in sf.walk():
        if isinstance(node, ast.Import):
            for alias in node.names:
                module_aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                from_imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    del imported

    for node in sf.walk():
        if not isinstance(node, ast.Call):
            continue
        dotted = _call_dotted(sf, node)
        if not dotted:
            continue
        head, _, rest = dotted.partition(".")
        # Normalize through import aliases: `from time import monotonic` /
        # `import time as t`.
        resolved = from_imports.get(dotted, dotted)
        if head in module_aliases:
            resolved = f"{module_aliases[head]}.{rest}" if rest else module_aliases[head]
        if resolved in WALL_CLOCK:
            if not allow_wallclock:
                reporter.report(sf, node, "determinism",
                                f"wall-clock read {resolved}() — simulated code must "
                                f"use VirtualClock (bench harnesses are allowlisted "
                                f"via AnalysisConfig.wallclock_allow)")
            continue
        if resolved in ENTROPY:
            reporter.report(sf, node, "determinism",
                            f"OS entropy source {resolved}() — derive randomness "
                            f"from DeterministicRandom instead")
            continue
        mod, _, fn = resolved.rpartition(".")
        if mod == "random" and fn in _RANDOM_MODULE_FUNCS:
            reporter.report(sf, node, "determinism",
                            f"module-level random.{fn}() uses the process-global "
                            f"unseeded stream — use a DeterministicRandom instance")


def _check_hash_order(sf: SourceFile, reporter: Reporter) -> None:
    names, attrs = _collect_set_names(sf)

    def flag_iter(node: ast.AST, context: str) -> None:
        reporter.report(sf, node, "determinism",
                        f"iteration over a set in {context} leaks "
                        f"PYTHONHASHSEED-dependent order — iterate a sorted() "
                        f"copy or an insertion-ordered container")

    class Visitor(ast.NodeVisitor):
        def visit_For(self, node: ast.For) -> None:
            if _SetTracker.is_set_expr(node.iter, names, attrs):
                flag_iter(node.iter, "a for loop")
            self.generic_visit(node)

        def _comp(self, node) -> None:
            for gen in node.generators:
                # A set comprehension *target* is fine; its *source* order
                # leaking into a list/dict/generator is not.
                if isinstance(node, ast.SetComp):
                    continue
                if _SetTracker.is_set_expr(gen.iter, names, attrs):
                    flag_iter(gen.iter, "a comprehension")
            self.generic_visit(node)

        visit_ListComp = _comp
        visit_DictComp = _comp
        visit_GeneratorExp = _comp

        def visit_Call(self, node: ast.Call) -> None:
            if isinstance(node.func, ast.Name):
                fn = node.func.id
                if fn in ("list", "tuple") and node.args \
                        and _SetTracker.is_set_expr(node.args[0], names, attrs):
                    flag_iter(node.args[0], f"{fn}() conversion")
                if fn in ("sorted", "min", "max"):
                    for kw in node.keywords:
                        if kw.arg == "key" and any(
                                isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
                                and n.func.id == "id" for n in ast.walk(kw.value)):
                            reporter.report(sf, node, "determinism",
                                            "id() used as an ordering key sorts by "
                                            "allocation address — order by a stable "
                                            "field instead")
            self.generic_visit(node)

    Visitor().visit(sf.tree)


@rule("determinism",
      "wall clocks, OS entropy and hash-order dependence are banned in "
      "simulated code")
def check(project: Project, reporter: Reporter) -> None:
    for sf in project.files:
        allow = sf.module in project.config.wallclock_allow
        _check_banned_calls(sf, reporter, allow_wallclock=allow)
        _check_hash_order(sf, reporter)
