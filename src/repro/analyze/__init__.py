"""Static invariant checkers for the simulator (``python -m repro.analyze``).

The package enforces the contracts the runtime oracles (bench pins, the
differential fuzzer) can only verify after the fact — determinism, clock
accounting, package layering, errno discipline and timer/RNG hygiene — as
AST analyses that gate CI before the test matrix runs.  See ANALYSIS.md for
the rule catalogue and the suppression workflow.

The package deliberately imports nothing from the rest of the tree (it is
the one component allowed to know *about* every layer without depending on
any — enforced by its own layering rule's hard ban).
"""

from repro.analyze.core import (
    AnalysisConfig,
    DEFAULT_CONFIG,
    Finding,
    RULES,
    SUPPRESSION_RULE,
    render_findings,
    run_analysis,
)

__all__ = [
    "AnalysisConfig",
    "DEFAULT_CONFIG",
    "Finding",
    "RULES",
    "SUPPRESSION_RULE",
    "render_findings",
    "run_analysis",
]
