"""Shared machinery for the ``repro.analyze`` invariant checkers.

The simulator's contract — virtual time only moves when a component charges
it, seeded runs replay byte-identically, packages layer as a DAG — is cheap
to violate and expensive to debug after the fact (a stray ``time.time()``
only shows up as a bench-pin mismatch three PRs later).  This package checks
those invariants *by construction*: every rule is a small AST/import-graph
analysis over the source tree, run as a CI gate before the test matrix.

This module holds the parts every rule shares:

* :class:`Finding` — one violation, with a stable sort order and JSON form.
* :class:`SourceFile` — parsed source plus its ``# simlint: ignore[rule]``
  suppression table.
* :class:`Project` — the whole analyzed file set, module-name mapping and
  lazily built call graph.
* :class:`Reporter` — collects findings, applies suppressions, and flags
  suppressions that stopped matching anything (an unused suppression is a
  stale exemption hiding future violations, so it is itself a finding).
* the rule registry (:func:`rule`, :data:`RULES`) and the
  :func:`run_analysis` driver.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

#: A ``simlint: ignore[...]`` marker in a *comment token* on a line
#: suppresses the named rules' findings anchored on that line.  Parsing works
#: on tokens, not raw lines, so docstrings merely describing the syntax never
#: count as suppressions.
_SUPPRESS_RE = re.compile(r"simlint:\s*ignore\[([a-z0-9_,\- ]+)\]")

#: The pseudo-rule reporting stale/unknown suppression comments.  It cannot
#: itself be suppressed — that would allow silencing the audit of silences.
SUPPRESSION_RULE = "suppression"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_json(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class AnalysisConfig:
    """Tunables binding the generic checkers to one codebase's contract.

    The defaults describe *this* repository; the test fixtures rebind them to
    small synthetic packages.
    """

    # -- determinism ------------------------------------------------------
    #: Modules allowed to read the wall clock: the bench harnesses measure
    #: interpreter speed (wall time) alongside the modelled virtual time.
    wallclock_allow: tuple[str, ...] = (
        "repro.bench.hotpath",
        "repro.bench.scale",
        "repro.bench.writeback",
        "repro.bench.profile",
        "repro.trace.__main__",
    )

    # -- clock-accounting -------------------------------------------------
    #: Classes whose public methods are syscall entry points.  The
    #: ``Scheduler`` is an entry surface too: ``run``/``spawn`` drive task
    #: bodies that reach mutators, and the scheduler itself charges the clock
    #: for timeslices, context switches and idle jumps.
    entry_classes: tuple[str, ...] = ("Scheduler", "Syscalls")
    #: ``Class.method`` names that mutate fs/page-cache/writeback state.  An
    #: entry point reaching one of these must also reach a charge.
    mutators: tuple[str, ...] = (
        "PageCache.write", "PageCache.access", "PageCache.invalidate",
        "PageCache.invalidate_range", "PageCache.invalidate_all",
        "PageCache.reclaim_oldest",
        "WritebackEngine.note_dirty", "WritebackEngine.discard",
        "WritebackEngine.flush",
        "FileData.write", "FileData.truncate", "FileData.punch_hole",
        "DirectoryInode.add", "DirectoryInode.remove", "DirectoryInode.replace",
    )
    #: ``Class.method`` (``*`` wildcard method) patterns documented as
    #: zero-virtual-time: they must never reach a clock charge.
    zero_cost: tuple[str, ...] = (
        "Ext4Journal.*",
        "DentryCache.*",
        "WritebackEngine.crash_discard",
        # Observability is read-only on the virtual clock: accumulating or
        # rendering pressure, dispatching tracepoints and formatting the
        # counter files must never charge virtual time.
        "PsiStallTracker.*",
        "PsiGroup.*",
        "PsiRegistry.*",
        "Tracer.*",
        "VmSysctl.vmstat_text",
        "MemcgController.io_read",
        "MemcgController.io_wrote",
    )

    # -- layering ---------------------------------------------------------
    #: Package prefixes ordered lowest layer first; a module may only import
    #: (at module scope) from its own or lower layers.
    layers: tuple[str, ...] = (
        "repro.sim", "repro.fs", "repro.kernel", "repro.fuse",
        "repro.container", "repro.slim", "repro.core", "repro.xfstests",
        "repro.bench", "repro.trace", "repro.stress", "repro.analyze",
    )
    #: Imports banned even when deferred into a function body:
    #: ``(importer-prefix, banned-prefixes)``.
    hard_bans: tuple[tuple[str, tuple[str, ...]], ...] = (
        ("repro.sim", ("repro.fs", "repro.kernel", "repro.fuse",
                       "repro.container", "repro.slim", "repro.core",
                       "repro.xfstests", "repro.bench", "repro.trace",
                       "repro.stress")),
        ("repro.fs", ("repro.fuse", "repro.container", "repro.kernel",
                      "repro.core", "repro.slim", "repro.xfstests",
                      "repro.bench", "repro.trace", "repro.stress")),
        ("repro.analyze", ("repro.sim", "repro.fs", "repro.kernel",
                           "repro.fuse", "repro.container", "repro.slim",
                           "repro.core", "repro.xfstests", "repro.bench",
                           "repro.trace", "repro.stress")),
    )

    # -- errno discipline -------------------------------------------------
    #: Module prefixes forming the syscall path: every exception raised here
    #: must carry a POSIX errno (derive from ``errno_base``).
    errno_layers: tuple[str, ...] = ("repro.fs", "repro.fuse", "repro.kernel")
    #: The sanctioned errno-carrying base class.
    errno_base: str = "FsError"
    #: Exception names whose raise is banned on the syscall path (the
    #: OSError family plus the catch-alls; ValueError/TypeError stay legal
    #: for internal programming-contract guards).
    banned_exceptions: tuple[str, ...] = (
        "Exception", "BaseException", "OSError", "IOError",
        "EnvironmentError", "RuntimeError", "PermissionError",
        "FileNotFoundError", "FileExistsError", "IsADirectoryError",
        "NotADirectoryError", "BlockingIOError", "InterruptedError",
        "ProcessLookupError", "TimeoutError", "ConnectionError",
        "BrokenPipeError",
    )
    #: Base class whose lifecycle-hook overrides must delegate to super().
    hook_base: str = "Filesystem"
    lifecycle_hooks: tuple[str, ...] = ("crash", "remount", "_inode_released")

    # -- timer/RNG hygiene ------------------------------------------------
    #: Modules allowed to touch raw ``random`` machinery (the seeded-RNG
    #: implementation itself).
    rng_modules: tuple[str, ...] = ("repro.sim.rng",)
    #: The sanctioned deterministic RNG class.
    rng_class: str = "DeterministicRandom"


DEFAULT_CONFIG = AnalysisConfig()


def subtree_nodes(node: ast.AST) -> tuple[ast.AST, ...]:
    """All nodes of ``node``'s subtree, cached on the node itself.

    Every rule walks the same immutable trees; ``ast.walk``'s generator
    machinery dominated the analysis profile, so the flat node list is
    computed once per subtree and re-walks are plain tuple iteration.
    """
    cached = getattr(node, "_repro_walk", None)
    if cached is None:
        cached = tuple(ast.walk(node))
        node._repro_walk = cached
    return cached


class SourceFile:
    """One parsed source file plus its suppression table."""

    def __init__(self, path: Path, module: str, text: str) -> None:
        self.path = path
        self.module = module
        self.text = text
        self.tree = ast.parse(text, filename=str(path))
        #: line -> set of rule names suppressed on that line.
        self.suppressions: dict[int, set[str]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(text).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                m = _SUPPRESS_RE.search(tok.string)
                if m:
                    rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                    self.suppressions.setdefault(tok.start[0], set()).update(rules)
        except tokenize.TokenError:  # pragma: no cover - ast.parse caught worse
            pass

    def walk(self) -> tuple[ast.AST, ...]:
        """Every node in the file (cached; see :func:`subtree_nodes`)."""
        return subtree_nodes(self.tree)

    def display_path(self) -> str:
        return str(self.path)


#: Call graphs by identity of the file set.  The file cache keeps SourceFile
#: objects alive (and therefore their ids unambiguous), so two runs over an
#: unchanged tree share one graph instead of re-deriving it.
_CALLGRAPH_CACHE: dict[tuple[int, ...], object] = {}


class Project:
    """The analyzed file set: sources, module names, lazy call graph."""

    def __init__(self, files: list[SourceFile], config: AnalysisConfig) -> None:
        self.files = files
        self.config = config
        self.by_module = {f.module: f for f in files}
        self._callgraph = None

    @property
    def callgraph(self):
        """The whole-project call graph (built on first use)."""
        if self._callgraph is None:
            from repro.analyze.callgraph import CallGraph
            key = tuple(id(f) for f in self.files)
            graph = _CALLGRAPH_CACHE.get(key)
            if graph is None:
                graph = CallGraph(self)
                if len(_CALLGRAPH_CACHE) >= 8:
                    _CALLGRAPH_CACHE.clear()
                _CALLGRAPH_CACHE[key] = graph
            self._callgraph = graph
        return self._callgraph


class Reporter:
    """Collects findings, honouring per-line suppressions."""

    def __init__(self, project: Project, active_rules: Iterable[str]) -> None:
        self._project = project
        self._active = set(active_rules)
        self._findings: list[Finding] = []
        #: (module, line, rule) triples whose suppression absorbed a finding.
        self._used: set[tuple[str, int, str]] = set()

    def report(self, sf: SourceFile, node_or_line, rule: str, message: str) -> None:
        """File a finding, unless a same-line suppression absorbs it."""
        if isinstance(node_or_line, int):
            line, col = node_or_line, 0
        else:
            line, col = node_or_line.lineno, node_or_line.col_offset
        if rule in sf.suppressions.get(line, ()):
            self._used.add((sf.module, line, rule))
            return
        self._findings.append(Finding(sf.display_path(), line, col, rule, message))

    def finish(self, all_rules_ran: bool) -> list[Finding]:
        """Close the run: audit suppressions, return sorted findings.

        The unused-suppression audit only runs when every rule did — with a
        ``--rule`` filter a suppression for an unexecuted rule is not stale,
        just untested this run.
        """
        if all_rules_ran:
            known = self._active | {SUPPRESSION_RULE}
            for sf in self._project.files:
                for line, rules in sorted(sf.suppressions.items()):
                    for r in sorted(rules):
                        if r not in known:
                            self._findings.append(Finding(
                                sf.display_path(), line, 0, SUPPRESSION_RULE,
                                f"suppression names unknown rule {r!r}"))
                        elif (sf.module, line, r) not in self._used:
                            self._findings.append(Finding(
                                sf.display_path(), line, 0, SUPPRESSION_RULE,
                                f"unused suppression: no {r!r} finding on this "
                                f"line — remove the stale ignore"))
        return sorted(self._findings)


@dataclass(frozen=True)
class RuleDef:
    """A registered checker."""

    name: str
    doc: str
    check: Callable[[Project, Reporter], None] = field(compare=False)


#: name -> RuleDef; populated by the rule modules at import time.
RULES: dict[str, RuleDef] = {}


def rule(name: str, doc: str):
    """Class/function decorator registering a checker under ``name``."""
    def register(fn: Callable[[Project, Reporter], None]):
        RULES[name] = RuleDef(name, doc, fn)
        return fn
    return register


def _load_rules() -> None:
    # Importing the rule modules fills RULES via the @rule decorators.
    from repro.analyze import (  # noqa: F401  (imported for side effects)
        accounting, determinism, errnodisc, hygiene, layering,
    )


#: (resolved path, module) -> ((mtime_ns, size), SourceFile).  Parsing and
#: walking the tree dominates a warm analysis run; an unchanged file on disk
#: re-uses its parsed form across runs in one process (the CI gate and the
#: analyze tests run the full rule set several times over the same tree).
_FILE_CACHE: dict[tuple[str, str], tuple[tuple[int, int], SourceFile]] = {}


def collect_files(roots: Iterable[Path], config: AnalysisConfig) -> list[SourceFile]:
    """Parse every ``*.py`` under each package root.

    Each root must be a package directory; module names are derived from the
    root's own name (``src/repro`` -> ``repro.fs.ext4`` etc.), which keeps
    the collector independent of sys.path and usable on fixture trees.
    """
    out: list[SourceFile] = []
    for root in roots:
        root = Path(root)
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(root).with_suffix("")
            parts = (root.name, *rel.parts)
            if parts[-1] == "__init__":
                parts = parts[:-1]
            module = ".".join(parts)
            st = path.stat()
            key = (str(path), module)
            stamp = (st.st_mtime_ns, st.st_size)
            hit = _FILE_CACHE.get(key)
            if hit is not None and hit[0] == stamp:
                out.append(hit[1])
                continue
            sf = SourceFile(path, module, path.read_text())
            _FILE_CACHE[key] = (stamp, sf)
            out.append(sf)
    return out


#: Whole-run memo: (file identities, rule selection, config id) -> result.
#: The checks are pure functions of the parsed tree and the config, so a
#: repeat run over an unchanged file set (the analyze test-suite runs the
#: full rule set over the live tree many times in one process) can reuse the
#: previous result.  The file list and config objects are kept in the value
#: and re-compared by identity on hit, so a recycled ``id()`` can never
#: alias a dead object.
_RUN_CACHE: dict[tuple, tuple[list[SourceFile], AnalysisConfig,
                              list[Finding]]] = {}


def run_analysis(roots: Iterable[Path], config: AnalysisConfig | None = None,
                 rules: Iterable[str] | None = None) -> list[Finding]:
    """Run the (selected) checkers over ``roots`` and return all findings."""
    config = config or DEFAULT_CONFIG
    _load_rules()
    selected = sorted(RULES) if rules is None else sorted(set(rules))
    unknown = [r for r in selected if r not in RULES]
    if unknown:
        raise ValueError(f"unknown rule(s): {', '.join(unknown)}")
    files = collect_files(roots, config)
    key = (tuple(id(sf) for sf in files), tuple(selected), id(config))
    hit = _RUN_CACHE.get(key)
    if hit is not None and hit[1] is config and \
            all(a is b for a, b in zip(hit[0], files)):
        return list(hit[2])
    project = Project(files, config)
    reporter = Reporter(project, active_rules=selected)
    for name in selected:
        RULES[name].check(project, reporter)
    findings = reporter.finish(all_rules_ran=set(selected) == set(RULES))
    if len(_RUN_CACHE) >= 32:
        _RUN_CACHE.clear()
    _RUN_CACHE[key] = (files, config, findings)
    return list(findings)


def render_findings(findings: list[Finding], as_json: bool) -> str:
    """Format findings for the CLI."""
    if as_json:
        return json.dumps({"findings": [f.to_json() for f in findings],
                           "count": len(findings)}, indent=2)
    if not findings:
        return "repro.analyze: clean"
    lines = [f.render() for f in findings]
    lines.append(f"repro.analyze: {len(findings)} finding(s)")
    return "\n".join(lines)
